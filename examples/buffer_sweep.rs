//! **Queue-depth ablation** — the design study that motivated the
//! simulator in the first place (paper §3: "we found that buffers require
//! a relatively large amount of area and energy. So we would like to redo
//! the simulation of Figure 1 with different buffer sizes and investigate
//! what the effect of buffer size on performance [...] is").
//!
//! Reruns the Fig 1 workload for queue depths 2, 4 and 8 at several BE
//! loads and reports latency plus the register cost per router of each
//! depth (the performance/area trade-off).
//!
//! ```text
//! cargo run --release --example buffer_sweep
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]
use noc::{run_fig1_point, NativeNoc, RunConfig};
use noc_types::{NetworkConfig, Topology};
use platform::energy::noc_types_run::RunLike;
use platform::EnergyParams;
use soc_sim::par_map;
use stats::Table;
use vc_router::{IfaceConfig, RegisterLayout};

fn main() {
    let rc = RunConfig {
        warmup: 2_000,
        measure: 20_000,
        drain: 5_000,
        period: 512,
        backlog_limit: 16_384,
        obs: None,
        check: false,
        ..RunConfig::default()
    };
    let depths = [2usize, 4, 8];
    let loads = [0.05f64, 0.10, 0.14];

    let grid: Vec<(usize, f64)> = depths
        .iter()
        .flat_map(|&d| loads.iter().map(move |&l| (d, l)))
        .collect();
    let results: Vec<(usize, f64, noc::RunReport)> = par_map(grid, |(depth, load)| {
        let cfg = NetworkConfig::new(6, 6, Topology::Torus, depth);
        let mut engine = NativeNoc::new(cfg, IfaceConfig::default());
        (
            depth,
            load,
            run_fig1_point(&mut engine, load, 2024, &rc).expect("run failed"),
        )
    });

    let energy = EnergyParams::default();
    let mut t = Table::new(
        "Queue-depth ablation — Fig 1 workload, 6x6 torus (energy model: platform::energy)",
        &[
            "depth",
            "regs/router",
            "BE load",
            "GT mean",
            "GT max",
            "BE mean",
            "BE p99",
            "delivered",
            "pJ/flit",
        ],
    );
    for (depth, load, r) in &results {
        let e = energy.estimate_run(
            &RunLike {
                nodes: 36,
                cycles: r.throughput.cycles,
                injected_flits: r.throughput.injected_flits,
                delivered_flits: r.throughput.delivered_flits,
            },
            *depth,
            3.0, // mean hop count of the Fig 1 workload
        );
        t.row(&[
            depth.to_string(),
            RegisterLayout::new(*depth).total_bits().to_string(),
            format!("{load:.2}"),
            format!("{:.1}", r.gt.mean),
            r.gt.max.to_string(),
            format!("{:.1}", r.be.mean),
            r.be.p99.to_string(),
            r.throughput.delivered_packets.to_string(),
            format!("{:.1}", e.per_flit_pj(r.throughput.delivered_flits)),
        ]);
    }
    println!("{}", t.render());

    // The trade-off statement the study was after.
    let gt_at = |d: usize, l: f64| {
        results
            .iter()
            .find(|(dd, ll, _)| *dd == d && (*ll - l).abs() < 1e-9)
            .map(|(_, _, r)| r.gt.mean)
            .unwrap()
    };
    let l2 = RegisterLayout::new(2).total_bits();
    let l8 = RegisterLayout::new(8).total_bits();
    println!(
        "deeper buffers cost {:.1}x the registers (depth 8 vs 2: {} vs {} bits)",
        l8 as f64 / l2 as f64,
        l8,
        l2
    );
    println!(
        "and improve GT mean latency at 0.14 load by {:.1} cycles ({:.1} -> {:.1})",
        gt_at(2, 0.14) - gt_at(8, 0.14),
        gt_at(2, 0.14),
        gt_at(8, 0.14)
    );
}
