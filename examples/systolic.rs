//! **Systolic-array case study** (paper §7.1) — the sequential simulation
//! framework applied to a non-NoC design: an output-stationary systolic
//! matrix multiplier ("systolic algorithms with many equal parts with a
//! small state space").
//!
//! ```text
//! cargo run --release --example systolic
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]
use seqsim::systolic::{reference_multiply, SystolicArray};
use stats::Table;

fn main() {
    let n = 8;
    let a: Vec<Vec<u16>> = (0..n)
        .map(|r| (0..n).map(|c| (r * 31 + c * 7 + 1) as u16).collect())
        .collect();
    let b: Vec<Vec<u16>> = (0..n)
        .map(|r| (0..n).map(|c| (r * 13 + c * 3 + 2) as u16).collect())
        .collect();

    let mut arr = SystolicArray::new(n);
    let got = arr.multiply(&a, &b);
    let want = reference_multiply(&a, &b);
    assert_eq!(got, want);

    let stats = arr.stats();
    let mut t = Table::new(
        &format!("{n}x{n} output-stationary systolic multiply on the static sequential engine"),
        &["metric", "value"],
    );
    t.row(&["result verified vs reference".into(), "true".into()]);
    t.row(&["system cycles".into(), stats.system_cycles.to_string()]);
    t.row(&["delta cycles".into(), stats.delta_cycles.to_string()]);
    t.row(&[
        "delta cycles / system cycle".into(),
        format!(
            "{:.1} (= n^2 = {}, the static-schedule minimum)",
            stats.avg_deltas_per_cycle(),
            n * n
        ),
    ]);
    t.row(&[
        "PE state".into(),
        "40-bit accumulator only — operand pipelining lives in the link memory".into(),
    ]);
    println!("{}", t.render());
    println!(
        "C[0][0] = {}, C[{m}][{m}] = {}",
        got[0][0],
        got[n - 1][n - 1],
        m = n - 1
    );
}
