//! **Scalability report** — the paper's reason to exist: "It is
//! particularly designed for systems that do not fit completely on the
//! simulation platform." For network sizes from 2 to 256 routers, report
//! whether direct instantiation fits the Virtex-II 8000, what the
//! sequential simulator costs instead (BlockRAM, simulation frequency),
//! and the modelled wall-clock for a Fig 1-style experiment.
//!
//! ```text
//! cargo run --release --example scalability
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]
use platform::{FpgaDevice, FpgaTimingModel, PhaseParams, ResourceModel, Scenario};
use stats::table::fmt_hz;
use stats::Table;
use vc_router::RegisterLayout;

fn main() {
    let dev = FpgaDevice::virtex2_8000();
    let timing = FpgaTimingModel::default();
    let params = PhaseParams::default();
    let base = ResourceModel::paper_build();

    let mut t = Table::new(
        "Scalability on a Virtex-II 8000 (depth-4 routers, load 0.10, heavy analysis)",
        &[
            "routers",
            "direct fits?",
            "seq BRAM",
            "seq max sim freq",
            "co-sim cps",
            "1M-cycle experiment",
        ],
    );
    let direct_max = base.max_direct_routers(&dev, 16);
    for nodes in [4usize, 16, 36, 64, 100, 144, 196, 256] {
        let model = ResourceModel {
            nodes,
            ..base.clone()
        };
        let (_, ram) = model.totals();
        let deltas = nodes as f64 * 1.2; // ~20 % re-evaluations at load 0.10
        let fmax = timing.max_sim_freq_hz(deltas);
        let sc = Scenario {
            nodes,
            flits_per_cycle_per_node: 0.10,
            period: 256,
            deltas_per_cycle: deltas,
            heavy_analysis: true,
            soft_rng: false,
        };
        let cps = params.evaluate(&timing, &sc).cps();
        let minutes = 1.0e6 / cps / 60.0;
        t.row(&[
            nodes.to_string(),
            if nodes <= direct_max {
                "yes".into()
            } else {
                format!("no (>{direct_max})")
            },
            format!("{ram} ({:.0} %)", 100.0 * ram as f64 / dev.brams as f64),
            fmt_hz(fmax),
            fmt_hz(cps),
            format!("{minutes:.1} min"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "per-router state: {} bits; the state memory scales linearly while the shared",
        RegisterLayout::new(4).state_bits()
    );
    println!("combinational logic stays constant — \"less then 10% of the logic resources are");
    println!("used for combinatorial circuitry of the routers\" (§7.1).");
    println!();
    println!("the paper's contrast at 36 routers: SystemC needed 29 h for Fig 1; the same");
    println!(
        "experiment at the modelled co-sim rate takes ~{:.1} h of FPGA platform time.",
        {
            let sc = Scenario::grid6x6(0.10, true);
            let cps = params.evaluate(&timing, &sc).cps();
            // Fig 1: 15 load points x ~1.5M cycles each (the 29-hour
            // SystemC figure at 215 Hz corresponds to ~22M cycles total).
            22.0e6 / cps / 3600.0
        }
    );
}
