//! Quickstart: build a NoC, offer mixed GT + BE traffic, print latency
//! statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]
use noc::{run_fig1_point, NativeNoc, RunConfig};
use noc_types::{NetworkConfig, Topology};
use stats::table::{fmt_f, fmt_hz};
use vc_router::IfaceConfig;

fn main() {
    // A 4x4 torus with the paper's default 4-flit queues.
    let cfg = NetworkConfig::new(4, 4, Topology::Torus, 4);
    let mut engine = NativeNoc::new(cfg, IfaceConfig::default());

    // One GT stream per node plus 5% best-effort load, seeded.
    let rc = RunConfig {
        warmup: 1_000,
        measure: 10_000,
        drain: 3_000,
        period: 512,
        backlog_limit: 8_192,
        obs: None,
        check: false,
        ..RunConfig::default()
    };
    let report = run_fig1_point(&mut engine, 0.05, 42, &rc).expect("run failed");

    println!("network        : {} {:?}", cfg.shape, cfg.topology);
    println!("engine         : {}", report.engine);
    println!("cycles         : {}", report.cycles);
    println!("wall           : {:.3} s", report.wall.as_secs_f64());
    println!("speed          : {}", fmt_hz(report.cps()));
    println!();
    println!(
        "GT packets     : {:>6}   mean {:>7} max {:>5}",
        report.gt.count,
        fmt_f(report.gt.mean, 1),
        report.gt.max
    );
    println!(
        "BE packets     : {:>6}   mean {:>7} max {:>5}",
        report.be.count,
        fmt_f(report.be.mean, 1),
        report.be.max
    );
    println!(
        "access delay   : mean {} cycles (p99 {})",
        fmt_f(report.access.mean, 1),
        report.access.p99
    );
    println!(
        "delivered      : {} packets / {} flits",
        report.throughput.delivered_packets, report.throughput.delivered_flits
    );
    println!("saturated      : {}", report.saturated);
    assert!(!report.saturated);
    assert!(report.gt.count > 0 && report.be.count > 0);
}
