//! **Traffic-pattern study** — §1's motivation: "This enables us to
//! observe the NoC behavior under a large variety of traffic patterns."
//! Same network, same load, different spatial patterns: uniform random,
//! transpose, bit-complement, hotspot, nearest-neighbour.
//!
//! ```text
//! cargo run --release --example traffic_patterns
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]
use noc::{EngineKind, RunConfig, SimBuilder};
use noc_types::{Coord, NetworkConfig, Topology};
use soc_sim::par_map;
use stats::Table;
use traffic::{BeConfig, DestPattern, StimuliGenerator, TrafficConfig};

fn main() {
    let cfg = NetworkConfig::new(6, 6, Topology::Torus, 2);
    let rc = RunConfig::new()
        .warmup(1_500)
        .measure(12_000)
        .drain(4_000)
        .period(512)
        .backlog_limit(8_192);
    let patterns: Vec<(&str, DestPattern)> = vec![
        ("uniform random", DestPattern::UniformRandom),
        ("transpose", DestPattern::Transpose),
        ("bit complement", DestPattern::BitComplement),
        (
            "hotspot 20% -> (3,3)",
            DestPattern::Hotspot {
                hot: Coord::new(3, 3),
                hot_frac: 0.2,
            },
        ),
        ("nearest neighbour", DestPattern::NearestNeighbour),
    ];

    let results: Vec<_> = par_map(patterns, |(name, pattern)| {
        let mut session = SimBuilder::new(cfg)
            .engine(EngineKind::Native)
            .run_config(rc.clone())
            .session()
            .expect("native engine builds");
        let mut gen = StimuliGenerator::new(TrafficConfig {
            net: cfg,
            be: BeConfig {
                load: 0.12,
                packet_flits: 5,
                pattern,
            },
            gt_streams: Vec::new(),
            seed: 77,
        });
        (name, session.run(&mut gen).expect("run failed").clone())
    });

    let mut t = Table::new(
        "Pattern study — 6x6 torus, BE load 0.12, 5-flit packets",
        &[
            "pattern",
            "BE mean",
            "BE p99",
            "BE max",
            "delivered",
            "overloaded",
        ],
    );
    for (name, r) in &results {
        t.row(&[
            name.to_string(),
            format!("{:.1}", r.be.mean),
            r.be.p99.to_string(),
            r.be.max.to_string(),
            r.throughput.delivered_packets.to_string(),
            r.saturated.to_string(),
        ]);
    }
    println!("{}", t.render());

    let mean = |name: &str| {
        results
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, r)| r.be.mean)
            .unwrap()
    };
    println!("expected ordering checks:");
    println!(
        "  nearest neighbour ({:.1}) is the cheapest pattern: {}",
        mean("nearest neighbour"),
        results
            .iter()
            .all(|(_, r)| r.be.mean >= mean("nearest neighbour"))
    );
    println!(
        "  hotspot ({:.1}) beats uniform ({:.1}) in mean latency: {}",
        mean("hotspot 20% -> (3,3)"),
        mean("uniform random"),
        mean("hotspot 20% -> (3,3)") > mean("uniform random")
    );
}
