//! **Figure 1 reproduction** — "Delay of the GT and BE packets vs. BE
//! load for 6-by-6 network (queue size 2 flits)".
//!
//! Sweeps the offered best-effort load from 0 to 0.14 of channel capacity
//! per PE on a 6×6 torus with 2-flit queues, one 256-byte GT stream per
//! node, 10-byte BE packets with uniform random destinations — and prints
//! the four series of the figure: the analytic guarantee, GT mean, GT max
//! and BE mean latency.
//!
//! ```text
//! cargo run --release --example latency_sweep [--csv]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]
use noc::{fig1_guarantee, run_fig1_point, NativeNoc, RunConfig};
use noc_types::NetworkConfig;
use soc_sim::par_map;
use stats::{Series, Table};
use vc_router::IfaceConfig;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let cfg = NetworkConfig::fig1(); // 6x6 torus, 2-flit queues
    let guarantee = fig1_guarantee(cfg) as f64;
    let rc = RunConfig {
        warmup: 3_000,
        measure: 30_000,
        drain: 6_000,
        period: 512,
        backlog_limit: 16_384,
        obs: None,
        check: false,
        ..RunConfig::default()
    };
    let loads: Vec<f64> = (0..=14).map(|i| i as f64 / 100.0).collect();

    // The sweep points are independent — a parallel map, one engine per
    // point.
    let mut points: Vec<(f64, noc::RunReport)> = par_map(loads, |load| {
        let mut engine = NativeNoc::new(cfg, IfaceConfig::default());
        (
            load,
            run_fig1_point(&mut engine, load, 1337, &rc).expect("run failed"),
        )
    });
    points.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut series = Series::new("be_load", &["guarantee", "gt_mean", "gt_max", "be_mean"]);
    let mut table = Table::new(
        "Figure 1 — GT/BE latency vs BE load (6x6 torus, queue depth 2)",
        &[
            "BE load",
            "Guarantee",
            "GT mean",
            "GT max",
            "BE mean",
            "saturated",
        ],
    );
    for (load, r) in &points {
        series.push(*load, &[guarantee, r.gt.mean, r.gt.max as f64, r.be.mean]);
        table.row(&[
            format!("{load:.2}"),
            format!("{guarantee:.0}"),
            format!("{:.1}", r.gt.mean),
            format!("{}", r.gt.max),
            if r.be.count > 0 {
                format!("{:.1}", r.be.mean)
            } else {
                "-".into()
            },
            format!("{}", r.saturated),
        ]);
    }
    if csv {
        print!("{}", series.to_csv());
    } else {
        println!("{}", table.render());
        // The properties the paper's figure exhibits.
        let gt_max_peak = points.iter().map(|(_, r)| r.gt.max).max().unwrap();
        println!("paper shape checks:");
        println!(
            "  GT max ({} cycles) stays below the guarantee ({:.0}): {}",
            gt_max_peak,
            guarantee,
            gt_max_peak as f64 <= guarantee
        );
        let first = &points.first().unwrap().1;
        let last = &points.last().unwrap().1;
        println!(
            "  GT latency rises with BE load: {:.1} -> {:.1}",
            first.gt.mean, last.gt.mean
        );
        println!(
            "  GT latency exceeds BE latency (larger packets): {:.1} vs {:.1}",
            last.gt.mean, last.be.mean
        );
    }
}
