//! Observability demo: run the sequential (FPGA-method) simulator on a
//! 4x4 mesh and write a Perfetto-loadable trace plus a metrics snapshot.
//!
//! ```text
//! cargo run --release --example trace_run [TRACE.json [METRICS.json]]
//! ```
//!
//! Defaults to `trace_run.trace.json` / `trace_run.metrics.json` in the
//! working directory. Open the trace in <https://ui.perfetto.dev> (or
//! `chrome://tracing`): the five runner phases of §5.3 appear as nested
//! spans per period, the delta-cycle kernel contributes one
//! `kernel.cycle` instant per simulated cycle plus a `kernel.deltas`
//! counter track, and `noc.occupancy` graphs the queued flits per VC.

#![allow(clippy::unwrap_used, clippy::expect_used)]
use noc::{EngineKind, ObsConfig, RunConfig, SimBuilder};
use noc_types::{NetworkConfig, Topology};
use simtrace::{Registry, Tracer};
use std::path::PathBuf;

fn main() {
    let mut args = std::env::args().skip(1);
    let trace_path = PathBuf::from(args.next().unwrap_or_else(|| "trace_run.trace.json".into()));
    let metrics_path = PathBuf::from(
        args.next()
            .unwrap_or_else(|| "trace_run.metrics.json".into()),
    );

    let cfg = NetworkConfig::new(4, 4, Topology::Mesh, 2);
    let instr = ObsConfig::with(Registry::new(), Tracer::new(), 32);
    let rc = RunConfig::new()
        .warmup(200)
        .measure(1_000)
        .drain(500)
        .period(256)
        .backlog_limit(1 << 16)
        .obs(instr.clone());
    let mut session = SimBuilder::new(cfg)
        .engine(EngineKind::Seq)
        .run_config(rc)
        .session()
        .expect("seq engine builds");
    let report = {
        let mut alloc = traffic::GtAllocator::new(cfg);
        let gt_streams = alloc.auto_streams((2, 1), 2048, 128);
        let tcfg = traffic::TrafficConfig {
            net: cfg,
            be: traffic::BeConfig::fig1(0.08),
            gt_streams,
            seed: 42,
        };
        let mut gen = traffic::StimuliGenerator::new(tcfg);
        session.run(&mut gen).expect("run failed").clone()
    };

    instr.tracer.write_chrome(&trace_path).expect("write trace");
    instr
        .registry
        .write_snapshot(&metrics_path)
        .expect("write metrics");

    println!(
        "{} on a 4x4 mesh: {} cycles, {} GT + {} BE packets, {:.1} deltas/cycle",
        session.name(),
        report.cycles,
        report.gt.count,
        report.be.count,
        report
            .delta
            .as_ref()
            .map_or(0.0, |d| d.avg_deltas_per_cycle()),
    );
    println!(
        "trace:   {} events -> {} (load in https://ui.perfetto.dev)",
        instr.tracer.len(),
        trace_path.display()
    );
    println!(
        "metrics: {} series -> {}",
        instr.registry.len(),
        metrics_path.display()
    );
}
