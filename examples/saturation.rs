//! **Saturation study** — offered vs accepted throughput and the latency
//! knee, the context for Fig 1's load axis and the §5.3 overload stop
//! ("If the network is overloaded with traffic and it does not accept
//! data on virtual channels for a longer time, this is reported to the
//! user and simulation is stopped").
//!
//! ```text
//! cargo run --release --example saturation [--csv]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]
use noc::analysis::{saturation_load, saturation_sweep, to_series};
use noc::{NativeNoc, NocEngine, RunConfig};
use noc_types::{NetworkConfig, Topology};
use stats::Table;
use vc_router::IfaceConfig;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let cfg = NetworkConfig::new(6, 6, Topology::Torus, 2);
    let rc = RunConfig {
        warmup: 1_000,
        measure: 8_000,
        drain: 3_000,
        period: 512,
        backlog_limit: 4_096,
        obs: None,
        check: false,
        ..RunConfig::default()
    };
    let loads: Vec<f64> = [0.02, 0.06, 0.10, 0.14, 0.20, 0.28, 0.36, 0.44, 0.52, 0.60].to_vec();
    let mut mk = || -> Box<dyn NocEngine> { Box::new(NativeNoc::new(cfg, IfaceConfig::default())) };
    let pts = saturation_sweep(&mut mk, &loads, 4242, &rc);

    if csv {
        print!("{}", to_series(&pts).to_csv());
        return;
    }
    let mut t = Table::new(
        "BE saturation sweep — 6x6 torus, 2-flit queues, uniform random",
        &[
            "offered",
            "accepted",
            "delivered",
            "BE mean latency",
            "overloaded",
        ],
    );
    for p in &pts {
        t.row(&[
            format!("{:.2}", p.offered),
            format!("{:.3}", p.accepted),
            format!("{:.3}", p.delivered),
            format!("{:.1}", p.be_mean),
            p.saturated.to_string(),
        ]);
    }
    println!("{}", t.render());
    match saturation_load(&pts, 0.05) {
        Some(l) => println!(
            "saturation sets in at ~{l:.2} flits/cycle/node — Fig 1's 0.00-0.14 sweep \
             sits in the linear region, as the paper's flat guarantee line requires."
        ),
        None => println!("no saturation within the swept range"),
    }
}
