//! **Kernel hotspot profiling** — where do the delta cycles go?
//!
//! Attaches the graph-attributed kernel profiler (`SimBuilder::profile`)
//! to both sequential backends — the interpreting worklist engine and
//! the compiled bytecode kernel — drives a loaded 6x6 mesh through the
//! five-phase runner, and prints each engine's ranked per-block
//! self-time table plus the per-SCC convergence accounting (static
//! `speccheck` bound vs the delta rounds actually consumed). Both
//! engines share the same graph attribution; on the compiled kernel the
//! comb-pass opcode time is rolled up into each block's self time
//! through the opcode→block back-pointers, and the SCC table becomes
//! the HBR-elision proof: the worst observed consumption is exactly 1
//! round per cycle against the interpreting engine's static bound.
//!
//! The same data serialises to the `simprof` formats: collapsed-stack
//! flamegraph text and the ranked-hotspot JSON report.
//!
//! ```text
//! cargo run --release --example profile_hotspots
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]
use noc::{run_fig1_point, EngineKind, RunConfig, SimBuilder};
use noc_types::{NetworkConfig, Topology};
use stats::Table;

fn profile_engine(name: &str, kind: EngineKind, cfg: NetworkConfig, rc: &RunConfig) -> f64 {
    // sample_every = 1: time every cycle (measured, not extrapolated).
    let mut engine = SimBuilder::new(cfg)
        .engine(kind)
        .profile(1)
        .try_build()
        .expect("profiled engine builds");
    let r = run_fig1_point(&mut *engine, 0.10, 7, rc).expect("run failed");
    let sim_wall = r
        .profile
        .iter()
        .find(|p| p.0 == "simulate")
        .map(|p| p.1.as_secs_f64())
        .unwrap_or(0.0);
    let prof = engine.take_profile(sim_wall).expect("profiler attached");

    let total = prof.self_ns_total();
    let mut hot = Table::new(
        &format!("Hottest blocks (6x6 mesh, BE 0.10 + GT, {name})"),
        &[
            "rank",
            "scc",
            "block",
            "self",
            "evals",
            "hbr retries",
            "share",
        ],
    );
    for (rank, b) in prof.hotspots(10).iter().enumerate() {
        hot.row(&[
            (rank + 1).to_string(),
            format!("{}{}", b.scc, if b.fixed_point { "*" } else { "" }),
            b.name.clone(),
            format!("{:.2} ms", b.self_ns as f64 / 1e6),
            b.evals.to_string(),
            b.hbr_retries.to_string(),
            format!("{:.1} %", 100.0 * b.self_ns as f64 / total.max(1) as f64),
        ]);
    }
    println!("{}", hot.render());

    if prof.sccs.is_empty() {
        // The compiled engine's straight-line program (and any acyclic
        // spec on the worklist engine) has no fixed point to account
        // for: one update opcode per block per cycle, zero HBR retries.
        println!("no multi-block SCCs: straight-line evaluation, HBR checks elided\n");
    } else {
        let mut sccs = Table::new(
            "Fixed-point SCCs — static bound vs observed convergence",
            &["scc", "blocks", "bound", "worst consumed", "hbr retries"],
        );
        for s in &prof.sccs {
            sccs.row(&[
                s.scc.to_string(),
                s.blocks.to_string(),
                s.bound.to_string(),
                s.consumed_max.to_string(),
                s.hbr_retries.to_string(),
            ]);
        }
        println!("{}", sccs.render());
    }

    println!(
        "profiled {} cycles: {} evals, {:.2} ms self time / {:.2} ms simulate wall ({:.1} % coverage)",
        prof.cycles,
        prof.evals_total(),
        total as f64 / 1e6,
        sim_wall * 1e3,
        100.0 * total as f64 / (sim_wall * 1e9).max(1.0)
    );
    println!(
        "flamegraph: {} collapsed stacks ready for inferno/flamegraph.pl — first line:",
        prof.collapsed().lines().count()
    );
    println!("  {}", prof.collapsed().lines().next().unwrap_or(""));
    println!();
    r.sim_cycles_per_sec()
}

fn main() {
    let cfg = NetworkConfig::new(6, 6, Topology::Mesh, 2);
    let rc = RunConfig {
        warmup: 300,
        measure: 4_000,
        drain: 0,
        period: 256,
        backlog_limit: 1 << 20,
        obs: None,
        check: false,
        ..RunConfig::default()
    };
    let seq = profile_engine("sequential engine", EngineKind::Seq, cfg, &rc);
    let compiled = profile_engine("compiled kernel", EngineKind::SeqCompiled, cfg, &rc);
    println!(
        "simulate-phase throughput: seqsim {:.1} kcycles/s, seqsim-compiled {:.1} kcycles/s ({:.2}x)",
        seq / 1e3,
        compiled / 1e3,
        compiled / seq.max(1.0)
    );
    println!("(write the full outputs with `experiments --profile FILE`, inspect with `simprof`)");
}
