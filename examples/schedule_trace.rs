//! **Figures 2–5 reproduction** — the paper's running examples of the
//! sequential simulation method.
//!
//! * Fig 2/3: the three-block system with *registered* boundaries,
//!   simulated with the static schedule — each block evaluated exactly
//!   once per system cycle, state banks swapped by the offset pointer.
//! * Fig 4/5: the three-block system with *combinatorial* boundaries,
//!   simulated with the dynamic (HBR) schedule — re-evaluations appear
//!   whenever a link value changes after its consumer already read it,
//!   and their number depends on the evaluation order.
//!
//! ```text
//! cargo run --release --example schedule_trace
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]
use seqsim::demo::{comb_demo, registered_demo};
use seqsim::{DynamicEngine, StaticEngine};

fn main() {
    println!("== Fig 3: static schedule, registered boundaries ==");
    let (spec, regs) = registered_demo([1, 2, 3]);
    let mut eng = StaticEngine::new(spec);
    eng.enable_trace();
    eng.run(3);
    println!("{}", eng.trace().unwrap().render());
    println!(
        "registers after 3 cycles: R1={} R2={} R3={}",
        eng.link_value(regs[0]),
        eng.link_value(regs[1]),
        eng.link_value(regs[2])
    );
    println!(
        "delta cycles: {} (3 blocks x 3 cycles — no re-evaluation possible)",
        eng.stats().delta_cycles
    );

    println!();
    println!("== Fig 5: dynamic schedule, combinatorial boundaries ==");
    for order in [vec![0usize, 1, 2], vec![2, 1, 0]] {
        let (spec, _) = comb_demo();
        let mut eng = DynamicEngine::with_order(spec, order.clone());
        eng.enable_trace();
        eng.run(3);
        let trace = eng.trace().unwrap();
        println!("-- evaluation order {order:?} --");
        println!("{}", trace.render());
        println!(
            "delta cycles: {} (minimum 9); re-evaluations at {:?}",
            eng.stats().delta_cycles,
            trace.re_evaluations()
        );
        println!();
    }
    println!("The behaviour is identical for both orders (verified by the");
    println!("test suite); only the delta-cycle count differs — the paper's");
    println!("point about the dynamic schedule's evaluation-order freedom.");
}
