//! **Circuit-switched NoC** — the paper's second network (§2), and a live
//! demonstration that the sequential method's two schedules match the two
//! design styles:
//!
//! * the packet-switched router has combinatorial boundaries → dynamic
//!   (HBR) schedule, delta cycles > N;
//! * the circuit-switched router has registered boundaries → static
//!   schedule (§4.1), delta cycles = N exactly.
//!
//! The example configures a set of circuits, streams data at full link
//! bandwidth, and contrasts latency/throughput and delta-cycle cost with
//! the packet-switched network carrying the same streams as GT traffic.
//!
//! ```text
//! cargo run --release --example circuit_switched
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]
use noc::{run_fig1_point, CsNoc, RunConfig, SeqNoc};
use noc_types::{Coord, NetworkConfig, Topology};
use stats::Table;
use vc_router::IfaceConfig;

fn main() {
    let net = NetworkConfig::new(6, 6, Topology::Torus, 2);
    let mut cs = CsNoc::new(net, IfaceConfig::default());

    // One circuit per node to the node (2,1) away — the same stream
    // pattern the Fig 1 GT allocation uses.
    let mut circuits = Vec::new();
    for src in net.shape.coords() {
        let dest = Coord::new((src.x + 2) % net.shape.w, (src.y + 1) % net.shape.h);
        match cs.configure_circuit(src, dest) {
            Ok(c) => circuits.push(c),
            Err(e) => println!("circuit {src} -> {dest} rejected: {e:?}"),
        }
    }
    println!(
        "configured {}/{} circuits (circuits claim whole links; the packet-switched \
         network fits the same streams by sharing links across VCs)",
        circuits.len(),
        net.num_nodes()
    );

    // Stream 200 words per configured circuit.
    let words = 200u16;
    for c in &circuits {
        let src = net.shape.node_id(c.src).index();
        for i in 0..words {
            assert!(cs.push_word(src, 0, i));
        }
    }
    cs.run(words as u64 + 30);

    let mut total = 0usize;
    let mut first_latencies = Vec::new();
    let mut full_bandwidth = true;
    for c in &circuits {
        let dest = net.shape.node_id(c.dest).index();
        let got = cs.drain_delivered(dest);
        total += got.len();
        assert_eq!(got.len(), words as usize);
        first_latencies.push(got[0].cycle as f64 - c.hops() as f64);
        full_bandwidth &= got.windows(2).all(|w| w[1].cycle == w[0].cycle + 1);
    }
    let stats = cs.engine().stats();

    let mut t = Table::new("circuit-switched streaming", &["metric", "value"]);
    t.row(&["words delivered".into(), total.to_string()]);
    t.row(&[
        "full link bandwidth (1 word/cycle)".into(),
        full_bandwidth.to_string(),
    ]);
    t.row(&[
        "setup overhead beyond hop count".into(),
        format!(
            "{:.1} cycles",
            first_latencies.iter().sum::<f64>() / first_latencies.len() as f64
        ),
    ]);
    t.row(&[
        "delta cycles / system cycle".into(),
        format!(
            "{:.2} (N = {}, static schedule — exactly the minimum)",
            stats.avg_deltas_per_cycle(),
            net.num_nodes()
        ),
    ]);
    println!("{}", t.render());

    // Contrast: the packet-switched network under its GT + BE workload
    // needs the dynamic schedule and pays re-evaluations.
    let mut ps = SeqNoc::new(net, IfaceConfig::default());
    let rc = RunConfig {
        warmup: 200,
        measure: 1_500,
        drain: 0,
        period: 256,
        backlog_limit: 1 << 20,
        obs: None,
        check: false,
        ..RunConfig::default()
    };
    let r = run_fig1_point(&mut ps, 0.10, 3, &rc).expect("run failed");
    let d = r.delta.unwrap();
    println!(
        "packet-switched (dynamic schedule) under GT+BE load: {:.1} delta cycles/system \
         cycle ({:.1} % re-evaluations)",
        d.avg_deltas_per_cycle(),
        d.extra_fraction(net.num_nodes() as u64) * 100.0
    );
    println!(
        "circuit-switched GT-style stream latency: ~hops ({}-{} cycles here) vs \
         packet-switched GT mean {:.1} cycles — the trade: dedicated links, no sharing.",
        circuits.iter().map(|c| c.hops()).min().unwrap(),
        circuits.iter().map(|c| c.hops()).max().unwrap(),
        r.gt.mean
    );
}
