//! **Tables 1 & 2 reproduction** — per-router register budget and FPGA
//! resource usage, plus the §4 direct-instantiation limit.
//!
//! Table 1 is computed exactly from the implemented register layout;
//! Table 2's BlockRAM column is computed from the memory geometry and its
//! CLB column from calibrated logic estimates (see
//! `platform::resources`). The paper's synthesis numbers are printed
//! alongside.
//!
//! ```text
//! cargo run --release --example resource_report
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]
use platform::{FpgaDevice, ResourceModel};
use stats::Table;
use vc_router::RegisterLayout;

fn main() {
    // ---- Table 1 ----
    let mut t1 = Table::new(
        "Table 1 — required registers per router (bits)",
        &[
            "Group",
            "this repo (depth 4)",
            "paper",
            "depth 2",
            "depth 8",
        ],
    );
    let l4 = RegisterLayout::new(4);
    let l2 = RegisterLayout::new(2);
    let l8 = RegisterLayout::new(8);
    for (((g4, gp), g2), g8) in l4
        .groups()
        .iter()
        .zip(RegisterLayout::paper_groups())
        .zip(l2.groups())
        .zip(l8.groups())
    {
        t1.row(&[
            g4.name.to_string(),
            g4.bits.to_string(),
            gp.bits.to_string(),
            g2.bits.to_string(),
            g8.bits.to_string(),
        ]);
    }
    t1.row(&[
        "Total".into(),
        l4.total_bits().to_string(),
        "2112".into(),
        l2.total_bits().to_string(),
        l8.total_bits().to_string(),
    ]);
    println!("{}", t1.render());

    // ---- Table 2 ----
    let model = ResourceModel::paper_build();
    let dev = FpgaDevice::virtex2_8000();
    let mut t2 = Table::new(
        "Table 2 — FPGA resource usage (256 routers, Virtex-II 8000)",
        &[
            "Block",
            "CLB (model)",
            "CLB (paper)",
            "RAM (model)",
            "RAM (paper)",
        ],
    );
    for (m, p) in model.table2().iter().zip(ResourceModel::paper_table2()) {
        t2.row(&[
            m.block.to_string(),
            m.clb.to_string(),
            p.clb.to_string(),
            m.ram.to_string(),
            p.ram.to_string(),
        ]);
    }
    let (clb, ram) = model.totals();
    t2.row(&[
        "Total".into(),
        format!("{clb} ({:.0} %)", 100.0 * clb as f64 / dev.slices as f64),
        "7053 (15 %)".into(),
        format!("{ram} ({:.0} %)", 100.0 * ram as f64 / dev.brams as f64),
        "139 (82 %)".into(),
    ]);
    println!("{}", t2.render());
    println!(
        "limiting factor: BlockRAM ({:.0} % used vs {:.0} % CLB) — the paper's central observation",
        100.0 * ram as f64 / dev.brams as f64,
        100.0 * clb as f64 / dev.slices as f64
    );
    println!();

    // ---- §4: direct instantiation vs the sequential method ----
    let mut t3 = Table::new(
        "Direct instantiation vs sequential simulation (Virtex-II 8000)",
        &["Approach", "max routers", "paper"],
    );
    t3.row(&[
        "direct, 6-bit datapath".into(),
        model.max_direct_routers(&dev, 6).to_string(),
        "~24".into(),
    ]);
    t3.row(&[
        "direct, 16-bit datapath".into(),
        model.max_direct_routers(&dev, 16).to_string(),
        "-".into(),
    ]);
    t3.row(&[
        "sequential simulator".into(),
        model.max_sequential_routers(&dev).to_string(),
        "256".into(),
    ]);
    println!("{}", t3.render());

    // ---- §6: smaller FPGAs ----
    let mut t4 = Table::new(
        "Sequential-simulator capacity on smaller devices (§6)",
        &["Device", "slices", "BRAM", "max routers"],
    );
    for (name, slices, brams) in [
        ("Virtex-II 8000", 46_592usize, 168usize),
        ("Virtex-II 4000", 23_040, 120),
        ("Virtex-II 2000", 10_752, 56),
        ("Virtex-II 1000", 5_120, 40),
    ] {
        let dev = FpgaDevice {
            name: "d",
            slices,
            brams,
        };
        t4.row(&[
            name.into(),
            slices.to_string(),
            brams.to_string(),
            model.max_sequential_routers(&dev).to_string(),
        ]);
    }
    println!("{}", t4.render());
}
