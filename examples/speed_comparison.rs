//! **Table 3 reproduction** — "Simulated clock cycles per second" for a
//! 6×6 NoC across the four simulation methods.
//!
//! The three software engines (VHDL-like event-driven netlist,
//! SystemC-like cycle kernel, native) are *measured* on this machine; the
//! FPGA rows come from the platform model (delta-cycle counts from the
//! sequential engine × the paper's published clock rates and the
//! five-phase loop model). The paper's own 2004-era numbers are printed
//! alongside: absolute values differ (Pentium 4 vs today's CPU), the
//! *ordering* and the FPGA speed-up structure is the reproduced result.
//!
//! ```text
//! cargo run --release --example speed_comparison [--quick]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]
use cyclesim::CycleNoc;
use noc::{run_fig1_point, NativeNoc, NocEngine, RunConfig, SeqNoc};
use noc_types::NetworkConfig;
use platform::{FpgaTimingModel, PhaseParams};
use rtl_kernel::RtlNoc;
use stats::table::fmt_hz;
use stats::Table;
use vc_router::IfaceConfig;

/// Returns (engine-only cycles/s, whole-loop cycles/s, delta stats).
fn measure(engine: &mut dyn NocEngine, cycles: u64) -> (f64, f64, Option<f64>) {
    let rc = RunConfig {
        warmup: 0,
        measure: cycles,
        drain: 0,
        period: 256,
        backlog_limit: 1 << 20,
        obs: None,
        check: false,
        ..RunConfig::default()
    };
    let r = run_fig1_point(engine, 0.10, 7, &rc).expect("run failed");
    let deltas = r.delta.as_ref().map(|d| d.avg_deltas_per_cycle());
    let sim_secs = r
        .profile
        .iter()
        .find(|p| p.0 == "simulate")
        .map(|p| p.1.as_secs_f64())
        .unwrap_or(0.0);
    (r.cycles as f64 / sim_secs.max(1e-12), r.cps(), deltas)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = NetworkConfig::fig1();
    let icfg = IfaceConfig::default();
    let scale = if quick { 1 } else { 4 };

    eprintln!("measuring rtl (VHDL-like) ...");
    let (rtl_cps, rtl_loop, _) = measure(&mut RtlNoc::new(cfg, icfg), 300 * scale);
    eprintln!("measuring systemc-like ...");
    let (sc_cps, sc_loop, _) = measure(&mut CycleNoc::new(cfg, icfg), 2_000 * scale);
    eprintln!("measuring sequential (software) + delta counts ...");
    let (seq_cps, _, deltas) = measure(&mut SeqNoc::new(cfg, icfg), 2_000 * scale);
    eprintln!("measuring native ...");
    let (native_cps, native_loop, _) = measure(&mut NativeNoc::new(cfg, icfg), 10_000 * scale);

    // FPGA rows: the measured delta-cycle count drives the timing model.
    let timing = FpgaTimingModel::default();
    let params = PhaseParams::default();
    let deltas_per_cycle = deltas.expect("seq engine reports delta stats");
    let fpga_max = timing.max_sim_freq_hz(deltas_per_cycle);
    let fpga_avg = params.table3_fpga_average(&timing);
    let fpga_fast = params.table3_fpga_fastest(&timing);

    let mut t = Table::new(
        "Table 3 — simulated clock cycles per second (6x6 NoC)",
        &["Block", "engine only", "whole loop", "paper (2004 HW)"],
    );
    t.row(&[
        "VHDL (event-driven netlist)".into(),
        fmt_hz(rtl_cps),
        fmt_hz(rtl_loop),
        "10-17 Hz".into(),
    ]);
    t.row(&[
        "SystemC (cycle kernel)".into(),
        fmt_hz(sc_cps),
        fmt_hz(sc_loop),
        "215 Hz".into(),
    ]);
    t.row(&[
        "sequential method, software".into(),
        fmt_hz(seq_cps),
        "-".into(),
        "-".into(),
    ]);
    t.row(&[
        "native cycle sim".into(),
        fmt_hz(native_cps),
        fmt_hz(native_loop),
        "-".into(),
    ]);
    t.row(&[
        "FPGA at measured deltas/cycle".into(),
        fmt_hz(fpga_max),
        "-".into(),
        "91.6 kHz (min deltas)".into(),
    ]);
    t.row(&[
        "FPGA average (modelled)".into(),
        "-".into(),
        fmt_hz(fpga_avg),
        "22 kHz".into(),
    ]);
    t.row(&[
        "FPGA fastest (modelled)".into(),
        "-".into(),
        fmt_hz(fpga_fast),
        "61.6 kHz".into(),
    ]);
    println!("{}", t.render());

    println!("ordering check (must match the paper):");
    println!(
        "  rtl ({}) < systemc ({}) : {}",
        fmt_hz(rtl_cps),
        fmt_hz(sc_cps),
        rtl_cps < sc_cps
    );
    println!(
        "  measured delta cycles per system cycle: {:.1} (minimum 36)",
        deltas_per_cycle
    );
    println!();
    println!("speed-up factors:");
    println!(
        "  paper: FPGA avg/fastest over its SystemC = {:.0}x / {:.0}x (the \"80-300\" claim)",
        22_000.0 / 215.0,
        61_600.0 / 215.0
    );
    println!("  this repo, same structure: modelled FPGA avg/fastest over measured-cps-scaled",);
    println!(
        "  SystemC-equivalent = {:.0}x / {:.0}x (scaled: our kernel on 2026 hardware)",
        fpga_avg / 215.0,
        fpga_fast / 215.0
    );
    println!(
        "  measured here (engine only): systemc/rtl = {:.1}x, native/systemc = {:.1}x",
        sc_cps / rtl_cps,
        native_cps / sc_cps
    );
}
