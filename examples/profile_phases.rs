//! **Table 4 reproduction** — "Profile information": the share of time
//! spent in each of the five simulation phases.
//!
//! Two views are printed:
//!
//! 1. the *platform model* (ARM9 at 86 MHz + memory interface + FPGA),
//!    which reproduces the paper's ranges — generation dominates because
//!    the 2004 ARM is slow relative to the FPGA simulator;
//! 2. the *measured host profile* of this repository's software runner,
//!    where the simulate phase dominates instead (a 2026 CPU generates
//!    stimuli far faster than it can cycle-accurately simulate) — the
//!    same loop, opposite bottleneck, which is exactly the contrast the
//!    paper's FPGA created.
//!
//! ```text
//! cargo run --release --example profile_phases
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]
use noc::{run_fig1_point, NativeNoc, RunConfig};
use noc_types::NetworkConfig;
use platform::{FpgaTimingModel, PhaseParams, Scenario};
use stats::table::fmt_pct;
use stats::Table;
use vc_router::IfaceConfig;

fn main() {
    let params = PhaseParams::default();
    let timing = FpgaTimingModel::default();
    let scenarios = [
        ("light load, light analysis", Scenario::grid6x6(0.05, false)),
        ("mid load, light analysis", Scenario::grid6x6(0.10, false)),
        ("mid load, heavy analysis", Scenario::grid6x6(0.10, true)),
        ("high load, heavy analysis", Scenario::grid6x6(0.14, true)),
    ];

    let mut lo = [f64::MAX; 5];
    let mut hi = [f64::MIN; 5];
    let mut t = Table::new(
        "Table 4 (model) — time share per phase, ARM9 + Virtex-II platform",
        &[
            "Scenario", "generate", "load", "simulate", "retrieve", "analyse", "cps",
        ],
    );
    for (name, sc) in &scenarios {
        let b = params.evaluate(&timing, sc);
        let s = b.shares();
        for i in 0..5 {
            lo[i] = lo[i].min(s[i]);
            hi[i] = hi[i].max(s[i]);
        }
        t.row(&[
            name.to_string(),
            fmt_pct(s[0]),
            fmt_pct(s[1]),
            fmt_pct(s[2]),
            fmt_pct(s[3]),
            fmt_pct(s[4]),
            format!("{:.1} kHz", b.cps() / 1e3),
        ]);
    }
    println!("{}", t.render());

    let mut ranges = Table::new(
        "Modelled ranges vs paper",
        &["Simulation step", "this model", "paper"],
    );
    let paper = ["45-65 %", "10-20 %", "0-2 %", "5-15 %", "5-40 %"];
    let names = [
        "Generate stimuli (ARM)",
        "Load stimuli (ARM / FPGA)",
        "Simulation (FPGA)",
        "Retrieve results (ARM / FPGA)",
        "Analyze results (ARM)",
    ];
    for i in 0..5 {
        ranges.row(&[
            names[i].into(),
            format!("{:.0}-{:.0} %", lo[i] * 100.0, hi[i] * 100.0),
            paper[i].into(),
        ]);
    }
    println!("{}", ranges.render());

    // Measured host-side profile of the software runner.
    let cfg = NetworkConfig::fig1();
    let mut engine = NativeNoc::new(cfg, IfaceConfig::default());
    let rc = RunConfig {
        warmup: 1_000,
        measure: 10_000,
        drain: 2_000,
        period: 512,
        backlog_limit: 16_384,
        obs: None,
        check: false,
        ..RunConfig::default()
    };
    let r = run_fig1_point(&mut engine, 0.10, 11, &rc).expect("run failed");
    let mut host = Table::new(
        "Measured host profile (this machine, native engine, 6x6 @ BE 0.10)",
        &["Phase", "share"],
    );
    for (name, _, share) in &r.profile {
        host.row(&[name.to_string(), fmt_pct(*share)]);
    }
    println!("{}", host.render());
    println!(
        "note: on 2026 hardware the simulate phase dominates ({}), while the",
        fmt_pct(
            r.profile
                .iter()
                .find(|p| p.0 == "simulate")
                .map(|p| p.2)
                .unwrap_or(0.0)
        )
    );
    println!("paper's ARM9 spent most time generating stimuli — the asymmetry the");
    println!("FPGA offload exploited in 2007 and a fast CPU removes today.");
}
