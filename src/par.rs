//! Minimal parallel map over independent work items.
//!
//! The figure-reproducing sweeps run one engine per sweep point; the
//! points are embarrassingly parallel. This is a dependency-free
//! `std::thread::scope` work-stealing map that bounds the worker count
//! by the available parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Apply `f` to every item, in parallel, preserving input order in the
/// result.
pub fn par_map<T: Send, U: Send>(items: Vec<T>, f: impl Fn(T) -> U + Sync) -> Vec<U> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map_or(1, |p| p.get())
        .min(n);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().unwrap();
                *out[i].lock().unwrap() = Some(f(item));
            });
        }
    });
    out.into_iter()
        .map(|m| m.into_inner().unwrap().unwrap())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let out = par_map((0..100).collect::<Vec<i32>>(), |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<i32>>());
    }

    #[test]
    fn empty_is_empty() {
        assert!(par_map(Vec::<u8>::new(), |x| x).is_empty());
    }
}
