//! Minimal parallel map over independent work items.
//!
//! The figure-reproducing sweeps run one engine per sweep point; the
//! points are embarrassingly parallel. This is a dependency-free
//! `std::thread::scope` map that bounds the worker count by the shared
//! knob ([`seqsim::pool::worker_count`]): the `SOC_SIM_THREADS`
//! environment variable when set, the available parallelism otherwise —
//! the same resolution the batched engine's lane groups use.
//!
//! Work is claimed in *chunks* through a single atomic index — the old
//! per-item `Mutex<Option<T>>` input and output slots (two lock round
//! trips per item) are gone. Each chunk pairs a batch of inputs with the
//! matching disjoint slice of output slots behind one `Mutex` that its
//! claiming worker locks exactly once. Panics inside `f` are caught per
//! item: every other item still completes (no lock is ever poisoned, no
//! chunk is stranded), and the first panic is re-raised on the caller's
//! thread with a payload naming the item index and the original message
//! (a bare re-raise of the original payload loses *which* sweep point
//! failed once the closure's context is gone).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Apply `f` to every item, in parallel, preserving input order in the
/// result. A panic in `f` propagates to the caller after all workers
/// have drained the remaining chunks; the re-raised payload is a
/// `String` of the form `par_map item <i> panicked: <message>`.
pub fn par_map<T: Send, U: Send>(items: Vec<T>, f: impl Fn(T) -> U + Sync) -> Vec<U> {
    let workers = seqsim::pool::worker_count(None);
    // ~4 claims per worker: coarse enough that claiming is a rare atomic
    // op, fine enough to balance uneven item costs.
    let chunk = items.len().div_ceil(workers * 4).max(1);
    par_map_chunked(items, chunk, f)
}

/// [`par_map`] with an explicit chunk size (pinned by tests that need a
/// deterministic item→chunk assignment).
pub(crate) fn par_map_chunked<T: Send, U: Send>(
    items: Vec<T>,
    chunk: usize,
    f: impl Fn(T) -> U + Sync,
) -> Vec<U> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    assert!(chunk > 0, "chunk size must be positive");

    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);

    // Pair each input batch with its disjoint output slice up front.
    type Task<'a, T, U> = Mutex<(Vec<T>, &'a mut [Option<U>])>;
    let tasks: Vec<Task<'_, T, U>> = {
        let mut it = items.into_iter();
        let mut batches = Vec::with_capacity(n.div_ceil(chunk));
        loop {
            let batch: Vec<T> = it.by_ref().take(chunk).collect();
            if batch.is_empty() {
                break;
            }
            batches.push(batch);
        }
        batches
            .into_iter()
            .zip(out.chunks_mut(chunk))
            .map(Mutex::new)
            .collect()
    };

    let workers = seqsim::pool::worker_count(None).min(tasks.len());
    let next = AtomicUsize::new(0);
    // First panic from `f` as (item index, message); caught per item so
    // the claiming loop keeps draining — one bad item never strands the
    // rest of the sweep.
    let first_panic: Mutex<Option<(usize, String)>> = Mutex::new(None);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= tasks.len() {
                        break;
                    }
                    // Uncontended by construction: the atomic index hands
                    // each chunk to exactly one worker.
                    let mut guard = tasks[k]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    let (batch, slots) = &mut *guard;
                    for (off, (slot, item)) in
                        slots.iter_mut().zip(std::mem::take(batch)).enumerate()
                    {
                        match catch_unwind(AssertUnwindSafe(|| f(item))) {
                            Ok(v) => *slot = Some(v),
                            Err(p) => {
                                // `p.as_ref()`, not `&p`: a `&Box<dyn Any>`
                                // coerces to `&dyn Any` *about the Box*,
                                // and every downcast of that misses.
                                first_panic
                                    .lock()
                                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                                    .get_or_insert((k * chunk + off, payload_message(p.as_ref())));
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join()
                .unwrap_or_else(|_| unreachable!("worker threads catch item panics"));
        }
    });
    drop(tasks);
    if let Some((index, msg)) = first_panic
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
    {
        resume_unwind(Box::new(format!("par_map item {index} panicked: {msg}")));
    }
    out.into_iter()
        .map(|slot| slot.unwrap_or_else(|| unreachable!("every chunk was processed")))
        .collect()
}

/// Extract the human-readable message from a caught panic payload
/// (`panic!("...")` yields `&str`, `panic!("{x}")` yields `String`;
/// anything else is opaque).
fn payload_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn maps_in_order() {
        let out = par_map((0..100).collect::<Vec<i32>>(), |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<i32>>());
    }

    #[test]
    fn empty_is_empty() {
        assert!(par_map(Vec::<u8>::new(), |x| x).is_empty());
    }

    #[test]
    fn odd_chunk_sizes_cover_all_items() {
        for chunk in [1, 3, 7, 64, 1000] {
            let out = par_map_chunked((0..50).collect::<Vec<i32>>(), chunk, |x| x + 1);
            assert_eq!(out, (1..51).collect::<Vec<i32>>(), "chunk {chunk}");
        }
    }

    #[test]
    fn panicking_item_propagates_without_poisoning_other_chunks() {
        let done = AtomicUsize::new(0);
        // Chunk size 1: the panicking item is alone in its chunk, so every
        // other item lives in an unrelated chunk and must still complete —
        // regardless of how many workers the host grants.
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map_chunked((0..64).collect::<Vec<i32>>(), 1, |x| {
                if x == 13 {
                    panic!("boom at {x}");
                }
                done.fetch_add(1, Ordering::Relaxed);
                x
            })
        }));
        let payload = result.expect_err("the item panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .expect("composed String payload");
        assert_eq!(msg, "par_map item 13 panicked: boom at 13");
        // All 63 non-panicking items ran to completion.
        assert_eq!(done.load(Ordering::Relaxed), 63);
    }

    #[test]
    fn panic_message_names_the_item_even_for_str_payloads() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map_chunked((0..8).collect::<Vec<i32>>(), 3, |x| {
                if x == 5 {
                    panic!("static payload");
                }
                x
            })
        }));
        let payload = result.expect_err("must propagate");
        let msg = payload.downcast_ref::<String>().unwrap();
        assert_eq!(msg, "par_map item 5 panicked: static payload");
    }
}
