//! `simprof` — summarize, diff and gate kernel profiles.
//!
//! ```text
//! simprof summary PROFILE.json [--top N]
//! simprof diff OLD.json NEW.json [--top N]
//! simprof flame PROFILE.json [--out FILE]
//! simprof bench-check BASELINE.json CURRENT.json [--max-drop PCT]
//! ```
//!
//! * `summary` prints a profile's ranked hotspots and per-SCC
//!   convergence accounting (bound vs. worst observed consumption).
//! * `diff` joins two profiles by block name and prints the top-N
//!   self-time regressions (`simprof diff old.json new.json`).
//! * `flame` emits the collapsed-stack flamegraph text (feed it to
//!   `flamegraph.pl`, `inferno-flamegraph` or speedscope).
//! * `bench-check` compares two `bench_kernel` outputs row by row and
//!   exits non-zero when any row's `cycles_per_sec` dropped more than
//!   `--max-drop` percent (default 25) — the CI regression gate behind
//!   `scripts/bench.sh`. Rows absent from the baseline are recorded in a
//!   `BASELINE.seen.json` sidecar; once such a row shows up in two
//!   consecutive runs it gates against the previous run's rate instead
//!   of staying ungated until the baseline is re-recorded.

#![allow(clippy::unwrap_used, clippy::expect_used)]
use simtrace::json::JsonValue;
use simtrace::ProfileReport;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: simprof summary PROFILE.json [--top N]\n       \
         simprof diff OLD.json NEW.json [--top N]\n       \
         simprof flame PROFILE.json [--out FILE]\n       \
         simprof bench-check BASELINE.json CURRENT.json [--max-drop PCT]"
    );
    ExitCode::from(2)
}

/// Value of `--flag V`, if present.
fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn load_profile(path: &str) -> Result<ProfileReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    ProfileReport::from_json(&text).map_err(|e| format!("parsing {path}: {e}"))
}

/// Nanoseconds as a human-readable column.
fn ns(v: u64) -> String {
    if v >= 1_000_000_000 {
        format!("{:.2}s", v as f64 / 1e9)
    } else if v >= 1_000_000 {
        format!("{:.2}ms", v as f64 / 1e6)
    } else if v >= 1_000 {
        format!("{:.1}us", v as f64 / 1e3)
    } else {
        format!("{v}ns")
    }
}

fn ns_signed(v: i64) -> String {
    if v < 0 {
        format!("-{}", ns(v.unsigned_abs()))
    } else {
        format!("+{}", ns(v as u64))
    }
}

fn summary(report: &ProfileReport, top: usize) {
    let total = report.self_ns_total();
    println!(
        "profile: engine={} cycles={} wall={:.3}s self-time={} ({} blocks, {} evals)",
        report.engine,
        report.cycles,
        report.wall_s,
        ns(total),
        report.entries.len(),
        report.evals_total()
    );
    if report.wall_s > 0.0 {
        println!(
            "coverage: self-time / wall = {:.1} %",
            100.0 * total as f64 / (report.wall_s * 1e9)
        );
    }
    println!("\ntop {top} blocks by self time:");
    println!(
        "{:>5} {:>6} {:<24} {:>10} {:>12} {:>10} {:>6}",
        "rank", "scc", "block", "self", "evals", "retries", "share"
    );
    for (rank, e) in report.hotspots(top).iter().enumerate() {
        let share = if total > 0 {
            100.0 * e.self_ns as f64 / total as f64
        } else {
            0.0
        };
        println!(
            "{:>5} {:>5}{} {:<24} {:>10} {:>12} {:>10} {share:>5.1}%",
            rank + 1,
            e.scc,
            if e.fixed_point { "*" } else { " " },
            e.name,
            ns(e.self_ns),
            e.evals,
            e.hbr_retries,
        );
    }
    if report.sccs.is_empty() {
        // Compiled-kernel reports (and acyclic specs on the worklist
        // engine) legitimately have no fixed-point SCC rows: the comb
        // opcode time is already rolled up into each block's self time
        // via the opcode→block back-pointers.
        if report.engine.contains("compiled") {
            println!(
                "\nstraight-line compiled program: no fixed-point SCCs, HBR checks \
                 elided; opcode self time is attributed per block above"
            );
        }
    } else {
        println!("\nmulti-block SCCs (fixed-point convergence):");
        println!(
            "{:>5} {:>7} {:>7} {:>9} {:>10}",
            "scc", "blocks", "bound", "consumed", "retries"
        );
        for s in &report.sccs {
            println!(
                "{:>5} {:>7} {:>7} {:>9} {:>10}",
                s.scc, s.blocks, s.bound, s.consumed_max, s.hbr_retries
            );
        }
        println!("(* = block inside a fixed-point SCC)");
    }
}

fn diff(old: &ProfileReport, new: &ProfileReport, top: usize) {
    println!(
        "diff: {} ({} cycles) -> {} ({} cycles), top {top} regressions by self-time delta",
        old.engine, old.cycles, new.engine, new.cycles
    );
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>8} {:>12} {:>12}",
        "block", "old", "new", "delta", "ratio", "old evals", "new evals"
    );
    for row in old.diff(new).into_iter().take(top) {
        println!(
            "{:<24} {:>10} {:>10} {:>10} {:>7.2}x {:>12} {:>12}",
            row.name,
            ns(row.old_self_ns),
            ns(row.new_self_ns),
            ns_signed(row.delta_ns()),
            row.ratio(),
            row.old_evals,
            row.new_evals
        );
    }
    let (t_old, t_new) = (old.self_ns_total() as i64, new.self_ns_total() as i64);
    println!(
        "total self-time: {} -> {} ({})",
        ns(t_old as u64),
        ns(t_new as u64),
        ns_signed(t_new - t_old)
    );
}

/// One `bench_kernel` row relevant to the gate.
struct BenchRow {
    id: String,
    cycles_per_sec: f64,
}

/// A parsed `bench_kernel` output: its rows plus the run-configuration
/// flag the gate must not silently compare across.
struct BenchFile {
    /// `"quick": true/false` from the header (`None` on pre-v3 files
    /// that never recorded it).
    quick: Option<bool>,
    rows: Vec<BenchRow>,
}

fn load_bench(path: &str) -> Result<BenchFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = simtrace::json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    let rows = doc
        .get("rows")
        .and_then(JsonValue::items)
        .ok_or_else(|| format!("{path}: no \"rows\" array — not a bench_kernel output?"))?;
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        out.push(BenchRow {
            id: r
                .get("id")
                .and_then(JsonValue::str)
                .ok_or_else(|| format!("{path}: bench row missing id"))?
                .to_string(),
            cycles_per_sec: r
                .get("cycles_per_sec")
                .and_then(JsonValue::num)
                .ok_or_else(|| format!("{path}: bench row missing cycles_per_sec"))?,
        });
    }
    Ok(BenchFile {
        quick: doc.get("quick").and_then(JsonValue::bool),
        rows: out,
    })
}

fn quick_label(q: Option<bool>) -> &'static str {
    match q {
        Some(true) => "quick",
        Some(false) => "full",
        None => "unknown",
    }
}

/// Sidecar next to `baseline` recording the rows the previous
/// bench-check run saw that the baseline lacks. Same shape as a
/// `bench_kernel` output, so [`load_bench`] reads it back.
fn seen_path(baseline: &str) -> String {
    format!("{baseline}.seen.json")
}

fn write_seen(path: &str, quick: Option<bool>, rows: &[&BenchRow]) -> std::io::Result<()> {
    let mut s = String::from("{\n");
    if let Some(q) = quick {
        s.push_str(&format!("  \"quick\": {q},\n"));
    }
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"id\": \"{}\", \"cycles_per_sec\": {:.1}}}{}\n",
            r.id,
            r.cycles_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

/// The percentage change from `base` to `cur` (0 when `base` is 0).
fn pct_change(base: f64, cur: f64) -> f64 {
    if base > 0.0 {
        100.0 * (cur - base) / base
    } else {
        0.0
    }
}

/// Compare bench rows by id; any drop beyond `max_drop_pct` fails.
fn bench_check(baseline: &str, current: &str, max_drop_pct: f64) -> Result<bool, String> {
    let base_file = load_bench(baseline)?;
    let cur_file = load_bench(current)?;
    let (base, cur) = (&base_file.rows, &cur_file.rows);
    let mut ok = true;
    let mut compared = 0usize;
    println!(
        "bench-check: {} vs {} (fail on >{max_drop_pct:.0}% throughput drop)",
        baseline, current
    );
    // Cycle budgets (and therefore measured rates) differ between quick
    // and full runs: a cross-mode comparison is apples to oranges, and a
    // quick-mode baseline makes the gate permanently lenient. Warn
    // loudly rather than silently passing.
    if base_file.quick != cur_file.quick || base_file.quick.is_none() {
        println!(
            "  WARNING comparing a {} baseline against a {} run — cycle \
             budgets differ, percentages are not meaningful; re-record the \
             baseline with a matching full bench run",
            quick_label(base_file.quick),
            quick_label(cur_file.quick)
        );
    } else if base_file.quick == Some(true) {
        println!(
            "  WARNING both files are --quick runs: short budgets are noisy; \
             the committed baseline should be a full run"
        );
    }
    // Rows the baseline lacks would otherwise stay ungated until someone
    // re-records it. Instead the sidecar remembers them run to run: the
    // first sighting just records, the second sighting onward gates the
    // row against its own previous rate.
    let seen = load_bench(&seen_path(baseline))
        .ok()
        .filter(|s| s.quick == cur_file.quick);
    let mut new_rows: Vec<&BenchRow> = Vec::new();
    for c in cur {
        if base.iter().any(|b| b.id == c.id) {
            continue;
        }
        new_rows.push(c);
        let prev = seen
            .as_ref()
            .and_then(|s| s.rows.iter().find(|p| p.id == c.id));
        match prev {
            Some(p) => {
                let change = pct_change(p.cycles_per_sec, c.cycles_per_sec);
                let failed = change < -max_drop_pct;
                if failed {
                    ok = false;
                }
                println!(
                    "  {} {:<40} {:>12.1} -> {:>12.1} cycles/s ({:+.1}%, vs previous run; \
                     row absent from baseline)",
                    if failed { "FAIL" } else { "  ok" },
                    c.id,
                    p.cycles_per_sec,
                    c.cycles_per_sec,
                    change
                );
            }
            None => println!(
                "  NEW     {:<40} (no baseline counterpart — gated from its next run)",
                c.id
            ),
        }
    }
    if let Err(e) = write_seen(&seen_path(baseline), cur_file.quick, &new_rows) {
        println!("  WARNING could not record the new-row sidecar: {e}");
    }
    // In a like-for-like comparison a vanished row is a lost benchmark
    // and fails the gate; across quick/full modes the smaller sweep
    // budgets legitimately emit fewer rows, so it only warns.
    let same_mode = base_file.quick.is_some() && base_file.quick == cur_file.quick;
    for b in base {
        let Some(c) = cur.iter().find(|c| c.id == b.id) else {
            println!(
                "  MISSING {:<40} (row absent from current run{})",
                b.id,
                if same_mode { "" } else { " — not gated" }
            );
            if same_mode {
                ok = false;
            }
            continue;
        };
        compared += 1;
        let change = pct_change(b.cycles_per_sec, c.cycles_per_sec);
        let failed = change < -max_drop_pct;
        if failed {
            ok = false;
        }
        if failed || change.abs() > max_drop_pct / 2.0 {
            println!(
                "  {} {:<40} {:>12.1} -> {:>12.1} cycles/s ({:+.1}%)",
                if failed { "FAIL" } else { "  ok" },
                b.id,
                b.cycles_per_sec,
                c.cycles_per_sec,
                change
            );
        }
    }
    println!(
        "bench-check: {compared} rows compared, verdict: {}",
        if ok { "PASS" } else { "FAIL" }
    );
    Ok(ok)
}

fn real_main() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let top: usize = flag(&args, "--top")
        .map(|v| v.parse().map_err(|_| "--top requires an integer"))
        .transpose()?
        .unwrap_or(10);
    match args.first().map(String::as_str) {
        Some("summary") => {
            let Some(path) = args.get(1) else {
                return Ok(usage());
            };
            summary(&load_profile(path)?, top);
            Ok(ExitCode::SUCCESS)
        }
        Some("diff") => {
            let (Some(old), Some(new)) = (args.get(1), args.get(2)) else {
                return Ok(usage());
            };
            diff(&load_profile(old)?, &load_profile(new)?, top);
            Ok(ExitCode::SUCCESS)
        }
        Some("flame") => {
            let Some(path) = args.get(1) else {
                return Ok(usage());
            };
            let folded = load_profile(path)?.collapsed();
            match flag(&args, "--out") {
                Some(out) => {
                    std::fs::write(out, &folded).map_err(|e| format!("writing {out}: {e}"))?;
                    eprintln!("wrote {out} ({} stacks)", folded.lines().count());
                }
                None => print!("{folded}"),
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("bench-check") => {
            let (Some(base), Some(cur)) = (args.get(1), args.get(2)) else {
                return Ok(usage());
            };
            let max_drop: f64 = flag(&args, "--max-drop")
                .map(|v| v.parse().map_err(|_| "--max-drop requires a number"))
                .transpose()?
                .unwrap_or(25.0);
            if bench_check(base, cur, max_drop)? {
                Ok(ExitCode::SUCCESS)
            } else {
                Ok(ExitCode::FAILURE)
            }
        }
        _ => Ok(usage()),
    }
}

fn main() -> ExitCode {
    match real_main() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("simprof: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_json(quick: bool, rows: &[(&str, f64)]) -> String {
        let body: Vec<String> = rows
            .iter()
            .map(|(id, cps)| format!("    {{\"id\": \"{id}\", \"cycles_per_sec\": {cps:.1}}}"))
            .collect();
        format!(
            "{{\n  \"quick\": {quick},\n  \"rows\": [\n{}\n  ]\n}}\n",
            body.join(",\n")
        )
    }

    #[test]
    fn new_rows_gate_on_their_second_consecutive_sighting() {
        let dir = std::env::temp_dir().join(format!("socsim-simprof-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let cur = dir.join("cur.json");
        let (base_s, cur_s) = (base.to_str().unwrap(), cur.to_str().unwrap());
        let _ = std::fs::remove_file(seen_path(base_s));
        std::fs::write(&base, bench_json(false, &[("old-row", 1000.0)])).unwrap();

        // First sighting of new-row: recorded, not gated.
        std::fs::write(
            &cur,
            bench_json(false, &[("old-row", 1000.0), ("new-row", 800.0)]),
        )
        .unwrap();
        assert!(bench_check(base_s, cur_s, 25.0).unwrap());
        // Second sighting with a >25% drop vs the previous run: gated.
        std::fs::write(
            &cur,
            bench_json(false, &[("old-row", 1000.0), ("new-row", 300.0)]),
        )
        .unwrap();
        assert!(!bench_check(base_s, cur_s, 25.0).unwrap());
        // A steady rate passes, and the sidecar tracks the newest value.
        std::fs::write(
            &cur,
            bench_json(false, &[("old-row", 1000.0), ("new-row", 310.0)]),
        )
        .unwrap();
        assert!(bench_check(base_s, cur_s, 25.0).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sidecar_from_a_different_mode_does_not_gate() {
        let dir = std::env::temp_dir().join(format!("socsim-simprof-mode-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let cur = dir.join("cur.json");
        let (base_s, cur_s) = (base.to_str().unwrap(), cur.to_str().unwrap());
        let _ = std::fs::remove_file(seen_path(base_s));
        std::fs::write(&base, bench_json(true, &[("old-row", 1000.0)])).unwrap();
        std::fs::write(
            &cur,
            bench_json(true, &[("old-row", 1000.0), ("new-row", 800.0)]),
        )
        .unwrap();
        assert!(bench_check(base_s, cur_s, 25.0).unwrap());
        // Same row collapses in a *full* run: the quick-mode sidecar
        // must not gate it (budgets differ), only re-record it.
        std::fs::write(
            &cur,
            bench_json(false, &[("old-row", 1000.0), ("new-row", 100.0)]),
        )
        .unwrap();
        assert!(bench_check(base_s, cur_s, 25.0).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
