//! Run every paper reproduction end to end and emit a Markdown summary —
//! the data source for EXPERIMENTS.md. Slower than the individual
//! examples (it runs real sweeps); use `--quick` for a fast pass.
//!
//! ```text
//! cargo run --release --bin experiments \
//!     [--quick] [--trace FILE] [--metrics FILE] [--check] [--faults SEED] \
//!     [--profile FILE] [--checkpoint-dir DIR] [--checkpoint-every N] [--resume]
//! ```
//!
//! `--trace FILE` writes a Chrome trace-event JSON of the sequential
//! (Table 3/§6) run — open it in Perfetto or `chrome://tracing`.
//! `--metrics FILE` writes that run's metrics snapshot as JSON.
//! `--check` runs the invariant checker on every run: structural bounds
//! every cycle, flit conservation every period; any violation aborts
//! with a typed error and a non-zero exit.
//! `--faults SEED` derives a deterministic fault plan from SEED and
//! proves all five engines stay bit-identical while replaying it.
//! `--profile FILE` runs a loaded 6x6 mesh on the sequential engine with
//! the graph-attributed kernel profiler on, writes the ranked-hotspot
//! JSON to FILE (plus FILE.folded flamegraph text, FILE.frames.jsonl
//! telemetry frames and FILE.prom Prometheus exposition) and prints the
//! hotspot table — then feed the outputs to `simprof`.
//! `--checkpoint-dir DIR` makes the Table 3/§6 sequential run cut a
//! durable checkpoint every `--checkpoint-every N` cycles (default 1024)
//! into DIR; with `--resume`, that run restarts from the newest valid
//! checkpoint there instead of cycle 0 — kill the process mid-run and
//! re-invoke with `--resume` to watch it pick up bit-identically.

#![allow(clippy::unwrap_used, clippy::expect_used)]
use noc::diff::{assert_traces_equal, collect_trace};
use noc::{fig1_guarantee, run_fig1_point, EngineKind, ObsConfig, RunConfig, SimBuilder, SimError};
use noc_types::NetworkConfig;
use platform::{FpgaDevice, FpgaTimingModel, PhaseParams, ResourceModel, Scenario};
use simtrace::{Registry, Tracer};
use soc_sim::par_map;
use std::path::PathBuf;
use std::sync::Arc;
use vc_router::{IfaceConfig, RegisterLayout};

/// Value of `--flag FILE` in the argument list, if present.
fn flag_path(args: &[String], flag: &str) -> Result<Option<PathBuf>, SimError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(PathBuf::from(v))),
            None => Err(SimError::Config(format!("{flag} requires a file argument"))),
        },
    }
}

/// Value of `--flag N` in the argument list, if present.
fn flag_u64(args: &[String], flag: &str) -> Result<Option<u64>, SimError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1).map(|v| v.parse::<u64>()) {
            Some(Ok(v)) => Ok(Some(v)),
            Some(Err(_)) | None => Err(SimError::Config(format!(
                "{flag} requires an integer argument"
            ))),
        },
    }
}

/// Profile the sequential engine on a loaded 6x6 mesh: graph-attributed
/// per-block/per-SCC self time, telemetry frames and the flamegraph
/// export — everything `simprof` consumes.
///
/// The invariant checker stays off here even under `--check`: its
/// per-cycle audits run inside the simulate phase but outside block
/// evaluation, so they dilute self-time coverage (measured: 89 % → 42 %)
/// without profiling anything — the checked sweeps above already cover
/// the invariants.
fn profile_hotspots(quick: bool, path: &PathBuf) -> Result<(), SimError> {
    use std::io::BufWriter;
    let scale = if quick { 1 } else { 3 };
    let cfg = NetworkConfig::new(6, 6, noc_types::Topology::Mesh, 2);
    let frames_path = path.with_extension("frames.jsonl");
    let prom_path = path.with_extension("prom");
    let frames_file = std::fs::File::create(&frames_path)
        .map_err(|e| SimError::Config(format!("creating {}: {e}", frames_path.display())))?;
    let obs = ObsConfig::with(Registry::new(), Tracer::disabled(), 64)
        .with_frames(512, simtrace::JsonlSink::new(BufWriter::new(frames_file)));
    obs.add_frame_sink(simtrace::PromSink::new(&prom_path));
    let rc = RunConfig {
        warmup: 300,
        measure: 2_000 * scale,
        drain: 0,
        period: 256,
        backlog_limit: 1 << 20,
        obs: Some(obs),
        check: false,
        ..RunConfig::default()
    };
    // sample_every = 1: time every system cycle, so self time is measured
    // rather than extrapolated and coverage vs. wall is tight.
    let mut e = SimBuilder::new(cfg)
        .engine(EngineKind::Seq)
        .profile(1)
        .try_build()?;
    let r = run_fig1_point(&mut *e, 0.10, 7, &rc)?;
    let sim_wall = r
        .profile
        .iter()
        .find(|p| p.0 == "simulate")
        .map(|p| p.1.as_secs_f64())
        .unwrap_or(0.0);
    let prof = e.take_profile(sim_wall).ok_or_else(|| {
        SimError::Config("sequential engine produced no kernel profile".to_string())
    })?;
    std::fs::write(path, prof.to_json())
        .map_err(|e| SimError::Config(format!("writing {}: {e}", path.display())))?;
    let folded_path = path.with_extension("folded");
    let folded = prof.collapsed();
    std::fs::write(&folded_path, &folded)
        .map_err(|e| SimError::Config(format!("writing {}: {e}", folded_path.display())))?;

    println!("## simprof — kernel hotspots (6x6 mesh, BE 0.10 + GT, profiler on)\n");
    let total = prof.self_ns_total();
    println!("| rank | scc | block | self | evals | hbr retries | share |");
    println!("|---|---|---|---|---|---|---|");
    for (rank, b) in prof.hotspots(10).iter().enumerate() {
        println!(
            "| {} | {}{} | {} | {:.2} ms | {} | {} | {:.1} % |",
            rank + 1,
            b.scc,
            if b.fixed_point { "*" } else { "" },
            b.name,
            b.self_ns as f64 / 1e6,
            b.evals,
            b.hbr_retries,
            if total > 0 {
                100.0 * b.self_ns as f64 / total as f64
            } else {
                0.0
            }
        );
    }
    for s in &prof.sccs {
        println!(
            "\nscc {}: {} blocks, convergence bound {}, worst consumption {}, {} hbr retries",
            s.scc, s.blocks, s.bound, s.consumed_max, s.hbr_retries
        );
    }
    let coverage = if sim_wall > 0.0 {
        total as f64 / (sim_wall * 1e9)
    } else {
        0.0
    };
    println!(
        "\nself-time coverage of the simulate phase: {:.1} % ({:.2} ms of {:.2} ms)",
        coverage * 100.0,
        total as f64 / 1e6,
        sim_wall * 1e3
    );
    assert!(
        (0.5..=1.1).contains(&coverage),
        "profiled self time ({:.1} %) should account for the simulate wall clock",
        coverage * 100.0
    );
    assert!(
        folded
            .lines()
            .all(|l| l.rsplit_once(' ').is_some_and(
                |(stack, v)| stack.split(';').count() == 3 && v.parse::<u64>().is_ok()
            )),
        "flamegraph text must be well-formed collapsed stacks"
    );
    eprintln!(
        "profile: {} | flame: {} ({} stacks) | frames: {} | prom: {}",
        path.display(),
        folded_path.display(),
        folded.lines().count(),
        frames_path.display(),
        prom_path.display()
    );
    println!();
    Ok(())
}

/// Replay one fault plan on all five engines and prove bit-identity.
fn fault_differential(seed: u64) -> Result<(), SimError> {
    let cfg = NetworkConfig::new(4, 4, noc_types::Topology::Torus, 4);
    let cycles = 800u64;
    let plan = Arc::new(noc::random_plan(&cfg, seed, cycles));
    println!("## Fault injection — five-engine differential (plan seed {seed})\n");
    println!("```\n{}```\n", plan.describe());
    let tcfg = traffic::TrafficConfig {
        net: cfg,
        be: traffic::BeConfig::fig1(0.10),
        gt_streams: Vec::new(),
        seed: 42,
    };
    let kinds = [
        EngineKind::Native,
        EngineKind::Seq,
        EngineKind::CycleSim,
        EngineKind::Rtl,
        EngineKind::Sharded { threads: 2 },
    ];
    let mut reference: Option<noc::diff::Trace> = None;
    println!("| engine | delivered flits | bit-identical |");
    println!("|---|---|---|");
    for kind in kinds {
        let mut e = soc_sim::sim(cfg)
            .engine(kind)
            .faults(plan.clone())
            .try_build()?;
        let t = collect_trace(e.as_mut(), &tcfg, cycles, 128);
        let delivered: usize = t.delivered.iter().map(Vec::len).sum();
        match reference.as_ref() {
            None => {
                println!("| {} | {delivered} | (reference) |", kind.id());
                reference = Some(t);
            }
            Some(r) => {
                if *r != t {
                    // assert_traces_equal pinpoints the first divergence.
                    assert_traces_equal("native", r, kind.id(), &t);
                }
                println!("| {} | {delivered} | yes |", kind.id());
            }
        }
    }
    println!("\nall five engines replayed the faulty run bit-identically\n");
    Ok(())
}

fn real_main() -> Result<(), SimError> {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let trace_path = flag_path(&args, "--trace")?;
    let metrics_path = flag_path(&args, "--metrics")?;
    let faults_seed = flag_u64(&args, "--faults")?;
    let profile_path = flag_path(&args, "--profile")?;
    let checkpoint_dir = flag_path(&args, "--checkpoint-dir")?;
    let checkpoint_every = flag_u64(&args, "--checkpoint-every")?.unwrap_or(1024);
    let resume = args.iter().any(|a| a == "--resume");
    if resume && checkpoint_dir.is_none() {
        return Err(SimError::Config(
            "--resume needs --checkpoint-dir DIR to resume from".to_string(),
        ));
    }
    let scale = if quick { 1 } else { 3 };
    let cfg = NetworkConfig::fig1();
    let icfg = IfaceConfig::default();
    println!("# Reproduction summary (auto-generated by `cargo run --bin experiments`)\n");

    // ---- Figure 1 ----
    let rc = RunConfig {
        warmup: 1_000 * scale,
        measure: 6_000 * scale,
        drain: 2_000 * scale,
        period: 512,
        backlog_limit: 16_384,
        obs: None,
        check,
        ..RunConfig::default()
    };
    let guarantee = fig1_guarantee(cfg);
    let loads = [0.0f64, 0.04, 0.08, 0.11, 0.14];
    let raw = par_map(loads.to_vec(), |l| {
        let mut e = match SimBuilder::new(cfg)
            .iface(icfg)
            .engine(EngineKind::Native)
            .try_build()
        {
            Ok(e) => e,
            Err(err) => return (l, Err(err)),
        };
        (l, run_fig1_point(&mut *e, l, 1337, &rc))
    });
    let mut points: Vec<(f64, noc::RunReport)> = Vec::with_capacity(raw.len());
    for (l, r) in raw {
        points.push((l, r?));
    }
    println!("## Figure 1 — GT/BE latency vs BE load (6x6 torus, depth 2)\n");
    println!("| BE load | guarantee | GT mean | GT max | BE mean |");
    println!("|---|---|---|---|---|");
    let mut gt_max_ok = true;
    for (l, r) in &points {
        gt_max_ok &= r.gt.max <= guarantee;
        println!(
            "| {l:.2} | {guarantee} | {:.1} | {} | {:.1} |",
            r.gt.mean, r.gt.max, r.be.mean
        );
    }
    println!("\nGT max <= guarantee at every point: **{gt_max_ok}**\n");
    assert!(gt_max_ok);
    if check {
        let audits: u64 = points.iter().map(|(_, r)| r.invariant_checks).sum();
        println!("invariant checker: {audits} audits across the sweep, zero violations\n");
    }

    // ---- Table 1 ----
    let l4 = RegisterLayout::new(4);
    println!("## Table 1 — registers per router (depth 4)\n");
    println!("| group | this repo | paper |");
    println!("|---|---|---|");
    for (g, p) in l4.groups().iter().zip(RegisterLayout::paper_groups()) {
        println!("| {} | {} | {} |", g.name, g.bits, p.bits);
    }
    println!("| total | {} | 2112 |\n", l4.total_bits());

    // ---- Table 2 ----
    let model = ResourceModel::paper_build();
    let dev = FpgaDevice::virtex2_8000();
    let (clb, ram) = model.totals();
    println!("## Table 2 — FPGA resources (256 routers)\n");
    println!(
        "model: {clb} CLB ({:.0} %), {ram} BRAM ({:.0} %) — paper: 7053 (15 %), 139 (82 %)",
        100.0 * clb as f64 / dev.slices as f64,
        100.0 * ram as f64 / dev.brams as f64
    );
    println!(
        "direct instantiation max: {} routers at 6-bit datapath (paper ~24); sequential: {}\n",
        model.max_direct_routers(&dev, 6),
        model.max_sequential_routers(&dev)
    );

    // ---- Table 3 + §6 ----
    let timing = FpgaTimingModel::default();
    let params = PhaseParams::default();
    // Observe the sequential run when either output was requested.
    let obs_cfg = (trace_path.is_some() || metrics_path.is_some())
        .then(|| ObsConfig::with(Registry::new(), Tracer::new(), 64));
    let mut rc_seq = RunConfig::new()
        .warmup(300)
        .measure(1_500 * scale)
        .drain(0)
        .period(256)
        .backlog_limit(1 << 20)
        .check(check);
    if let Some(obs) = obs_cfg.clone() {
        rc_seq = rc_seq.obs(obs);
    }
    if let Some(dir) = checkpoint_dir.as_ref() {
        rc_seq = rc_seq
            .with_checkpoint(noc::CheckpointConfig::new(checkpoint_every, dir.clone()))
            .resume(resume);
    }
    let mut seq = SimBuilder::new(cfg)
        .iface(icfg)
        .engine(EngineKind::Seq)
        .run_config(rc_seq)
        .session()?;
    let r = {
        let mut alloc = traffic::GtAllocator::new(cfg);
        let gt_streams = alloc.auto_streams((2, 1), 2048, 128);
        let tcfg = traffic::TrafficConfig {
            net: cfg,
            be: traffic::BeConfig::fig1(0.10),
            gt_streams,
            seed: 7,
        };
        let mut gen = traffic::StimuliGenerator::new(tcfg);
        seq.run(&mut gen)?.clone()
    };
    if let Some(dir) = checkpoint_dir.as_ref() {
        match r.resumed_at {
            Some(cycle) => eprintln!(
                "checkpoints: resumed from cycle {cycle}, wrote {} more into {}",
                r.checkpoints_written,
                dir.display()
            ),
            None => eprintln!(
                "checkpoints: wrote {} into {}",
                r.checkpoints_written,
                dir.display()
            ),
        }
    }
    if let (Some(p), Some(obs)) = (trace_path.as_ref(), obs_cfg.as_ref()) {
        obs.tracer
            .write_chrome(p)
            .map_err(|e| SimError::Config(format!("writing trace {}: {e}", p.display())))?;
        eprintln!("trace: {} events -> {}", obs.tracer.len(), p.display());
    }
    if let (Some(p), Some(obs)) = (metrics_path.as_ref(), obs_cfg.as_ref()) {
        obs.registry
            .write_snapshot(p)
            .map_err(|e| SimError::Config(format!("writing metrics {}: {e}", p.display())))?;
        eprintln!("metrics: {} series -> {}", obs.registry.len(), p.display());
    }
    let Some(d) = r.delta.clone() else {
        return Err(SimError::Config(
            "sequential engine reported no delta-cycle statistics".to_string(),
        ));
    };
    println!("## Table 3 — simulated cycles per second (modelled FPGA rows)\n");
    println!(
        "| FPGA avg | FPGA fastest | theoretical max | paper |\n|---|---|---|---|\n| {:.1} kHz | {:.1} kHz | {:.1} kHz | 22 / 61.6 / 91.6 kHz |",
        params.table3_fpga_average(&timing) / 1e3,
        params.table3_fpga_fastest(&timing) / 1e3,
        timing.max_sim_freq_hz(36.0) / 1e3
    );
    println!(
        "\nspeed-up vs the paper's SystemC (215 Hz): {:.0}x average, {:.0}x fastest (paper claims 80-300x)\n",
        params.table3_fpga_average(&timing) / 215.0,
        params.table3_fpga_fastest(&timing) / 215.0
    );
    println!("## §6 — delta-cycle overhead\n");
    println!(
        "measured at BE 0.10 + GT: {:.1} deltas/cycle (min 36), extra = {:.1} % = {:.2}x the offered load ({:.3})\n",
        d.avg_deltas_per_cycle(),
        d.extra_fraction(36) * 100.0,
        d.extra_fraction(36) / r.throughput.offered_load(),
        r.throughput.offered_load()
    );

    // ---- Table 4 ----
    println!("## Table 4 — phase shares (model)\n");
    println!("| scenario | generate | load | simulate | retrieve | analyse |");
    println!("|---|---|---|---|---|---|");
    for (name, sc) in [
        ("light", Scenario::grid6x6(0.05, false)),
        ("heavy", Scenario::grid6x6(0.14, true)),
    ] {
        let s = params.evaluate(&timing, &sc).shares();
        println!(
            "| {name} | {:.0} % | {:.0} % | {:.0} % | {:.0} % | {:.0} % |",
            s[0] * 100.0,
            s[1] * 100.0,
            s[2] * 100.0,
            s[3] * 100.0,
            s[4] * 100.0
        );
    }
    println!("\npaper ranges: 45-65 / 10-20 / 0-2 / 5-15 / 5-40 %\n");

    // ---- §8 RNG ablation ----
    let hw = Scenario::grid6x6(0.10, false);
    let sw = Scenario {
        soft_rng: true,
        ..hw
    };
    println!("## §8 — RNG offload\n");
    println!(
        "modelled speed-up from the FPGA RNG: {:.0} % (paper: ~50 %)\n",
        (params.evaluate(&timing, &hw).cps() / params.evaluate(&timing, &sw).cps() - 1.0) * 100.0
    );

    // ---- Fault-injection differential (opt-in) ----
    if let Some(seed) = faults_seed {
        fault_differential(seed)?;
    }

    // ---- Kernel profile (opt-in) ----
    if let Some(path) = profile_path.as_ref() {
        profile_hotspots(quick, path)?;
    }

    println!("done — all headline claims verified in this run.");
    Ok(())
}

fn main() {
    if let Err(e) = real_main() {
        eprintln!("experiments failed: {e}");
        std::process::exit(1);
    }
}
