//! Lint every built-in topology with the `speccheck` static analyzer
//! and report the derived scheduling classification.
//!
//! ```text
//! cargo run --release --bin speclint -- \
//!     [--all-topologies] [--format text|json] [--out FILE] \
//!     [--emit-program FILE] [--emit-bitflow FILE]
//! ```
//!
//! `--emit-program FILE` additionally lowers the bench network (the
//! paper's 6x6 torus) through the schedule compiler and writes the
//! bytecode program's disassembly to `FILE` — a reviewable CI artifact
//! that also re-parses via `seqsim::CompiledProgram::parse`.
//!
//! `--emit-bitflow FILE` writes the per-target bit-level dataflow
//! summaries (constant/dead bit counts, narrowable links, the slice
//! plan) as a JSON array — the artifact CI uploads so bitflow
//! regressions show up in review, not in production campaigns.
//!
//! Each target is analyzed before any cycle is simulated: the block/link
//! graph is extracted, SCC-condensed, and linted (multiple writers, dead
//! links, width overflow, combinational loops, shard cuts, convergence
//! budget). The exit status is non-zero iff any target produces an
//! error-severity diagnostic — CI runs this as a hard gate.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use noc::{EngineKind, SimBuilder, SimError};
use noc_types::{NetworkConfig, Topology};
use rtl_kernel::RtlNoc;
use seqsim::demo::{comb_demo, registered_demo};
use seqsim::systolic::SystolicArray;
use speccheck::{analyze_graph, analyze_spec, Analysis, AnalyzeOptions, Severity};
use std::io::Write as _;
use std::path::PathBuf;
use vc_router::IfaceConfig;

/// One analyzed target: a built-in topology plus its analysis report.
struct Row {
    name: String,
    analysis: Analysis,
}

/// Value of `--flag FILE` in the argument list, if present.
fn flag_path(args: &[String], flag: &str) -> Result<Option<PathBuf>, SimError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(PathBuf::from(v))),
            None => Err(SimError::Config(format!("{flag} requires a file argument"))),
        },
    }
}

/// Value of `--flag WORD` in the argument list, if present.
fn flag_word(args: &[String], flag: &str) -> Result<Option<String>, SimError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(v.clone())),
            None => Err(SimError::Config(format!("{flag} requires an argument"))),
        },
    }
}

/// Lint the built-in target set.
fn all_targets() -> Vec<Row> {
    let mut rows = Vec::new();
    // NoC networks on the sequential engine, both topologies, several
    // sizes; the 4x4 sharded variant additionally audits the partition
    // cuts for combinational crossings.
    for (w, h) in [(3u8, 3u8), (4, 4), (6, 6)] {
        for topo in [Topology::Torus, Topology::Mesh] {
            let cfg = NetworkConfig::new(w, h, topo, 4);
            let name = format!("{}-{w}x{h}", topo_id(topo));
            let analysis = SimBuilder::new(cfg).lint();
            rows.push(Row { name, analysis });
        }
    }
    let cfg = NetworkConfig::new(4, 4, Topology::Torus, 4);
    rows.push(Row {
        name: "torus-4x4-sharded4".into(),
        analysis: SimBuilder::new(cfg)
            .engine(EngineKind::Sharded { threads: 4 })
            .lint(),
    });
    // The packed-control overlay: credit links routed through
    // CreditStage blocks. This is the one built-in target where the
    // bitflow pass proves nontrivial slices, so the emitted artifact
    // shows the analysis actually firing.
    let cfg = NetworkConfig::new(3, 3, Topology::Torus, 4);
    let b = noc::BatchedNoc::with_packed_control(cfg, IfaceConfig::default(), vec![None], 1)
        .expect("packed-control overlay builds");
    rows.push(Row {
        name: "torus-3x3-packed".into(),
        analysis: analyze_spec(b.engine().spec(0)),
    });
    // The kernel-level demo systems (§4.1 / §4.2 regimes).
    let (spec, _) = comb_demo();
    rows.push(Row {
        name: "comb-demo".into(),
        analysis: analyze_spec(&spec),
    });
    let (spec, _) = registered_demo([1, 2, 3]);
    rows.push(Row {
        name: "registered-demo".into(),
        analysis: analyze_spec(&spec),
    });
    // The output-stationary systolic multiplier on the static engine.
    let array = SystolicArray::new(4);
    rows.push(Row {
        name: "systolic-4x4".into(),
        analysis: analyze_spec(array.spec()),
    });
    // The event-driven netlist backend: same analyzer, different front
    // end (signals are links, processes are blocks).
    let cfg = NetworkConfig::new(3, 3, Topology::Torus, 4);
    let e = RtlNoc::new(cfg, IfaceConfig::default());
    rows.push(Row {
        name: "rtl-torus-3x3".into(),
        analysis: analyze_graph(&e.spec_graph(), &AnalyzeOptions::default()),
    });
    rows
}

fn topo_id(t: Topology) -> &'static str {
    match t {
        Topology::Torus => "torus",
        Topology::Mesh => "mesh",
    }
}

fn severity_str(s: Option<Severity>) -> &'static str {
    match s {
        None => "clean",
        Some(Severity::Info) => "info",
        Some(Severity::Warning) => "warning",
        Some(Severity::Error) => "error",
    }
}

fn render_json(rows: &[Row]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"name\": \"{}\", \"report\": {}}}{}\n",
            r.name,
            r.analysis.to_json(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push(']');
    s
}

fn render_text(rows: &[Row]) -> String {
    let mut s = String::new();
    for r in rows {
        let a = &r.analysis;
        s.push_str(&format!(
            "{:20} {:>4} blocks {:>4} links  {:>4} static / {:>4} fixed-point  \
             bound {:>6}  {}\n",
            r.name,
            a.n_blocks,
            a.n_links,
            a.schedule
                .as_ref()
                .map(|h| h.order.len()
                    - h.runs
                        .iter()
                        .filter(|x| x.fixed_point)
                        .map(|x| x.len)
                        .sum::<usize>())
                .unwrap_or(0),
            a.schedule
                .as_ref()
                .map(|h| h
                    .runs
                    .iter()
                    .filter(|x| x.fixed_point)
                    .map(|x| x.len)
                    .sum::<usize>())
                .unwrap_or(a.n_blocks),
            if a.convergence_bound == u64::MAX {
                "inf".to_string()
            } else {
                a.convergence_bound.to_string()
            },
            severity_str(a.max_severity()),
        ));
        for d in &a.diagnostics {
            s.push_str(&format!("    {d}\n"));
        }
    }
    s
}

fn run() -> Result<i32, SimError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `--all-topologies` is the default (and only) target set; the flag
    // is accepted for explicitness in CI invocations.
    let _ = args.iter().any(|a| a == "--all-topologies");
    let format = flag_word(&args, "--format")?.unwrap_or_else(|| "text".into());
    if format != "text" && format != "json" {
        return Err(SimError::Config(format!(
            "--format must be text or json, got {format}"
        )));
    }
    let out = flag_path(&args, "--out")?;

    if let Some(path) = flag_path(&args, "--emit-program")? {
        let cfg = NetworkConfig::fig1();
        let e = noc::CompiledNoc::new(cfg, IfaceConfig::default());
        let prog = e.engine().program();
        let text = prog.disassemble();
        // The artifact must stay machine-readable: a program that fails
        // to re-parse is a bug in the disassembler, not the spec.
        seqsim::CompiledProgram::parse(&text)
            .map_err(|e| SimError::Config(format!("emitted program does not re-parse: {e}")))?;
        std::fs::write(&path, &text)
            .map_err(|e| SimError::Config(format!("cannot write {}: {e}", path.display())))?;
        eprintln!(
            "speclint: wrote compiled 6x6 torus program to {} ({} ops, {} links)",
            path.display(),
            prog.ops.len(),
            prog.n_links
        );
    }

    let rows = all_targets();

    if let Some(path) = flag_path(&args, "--emit-bitflow")? {
        let mut s = String::from("[\n");
        for (i, r) in rows.iter().enumerate() {
            s.push_str(&format!(
                "  {{\"name\": \"{}\", \"bitflow\": {}}}{}\n",
                r.name,
                r.analysis.bitflow.to_json(),
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        s.push_str("]\n");
        std::fs::write(&path, &s)
            .map_err(|e| SimError::Config(format!("cannot write {}: {e}", path.display())))?;
        eprintln!(
            "speclint: wrote bitflow summaries for {} targets to {}",
            rows.len(),
            path.display()
        );
    }

    let rendered = if format == "json" {
        render_json(&rows)
    } else {
        render_text(&rows)
    };
    match out {
        Some(path) => {
            let mut f = std::fs::File::create(&path)
                .map_err(|e| SimError::Config(format!("cannot create {}: {e}", path.display())))?;
            f.write_all(rendered.as_bytes())
                .map_err(|e| SimError::Config(format!("cannot write {}: {e}", path.display())))?;
            f.write_all(b"\n")
                .map_err(|e| SimError::Config(format!("cannot write {}: {e}", path.display())))?;
        }
        None => println!("{rendered}"),
    }

    let errors: Vec<&Row> = rows.iter().filter(|r| r.analysis.has_errors()).collect();
    if errors.is_empty() {
        eprintln!(
            "speclint: {} targets, no error-severity diagnostics",
            rows.len()
        );
        Ok(0)
    } else {
        for r in &errors {
            eprintln!(
                "speclint: {} has error-severity diagnostics ({})",
                r.name,
                r.analysis
                    .with_severity(Severity::Error)
                    .map(|d| d.code)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        Ok(1)
    }
}

fn main() {
    match run() {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("speclint: {e}");
            std::process::exit(2);
        }
    }
}
