//! Kernel throughput harness — simulated cycles per wall-clock second
//! for every engine (the software-side counterpart of the paper's
//! Table 3), written as machine-readable JSON.
//!
//! ```text
//! cargo run --release --bin bench_kernel [--quick] [--out FILE] [--engines a,b,c]
//! ```
//!
//! `--engines` filters the matrix to a comma-separated list of engine
//! ids (e.g. `--engines seqsim,seqsim-compiled` re-runs just the
//! compiled-vs-hybrid comparison in seconds); `seqsim-sharded` selects
//! the thread sweep and `speccheck` the analyzer row.
//!
//! Two workloads per engine on the paper's 6x6 torus (depth 2):
//!
//! * `idle` — no traffic; measures the raw evaluation floor.
//! * `loaded` — the Fig 1 workload (GT streams + BE 0.10, seed 7)
//!   through the five-phase runner; the reported rate is the *simulate
//!   phase alone* via [`RunReport::sim_cycles_per_sec`].
//!
//! Plus a `seqsim-naive` row (the retained full-rescan scheduler) as the
//! baseline the incremental worklist is measured against, a
//! `seqsim-dynamic` row (the same engine with the analyzer-derived
//! hybrid schedule switched off) for the dynamic-vs-hybrid comparison,
//! a `seqsim-compiled` row (the hybrid schedule lowered at build time
//! into a flat bytecode kernel, `schedule: "compiled"`),
//! an idle scaling sweep from 2 to 256 routers for the sequential and
//! native kernels, a `seqsim-sharded` thread sweep (1 → the
//! machine's CPU count) on both 6x6 workloads, and a `seqsim-batched`
//! lane sweep (1 → 8 lanes; quick: {1, 4}) that times a whole campaign
//! — build plus L independent Fig 1 runs — as one SoA batch against L
//! back-to-back compiled builds+runs. Every row carries `threads`,
//! `lanes` (1 for every scalar engine), a derived
//! `sims_per_sec_per_core`, and a `schedule` field: `"hybrid"` iff the
//! engine adopted the `speccheck` SCC schedule at build time,
//! `"compiled"` for the bytecode kernels, `"dynamic"` for every pure
//! delta-driven run. A final `speccheck/analyze` row times the
//! build-time analyzer pass itself (spec assembly + graph extraction +
//! condensation + lints).
//!
//! `--quick` shrinks every cycle budget and the thread sweep (the CI
//! smoke configuration); the output schema is identical. The JSON is
//! self-checked with [`simtrace::json::validate`] before it is written.

#![allow(clippy::unwrap_used, clippy::expect_used)]
use noc::{run_fig1_point, EngineKind, NocEngine, RunConfig, RunReport, SchedulePolicy};
use noc_types::{NetworkConfig, Topology};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured configuration.
struct Row {
    /// Stable row id, `<engine>/<workload>/<w>x<h>[/tN]`.
    id: String,
    /// Engine id used in the harness (`seqsim-naive` ≠ kernel name).
    engine: &'static str,
    /// What the engine reported via [`NocEngine::name`].
    kernel: &'static str,
    workload: &'static str,
    routers: usize,
    /// Worker threads evaluating the network (1 for every engine except
    /// the sharded one).
    threads: usize,
    /// `"hybrid"` when the engine adopted the analyzer's SCC-condensed
    /// schedule at build time, `"compiled"` when that schedule was
    /// lowered into a bytecode program, `"dynamic"` otherwise.
    schedule: &'static str,
    /// Independent simulations advanced per step (1 for every scalar
    /// engine; the batched engine's lane count).
    lanes: usize,
    cycles: u64,
    wall_s: f64,
    cycles_per_sec: f64,
    deltas_per_sec: Option<f64>,
    /// Packed 64-lanes-per-eval bitwise ops in the compiled program
    /// (nonzero only for the batched engine's packed control plane).
    bitwise_ops: usize,
}

/// One engine configuration of the bench matrix.
struct EngineSpec {
    id: &'static str,
    kind: EngineKind,
    /// Delta-cycle scheduling policy handed to the builder (only the
    /// sequential worklist kind acts on it).
    policy: SchedulePolicy,
    /// Idle cycle budget at 6x6 for the full (non-quick) run; loaded
    /// budgets come from the shared [`RunConfig`].
    idle_cycles: u64,
}

impl EngineSpec {
    fn make(&self, cfg: NetworkConfig) -> Box<dyn NocEngine> {
        soc_sim::sim(cfg)
            .engine(self.kind)
            .schedule(self.policy)
            .try_build()
            .expect("bench engine builds")
    }

    fn threads(&self) -> usize {
        match self.kind {
            EngineKind::Sharded { threads } => threads,
            _ => 1,
        }
    }

    /// The `schedule` label the rows report: the sequential worklist
    /// engine under [`SchedulePolicy::Auto`] adopts the analyzer's
    /// hybrid schedule; the compiled engine lowers that same schedule
    /// into its bytecode program at build time.
    fn schedule(&self) -> &'static str {
        match self.kind {
            EngineKind::Seq if self.policy == SchedulePolicy::Auto => "hybrid",
            EngineKind::SeqCompiled => "compiled",
            _ => "dynamic",
        }
    }
}

fn engines() -> Vec<EngineSpec> {
    vec![
        EngineSpec {
            id: "native",
            kind: EngineKind::Native,
            policy: SchedulePolicy::Auto,
            idle_cycles: 50_000,
        },
        EngineSpec {
            id: "seqsim",
            kind: EngineKind::Seq,
            policy: SchedulePolicy::Auto,
            idle_cycles: 20_000,
        },
        EngineSpec {
            id: "seqsim-compiled",
            kind: EngineKind::SeqCompiled,
            policy: SchedulePolicy::Auto,
            idle_cycles: 50_000,
        },
        EngineSpec {
            id: "seqsim-dynamic",
            kind: EngineKind::Seq,
            policy: SchedulePolicy::Dynamic,
            idle_cycles: 20_000,
        },
        EngineSpec {
            id: "seqsim-naive",
            kind: EngineKind::SeqNaive,
            policy: SchedulePolicy::Dynamic,
            idle_cycles: 5_000,
        },
        EngineSpec {
            id: "cyclesim",
            kind: EngineKind::CycleSim,
            policy: SchedulePolicy::Auto,
            idle_cycles: 20_000,
        },
        EngineSpec {
            id: "rtl",
            kind: EngineKind::Rtl,
            policy: SchedulePolicy::Auto,
            idle_cycles: 5_000,
        },
    ]
}

/// The sharded engine's thread sweep: 1, 2, 4, ... up to the machine's
/// CPU count (quick mode: just {1, 2}).
fn thread_sweep(quick: bool) -> Vec<usize> {
    if quick {
        return vec![1, 2];
    }
    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut sweep = vec![1usize];
    let mut t = 2;
    while t < cpus {
        sweep.push(t);
        t *= 2;
    }
    if cpus > 1 {
        sweep.push(cpus);
    }
    // Always include 4: the headline comparison point even when the host
    // has fewer cores (the schedule still runs, just time-sliced).
    if !sweep.contains(&4) {
        sweep.push(4);
        sweep.sort_unstable();
    }
    sweep
}

fn row_suffix(threads: usize) -> String {
    if threads == 1 {
        String::new()
    } else {
        format!("/t{threads}")
    }
}

/// Idle throughput: warm up, reset the delta counters, time `cycles`
/// plain steps.
fn bench_idle(
    id: &'static str,
    mut e: Box<dyn NocEngine>,
    threads: usize,
    schedule: &'static str,
    cfg: NetworkConfig,
    cycles: u64,
) -> Row {
    e.run((cycles / 10).max(100)); // warm-up (decode caches, allocator)
    e.reset_delta_stats();
    let start = Instant::now();
    e.run(cycles);
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    let deltas = e
        .delta_stats()
        .map(|d| d.delta_cycles as f64 / wall)
        .filter(|&r| r > 0.0);
    Row {
        id: format!(
            "{id}/idle/{}x{}{}",
            cfg.shape.w,
            cfg.shape.h,
            row_suffix(threads)
        ),
        engine: id,
        kernel: e.name(),
        workload: "idle",
        routers: cfg.num_nodes(),
        threads,
        schedule,
        lanes: 1,
        cycles,
        wall_s: wall,
        cycles_per_sec: cycles as f64 / wall,
        deltas_per_sec: deltas,
        bitwise_ops: 0,
    }
}

/// Loaded throughput: the Fig 1 workload through the five-phase runner;
/// the rate is the simulate phase alone (shared measurement path with
/// the experiments binary).
fn bench_loaded(
    id: &'static str,
    mut e: Box<dyn NocEngine>,
    threads: usize,
    schedule: &'static str,
    cfg: NetworkConfig,
    rc: &RunConfig,
) -> Row {
    let r: RunReport = run_fig1_point(&mut *e, 0.10, 7, rc).expect("run failed");
    assert!(!r.saturated, "{id}: bench workload saturated");
    let sim_wall = r
        .profile
        .iter()
        .find(|p| p.0 == "simulate")
        .map(|p| p.1.as_secs_f64())
        .unwrap_or(0.0);
    Row {
        id: format!(
            "{id}/loaded/{}x{}{}",
            cfg.shape.w,
            cfg.shape.h,
            row_suffix(threads)
        ),
        engine: id,
        kernel: r.engine,
        workload: "loaded",
        routers: cfg.num_nodes(),
        threads,
        schedule,
        lanes: 1,
        cycles: r.cycles,
        wall_s: sim_wall,
        cycles_per_sec: r.sim_cycles_per_sec(),
        deltas_per_sec: r.deltas_per_sec(),
        bitwise_ops: 0,
    }
}

fn push_row(out: &mut String, row: &Row) {
    out.push_str("    {\"id\": ");
    simtrace::json::write_str(out, &row.id);
    out.push_str(", \"engine\": ");
    simtrace::json::write_str(out, row.engine);
    out.push_str(", \"kernel\": ");
    simtrace::json::write_str(out, row.kernel);
    out.push_str(", \"workload\": ");
    simtrace::json::write_str(out, row.workload);
    out.push_str(", \"schedule\": ");
    simtrace::json::write_str(out, row.schedule);
    let _ = write!(
        out,
        ", \"routers\": {}, \"threads\": {}, \"lanes\": {}, \"cycles\": {}, \"wall_s\": ",
        row.routers, row.threads, row.lanes, row.cycles
    );
    simtrace::json::write_f64(out, row.wall_s);
    out.push_str(", \"cycles_per_sec\": ");
    simtrace::json::write_f64(out, row.cycles_per_sec);
    out.push_str(", \"sims_per_sec_per_core\": ");
    simtrace::json::write_f64(out, row.cycles_per_sec / row.threads.max(1) as f64);
    out.push_str(", \"deltas_per_sec\": ");
    match row.deltas_per_sec {
        Some(d) => simtrace::json::write_f64(out, d),
        None => out.push_str("null"),
    }
    let _ = write!(out, ", \"bitwise_ops\": {}", row.bitwise_ops);
    out.push('}');
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args[i + 1].clone())
        .unwrap_or_else(|| "BENCH_kernel.json".to_string());
    // `--engines a,b,c` restricts the matrix to the listed engine ids
    // (the scaling/thread sweeps and the analyzer row included).
    let only: Option<Vec<String>> = args.iter().position(|a| a == "--engines").map(|i| {
        args.get(i + 1)
            .expect("--engines needs a comma-separated list")
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect()
    });
    let keep = |id: &str| only.as_ref().is_none_or(|l| l.iter().any(|x| x == id));
    let div = if quick { 10 } else { 1 };

    let cfg = NetworkConfig::fig1();
    let rc = RunConfig {
        warmup: 300,
        measure: 5_000 / div,
        drain: 0,
        period: 256,
        backlog_limit: 1 << 20,
        obs: None,
        check: false,
        ..RunConfig::default()
    };

    let mut rows: Vec<Row> = Vec::new();
    eprintln!(
        "# 6x6 matrix ({} mode)",
        if quick { "quick" } else { "full" }
    );
    for spec in engines() {
        if !keep(spec.id) {
            continue;
        }
        let row = bench_idle(
            spec.id,
            spec.make(cfg),
            spec.threads(),
            spec.schedule(),
            cfg,
            (spec.idle_cycles / div).max(200),
        );
        eprintln!("  {:<32} {:>10.1} cycles/s", row.id, row.cycles_per_sec);
        rows.push(row);
        let row = bench_loaded(
            spec.id,
            spec.make(cfg),
            spec.threads(),
            spec.schedule(),
            cfg,
            &rc,
        );
        eprintln!("  {:<32} {:>10.1} cycles/s", row.id, row.cycles_per_sec);
        rows.push(row);
    }

    // Checkpoint overhead: the compiled engine's loaded workload with a
    // durable checkpoint cut every 1024 cycles — compare against the
    // plain `seqsim-compiled/loaded` row to price the resilience layer.
    if keep("seqsim-compiled") {
        let dir = std::env::temp_dir().join(format!("socsim-bench-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rc_ckpt = rc.clone().checkpoint_every(1024, &dir);
        eprintln!("# checkpoint overhead (every 1024 cycles)");
        let spec = EngineSpec {
            id: "seqsim-compiled",
            kind: EngineKind::SeqCompiled,
            policy: SchedulePolicy::Auto,
            idle_cycles: 0,
        };
        let mut row = bench_loaded(
            spec.id,
            spec.make(cfg),
            spec.threads(),
            spec.schedule(),
            cfg,
            &rc_ckpt,
        );
        row.id = format!(
            "seqsim-compiled/loaded-ckpt/{}x{}",
            cfg.shape.w, cfg.shape.h
        );
        row.workload = "loaded-ckpt";
        eprintln!("  {:<32} {:>10.1} cycles/s", row.id, row.cycles_per_sec);
        rows.push(row);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Sharded thread sweep on the 6x6 workloads: the parallel-schedule
    // scaling curve (threads = shards = workers).
    let sweep = if keep("seqsim-sharded") {
        thread_sweep(quick)
    } else {
        Vec::new()
    };
    eprintln!("# sharded thread sweep (threads in {sweep:?})");
    for &threads in &sweep {
        let kind = EngineKind::Sharded { threads };
        let mk = || {
            soc_sim::sim(cfg)
                .engine(kind)
                .try_build()
                .expect("sharded engine builds")
        };
        let row = bench_idle(
            "seqsim-sharded",
            mk(),
            threads,
            "dynamic",
            cfg,
            (20_000 / div).max(200),
        );
        eprintln!("  {:<32} {:>10.1} cycles/s", row.id, row.cycles_per_sec);
        rows.push(row);
        let row = bench_loaded("seqsim-sharded", mk(), threads, "dynamic", cfg, &rc);
        eprintln!("  {:<32} {:>10.1} cycles/s", row.id, row.cycles_per_sec);
        rows.push(row);
    }

    // Batched lane sweep: a campaign of L independent Fig 1 runs (lane i
    // seeded 7+i) as one SoA batch vs L separate compiled builds+runs.
    // Walls include the build: the batch analyzes its topology once,
    // the sequential reference pays the analyzer per instance. The rate
    // is aggregate lane-cycles per second over the whole campaign. The
    // batch opts into the packed control plane, so the bitflow-sliced
    // credit links lower to real packed bitwise ops (ROADMAP item 1);
    // lane observables stay bit-identical to the scalar compiled runs.
    let lane_sweep: Vec<usize> = if keep("seqsim-batched") {
        if quick {
            vec![1, 4]
        } else {
            vec![1, 2, 4, 8]
        }
    } else {
        Vec::new()
    };
    eprintln!("# batched lane sweep (lanes in {lane_sweep:?})");
    for &lanes in &lane_sweep {
        let threads = seqsim::pool::worker_count(None);
        let start = Instant::now();
        let mut session = soc_sim::sim(cfg)
            .engine(EngineKind::Batched { lanes })
            .packed_control(true)
            .run_config(rc.clone())
            .session()
            .expect("batched session builds");
        let bitwise_ops = session
            .batched()
            .expect("batched session")
            .engine()
            .program()
            .bitwise_ops();
        assert!(
            bitwise_ops > 0,
            "fig-1 packed control plane must compile to packed bitwise ops"
        );
        let cycles = {
            let reports = session.run_fig1(0.10, 7).expect("batched campaign runs");
            assert!(
                reports.iter().all(|r| !r.saturated),
                "batched bench workload saturated"
            );
            reports[0].cycles
        };
        let wall = start.elapsed().as_secs_f64().max(1e-9);
        let row = Row {
            id: format!(
                "seqsim-batched/campaign/{}x{}/l{lanes}",
                cfg.shape.w, cfg.shape.h
            ),
            engine: "seqsim-batched",
            kernel: "seqsim-batched",
            workload: "campaign",
            routers: cfg.num_nodes(),
            threads,
            schedule: "compiled",
            lanes,
            cycles,
            wall_s: wall,
            cycles_per_sec: lanes as f64 * cycles as f64 / wall,
            deltas_per_sec: None,
            bitwise_ops,
        };
        eprintln!(
            "  {:<32} {:>10.1} lane-cycles/s",
            row.id, row.cycles_per_sec
        );
        let batched_rate = row.cycles_per_sec;
        rows.push(row);

        // Sequential reference: the same L campaigns, one compiled
        // engine each, run back to back on one core.
        let start = Instant::now();
        let mut total_cycles = 0u64;
        for lane in 0..lanes {
            let mut s = soc_sim::sim(cfg)
                .engine(EngineKind::SeqCompiled)
                .run_config(rc.clone())
                .session()
                .expect("compiled session builds");
            let r = &s
                .run_fig1(0.10, 7 + lane as u64)
                .expect("compiled campaign runs")[0];
            assert!(!r.saturated, "compiled bench workload saturated");
            total_cycles += r.cycles;
        }
        let wall = start.elapsed().as_secs_f64().max(1e-9);
        let row = Row {
            id: format!(
                "seqsim-compiled/campaign/{}x{}/l{lanes}",
                cfg.shape.w, cfg.shape.h
            ),
            engine: "seqsim-compiled",
            kernel: "seqsim-compiled",
            workload: "campaign",
            routers: cfg.num_nodes(),
            threads: 1,
            schedule: "compiled",
            lanes,
            cycles: total_cycles / lanes as u64,
            wall_s: wall,
            cycles_per_sec: total_cycles as f64 / wall,
            deltas_per_sec: None,
            bitwise_ops: 0,
        };
        eprintln!(
            "  {:<32} {:>10.1} lane-cycles/s ({:.2}x batched)",
            row.id,
            row.cycles_per_sec,
            batched_rate / row.cycles_per_sec.max(1e-9)
        );
        rows.push(row);
    }

    // Idle scaling sweep, 2 -> 256 routers (paper §7: the sequential
    // kernel trades speed for size linearly).
    let shapes: &[(usize, usize)] = if quick {
        &[(2, 2), (4, 4), (8, 8)]
    } else {
        &[
            (2, 1),
            (2, 2),
            (4, 2),
            (4, 4),
            (8, 4),
            (8, 8),
            (16, 8),
            (16, 16),
        ]
    };
    eprintln!("# scaling sweep ({} points)", shapes.len());
    for spec in engines()
        .into_iter()
        .filter(|s| s.id == "seqsim" || s.id == "native")
        .filter(|s| keep(s.id))
    {
        for &(w, h) in shapes {
            let swept = NetworkConfig::new(w as u8, h as u8, Topology::Torus, 2);
            let row = bench_idle(
                spec.id,
                spec.make(swept),
                spec.threads(),
                spec.schedule(),
                swept,
                (4_000 / div).max(200),
            );
            eprintln!("  {:<32} {:>10.1} cycles/s", row.id, row.cycles_per_sec);
            rows.push(row);
        }
    }

    // Build-time analyzer cost on the bench network: spec assembly,
    // graph extraction, SCC condensation and the lint passes — what
    // every `SchedulePolicy::Auto` build pays before cycle zero.
    if keep("speccheck") {
        let reps = if quick { 5u64 } else { 50 };
        eprintln!("# speccheck analyzer ({reps} passes)");
        let start = Instant::now();
        let mut analysis = None;
        for _ in 0..reps {
            analysis = Some(soc_sim::sim(cfg).lint());
        }
        let wall = start.elapsed().as_secs_f64().max(1e-9);
        let analysis = analysis.expect("at least one analyzer pass");
        assert!(!analysis.has_errors(), "bench topology must lint clean");
        let row = Row {
            id: format!("speccheck/analyze/{}x{}", cfg.shape.w, cfg.shape.h),
            engine: "speccheck",
            kernel: "speccheck",
            workload: "analyze",
            routers: cfg.num_nodes(),
            threads: 1,
            schedule: "hybrid",
            lanes: 1,
            cycles: reps,
            wall_s: wall,
            cycles_per_sec: reps as f64 / wall,
            deltas_per_sec: None,
            bitwise_ops: 0,
        };
        eprintln!("  {:<32} {:>10.1} passes/s", row.id, row.cycles_per_sec);
        rows.push(row);
    }

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"soc-sim/bench_kernel/v6\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(
        json,
        "  \"host_cpus\": {},",
        std::thread::available_parallelism().map_or(1, |p| p.get())
    );
    json.push_str(
        "  \"workloads\": {\"idle\": \"no traffic\", \"loaded\": \"fig1 GT + BE 0.10, seed 7, simulate phase only\", \"campaign\": \"L independent fig1 runs incl. build, rate = aggregate lane-cycles/s\", \"analyze\": \"speccheck static pass, cycles = passes\"},\n",
    );
    json.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        push_row(&mut json, row);
        if i + 1 < rows.len() {
            json.push(',');
        }
        json.push('\n');
    }
    json.push_str("  ]\n}\n");

    simtrace::json::validate(&json).expect("bench harness emitted invalid JSON");
    std::fs::write(&out_path, &json).expect("write bench output");
    eprintln!("wrote {out_path} ({} rows)", rows.len());
}
