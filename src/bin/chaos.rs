//! Chaos harness: inject real failures into real campaigns and assert
//! the resilience layer recovers — bit-identically.
//!
//! ```text
//! cargo run --release --bin chaos -- [--dir DIR]
//! ```
//!
//! Four scenarios run back to back, each against a clean baseline of the
//! same campaign:
//!
//! 1. **panic** — [`ChaosConfig::panic_at`] crashes the runner mid
//!    simulate phase; the supervisor catches the panic at the thread
//!    boundary and retries from the newest checkpoint.
//! 2. **hang** — [`ChaosConfig::hang_at`] wedges the runner; the
//!    heartbeat watchdog declares a stall, cancels the run and retries
//!    from the newest checkpoint.
//! 3. **poisoned lane** — a batched lane panics inside the kernel; the
//!    lane is quarantined with a typed error while the healthy lanes
//!    finish bit-identical to scalar runs.
//! 4. **corrupt checkpoint** — the newest checkpoint file is bit-flipped
//!    on disk; resume skips it with a warning and falls back to the
//!    previous cut, still bit-identical.
//!
//! Recovery bookkeeping is published as `recover.*` counters into a
//! [`Registry`] and printed as a metrics snapshot at the end — the same
//! series the runner and supervisor feed in instrumented runs. Artifacts
//! (checkpoint directories, the summary JSON) land under `--dir`
//! (default: a fresh directory under the system temp dir) so CI can
//! upload them. Exits non-zero when any scenario fails to recover.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use noc::{
    run_fig1_point, run_lanes, BatchedNoc, ChaosConfig, CompiledNoc, RunConfig, RunReport,
    SimError, Supervisor,
};
use noc_types::{NetworkConfig, Topology};
use simtrace::Registry;
use std::path::{Path, PathBuf};
use std::time::Duration;
use traffic::StimuliGenerator;
use vc_router::IfaceConfig;

const LOAD: f64 = 0.10;
const SEED: u64 = 77;

fn net() -> NetworkConfig {
    NetworkConfig::new(4, 4, Topology::Torus, 2)
}

/// 1000-cycle campaign in periods of 128; checkpoint cadence 256 cuts at
/// cycles 256, 512 and 768.
fn rc() -> RunConfig {
    RunConfig::new()
        .warmup(100)
        .measure(600)
        .drain(300)
        .period(128)
        .backlog_limit(1 << 16)
}

/// The per-lane generator matching `run_fig1_point`'s workload.
fn fig1_gen(cfg: NetworkConfig, seed: u64) -> StimuliGenerator {
    let mut alloc = traffic::GtAllocator::new(cfg);
    let gt_streams = alloc.auto_streams((2, 1), 2048, 128);
    StimuliGenerator::new(traffic::TrafficConfig {
        net: cfg,
        be: traffic::BeConfig::fig1(LOAD),
        gt_streams,
        seed,
    })
}

/// Compare every deterministic report field; returns the first mismatch.
fn check_identical(a: &RunReport, b: &RunReport) -> Result<(), String> {
    let diff = |field: &str, same: bool| {
        if same {
            Ok(())
        } else {
            Err(format!("{field} diverged"))
        }
    };
    diff("cycles", a.cycles == b.cycles)?;
    diff("saturated", a.saturated == b.saturated)?;
    diff("unmatched", a.unmatched == b.unmatched)?;
    diff("fault_anomalies", a.fault_anomalies == b.fault_anomalies)?;
    diff(
        "throughput",
        a.throughput.offered_flits == b.throughput.offered_flits
            && a.throughput.injected_flits == b.throughput.injected_flits
            && a.throughput.delivered_flits == b.throughput.delivered_flits
            && a.throughput.delivered_packets == b.throughput.delivered_packets,
    )?;
    for (kind, x, y) in [
        ("gt", &a.gt, &b.gt),
        ("be", &a.be, &b.be),
        ("access", &a.access, &b.access),
    ] {
        diff(
            kind,
            x.count == y.count
                && x.max == y.max
                && x.mean.to_bits() == y.mean.to_bits()
                && x.p99 == y.p99,
        )?;
    }
    diff("delta", a.delta == b.delta)
}

/// A chaos supervisor: generous stall timings so a loaded CI box never
/// mistakes a slow-but-healthy attempt for a hang.
fn supervisor(registry: &Registry) -> Supervisor {
    let mut sup = Supervisor::new()
        .max_attempts(3)
        .backoff(Duration::from_millis(10))
        .stall_timeout(Duration::from_millis(1_500))
        .poll(Duration::from_millis(25))
        .with_registry(registry.clone());
    sup.grace = Duration::from_millis(100);
    sup
}

fn baseline() -> Result<RunReport, SimError> {
    let mut engine = CompiledNoc::new(net(), IfaceConfig::default());
    run_fig1_point(&mut engine, LOAD, SEED, &rc())
}

/// Scenario 1/2: a supervised campaign with injected chaos must recover
/// and match the clean baseline.
fn supervised_scenario(
    name: &str,
    chaos: ChaosConfig,
    expect_failure: &str,
    dir: &Path,
    registry: &Registry,
    clean: &RunReport,
) -> Result<String, String> {
    let cfg = net();
    let rc_chaos = rc().checkpoint_every(256, dir).chaos(chaos);
    let out = supervisor(registry)
        .run_campaign(&rc_chaos, move |rc| {
            let mut engine = CompiledNoc::new(cfg, IfaceConfig::default());
            run_fig1_point(&mut engine, LOAD, SEED, &rc)
        })
        .map_err(|e| format!("{name}: campaign did not recover: {e}"))?;
    registry
        .counter(simtrace::recover::CHECKPOINTS_WRITTEN, &[])
        .add(out.report.checkpoints_written);
    if out.attempts != 2 {
        return Err(format!(
            "{name}: expected 2 attempts, took {}",
            out.attempts
        ));
    }
    if !out.failures[0].to_lowercase().contains(expect_failure) {
        return Err(format!(
            "{name}: failure history {:?} does not mention `{expect_failure}`",
            out.failures
        ));
    }
    let resumed_at = out
        .report
        .resumed_at
        .ok_or_else(|| format!("{name}: retry did not resume from a checkpoint"))?;
    check_identical(&out.report, clean).map_err(|e| format!("{name}: {e}"))?;
    Ok(format!(
        "{name}: recovered in {} attempts (resumed at cycle {resumed_at}), bit-identical",
        out.attempts
    ))
}

/// Scenario 3: one poisoned lane quarantined, healthy lanes bit-identical
/// to scalar runs.
fn poisoned_lane_scenario(registry: &Registry) -> Result<String, String> {
    let cfg = net();
    let seeds = [11u64, 2_222, 333_333];
    let mut batch = BatchedNoc::new(cfg, IfaceConfig::default(), seeds.len(), 1)
        .map_err(|e| format!("poisoned-lane: build: {e}"))?;
    batch.poison_lane_at(1, 300);
    let mut gens: Vec<StimuliGenerator> = seeds.iter().map(|&s| fig1_gen(cfg, s)).collect();
    let outcomes = run_lanes(&mut batch, &mut gens, &rc())
        .map_err(|e| format!("poisoned-lane: campaign aborted: {e}"))?;

    match &outcomes[1] {
        Err(SimError::LaneQuarantined { lane: 1, .. }) => {
            registry
                .counter(simtrace::recover::LANES_QUARANTINED, &[])
                .inc();
        }
        other => {
            return Err(format!(
                "poisoned-lane: lane 1 should be quarantined, got {other:?}"
            ))
        }
    }
    for lane in [0usize, 2] {
        let report = outcomes[lane]
            .as_ref()
            .map_err(|e| format!("poisoned-lane: healthy lane {lane} failed: {e}"))?;
        let mut scalar = CompiledNoc::new(cfg, IfaceConfig::default());
        let r = run_fig1_point(&mut scalar, LOAD, seeds[lane], &rc())
            .map_err(|e| format!("poisoned-lane: scalar lane {lane}: {e}"))?;
        check_identical(report, &r).map_err(|e| format!("poisoned-lane: lane {lane}: {e}"))?;
    }
    Ok(
        "poisoned-lane: lane 1 quarantined with a typed error, lanes 0 and 2 \
        bit-identical to scalar runs"
            .to_string(),
    )
}

/// Scenario 4: a bit-flipped newest checkpoint is skipped; resume falls
/// back to the previous cut and still matches the baseline.
fn corrupt_checkpoint_scenario(
    dir: &Path,
    registry: &Registry,
    clean: &RunReport,
) -> Result<String, String> {
    let rc_ck = rc().checkpoint_every(256, dir);
    let mut engine = CompiledNoc::new(net(), IfaceConfig::default());
    run_fig1_point(&mut engine, LOAD, SEED, &rc_ck)
        .map_err(|e| format!("corrupt-ckpt: seeding run: {e}"))?;

    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("corrupt-ckpt: reading {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "bin"))
        .collect();
    files.sort();
    let newest = files
        .last()
        .ok_or("corrupt-ckpt: no checkpoint files written")?;
    let mut data = std::fs::read(newest).map_err(|e| format!("corrupt-ckpt: read: {e}"))?;
    let mid = data.len() / 2;
    data[mid] ^= 0x10;
    std::fs::write(newest, &data).map_err(|e| format!("corrupt-ckpt: write: {e}"))?;

    let mut fresh = CompiledNoc::new(net(), IfaceConfig::default());
    let resumed = run_fig1_point(&mut fresh, LOAD, SEED, &rc_ck.resume(true))
        .map_err(|e| format!("corrupt-ckpt: resumed run: {e}"))?;
    registry
        .counter(simtrace::recover::CHECKPOINTS_REJECTED, &[])
        .inc();
    match resumed.resumed_at {
        Some(768) => Err("corrupt-ckpt: resumed from the corrupt cut".to_string()),
        Some(at) => {
            check_identical(&resumed, clean).map_err(|e| format!("corrupt-ckpt: {e}"))?;
            Ok(format!(
                "corrupt-ckpt: bit-flipped newest cut skipped, fell back to cycle {at}, \
                 bit-identical"
            ))
        }
        None => Err("corrupt-ckpt: resume found no valid fallback checkpoint".to_string()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = match args.iter().position(|a| a == "--dir") {
        Some(i) => PathBuf::from(
            args.get(i + 1)
                .expect("--dir requires a directory argument"),
        ),
        None => std::env::temp_dir().join(format!("socsim-chaos-{}", std::process::id())),
    };
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    let registry = Registry::new();

    println!("# chaos harness — artifacts in {}\n", dir.display());
    let clean = baseline().expect("clean baseline run");

    let results = [
        supervised_scenario(
            "panic",
            ChaosConfig::new().panic_at(400),
            "panic",
            &dir.join("panic"),
            &registry,
            &clean,
        ),
        supervised_scenario(
            "hang",
            ChaosConfig::new().hang_at(400, 5_000),
            "stall",
            &dir.join("hang"),
            &registry,
            &clean,
        ),
        poisoned_lane_scenario(&registry),
        corrupt_checkpoint_scenario(&dir.join("corrupt"), &registry, &clean),
    ];

    let mut failed = false;
    for r in &results {
        match r {
            Ok(msg) => println!("ok   {msg}"),
            Err(msg) => {
                failed = true;
                println!("FAIL {msg}");
            }
        }
    }

    let snapshot = registry.snapshot_json();
    println!("\n## recover.* counters\n{snapshot}");
    std::fs::write(dir.join("chaos-metrics.json"), &snapshot).expect("write metrics artifact");

    if failed {
        println!("\nchaos harness FAILED");
        std::process::exit(1);
    }
    println!("\nchaos harness passed: all scenarios recovered");
}
