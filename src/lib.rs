//! # soc-sim — sequential bit/cycle-accurate SoC (NoC) simulation
//!
//! Meta-crate re-exporting the full public API of the workspace, a Rust
//! reproduction of Wolkotte, Hölzenspies and Smit, *"Using an FPGA for Fast
//! Bit Accurate SoC Simulation"*, IPDPS 2007.
//!
//! See the individual crates for the pieces:
//!
//! * [`seqsim`] — the paper's contribution: the sequential simulation
//!   framework (double-buffered state memory, HBR link memory, static and
//!   dynamic schedulers).
//! * [`vc_router`] — the bit-accurate virtual-channel wormhole router.
//! * [`rtl_kernel`] / [`cyclesim`] — the VHDL-like and SystemC-like
//!   baseline simulation kernels.
//! * [`noc`] — network assembly over all engines and the unified `NocSim`
//!   API.
//! * [`traffic`], [`stats`], [`platform`] — traffic generation, statistics
//!   and the ARM+FPGA platform model.

#![warn(missing_docs)]

pub mod par;

pub use par::par_map;

pub use cyclesim;
pub use noc;
pub use noc_types;
pub use platform;
pub use rtl_kernel;
pub use seqsim;
pub use stats;
pub use traffic;
pub use vc_router;
