//! # soc-sim — sequential bit/cycle-accurate SoC (NoC) simulation
//!
//! Meta-crate re-exporting the full public API of the workspace, a Rust
//! reproduction of Wolkotte, Hölzenspies and Smit, *"Using an FPGA for Fast
//! Bit Accurate SoC Simulation"*, IPDPS 2007.
//!
//! See the individual crates for the pieces:
//!
//! * [`seqsim`] — the paper's contribution: the sequential simulation
//!   framework (double-buffered state memory, HBR link memory, static and
//!   dynamic schedulers).
//! * [`vc_router`] — the bit-accurate virtual-channel wormhole router.
//! * [`rtl_kernel`] / [`cyclesim`] — the VHDL-like and SystemC-like
//!   baseline simulation kernels.
//! * [`noc`] — network assembly over all engines and the unified `NocSim`
//!   API.
//! * [`traffic`], [`stats`], [`platform`] — traffic generation, statistics
//!   and the ARM+FPGA platform model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod par;

pub use par::par_map;

/// A [`noc::SimBuilder`] with **every** engine kind registered,
/// including the SystemC-like ([`cyclesim::CycleNoc`]) and VHDL-like
/// ([`rtl_kernel::RtlNoc`]) backends that live outside the `noc` crate
/// and are therefore unavailable through `SimBuilder::new` alone.
///
/// ```
/// use noc::EngineKind;
///
/// let cfg = noc_types::NetworkConfig::new(3, 3, noc_types::Topology::Torus, 2);
/// let mut engine = soc_sim::sim(cfg)
///     .engine(EngineKind::Rtl)
///     .try_build()
///     .expect("engine builds");
/// engine.run(10);
/// assert_eq!(engine.name(), "rtl");
/// ```
pub fn sim(cfg: noc_types::NetworkConfig) -> noc::SimBuilder {
    noc::SimBuilder::new(cfg)
        .register(noc::EngineKind::CycleSim, |cfg, iface, faults| {
            Box::new(cyclesim::CycleNoc::with_faults(cfg, iface, faults))
        })
        .register(noc::EngineKind::Rtl, |cfg, iface, faults| {
            Box::new(rtl_kernel::RtlNoc::with_faults(cfg, iface, faults))
        })
}

pub use cyclesim;
pub use noc;
pub use noc_types;
pub use platform;
pub use rtl_kernel;
pub use seqsim;
pub use stats;
pub use traffic;
pub use vc_router;
