//! Criterion benchmark harness — see the `benches/` directory; one
//! bench target per paper table/figure plus the design-choice ablations.
