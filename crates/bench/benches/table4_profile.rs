//! **Table 4 bench** — prints the modelled phase profile of the
//! ARM+FPGA control loop (the paper's ranges) and benchmarks one full
//! five-phase simulation period of the software runner, the unit whose
//! phase split the measured host profile reports.

use criterion::{criterion_group, criterion_main, Criterion};
use noc::{run, NativeNoc, RunConfig};
use noc_types::NetworkConfig;
use platform::{FpgaTimingModel, PhaseParams, Scenario};
use traffic::{BeConfig, GtAllocator, StimuliGenerator, TrafficConfig};
use vc_router::IfaceConfig;

fn print_table4() {
    let params = PhaseParams::default();
    let timing = FpgaTimingModel::default();
    eprintln!("Table 4 — modelled phase shares (paper ranges in brackets):");
    let names = ["generate", "load", "simulate", "retrieve", "analyse"];
    let paper = ["45-65%", "10-20%", "0-2%", "5-15%", "5-40%"];
    for (label, sc) in [
        ("light", Scenario::grid6x6(0.05, false)),
        ("heavy", Scenario::grid6x6(0.14, true)),
    ] {
        let shares = params.evaluate(&timing, &sc).shares();
        let row: Vec<String> = names
            .iter()
            .zip(shares.iter())
            .zip(paper.iter())
            .map(|((n, s), p)| format!("{n} {:.0}% [{p}]", s * 100.0))
            .collect();
        eprintln!("  {label}: {}", row.join("  "));
    }
}

fn bench_period(c: &mut Criterion) {
    print_table4();
    let cfg = NetworkConfig::fig1();
    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    group.bench_function("five_phase_period_512_cycles", |b| {
        b.iter(|| {
            let mut engine = NativeNoc::new(cfg, IfaceConfig::default());
            let gt = GtAllocator::new(cfg).auto_streams((2, 1), 2048, 128);
            let mut gen = StimuliGenerator::new(TrafficConfig {
                net: cfg,
                be: BeConfig::fig1(0.10),
                gt_streams: gt,
                seed: 5,
            });
            let rc = RunConfig {
                warmup: 0,
                measure: 512,
                drain: 0,
                period: 512,
                backlog_limit: 16_384,
                obs: None,
                ..RunConfig::default()
            };
            run(&mut engine, &mut gen, &rc).cycles
        })
    });
    group.finish();
}

criterion_group!(benches, bench_period);
criterion_main!(benches);
