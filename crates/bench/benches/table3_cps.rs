//! **Table 3 bench** — "Simulated clock cycles per second": criterion
//! times one simulated system cycle of the 6×6 NoC under load on each
//! software engine (VHDL-like netlist, SystemC-like kernel, sequential
//! method, native), and prints the modelled FPGA rows alongside.
//!
//! The paper's ordering must hold: rtl slowest, then the cycle kernel,
//! then the native simulator; the FPGA (modelled) beats its
//! contemporaneous software by 80–300×.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cyclesim::CycleNoc;
use noc::{NativeNoc, NocEngine, SeqNoc};
use noc_types::{Flit, NetworkConfig};
use platform::{FpgaTimingModel, PhaseParams};
use rtl_kernel::RtlNoc;
use traffic::SplitMix64;
use vc_router::{IfaceConfig, StimEntry};

/// Keep an engine busy: top up every node's BE rings so cycles always
/// move traffic.
fn top_up(engine: &mut dyn NocEngine, rng: &mut SplitMix64) {
    let cfg = engine.config();
    let n = cfg.num_nodes();
    for node in 0..n {
        for vc in 0..2usize {
            while engine.stim_free(node, vc) > 8 {
                let dest = cfg.shape.coord(noc_types::NodeId(
                    rng.below(n as u64) as u16,
                ));
                let spec = noc_types::PacketSpec {
                    src: noc_types::NodeId(node as u16),
                    dest,
                    class: noc_types::TrafficClass::BestEffort,
                    flits: 5,
                };
                let seq = rng.next_u32() as u16;
                for f in spec.flitise(|i| if i == 0 { seq } else { 0xAB }) {
                    engine.push_stim(node, vc, StimEntry { ts: 0, flit: f });
                }
            }
        }
    }
    let _ = Flit::from_bits(0);
}

fn bench_engines(c: &mut Criterion) {
    let cfg = NetworkConfig::fig1();
    let icfg = IfaceConfig::default();

    // Modelled FPGA rows for the printed table.
    let timing = FpgaTimingModel::default();
    let params = PhaseParams::default();
    eprintln!("Table 3 — modelled FPGA rows (paper: avg 22 kHz, fastest 61.6 kHz):");
    eprintln!(
        "  FPGA average {:.1} kHz, fastest {:.1} kHz, theoretical max {:.1} kHz",
        params.table3_fpga_average(&timing) / 1e3,
        params.table3_fpga_fastest(&timing) / 1e3,
        timing.max_sim_freq_hz(36.0) / 1e3
    );
    eprintln!("  criterion rows below are this machine's software engines (per system cycle).");

    let mut group = c.benchmark_group("table3_engine_cycle");
    group.sample_size(10);

    macro_rules! bench_engine {
        ($name:expr, $mk:expr) => {
            group.bench_function(BenchmarkId::from_parameter($name), |b| {
                let mut engine = $mk;
                let mut rng = SplitMix64::new(99);
                let mut drain_clock = 0u64;
                top_up(&mut engine, &mut rng);
                b.iter(|| {
                    engine.step();
                    drain_clock += 1;
                    if drain_clock % 512 == 0 {
                        // Keep rings from under/overrunning.
                        let n = engine.config().num_nodes();
                        for node in 0..n {
                            let _ = engine.drain_delivered(node);
                            let _ = engine.drain_access(node);
                        }
                        top_up(&mut engine, &mut rng);
                    }
                    engine.cycle()
                });
            });
        };
    }

    bench_engine!("rtl_vhdl_like", RtlNoc::new(cfg, icfg));
    bench_engine!("systemc_like", CycleNoc::new(cfg, icfg));
    bench_engine!("sequential_sw", SeqNoc::new(cfg, icfg));
    bench_engine!("native", NativeNoc::new(cfg, icfg));
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
