//! **Ablation: RNG offload** — §8: "A simple improvement by offloading
//! the random number generation to the FPGA gave an extra 50% simulation
//! speed."
//!
//! Benchmarks the two random sources (the FPGA's bit-serial LFSR model vs
//! the software generator) and prints the modelled end-to-end speed-up of
//! the offload on the 2007 platform.

use criterion::{criterion_group, criterion_main, Criterion};
use platform::{FpgaTimingModel, PhaseParams, Scenario};
use traffic::{Lfsr32, SplitMix64};

fn print_model() {
    let params = PhaseParams::default();
    let timing = FpgaTimingModel::default();
    let hw = Scenario::grid6x6(0.10, false);
    let sw = Scenario { soft_rng: true, ..hw };
    let cps_hw = params.evaluate(&timing, &hw).cps();
    let cps_sw = params.evaluate(&timing, &sw).cps();
    eprintln!(
        "RNG offload (modelled 2007 platform): {:.1} kHz with FPGA RNG vs {:.1} kHz with rand() \
         -> {:.0} % faster (paper: ~50 %)",
        cps_hw / 1e3,
        cps_sw / 1e3,
        (cps_hw / cps_sw - 1.0) * 100.0
    );
}

fn bench_rng(c: &mut Criterion) {
    print_model();
    let mut group = c.benchmark_group("ablation_rng");
    group.bench_function("lfsr32_next_u32", |b| {
        let mut r = Lfsr32::new(1);
        b.iter(|| r.next_u32())
    });
    group.bench_function("splitmix64_next_u32", |b| {
        let mut r = SplitMix64::new(1);
        b.iter(|| r.next_u32())
    });
    group.finish();
}

criterion_group!(benches, bench_rng);
criterion_main!(benches);
