//! **Table 1 bench** — prints the per-router register budget (the
//! "extraction of all registers" the sequential method depends on) and
//! benchmarks the pack/unpack round trip of one router's 2k-bit state
//! word, the per-delta-cycle memory cost of the software sequential
//! simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_types::bits::words_for_bits;
use vc_router::{RegisterLayout, RouterRegs};

fn print_table1() {
    eprintln!("Table 1 — required registers per router (bits):");
    for depth in [2usize, 4, 8] {
        let l = RegisterLayout::new(depth);
        eprintln!(
            "  depth {depth}: queues {} + control {} + links {} + stimuli {} = {} bits{}",
            l.queue_bits(),
            l.control_bits(),
            l.link_bits(),
            l.stimuli_bits(),
            l.total_bits(),
            if depth == 4 { "   (paper: 2112)" } else { "" }
        );
    }
}

fn bench_pack(c: &mut Criterion) {
    print_table1();
    let depth = 4;
    let layout = RegisterLayout::new(depth);
    let regs = RouterRegs::new();
    let mut words = vec![0u64; words_for_bits(layout.state_bits())];
    let mut group = c.benchmark_group("table1_state_word");
    group.bench_function("pack_2k_bits", |b| {
        b.iter(|| {
            regs.pack(depth, &mut words);
            words[0]
        })
    });
    group.bench_function("unpack_2k_bits", |b| {
        regs.pack(depth, &mut words);
        b.iter(|| RouterRegs::unpack(depth, &words))
    });
    group.bench_function("roundtrip", |b| {
        b.iter(|| {
            regs.pack(depth, &mut words);
            RouterRegs::unpack(depth, &words)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pack);
criterion_main!(benches);
