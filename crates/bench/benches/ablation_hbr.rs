//! **Ablation: HBR dynamic scheduling** — the paper's §4.2 mechanism vs
//! the naive alternative (repeat full evaluation passes until no link
//! changes). Same bit-exact behaviour, different delta-cycle counts —
//! the HBR bits are what make the sequential method pay only for actual
//! signal changes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc::{run_fig1_point, NocEngine, RunConfig, SeqNoc};
use noc_types::NetworkConfig;
use seqsim::Scheduling;
use vc_router::IfaceConfig;

fn deltas_for(scheduling: Scheduling, load: f64) -> f64 {
    let cfg = NetworkConfig::fig1();
    let mut engine = SeqNoc::with_scheduling(cfg, IfaceConfig::default(), scheduling);
    let rc = RunConfig {
        warmup: 200,
        measure: 1_500,
        drain: 0,
        period: 256,
        backlog_limit: 1 << 20,
        obs: None,
        ..RunConfig::default()
    };
    let r = run_fig1_point(&mut engine, load, 17, &rc);
    r.delta.unwrap().avg_deltas_per_cycle()
}

fn print_comparison() {
    eprintln!("HBR ablation — average delta cycles per system cycle (36 = minimum):");
    for load in [0.0f64, 0.06, 0.12] {
        let hbr = deltas_for(Scheduling::HbrRoundRobin, load);
        let full = deltas_for(Scheduling::FullPasses, load);
        eprintln!(
            "  BE {:.2}: HBR {:.1}, full-passes {:.1}  ({:.2}x saved)",
            load,
            hbr,
            full,
            full / hbr
        );
        assert!(hbr <= full, "HBR must never cost more deltas");
    }
}

fn bench_hbr(c: &mut Criterion) {
    print_comparison();
    let cfg = NetworkConfig::fig1();
    let mut group = c.benchmark_group("ablation_hbr_step");
    group.sample_size(10);
    for (name, sched) in [
        ("hbr", Scheduling::HbrRoundRobin),
        ("full_passes", Scheduling::FullPasses),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut engine = SeqNoc::with_scheduling(cfg, IfaceConfig::default(), sched);
            let rc = RunConfig {
                warmup: 0,
                measure: 200,
                drain: 0,
                period: 200,
                backlog_limit: 1 << 20,
                obs: None,
                ..RunConfig::default()
            };
            let _ = run_fig1_point(&mut engine, 0.10, 3, &rc);
            b.iter(|| {
                engine.step();
                engine.cycle()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hbr);
criterion_main!(benches);
