//! **Table 2 bench** — prints the FPGA resource model for the 256-router
//! build against the paper's synthesis report and benchmarks the
//! capacity search (max routers per device), the planning computation a
//! user runs when porting the simulator to another FPGA.

use criterion::{criterion_group, criterion_main, Criterion};
use platform::{FpgaDevice, ResourceModel};

fn print_table2() {
    let m = ResourceModel::paper_build();
    let dev = FpgaDevice::virtex2_8000();
    eprintln!("Table 2 — FPGA resource usage (256 routers):");
    for (row, paper) in m.table2().iter().zip(ResourceModel::paper_table2()) {
        eprintln!(
            "  {:<26} CLB {:>5} (paper {:>5})   RAM {:>3} (paper {:>3})",
            row.block, row.clb, paper.clb, row.ram, paper.ram
        );
    }
    let (clb, ram) = m.totals();
    eprintln!(
        "  total: CLB {} ({:.0} %, paper 15 %), RAM {} ({:.0} %, paper 82 %)",
        clb,
        100.0 * clb as f64 / dev.slices as f64,
        ram,
        100.0 * ram as f64 / dev.brams as f64
    );
    eprintln!(
        "  direct instantiation max (6-bit datapath): {} routers (paper ~24)",
        m.max_direct_routers(&dev, 6)
    );
}

fn bench_resources(c: &mut Criterion) {
    print_table2();
    let m = ResourceModel::paper_build();
    let dev = FpgaDevice::virtex2_8000();
    c.bench_function("table2_capacity_search", |b| {
        b.iter(|| m.max_sequential_routers(&dev))
    });
}

criterion_group!(benches, bench_resources);
criterion_main!(benches);
