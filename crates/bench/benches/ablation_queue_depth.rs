//! **Ablation: queue depth** — the buffer-size design study of §3
//! (performance side; see `examples/buffer_sweep.rs` for the latency
//! tables and `resource_report` for the register cost). Benchmarks the
//! native engine's cycle cost across queue depths: deeper queues mean
//! more registers per router but the same per-cycle logic, so the
//! simulator cost should be nearly flat — the area/energy cost is what
//! the paper wanted the study for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc::{run_fig1_point, NativeNoc, NocEngine, RunConfig};
use noc_types::{NetworkConfig, Topology};
use vc_router::{IfaceConfig, RegisterLayout};

fn bench_depths(c: &mut Criterion) {
    eprintln!("queue-depth register cost per router:");
    for d in [2usize, 4, 8] {
        eprintln!("  depth {d}: {} bits", RegisterLayout::new(d).total_bits());
    }
    let mut group = c.benchmark_group("ablation_queue_depth_step");
    group.sample_size(10);
    for depth in [2usize, 4, 8] {
        let cfg = NetworkConfig::new(6, 6, Topology::Torus, depth);
        group.bench_function(BenchmarkId::from_parameter(depth), |b| {
            let mut engine = NativeNoc::new(cfg, IfaceConfig::default());
            let rc = RunConfig {
                warmup: 0,
                measure: 300,
                drain: 0,
                period: 256,
                backlog_limit: 1 << 20,
                obs: None,
                ..RunConfig::default()
            };
            let _ = run_fig1_point(&mut engine, 0.10, 3, &rc);
            b.iter(|| {
                engine.step();
                engine.cycle()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_depths);
criterion_main!(benches);
