//! **Fig 1 bench** — regenerates one point of "Delay of the GT and BE
//! packets vs. BE load" (6×6 torus, 2-flit queues) and benchmarks the
//! cost of producing a Fig 1 data point end to end (generate + load +
//! simulate + retrieve + analyse), the unit of work the paper needed 29
//! hours of SystemC time for.

use criterion::{criterion_group, criterion_main, Criterion};
use noc::{fig1_guarantee, run_fig1_point, NativeNoc, RunConfig};
use noc_types::NetworkConfig;
use vc_router::IfaceConfig;

fn quick_rc() -> RunConfig {
    RunConfig {
        warmup: 500,
        measure: 4_000,
        drain: 1_500,
        period: 512,
        backlog_limit: 16_384,
        obs: None,
        ..RunConfig::default()
    }
}

fn print_point_table() {
    let cfg = NetworkConfig::fig1();
    let guarantee = fig1_guarantee(cfg);
    eprintln!("Fig 1 spot-check (guarantee {guarantee} cycles):");
    for load in [0.02f64, 0.08, 0.14] {
        let mut engine = NativeNoc::new(cfg, IfaceConfig::default());
        let r = run_fig1_point(&mut engine, load, 1337, &quick_rc());
        eprintln!(
            "  BE {:.2}: GT mean {:.1} max {} | BE mean {:.1} | GT max < guarantee: {}",
            load,
            r.gt.mean,
            r.gt.max,
            r.be.mean,
            r.gt.max < guarantee
        );
        assert!(r.gt.max < guarantee, "GT guarantee violated in bench");
    }
}

fn bench_fig1(c: &mut Criterion) {
    print_point_table();
    let cfg = NetworkConfig::fig1();
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    group.bench_function("one_datapoint_6x6_load0.10", |b| {
        b.iter(|| {
            let mut engine = NativeNoc::new(cfg, IfaceConfig::default());
            let r = run_fig1_point(&mut engine, 0.10, 7, &quick_rc());
            assert!(r.gt.count > 0);
            r.gt.mean
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
