//! **Ablation: evaluation order** — §4.2 leaves the dynamic scheduler
//! free to evaluate non-stable blocks in any order; order affects the
//! number of re-evaluations (Fig 5) but never behaviour. Demonstrated on
//! the paper's three-block example: topological order needs the fewest
//! delta cycles, reverse-topological the most.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use seqsim::demo::comb_demo;
use seqsim::DynamicEngine;

fn deltas_with_order(order: Vec<usize>, cycles: u64) -> u64 {
    let (spec, _) = comb_demo();
    let mut eng = DynamicEngine::with_order(spec, order);
    eng.run(cycles);
    eng.stats().delta_cycles
}

fn print_orders() {
    eprintln!("evaluation-order ablation (paper Fig 5 example, 100 cycles, minimum 300 deltas):");
    for order in [vec![0usize, 1, 2], vec![1, 2, 0], vec![2, 1, 0]] {
        let d = deltas_with_order(order.clone(), 100);
        eprintln!("  order {order:?}: {d} delta cycles");
    }
}

fn bench_orders(c: &mut Criterion) {
    print_orders();
    let mut group = c.benchmark_group("ablation_schedule_order");
    for (name, order) in [
        ("topological", vec![0usize, 1, 2]),
        ("reverse", vec![2usize, 1, 0]),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| deltas_with_order(order.clone(), 50))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_orders);
criterion_main!(benches);
