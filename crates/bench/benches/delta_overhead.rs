//! **§6 delta-overhead bench** — "The minimum number of delta cycles per
//! system cycle is equal to the number of routers [...] The percentage of
//! extra delta cycles is between 1.5 and 2 times the input load."
//!
//! Prints the measured extra-delta fraction across offered loads and
//! benchmarks the sequential engine's system-cycle step at low vs high
//! load (the wall-clock effect of re-evaluations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc::{run_fig1_point, NocEngine, RunConfig, SeqNoc};
use noc_types::NetworkConfig;
use vc_router::IfaceConfig;

fn measure_extra(load: f64) -> (f64, f64) {
    let cfg = NetworkConfig::fig1();
    let mut engine = SeqNoc::new(cfg, IfaceConfig::default());
    let rc = RunConfig {
        warmup: 400,
        measure: 2_500,
        drain: 0,
        period: 256,
        backlog_limit: 1 << 20,
        obs: None,
        ..RunConfig::default()
    };
    let r = run_fig1_point(&mut engine, load, 31, &rc);
    let stats = r.delta.expect("seqsim reports deltas");
    // offered_load already includes both BE and GT flits.
    (r.throughput.offered_load(), stats.extra_fraction(36))
}

fn print_overhead_series() {
    eprintln!("§6 — extra delta cycles vs offered load (paper: 1.5-2x the load):");
    for load in [0.0f64, 0.04, 0.08, 0.12] {
        let (offered, extra) = measure_extra(load);
        let ratio = if offered > 1e-6 { extra / offered } else { 0.0 };
        eprintln!(
            "  BE {:.2}: total offered {:.3} flits/cycle/node, extra deltas {:.1} % (ratio {:.2}x)",
            load,
            offered,
            extra * 100.0,
            ratio
        );
    }
}

fn bench_delta(c: &mut Criterion) {
    print_overhead_series();
    let cfg = NetworkConfig::fig1();
    let mut group = c.benchmark_group("delta_overhead_step");
    group.sample_size(10);
    for load in [0.0f64, 0.12] {
        group.bench_function(BenchmarkId::from_parameter(format!("load{load:.2}")), |b| {
            let mut engine = SeqNoc::new(cfg, IfaceConfig::default());
            // Pre-load traffic, then time pure steps.
            let rc = RunConfig {
                warmup: 0,
                measure: 300,
                drain: 0,
                period: 256,
                backlog_limit: 1 << 20,
                obs: None,
                ..RunConfig::default()
            };
            let _ = run_fig1_point(&mut engine, load, 3, &rc);
            b.iter(|| {
                engine.step();
                engine.cycle()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_delta);
criterion_main!(benches);
