//! The convergence watchdog surfaces a non-converging spec as a typed
//! [`SimError::Diverged`] — identically under every scheduling policy —
//! instead of spinning or panicking, and the engine stays broken (but
//! responsive) afterwards.

#![allow(clippy::unwrap_used, clippy::expect_used)]
use seqsim::demo::CombDemoKind;
use seqsim::{DynamicEngine, Scheduling, SimError, SystemSpec};

/// A single combinational block wired to itself: `x = s ^ x` has no
/// fixed point while the registered state `s` is non-zero (and the
/// demo kind resets it to 6), so the delta loop oscillates forever.
fn oscillator() -> SystemSpec {
    let mut spec = SystemSpec::new();
    let comb = spec.add_kind(Box::new(CombDemoKind::new(1)));
    let b = spec.add_block(comb);
    spec.wire((b, 0), (b, 0));
    spec
}

#[test]
fn non_converging_spec_surfaces_diverged() {
    for policy in [
        Scheduling::HbrRoundRobin,
        Scheduling::HbrRoundRobinNaive,
        Scheduling::FullPasses,
    ] {
        let mut eng = DynamicEngine::new(oscillator());
        eng.set_scheduling(policy.clone());
        eng.set_delta_budget(8);
        let err = eng.try_step().expect_err("oscillator must diverge");
        let SimError::Diverged {
            cycle,
            budget,
            unstable_blocks,
            ..
        } = &err
        else {
            panic!("expected Diverged, got {err} ({policy:?})");
        };
        assert_eq!(*cycle, 0, "{policy:?}");
        assert_eq!(*budget, 8, "budget = cap_factor x blocks ({policy:?})");
        assert_eq!(unstable_blocks, &[0], "{policy:?}");

        // The engine is sticky-broken: further steps return the same
        // typed error rather than hanging or corrupting state.
        let again = eng.try_step().expect_err("broken engine must stay broken");
        assert_eq!(again.to_string(), err.to_string(), "{policy:?}");
    }
}

#[test]
fn diverged_error_is_reportable() {
    let mut eng = DynamicEngine::new(oscillator());
    eng.set_delta_budget(4);
    let err = eng.try_run(10).expect_err("oscillator must diverge");
    let msg = err.to_string();
    assert!(
        msg.contains("diverge") || msg.contains("Diverged") || msg.contains("delta"),
        "error message should name the divergence: {msg}"
    );
}
