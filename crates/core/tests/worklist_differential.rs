//! Differential proof that the incremental worklist scheduler
//! ([`Scheduling::HbrRoundRobin`]) is *bit-identical* to the naive
//! full-rescan scheduler ([`Scheduling::HbrRoundRobinNaive`]): same
//! evaluation sequence (every [`TraceEvent`], including `changed_links`
//! and re-evaluation flags), same delta counts, same final link and
//! register state — across randomly generated signal-acyclic systems,
//! block counts, evaluation orders and external-input pokes.

#![allow(clippy::unwrap_used, clippy::expect_used)]
use seqsim::demo::CombDemoKind;
use seqsim::{DeltaStats, DynamicEngine, Scheduling, SystemSpec, TraceEvent};

/// Deterministic xorshift64 PRNG — no dependency, stable across runs.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Build a random signal-acyclic system of `n` [`CombDemoKind`] blocks.
///
/// Each block's input is wired from a registered-output block (any index,
/// self-loops included), a combinational block of strictly smaller index
/// (so no combinational cycle can close), a tie-off constant, or an
/// external link. Unconsumed outputs become dangling sinks — together
/// this exercises every [`seqsim::LinkDriver`] variant and every
/// adjacency shape the worklist tracks. Returns the spec and the
/// external link ids.
fn random_spec(seed: u64, n: usize) -> (SystemSpec, Vec<usize>) {
    let mut rng = Rng::new(seed);
    let mut spec = SystemSpec::new();
    let reg = spec.add_kind(Box::new(CombDemoKind::new(0)));
    let comb = spec.add_kind(Box::new(CombDemoKind::new(1)));
    let variants: Vec<u8> = (0..n).map(|_| rng.below(2) as u8).collect();
    let blocks: Vec<_> = (0..n)
        .map(|i| spec.add_block(if variants[i] == 0 { reg } else { comb }))
        .collect();
    let mut consumed = vec![false; n];
    let mut externals = Vec::new();
    for i in 0..n {
        let cands: Vec<usize> = (0..n)
            .filter(|&j| !consumed[j] && (variants[j] == 0 || j < i))
            .collect();
        let choice = rng.below(cands.len() + 2);
        if choice < cands.len() {
            let j = cands[choice];
            spec.wire((blocks[j], 0), (blocks[i], 0));
            consumed[j] = true;
        } else if choice == cands.len() {
            spec.tie_off((blocks[i], 0), rng.next() & 0xFFFF);
        } else {
            externals.push(spec.external((blocks[i], 0), rng.next() & 0xFFFF));
        }
    }
    for i in 0..n {
        if !consumed[i] {
            spec.sink((blocks[i], 0));
        }
    }
    (spec, externals)
}

/// A random permutation of `0..n`.
fn random_order(rng: &mut Rng, n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.below(i + 1));
    }
    order
}

/// Everything observable about a traced run.
struct Observed {
    events: Vec<TraceEvent>,
    stats: DeltaStats,
    links: Vec<u64>,
    states: Vec<Vec<u64>>,
}

/// Run `cycles` system cycles under `scheduling`, poking the external
/// links from a PRNG seeded *identically* for both engines under test.
fn run_traced(
    spec: SystemSpec,
    order: Vec<usize>,
    scheduling: Scheduling,
    externals: &[usize],
    poke_seed: u64,
    cycles: u64,
) -> Observed {
    let n_links = spec.links().len();
    let n_blocks = spec.blocks().len();
    let mut eng = DynamicEngine::with_order(spec, order);
    eng.set_scheduling(scheduling);
    eng.enable_trace();
    let mut rng = Rng::new(poke_seed);
    for _ in 0..cycles {
        for &l in externals {
            if rng.below(3) == 0 {
                eng.set_external(l, rng.next() & 0xFFFF);
            }
        }
        eng.step();
    }
    Observed {
        events: eng.trace().unwrap().events.clone(),
        stats: eng.stats().clone(),
        links: (0..n_links).map(|l| eng.link_value(l)).collect(),
        states: (0..n_blocks).map(|b| eng.peek_state(b).to_vec()).collect(),
    }
}

#[test]
fn worklist_matches_naive_scan_bit_for_bit() {
    let mut configs = 0;
    for seed in 0..6u64 {
        for &n in &[1usize, 2, 3, 5, 8, 13, 21, 34] {
            let mut order_rng = Rng::new(seed ^ (n as u64) << 8 ^ 0x5EED);
            let mut orders = vec![(0..n).collect::<Vec<_>>(), (0..n).rev().collect()];
            orders.push(random_order(&mut order_rng, n));
            for order in orders {
                let (spec_a, ext) = random_spec(seed * 1000 + n as u64, n);
                let (spec_b, ext_b) = random_spec(seed * 1000 + n as u64, n);
                assert_eq!(ext, ext_b, "spec generator must be deterministic");
                let poke = seed ^ 0xA0;
                let a = run_traced(
                    spec_a,
                    order.clone(),
                    Scheduling::HbrRoundRobin,
                    &ext,
                    poke,
                    12,
                );
                let b = run_traced(
                    spec_b,
                    order,
                    Scheduling::HbrRoundRobinNaive,
                    &ext,
                    poke,
                    12,
                );
                assert_eq!(a.events, b.events, "trace diverged (seed {seed}, n {n})");
                assert_eq!(
                    a.stats, b.stats,
                    "delta stats diverged (seed {seed}, n {n})"
                );
                assert_eq!(a.links, b.links);
                assert_eq!(a.states, b.states);
                configs += 1;
            }
        }
    }
    assert_eq!(configs, 6 * 8 * 3);
}

#[test]
fn full_passes_behaviour_is_unchanged() {
    // FullPasses shares eval_block with the worklist-tracked schedulers;
    // its observable behaviour (not its schedule) must match theirs.
    for seed in 0..4u64 {
        let n = 10;
        let (spec_a, ext) = random_spec(seed + 77, n);
        let (spec_b, _) = random_spec(seed + 77, n);
        let a = run_traced(
            spec_a,
            (0..n).collect(),
            Scheduling::HbrRoundRobin,
            &ext,
            seed,
            10,
        );
        let f = run_traced(
            spec_b,
            (0..n).collect(),
            Scheduling::FullPasses,
            &ext,
            seed,
            10,
        );
        assert_eq!(a.links, f.links, "seed {seed}");
        assert_eq!(a.states, f.states, "seed {seed}");
        assert!(f.stats.delta_cycles >= a.stats.delta_cycles);
    }
}

#[test]
fn snapshot_restore_resumes_bit_identical_through_worklist() {
    for seed in 0..4u64 {
        let n = 12;
        let (spec, ext) = random_spec(seed + 31, n);
        let (spec_fresh, _) = random_spec(seed + 31, n);
        let order: Vec<usize> = (0..n).rev().collect();

        let mut a = DynamicEngine::with_order(spec, order.clone());
        for &l in &ext {
            a.set_external(l, 0x1234);
        }
        a.run(7);
        let snap = a.snapshot();
        a.run(9);

        // Restore into a *fresh* engine (its worklist is rebuilt from the
        // restored HBR/evaluated state at the next step) and replay.
        let mut b = DynamicEngine::with_order(spec_fresh, order);
        b.restore(&snap);
        b.run(9);

        assert_eq!(a.cycle(), b.cycle(), "seed {seed}");
        assert_eq!(a.stats(), b.stats(), "seed {seed}");
        for l in 0..a.spec().links().len() {
            assert_eq!(a.link_value(l), b.link_value(l), "link {l}, seed {seed}");
        }
        for blk in 0..n {
            assert_eq!(
                a.peek_state(blk),
                b.peek_state(blk),
                "block {blk}, seed {seed}"
            );
        }
    }
}
