//! Block-contract checking.
//!
//! The dynamic scheduler's correctness rests on two properties of every
//! [`BlockKind`](crate::block::BlockKind) (the contract §4.2 imposes on
//! the extracted RTL):
//!
//! 1. **Determinism/idempotence** — re-evaluating with identical current
//!    state and inputs must produce identical next state and outputs
//!    (re-evaluation must be harmless);
//! 2. **Output monotony under re-write** — a second evaluation must leave
//!    any side-memory effects in the same final state (last write wins).
//!
//! The paper performs the register extraction manually and notes
//! "automatic transformations should be possible"; this module is the
//! verification side of that tooling: given a block and a set of probe
//! vectors, it checks the contract mechanically. All block kinds in this
//! repository are tested through it.

use crate::block::BlockKind;
use crate::side::SideMem;
use noc_types::bits::words_for_bits;

/// A single probe vector for a block evaluation.
#[derive(Debug, Clone)]
pub struct Probe {
    /// Current state words (must match the block's `state_bits`).
    pub cur: Vec<u64>,
    /// Input link values (must match the block's input count/widths).
    pub inputs: Vec<u64>,
    /// System cycle.
    pub cycle: u64,
}

/// Outcome of one contract violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Next-state words differed between two identical evaluations.
    NextStateDiffers {
        /// Index of the probe vector that exposed it.
        probe: usize,
    },
    /// Output link values differed between two identical evaluations.
    OutputsDiffer {
        /// Index of the probe vector that exposed it.
        probe: usize,
        /// Output port index.
        port: usize,
    },
    /// An output value exceeded its declared width.
    OutputOverflow {
        /// Index of the probe vector that exposed it.
        probe: usize,
        /// Output port index.
        port: usize,
        /// The offending value.
        value: u64,
    },
}

/// Check a block kind against the evaluation contract using the given
/// probe vectors. Returns all violations found (empty = clean).
pub fn check_block(kind: &dyn BlockKind, instance: usize, probes: &[Probe]) -> Vec<Violation> {
    let words = words_for_bits(kind.state_bits());
    let n_out = kind.output_widths().len();
    let mut violations = Vec::new();
    for (pi, p) in probes.iter().enumerate() {
        assert_eq!(p.cur.len(), words, "probe {pi}: wrong state width");
        assert_eq!(
            p.inputs.len(),
            kind.input_widths().len(),
            "probe {pi}: wrong input count"
        );
        let mut side = SideMem::new(&[kind.side_rings()]);
        let mut next_a = vec![0u64; words];
        let mut next_b = vec![0u64; words];
        let mut out_a = vec![0u64; n_out];
        let mut out_b = vec![0u64; n_out];
        kind.eval(
            instance,
            &p.cur,
            &p.inputs,
            p.cycle,
            &mut next_a,
            &mut out_a,
            &mut side.view(0),
        );
        kind.eval(
            instance,
            &p.cur,
            &p.inputs,
            p.cycle,
            &mut next_b,
            &mut out_b,
            &mut side.view(0),
        );
        if next_a != next_b {
            violations.push(Violation::NextStateDiffers { probe: pi });
        }
        for (port, (&a, &b)) in out_a.iter().zip(out_b.iter()).enumerate() {
            if a != b {
                violations.push(Violation::OutputsDiffer { probe: pi, port });
            }
            let width = kind.output_widths()[port];
            if width < 64 && a >= (1u64 << width) {
                violations.push(Violation::OutputOverflow {
                    probe: pi,
                    value: a,
                    port,
                });
            }
        }
    }
    violations
}

/// Generate pseudo-random probe vectors for a block: random (masked)
/// state and input words across several cycles. Deterministic in `seed`.
pub fn random_probes(kind: &dyn BlockKind, count: usize, seed: u64) -> Vec<Probe> {
    let words = words_for_bits(kind.state_bits());
    let in_widths = kind.input_widths();
    let mut x = seed | 1;
    let mut next = move || {
        // xorshift64*
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    (0..count)
        .map(|i| {
            // Random states exercise the decoder, but completely random
            // register files can violate the design's own invariants; a
            // reset state with random inputs is always meaningful, so
            // alternate.
            let cur = if i % 2 == 0 {
                let mut s = vec![0u64; words];
                kind.reset(&mut s);
                s
            } else {
                let mut s: Vec<u64> = (0..words).map(|_| next()).collect();
                // Trim the final partial word so packed fields stay in
                // range where possible.
                if !kind.state_bits().is_multiple_of(64) {
                    if let Some(last) = s.last_mut() {
                        *last &= (1u64 << (kind.state_bits() % 64)) - 1;
                    }
                }
                let _ = &mut s;
                s
            };
            let inputs = in_widths
                .iter()
                .map(|&w| {
                    let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
                    next() & mask
                })
                .collect();
            Probe {
                cur,
                inputs,
                cycle: i as u64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::{CombDemoKind, RegisteredDemoKind};
    use crate::side::SideView;

    #[test]
    fn demo_blocks_are_clean() {
        for kind in [&CombDemoKind::new(0), &CombDemoKind::new(1)] {
            let probes = random_probes(kind, 32, 7);
            assert!(check_block(kind, 0, &probes).is_empty());
        }
        let k = RegisteredDemoKind::new(0);
        let probes = random_probes(&k, 16, 9);
        assert!(check_block(&k, 0, &probes).is_empty());
    }

    /// A deliberately broken block: its output depends on an internal
    /// counter (hidden state), violating idempotence.
    struct Sneaky {
        hits: std::cell::Cell<u64>,
    }

    impl BlockKind for Sneaky {
        fn name(&self) -> &str {
            "sneaky"
        }
        fn state_bits(&self) -> usize {
            8
        }
        fn input_widths(&self) -> Vec<usize> {
            vec![8]
        }
        fn output_widths(&self) -> Vec<usize> {
            vec![8]
        }
        fn reset(&self, _s: &mut [u64]) {}
        fn eval(
            &self,
            _i: usize,
            _cur: &[u64],
            inputs: &[u64],
            _cycle: u64,
            next: &mut [u64],
            outputs: &mut [u64],
            _side: &mut SideView<'_>,
        ) {
            self.hits.set(self.hits.get() + 1);
            next[0] = inputs[0];
            outputs[0] = (inputs[0] + self.hits.get()) & 0xFF;
        }
    }

    #[test]
    fn hidden_state_is_caught() {
        let k = Sneaky {
            hits: std::cell::Cell::new(0),
        };
        let probes = random_probes(&k, 4, 3);
        let v = check_block(&k, 0, &probes);
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::OutputsDiffer { .. })));
    }

    /// A block that writes wider than its declared output.
    struct Wide;

    impl BlockKind for Wide {
        fn name(&self) -> &str {
            "wide"
        }
        fn state_bits(&self) -> usize {
            1
        }
        fn input_widths(&self) -> Vec<usize> {
            vec![]
        }
        fn output_widths(&self) -> Vec<usize> {
            vec![4]
        }
        fn reset(&self, _s: &mut [u64]) {}
        fn eval(
            &self,
            _i: usize,
            _cur: &[u64],
            _inputs: &[u64],
            _cycle: u64,
            next: &mut [u64],
            outputs: &mut [u64],
            _side: &mut SideView<'_>,
        ) {
            next[0] = 0;
            outputs[0] = 0x1F; // 5 bits into a 4-bit port
        }
    }

    #[test]
    fn overflow_is_caught() {
        let probes = random_probes(&Wide, 1, 1);
        let v = check_block(&Wide, 0, &probes);
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::OutputOverflow { value: 0x1F, .. })));
    }
}
