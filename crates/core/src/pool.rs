//! A persistent worker pool and a spin barrier for the sharded engine.
//!
//! The sharded delta-cycle engine (paper §4.1: blocks separated by
//! *registered* boundaries may be evaluated once per system cycle in any
//! order) runs one shard per worker and synchronises the workers at
//! system-cycle and exchange-round barriers. The barriers make the tasks
//! *interlocking*: every task of a dispatch must run on its own thread
//! concurrently, so spawning per call (as `std::thread::scope` maps do)
//! would pay thread start-up on every simulation period. [`ThreadPool`]
//! keeps the workers alive across dispatches; [`SpinBarrier`] keeps the
//! per-round synchronisation cost at a few cache-line round trips.

// The lifetime-erasing transmute in `scope` is the one audited unsafe
// block of the workspace; everything it touches is joined before the
// borrow ends.
#![allow(unsafe_code)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread::JoinHandle;

/// A boxed task with a caller-chosen (non-`'static`) borrow lifetime.
pub type ScopedTask<'a> = Box<dyn FnOnce() + Send + 'a>;

/// The shared worker-count knob for every parallel sweep in the
/// workspace (the batched engine's lane groups, `par_map` in the root
/// crate).
///
/// Resolution order: an `explicit` count from a builder method wins;
/// otherwise the `SOC_SIM_THREADS` environment variable (a positive
/// integer; an unparsable or zero value is ignored with a once-per-process
/// stderr warning naming it); otherwise the host's
/// [`std::thread::available_parallelism`]. Always at least 1.
pub fn worker_count(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("SOC_SIM_THREADS") {
        match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => return n,
            _ => {
                // Warn once so a misconfigured deployment (e.g.
                // SOC_SIM_THREADS=0 or a typo) is visible instead of
                // silently falling back to all cores.
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: ignoring SOC_SIM_THREADS={v:?}: \
                         not a positive integer; using available parallelism"
                    );
                });
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Worker {
    tx: mpsc::Sender<Job>,
    handle: Option<JoinHandle<()>>,
}

/// A persistent pool of worker threads for interlocking task sets.
///
/// Unlike a work-stealing pool, [`run`](Self::run) pins task `i` to
/// worker `i`: the sharded engine's tasks block on a shared barrier, so
/// two tasks multiplexed onto one thread would deadlock. The pool
/// outlives many dispatches; workers park on their channel between
/// dispatches.
pub struct ThreadPool {
    workers: Vec<Worker>,
}

impl ThreadPool {
    /// Spawn `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let workers = (0..threads.max(1))
            .map(|i| {
                let (tx, rx) = mpsc::channel::<Job>();
                let handle = std::thread::Builder::new()
                    .name(format!("seqsim-shard-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .unwrap_or_else(|e| panic!("spawn pool worker: {e}"));
                Worker {
                    tx,
                    handle: Some(handle),
                }
            })
            .collect();
        ThreadPool { workers }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Run `tasks` to completion, task `i` on worker `i`, blocking the
    /// caller until every task has finished. Tasks may borrow from the
    /// caller's stack: the blocking collect below is what makes the
    /// lifetime erasure sound — no borrowed data outlives this call.
    ///
    /// Panics inside a task are caught on the worker (keeping the worker
    /// alive), collected, and the first payload is re-raised here after
    /// *all* tasks have completed.
    ///
    /// # Panics
    /// Panics when `tasks.len()` exceeds [`threads`](Self::threads), and
    /// re-raises the first task panic.
    pub fn run<'a>(&self, tasks: Vec<ScopedTask<'a>>) {
        assert!(
            tasks.len() <= self.workers.len(),
            "{} interlocking tasks need {} workers, pool has {}",
            tasks.len(),
            tasks.len(),
            self.workers.len()
        );
        let n = tasks.len();
        let (done_tx, done_rx) = mpsc::channel::<Option<Box<dyn std::any::Any + Send>>>();
        for (i, task) in tasks.into_iter().enumerate() {
            // SAFETY: the worker runs the task to completion and then
            // sends on `done_tx`; this function blocks until all `n`
            // completions arrive, so every borrow in `task` is live for
            // the task's whole execution. Trait-object boxes with
            // different lifetime bounds share one layout.
            let task: Job = unsafe { std::mem::transmute::<ScopedTask<'a>, Job>(task) };
            let tx = done_tx.clone();
            let sent = self.workers[i].tx.send(Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(task));
                // The receiver only disappears if the dispatching
                // thread itself panicked; nothing left to report to.
                let _ = tx.send(result.err());
            }));
            // A worker loop only exits when its channel is closed, which
            // happens in Drop; a send can therefore not fail here.
            if sent.is_err() {
                unreachable!("pool worker {i} hung up before Drop");
            }
        }
        drop(done_tx);
        let mut first_panic = None;
        for _ in 0..n {
            // Every dispatched job sends exactly one completion (panics
            // are caught inside the job), so recv cannot fail before all
            // n completions arrive.
            let Ok(outcome) = done_rx.recv() else {
                unreachable!("pool worker dropped its completion channel");
            };
            if let Some(p) = outcome {
                first_panic.get_or_insert(p);
            }
        }
        if let Some(p) = first_panic {
            resume_unwind(p);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channels ends the worker loops.
        for w in &mut self.workers {
            let (dead_tx, _) = mpsc::channel();
            w.tx = dead_tx;
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// Marker error: the barrier was poisoned by a failing party.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierPoisoned;

/// A sense-reversing spin barrier for a fixed party count.
///
/// Parties spin briefly (the exchange rounds between shards settle in
/// well under a scheduling quantum on dedicated cores) and then yield, so
/// an oversubscribed host degrades to cooperative scheduling instead of
/// livelock. A party that panics while others wait must call
/// [`poison`](Self::poison) so the waiters panic out instead of spinning
/// forever.
pub struct SpinBarrier {
    count: AtomicUsize,
    generation: AtomicUsize,
    parties: usize,
    poisoned: AtomicBool,
}

/// Spins before each `yield_now` once the barrier looks slow.
const SPINS_BEFORE_YIELD: u32 = 1 << 12;

impl SpinBarrier {
    /// A barrier for `parties` participants (at least one).
    pub fn new(parties: usize) -> Self {
        SpinBarrier {
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            parties: parties.max(1),
            poisoned: AtomicBool::new(false),
        }
    }

    /// The configured party count.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Block until all parties have arrived. Returns `true` on exactly
    /// one party per generation (the "leader", the last to arrive).
    ///
    /// # Panics
    /// Panics when the barrier is [poisoned](Self::poison). Use
    /// [`try_wait`](Self::try_wait) to observe poisoning as a value.
    pub fn wait(&self) -> bool {
        match self.try_wait() {
            Ok(leader) => leader,
            Err(BarrierPoisoned) => panic!("barrier poisoned"),
        }
    }

    /// [`wait`](Self::wait) that reports poisoning instead of panicking:
    /// returns `Err(BarrierPoisoned)` when the barrier was poisoned
    /// before or during the wait, letting interlocked workers unwind
    /// cooperatively after a peer's failure.
    pub fn try_wait(&self) -> Result<bool, BarrierPoisoned> {
        if self.poisoned.load(Ordering::Relaxed) {
            return Err(BarrierPoisoned);
        }
        let gen = self.generation.load(Ordering::Acquire);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.parties {
            self.count.store(0, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            return Ok(true);
        }
        let mut spins: u32 = 0;
        while self.generation.load(Ordering::Acquire) == gen {
            if self.poisoned.load(Ordering::Relaxed) {
                return Err(BarrierPoisoned);
            }
            spins = spins.wrapping_add(1);
            if spins < SPINS_BEFORE_YIELD {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        Ok(false)
    }

    /// Mark the barrier broken; current and future waiters panic.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn pool_runs_borrowing_tasks_to_completion() {
        let pool = ThreadPool::new(4);
        let mut outputs = vec![0u64; 4];
        {
            let tasks: Vec<ScopedTask<'_>> = outputs
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    let t: ScopedTask<'_> = Box::new(move || *slot = (i as u64 + 1) * 10);
                    t
                })
                .collect();
            pool.run(tasks);
        }
        assert_eq!(outputs, vec![10, 20, 30, 40]);
    }

    #[test]
    fn pool_is_reusable_across_dispatches() {
        let pool = ThreadPool::new(2);
        let hits = AtomicU64::new(0);
        for _ in 0..50 {
            let tasks: Vec<ScopedTask<'_>> = (0..2)
                .map(|_| {
                    let t: ScopedTask<'_> = Box::new(|| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                    t
                })
                .collect();
            pool.run(tasks);
        }
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn interlocking_tasks_meet_at_the_barrier() {
        let pool = ThreadPool::new(3);
        let barrier = SpinBarrier::new(3);
        let before = AtomicU64::new(0);
        let after_ok = AtomicU64::new(0);
        let tasks: Vec<ScopedTask<'_>> = (0..3)
            .map(|_| {
                let t: ScopedTask<'_> = Box::new(|| {
                    before.fetch_add(1, Ordering::SeqCst);
                    barrier.wait();
                    // Everyone arrived before anyone proceeds.
                    if before.load(Ordering::SeqCst) == 3 {
                        after_ok.fetch_add(1, Ordering::SeqCst);
                    }
                });
                t
            })
            .collect();
        pool.run(tasks);
        assert_eq!(after_ok.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn barrier_elects_one_leader_per_generation() {
        let pool = ThreadPool::new(4);
        let barrier = SpinBarrier::new(4);
        let leaders = AtomicU64::new(0);
        let tasks: Vec<ScopedTask<'_>> = (0..4)
            .map(|_| {
                let t: ScopedTask<'_> = Box::new(|| {
                    for _ in 0..100 {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
                t
            })
            .collect();
        pool.run(tasks);
        assert_eq!(leaders.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn task_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<ScopedTask<'_>> =
                vec![Box::new(|| panic!("shard exploded")), Box::new(|| {})];
            pool.run(tasks);
        }));
        let payload = r.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().expect("payload preserved");
        assert_eq!(*msg, "shard exploded");
        // Workers caught the panic and are still serviceable.
        let ok = AtomicU64::new(0);
        let tasks: Vec<ScopedTask<'_>> = (0..2)
            .map(|_| {
                let t: ScopedTask<'_> = Box::new(|| {
                    ok.fetch_add(1, Ordering::Relaxed);
                });
                t
            })
            .collect();
        pool.run(tasks);
        assert_eq!(ok.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn poisoned_barrier_releases_waiters_by_panicking() {
        let pool = ThreadPool::new(2);
        let barrier = Arc::new(SpinBarrier::new(2));
        let r = catch_unwind(AssertUnwindSafe(|| {
            let b1 = barrier.clone();
            let b2 = barrier.clone();
            let tasks: Vec<ScopedTask<'_>> = vec![
                Box::new(move || {
                    // Simulates a shard failing before reaching the
                    // barrier: poison, then panic.
                    b1.poison();
                    panic!("shard died");
                }),
                Box::new(move || {
                    b2.wait();
                }),
            ];
            pool.run(tasks);
        }));
        assert!(r.is_err(), "one of the panics must surface");
    }

    #[test]
    #[should_panic(expected = "interlocking tasks")]
    fn oversized_dispatch_is_rejected() {
        let pool = ThreadPool::new(1);
        let tasks: Vec<ScopedTask<'_>> = vec![Box::new(|| {}), Box::new(|| {})];
        pool.run(tasks);
    }
}
