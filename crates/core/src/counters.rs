//! Delta-cycle accounting (paper §4 and §6).
//!
//! "A delta cycle is defined as a clock cycle in the sequential simulator
//! that evaluates one function but does not advance the simulation time. A
//! system cycle is a clock cycle in the simulated parallel system [...] A
//! system cycle consists of multiple delta cycles."
//!
//! §6: "The minimum number of delta cycles per system cycle is equal to the
//! number of routers of the NoC. In the extra delta cycles, unstable
//! routers are re-evaluated [...] The percentage of extra delta cycles is
//! between 1.5 and 2 times the input load."

/// Accumulated delta-cycle statistics for a simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// System cycles simulated.
    pub system_cycles: u64,
    /// Total delta cycles (block evaluations).
    pub delta_cycles: u64,
    /// Delta cycles beyond the first evaluation of each block per system
    /// cycle (re-evaluations, §4.2).
    pub re_evaluations: u64,
    /// Delta cycles spent in the most recent system cycle.
    pub deltas_last_cycle: u64,
    /// Largest delta-cycle count observed in a single system cycle.
    pub max_deltas_in_cycle: u64,
}

impl DeltaStats {
    /// Record one completed system cycle that took `deltas` evaluations of
    /// a system with `num_blocks` blocks.
    pub fn record_cycle(&mut self, deltas: u64, num_blocks: u64) {
        self.system_cycles += 1;
        self.delta_cycles += deltas;
        self.re_evaluations += deltas.saturating_sub(num_blocks);
        self.deltas_last_cycle = deltas;
        self.max_deltas_in_cycle = self.max_deltas_in_cycle.max(deltas);
    }

    /// Mean delta cycles per system cycle.
    pub fn avg_deltas_per_cycle(&self) -> f64 {
        if self.system_cycles == 0 {
            0.0
        } else {
            self.delta_cycles as f64 / self.system_cycles as f64
        }
    }

    /// Fraction of delta cycles that are re-evaluations, relative to the
    /// minimum (`num_blocks` per cycle). This is the paper's "percentage of
    /// extra delta cycles".
    pub fn extra_fraction(&self, num_blocks: u64) -> f64 {
        let min = self.system_cycles * num_blocks;
        if min == 0 {
            0.0
        } else {
            self.re_evaluations as f64 / min as f64
        }
    }

    /// Serialize all counters for a durable checkpoint.
    pub fn encode(&self, e: &mut crate::wire::Enc) {
        e.u64(self.system_cycles);
        e.u64(self.delta_cycles);
        e.u64(self.re_evaluations);
        e.u64(self.deltas_last_cycle);
        e.u64(self.max_deltas_in_cycle);
    }

    /// Rebuild counters encoded by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// [`crate::wire::WireError`] on underrun.
    pub fn decode(d: &mut crate::wire::Dec<'_>) -> Result<Self, crate::wire::WireError> {
        Ok(DeltaStats {
            system_cycles: d.u64()?,
            delta_cycles: d.u64()?,
            re_evaluations: d.u64()?,
            deltas_last_cycle: d.u64()?,
            max_deltas_in_cycle: d.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let mut s = DeltaStats::default();
        s.record_cycle(36, 36);
        s.record_cycle(40, 36);
        s.record_cycle(38, 36);
        assert_eq!(s.system_cycles, 3);
        assert_eq!(s.delta_cycles, 114);
        assert_eq!(s.re_evaluations, 6);
        assert_eq!(s.deltas_last_cycle, 38);
        assert_eq!(s.max_deltas_in_cycle, 40);
        assert!((s.avg_deltas_per_cycle() - 38.0).abs() < 1e-12);
        assert!((s.extra_fraction(36) - 6.0 / 108.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = DeltaStats::default();
        assert_eq!(s.avg_deltas_per_cycle(), 0.0);
        assert_eq!(s.extra_fraction(10), 0.0);
    }
}
