//! The paper's running example systems.
//!
//! * [`RegisteredDemoKind`] / [`registered_demo`] — the three-block system
//!   with registered boundaries of Fig 2: combinational circuitries
//!   `F1(x)`, `F2(x)` (sharing implementation `F'1,2`) and `F3(x)`
//!   connected in a ring through registers. Simulated with the
//!   [`StaticEngine`](crate::static_sched::StaticEngine) it reproduces the
//!   static schedule of Fig 3.
//! * [`CombDemoKind`] / [`comb_demo`] — the three-block system with
//!   combinatorial boundaries of Fig 4: each block is a pair `(F, G)`
//!   where `F` updates the internal state and `G` drives the output link;
//!   downstream blocks read `G` of their predecessor *within the same
//!   system cycle*. Simulated with the
//!   [`DynamicEngine`](crate::dynamic_sched::DynamicEngine) it reproduces
//!   the dynamic (HBR) schedule with re-evaluations of Fig 5.

use crate::block::{BitExpr, BitSemantics, BlockKind, CombInputs, SystemSpec};
use crate::side::SideView;
use noc_types::bits::{BitReader, BitWriter};

/// Word width of the demo systems' links and registers.
pub const DEMO_WIDTH: usize = 16;

/// Combinational block of the registered-boundary demo (Fig 2).
///
/// Stateless: its input and output registers are the engine's link banks,
/// exactly as Fig 2b maps `R1..3` and `R'1..3` into the state memory.
#[derive(Debug, Clone)]
pub struct RegisteredDemoKind {
    variant: u8,
}

impl RegisteredDemoKind {
    /// Variant 0 is the shared implementation `F'1,2`; variant 1 is `F'3`.
    pub fn new(variant: u8) -> Self {
        Self { variant }
    }

    /// The combinational function of this variant.
    pub fn f(&self, x: u64) -> u64 {
        match self.variant {
            0 => (x.wrapping_mul(3) + 1) & 0xFFFF,
            _ => ((x ^ (x >> 3)) + 7) & 0xFFFF,
        }
    }
}

impl BlockKind for RegisteredDemoKind {
    fn name(&self) -> &str {
        if self.variant == 0 {
            "F'1,2"
        } else {
            "F'3"
        }
    }

    fn state_bits(&self) -> usize {
        0
    }

    fn input_widths(&self) -> Vec<usize> {
        vec![DEMO_WIDTH]
    }

    fn output_widths(&self) -> Vec<usize> {
        vec![DEMO_WIDTH]
    }

    fn reset(&self, _state: &mut [u64]) {}

    fn eval(
        &self,
        _instance: usize,
        _cur: &[u64],
        inputs: &[u64],
        _cycle: u64,
        _next: &mut [u64],
        outputs: &mut [u64],
        _side: &mut SideView<'_>,
    ) {
        outputs[0] = self.f(inputs[0]);
    }
}

/// Build the Fig 2 system: `F1 → F2 → F3 → F1` in a ring, registers on
/// every boundary, with initial register values `r1..r3` on the links
/// feeding `F1..F3`. Returns the spec and the three link ids `[R1,R2,R3]`
/// (`Ri` feeds `Fi`).
pub fn registered_demo(r: [u64; 3]) -> (SystemSpec, [usize; 3]) {
    let mut spec = SystemSpec::new();
    let f12 = spec.add_kind(Box::new(RegisteredDemoKind::new(0)));
    let f3 = spec.add_kind(Box::new(RegisteredDemoKind::new(1)));
    let b1 = spec.add_block(f12);
    let b2 = spec.add_block(f12);
    let b3 = spec.add_block(f3);
    // Link written by F_i feeds F_{i+1}; the link feeding F1 is written by F3.
    let r2 = spec.wire((b1, 0), (b2, 0)); // R2 = F1 output register
    let r3 = spec.wire((b2, 0), (b3, 0)); // R3 = F2 output register
    let r1 = spec.wire((b3, 0), (b1, 0)); // R1 = F3 output register
    spec.set_link_reset(r1, r[0]);
    spec.set_link_reset(r2, r[1]);
    spec.set_link_reset(r3, r[2]);
    (spec, [r1, r2, r3])
}

/// Golden model of the registered demo: the *parallel* semantics, updating
/// all three registers simultaneously each cycle. Used to check that any
/// sequential schedule produces the identical trajectory.
pub fn registered_demo_reference(r: [u64; 3], cycles: u64) -> [u64; 3] {
    let f12 = RegisteredDemoKind::new(0);
    let f3 = RegisteredDemoKind::new(1);
    let mut reg = r;
    for _ in 0..cycles {
        let n2 = f12.f(reg[0]); // F1 reads R1, writes R2
        let n3 = f12.f(reg[1]); // F2 reads R2, writes R3
        let n1 = f3.f(reg[2]); //  F3 reads R3, writes R1
        reg = [n1, n2, n3];
    }
    reg
}

/// Block of the combinatorial-boundary demo (Fig 4).
///
/// State `s` (16 bits). Output `G(s, x)`; state update `F(s, x)`. Variant 0
/// ("source") has a registered output `G = s`, breaking the combinational
/// ring so the system is signal-acyclic — the same structural property the
/// NoC router has (its flow-control outputs are functions of registered
/// state only).
#[derive(Debug, Clone)]
pub struct CombDemoKind {
    variant: u8,
}

impl CombDemoKind {
    /// Variant 0: registered output (`G = s`); variant 1: combinational
    /// pass-through (`G = s ^ x`).
    pub fn new(variant: u8) -> Self {
        Self { variant }
    }

    /// Output function `G(s, x)`.
    pub fn g(&self, s: u64, x: u64) -> u64 {
        match self.variant {
            0 => s,
            _ => (s ^ x) & 0xFFFF,
        }
    }

    /// State-update function `F(s, x)`.
    pub fn f(&self, s: u64, x: u64) -> u64 {
        match self.variant {
            0 => (s + x) & 0xFFFF,
            _ => (s + x + 1) & 0xFFFF,
        }
    }
}

impl BlockKind for CombDemoKind {
    fn name(&self) -> &str {
        if self.variant == 0 {
            "FG-registered"
        } else {
            "FG-comb"
        }
    }

    fn state_bits(&self) -> usize {
        DEMO_WIDTH
    }

    fn input_widths(&self) -> Vec<usize> {
        vec![DEMO_WIDTH]
    }

    fn output_widths(&self) -> Vec<usize> {
        vec![DEMO_WIDTH]
    }

    fn reset(&self, state: &mut [u64]) {
        let mut w = BitWriter::new(state);
        w.put(DEMO_WIDTH, (1 + self.variant as u64) * 3);
    }

    fn eval(
        &self,
        _instance: usize,
        cur: &[u64],
        inputs: &[u64],
        _cycle: u64,
        next: &mut [u64],
        outputs: &mut [u64],
        _side: &mut SideView<'_>,
    ) {
        let s = BitReader::new(cur).take(DEMO_WIDTH);
        let x = inputs[0];
        BitWriter::new(next).put(DEMO_WIDTH, self.f(s, x));
        outputs[0] = self.g(s, x);
    }

    fn comb_inputs(&self, _port: usize) -> CombInputs {
        if self.variant == 0 {
            // `G = s`: registered output, the edge that breaks the ring.
            CombInputs::None
        } else {
            // `G = s ^ x`: the input feeds through combinationally.
            CombInputs::All
        }
    }
}

/// The boolean operation of a [`GateKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateOp {
    /// `out = a & b` (two inputs).
    And,
    /// `out = a | b` (two inputs).
    Or,
    /// `out = a ^ b` (two inputs).
    Xor,
    /// `out = !a` (one input).
    Not,
    /// `out = a` (one input).
    Buf,
}

/// A stateless width-1 combinational gate with *exact* declared bit
/// semantics ([`BlockKind::bit_semantics`]) and GSIM-style lanewise
/// packing ([`BlockKind::bit_parallel`]).
///
/// These are the demo counterpart of the router's control-plane bits:
/// small enough that the `speccheck` bitflow pass can fold them
/// completely (constant propagation through gate networks), and the
/// bitflow soundness property suite uses random gate networks to
/// cross-check abstract claims against concrete engine runs.
///
/// `eval` deliberately leaves the output word unmasked (e.g. `!a` sets
/// all 64 bits): the scalar engines mask on scatter, and the batched
/// bitwise path relies on the raw word being lanewise-correct across
/// all 64 packed lanes.
#[derive(Debug, Clone)]
pub struct GateKind {
    op: GateOp,
}

impl GateKind {
    /// A gate computing `op`.
    pub fn new(op: GateOp) -> Self {
        Self { op }
    }

    /// The gate's operation.
    pub fn op(&self) -> GateOp {
        self.op
    }
}

impl BlockKind for GateKind {
    fn name(&self) -> &str {
        match self.op {
            GateOp::And => "gate-and",
            GateOp::Or => "gate-or",
            GateOp::Xor => "gate-xor",
            GateOp::Not => "gate-not",
            GateOp::Buf => "gate-buf",
        }
    }

    fn state_bits(&self) -> usize {
        0
    }

    fn input_widths(&self) -> Vec<usize> {
        match self.op {
            GateOp::Not | GateOp::Buf => vec![1],
            _ => vec![1, 1],
        }
    }

    fn output_widths(&self) -> Vec<usize> {
        vec![1]
    }

    fn reset(&self, _state: &mut [u64]) {}

    fn eval(
        &self,
        _instance: usize,
        _cur: &[u64],
        inputs: &[u64],
        _cycle: u64,
        _next: &mut [u64],
        outputs: &mut [u64],
        _side: &mut SideView<'_>,
    ) {
        outputs[0] = match self.op {
            GateOp::And => inputs[0] & inputs[1],
            GateOp::Or => inputs[0] | inputs[1],
            GateOp::Xor => inputs[0] ^ inputs[1],
            GateOp::Not => !inputs[0],
            GateOp::Buf => inputs[0],
        };
    }

    fn bit_parallel(&self) -> bool {
        true
    }

    fn bit_semantics(&self, port: usize) -> Option<BitSemantics> {
        debug_assert_eq!(port, 0);
        let a = || Box::new(BitExpr::In { port: 0, bit: 0 });
        let b = || Box::new(BitExpr::In { port: 1, bit: 0 });
        let expr = match self.op {
            GateOp::And => BitExpr::And(a(), b()),
            GateOp::Or => BitExpr::Or(a(), b()),
            GateOp::Xor => BitExpr::Xor(a(), b()),
            GateOp::Not => BitExpr::Not(a()),
            GateOp::Buf => BitExpr::In { port: 0, bit: 0 },
        };
        Some(BitSemantics { bits: vec![expr] })
    }
}

/// Build the Fig 4 system: ring `B0 → B1 → B2 → B0` where `B0` has a
/// registered output and `B1`, `B2` pass combinationally. Returns the spec
/// and the link ids `[y0, y1, y2]` (`yi` is the output of `Bi`).
pub fn comb_demo() -> (SystemSpec, [usize; 3]) {
    let mut spec = SystemSpec::new();
    let reg = spec.add_kind(Box::new(CombDemoKind::new(0)));
    let compass = spec.add_kind(Box::new(CombDemoKind::new(1)));
    let b0 = spec.add_block(reg);
    let b1 = spec.add_block(compass);
    let b2 = spec.add_block(compass);
    let y0 = spec.wire((b0, 0), (b1, 0));
    let y1 = spec.wire((b1, 0), (b2, 0));
    let y2 = spec.wire((b2, 0), (b0, 0));
    (spec, [y0, y1, y2])
}

/// Golden model of the combinatorial demo: parallel semantics with correct
/// combinational settling (topological evaluation of `G` before register
/// update). Returns the state `[s0, s1, s2]` after `cycles`.
pub fn comb_demo_reference(cycles: u64) -> [u64; 3] {
    let k0 = CombDemoKind::new(0);
    let k1 = CombDemoKind::new(1);
    let mut s = [3u64, 6, 6];
    for _ in 0..cycles {
        // Combinational settle (topological: y0 then y1 then y2).
        let y0 = k0.g(s[0], 0);
        let y1 = k1.g(s[1], y0);
        let y2 = k1.g(s[2], y1);
        // Clock edge.
        s = [k0.f(s[0], y2), k1.f(s[1], y0), k1.f(s[2], y1)];
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic_sched::{DynamicEngine, Scheduling};
    use crate::static_sched::StaticEngine;
    use noc_types::bits::BitReader;

    #[test]
    fn static_engine_matches_parallel_reference() {
        let init = [5u64, 11, 200];
        for cycles in [1u64, 2, 3, 10, 100] {
            let (spec, regs) = registered_demo(init);
            let mut eng = StaticEngine::new(spec);
            eng.run(cycles);
            let expect = registered_demo_reference(init, cycles);
            let got = [
                eng.link_value(regs[0]),
                eng.link_value(regs[1]),
                eng.link_value(regs[2]),
            ];
            assert_eq!(got, expect, "after {cycles} cycles");
        }
    }

    #[test]
    fn static_engine_order_independent() {
        let init = [1u64, 2, 3];
        let orders: [[usize; 3]; 4] = [[0, 1, 2], [2, 1, 0], [1, 2, 0], [2, 0, 1]];
        let mut results = Vec::new();
        for order in orders {
            let (spec, regs) = registered_demo(init);
            let mut eng = StaticEngine::with_order(spec, order.to_vec());
            eng.run(17);
            results.push([
                eng.link_value(regs[0]),
                eng.link_value(regs[1]),
                eng.link_value(regs[2]),
            ]);
        }
        assert!(results.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn fig3_static_schedule_golden() {
        let (spec, _) = registered_demo([1, 2, 3]);
        let mut eng = StaticEngine::new(spec);
        eng.enable_trace();
        eng.run(3);
        // Fig 3: three system cycles, each evaluating F'1,2 (as F1), F'1,2
        // (as F2), F'3 — delta cycles (c,0)(c,1)(c,2).
        let tuples = eng.trace().unwrap().tuples();
        let expect: Vec<(u64, u32, usize)> = (0..3u64)
            .flat_map(|c| (0..3u32).map(move |d| (c, d, d as usize)))
            .collect();
        assert_eq!(tuples, expect);
    }

    fn comb_state(eng: &DynamicEngine, b: usize) -> u64 {
        BitReader::new(eng.peek_state(b)).take(DEMO_WIDTH)
    }

    #[test]
    fn dynamic_engine_matches_parallel_reference() {
        for cycles in [1u64, 2, 3, 25] {
            let (spec, _) = comb_demo();
            let mut eng = DynamicEngine::new(spec);
            eng.run(cycles);
            let expect = comb_demo_reference(cycles);
            let got = [
                comb_state(&eng, 0),
                comb_state(&eng, 1),
                comb_state(&eng, 2),
            ];
            assert_eq!(got, expect, "after {cycles} cycles");
        }
    }

    #[test]
    fn dynamic_engine_order_independent_behaviour() {
        let orders: [[usize; 3]; 3] = [[0, 1, 2], [2, 1, 0], [1, 0, 2]];
        for order in orders {
            let (spec, _) = comb_demo();
            let mut eng = DynamicEngine::with_order(spec, order.to_vec());
            eng.run(25);
            let expect = comb_demo_reference(25);
            let got = [
                comb_state(&eng, 0),
                comb_state(&eng, 1),
                comb_state(&eng, 2),
            ];
            assert_eq!(got, expect, "order {order:?}");
        }
    }

    #[test]
    fn fig5_dynamic_schedule_has_reevaluations_in_bad_order() {
        // Reverse-topological order forces the Fig 5 cascade: changes
        // propagate B0→B1→B2 but evaluation visits B2,B1,B0.
        let (spec, _) = comb_demo();
        let mut eng = DynamicEngine::with_order(spec, vec![2, 1, 0]);
        eng.enable_trace();
        eng.step();
        let trace = eng.trace().unwrap();
        assert!(
            !trace.re_evaluations().is_empty(),
            "expected re-evaluations, got trace:\n{}",
            trace.render()
        );
        // Minimum one eval per block plus the re-evaluations.
        assert_eq!(trace.events.len() as u64, eng.stats().delta_cycles,);
        assert!(eng.stats().delta_cycles > 3);
    }

    #[test]
    fn dynamic_engine_topological_order_needs_no_reevaluation_when_quiescent() {
        // In topological order, a cycle where nothing changes on the links
        // costs exactly N delta cycles.
        let (spec, _) = comb_demo();
        let mut eng = DynamicEngine::new(spec);
        eng.run(40);
        // Steady state: values still change every cycle in this demo, so
        // instead check the minimum bound holds and re-evals are bounded.
        assert!(eng.stats().delta_cycles >= 40 * 3);
        assert!(eng.stats().max_deltas_in_cycle <= 9);
    }

    #[test]
    fn full_passes_matches_hbr_behaviour_with_more_deltas() {
        let (spec, _) = comb_demo();
        let mut hbr = DynamicEngine::new(spec);
        let (spec2, _) = comb_demo();
        let mut full = DynamicEngine::new(spec2);
        full.set_scheduling(Scheduling::FullPasses);
        hbr.run(20);
        full.run(20);
        for b in 0..3 {
            assert_eq!(comb_state(&hbr, b), comb_state(&full, b));
        }
        assert!(full.stats().delta_cycles >= hbr.stats().delta_cycles);
    }

    #[test]
    fn gate_bit_semantics_match_eval_exhaustively() {
        use crate::side::SideMem;
        for op in [
            GateOp::And,
            GateOp::Or,
            GateOp::Xor,
            GateOp::Not,
            GateOp::Buf,
        ] {
            let k = GateKind::new(op);
            let sem = k.bit_semantics(0).unwrap();
            assert_eq!(sem.bits.len(), 1);
            assert!(sem.bits[0].is_pure());
            let n_in = k.input_widths().len();
            let mut mem = SideMem::new(&[vec![]]);
            for v in 0..(1u64 << n_in) {
                let inputs: Vec<u64> = (0..n_in).map(|i| (v >> i) & 1).collect();
                let mut out = [0u64];
                k.eval(0, &[], &inputs, 0, &mut [], &mut out, &mut mem.view(0));
                assert_eq!(
                    out[0] & 1,
                    u64::from(sem.bits[0].eval_concrete(&inputs)),
                    "{op:?} inputs {inputs:?}"
                );
            }
        }
    }

    #[test]
    fn static_engine_is_wrong_for_comb_boundaries() {
        // Negative control for §4.1 vs §4.2: treating the combinatorial
        // demo's links as registered changes the behaviour.
        let (spec, _) = comb_demo();
        let mut eng = StaticEngine::new(spec);
        eng.run(5);
        let expect = comb_demo_reference(5);
        let got: Vec<u64> = (0..3)
            .map(|b| BitReader::new(eng.peek_state(b)).take(DEMO_WIDTH))
            .collect();
        assert_ne!(got, expect.to_vec());
    }
}
