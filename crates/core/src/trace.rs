//! Schedule tracing — regenerates the paper's Fig 3 (static schedule) and
//! Fig 5 (dynamic schedule with re-evaluations).

use crate::block::{BlockId, LinkId};

/// One delta cycle in a recorded schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// System cycle the evaluation belongs to.
    pub system_cycle: u64,
    /// Delta index within the system cycle (0-based).
    pub delta: u32,
    /// Which block was evaluated.
    pub block: BlockId,
    /// Output links whose value *changed* (underlined values in Fig 5).
    pub changed_links: Vec<LinkId>,
    /// Whether this was a re-evaluation (the block had already been
    /// evaluated in this system cycle).
    pub re_evaluation: bool,
}

/// A recording of the delta-cycle schedule of a run.
///
/// By default the recording is unbounded (the Fig 3/Fig 5 reproductions
/// trace a handful of cycles). Long dynamic-schedule runs should bound
/// it with [`with_limit`](Self::with_limit): once `limit` events are
/// held, further events are dropped and counted instead of growing
/// memory without bound.
#[derive(Debug, Clone, Default)]
pub struct ScheduleTrace {
    /// Recorded events in execution order.
    pub events: Vec<TraceEvent>,
    limit: Option<usize>,
    dropped: u64,
}

impl ScheduleTrace {
    /// An empty trace that keeps at most `limit` events and counts the
    /// overflow in [`dropped`](Self::dropped).
    pub fn with_limit(limit: usize) -> Self {
        ScheduleTrace {
            events: Vec::new(),
            limit: Some(limit),
            dropped: 0,
        }
    }

    /// Record one event, honouring the configured limit.
    pub fn push(&mut self, e: TraceEvent) {
        if self.limit.is_some_and(|l| self.events.len() >= l) {
            self.dropped += 1;
        } else {
            self.events.push(e);
        }
    }

    /// The configured event cap, if any.
    pub fn limit(&self) -> Option<usize> {
        self.limit
    }

    /// Events dropped because the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
    /// Render the trace in the paper's `(system, delta)` notation, e.g.
    /// `(1,2): eval B0 *re-eval* [link 2 changed]`.
    pub fn render(&self) -> String {
        use core::fmt::Write;
        let mut out = String::new();
        for e in &self.events {
            let _ = write!(out, "({},{}): eval B{}", e.system_cycle, e.delta, e.block);
            if e.re_evaluation {
                let _ = write!(out, " *re-eval*");
            }
            if !e.changed_links.is_empty() {
                let links: Vec<String> = e.changed_links.iter().map(|l| format!("L{l}")).collect();
                let _ = write!(out, " [changed {}]", links.join(","));
            }
            out.push('\n');
        }
        out
    }

    /// The compact `(cycle,delta)->block` tuples, convenient for golden
    /// assertions.
    pub fn tuples(&self) -> Vec<(u64, u32, BlockId)> {
        self.events
            .iter()
            .map(|e| (e.system_cycle, e.delta, e.block))
            .collect()
    }

    /// The `(cycle, delta)` coordinates of re-evaluations — the paper's
    /// "delta cycle (1,1);(1,2);(2,0);(2,1)" enumeration for Fig 5.
    pub fn re_evaluations(&self) -> Vec<(u64, u32)> {
        self.events
            .iter()
            .filter(|e| e.re_evaluation)
            .map(|e| (e.system_cycle, e.delta))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_format() {
        let mut t = ScheduleTrace::default();
        t.push(TraceEvent {
            system_cycle: 0,
            delta: 0,
            block: 2,
            changed_links: vec![],
            re_evaluation: false,
        });
        t.push(TraceEvent {
            system_cycle: 1,
            delta: 2,
            block: 0,
            changed_links: vec![2],
            re_evaluation: true,
        });
        let s = t.render();
        assert!(s.contains("(0,0): eval B2"));
        assert!(s.contains("(1,2): eval B0 *re-eval* [changed L2]"));
        assert_eq!(t.re_evaluations(), vec![(1, 2)]);
        assert_eq!(t.tuples()[0], (0, 0, 2));
    }

    fn ev(cycle: u64, delta: u32) -> TraceEvent {
        TraceEvent {
            system_cycle: cycle,
            delta,
            block: 0,
            changed_links: vec![],
            re_evaluation: false,
        }
    }

    #[test]
    fn limit_drops_and_counts_overflow() {
        let mut t = ScheduleTrace::with_limit(3);
        for i in 0..10 {
            t.push(ev(i, 0));
        }
        assert_eq!(t.events.len(), 3);
        assert_eq!(t.dropped(), 7);
        assert_eq!(t.limit(), Some(3));
        // The kept events are the earliest ones.
        assert_eq!(t.tuples(), vec![(0, 0, 0), (1, 0, 0), (2, 0, 0)]);
    }

    #[test]
    fn unlimited_trace_never_drops() {
        let mut t = ScheduleTrace::default();
        for i in 0..100 {
            t.push(ev(i, 0));
        }
        assert_eq!(t.events.len(), 100);
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.limit(), None);
    }
}
