//! Incremental stability tracking for the dynamic scheduler.
//!
//! The naive §4.2 scheduler re-derives every block's stability predicate —
//! *evaluated, and every adjacent link Has-Been-Read* — by scanning all
//! blocks and all their links on every delta cycle: O(deltas × n × links).
//! This module maintains the same predicate incrementally, in O(1) per HBR
//! transition, so one delta cycle costs O(1) scheduler work:
//!
//! * `pending[b] = (1 if b not yet evaluated) + #(adjacent link occurrences
//!   whose HBR bit is 0)`. A block is stable exactly when `pending[b] == 0`
//!   — the naive predicate, counted instead of rescanned.
//! * A u64-word bitset over *order positions* (not block ids) holds the
//!   blocks with `pending > 0`; the round-robin pick is a circular
//!   `trailing_zeros` scan from `rr_pos`, which selects the same block the
//!   naive scan would.
//! * A link→adjacent-blocks index, built once from the [`SystemSpec`]
//!   wiring, translates each HBR edge (`mark_read` 0→1, changed re-write
//!   1→0) into counter updates.
//!
//! The tracker is *derived* state: it is rebuilt from scratch at the start
//! of each system cycle (right after the HBR reset, when every block is
//! trivially non-stable), so engine snapshots never contain it and
//! [`restore`](crate::DynamicEngine::restore) needs no special handling.

use crate::block::{LinkDriver, SystemSpec};

/// No adjacent block in an adjacency slot.
const NONE: u32 = u32::MAX;

/// Incremental worklist over the non-stable blocks of a [`SystemSpec`].
#[derive(Debug, Clone)]
pub struct Worklist {
    /// Per link: up to two adjacent block ids (producer, consumer), `NONE`
    /// when absent. A self-loop lists the block twice — stability counts
    /// link *occurrences*, so the multiplicity matters.
    adj: Vec<[u32; 2]>,
    /// Per block: its position in the round-robin order.
    pos_of: Vec<u32>,
    /// Per block: `1 + inputs.len() + outputs.len()` — the pending count
    /// right after an HBR reset (nothing evaluated, nothing read).
    base_pending: Vec<u32>,
    /// Per block: outstanding obligations before it is stable.
    pending: Vec<u32>,
    /// Bitset over order positions: bit set ⇔ block at that position has
    /// `pending > 0`.
    unstable: Vec<u64>,
    n: usize,
}

impl Worklist {
    /// Build the tracker for `spec`, with `order[i]` = block id evaluated
    /// at round-robin position `i`.
    pub fn new(spec: &SystemSpec, order: &[usize]) -> Self {
        let n = spec.blocks().len();
        debug_assert_eq!(order.len(), n);
        let mut pos_of = vec![0u32; n];
        for (pos, &b) in order.iter().enumerate() {
            pos_of[b] = pos as u32;
        }
        let mut adj = vec![[NONE; 2]; spec.links().len()];
        for (l, s) in spec.links().iter().enumerate() {
            if let LinkDriver::Block { block, .. } = s.driver {
                adj[l][0] = block as u32;
            }
            if let Some((block, _)) = s.consumer {
                adj[l][1] = block as u32;
            }
        }
        let base_pending: Vec<u32> = spec
            .blocks()
            .iter()
            .map(|b| 1 + (b.inputs.len() + b.outputs.len()) as u32)
            .collect();
        Worklist {
            adj,
            pos_of,
            pending: base_pending.clone(),
            base_pending,
            unstable: vec![0; n.div_ceil(64)],
            n,
        }
    }

    /// Reset to the start-of-cycle state: every block unevaluated, every
    /// HBR bit clear — i.e. every block non-stable with its base pending
    /// count. Call right after [`LinkMemory::reset_hbr`](crate::LinkMemory::reset_hbr).
    pub fn begin_cycle(&mut self) {
        self.pending.copy_from_slice(&self.base_pending);
        for (i, w) in self.unstable.iter_mut().enumerate() {
            let lo = i * 64;
            let bits = (self.n - lo).min(64);
            *w = if bits == 64 { !0 } else { (1u64 << bits) - 1 };
        }
    }

    #[inline]
    fn dec(&mut self, b: u32) {
        let b = b as usize;
        self.pending[b] -= 1;
        if self.pending[b] == 0 {
            let pos = self.pos_of[b] as usize;
            self.unstable[pos / 64] &= !(1u64 << (pos % 64));
        }
    }

    #[inline]
    fn inc(&mut self, b: u32) {
        let b = b as usize;
        if self.pending[b] == 0 {
            let pos = self.pos_of[b] as usize;
            self.unstable[pos / 64] |= 1u64 << (pos % 64);
        }
        self.pending[b] += 1;
    }

    /// Link `l`'s HBR bit went 0→1 (it was read): one obligation fewer for
    /// each adjacent block.
    #[inline]
    pub fn on_read(&mut self, l: usize) {
        let [a, b] = self.adj[l];
        if a != NONE {
            self.dec(a);
        }
        if b != NONE {
            self.dec(b);
        }
    }

    /// Link `l` was re-armed (a changed write cleared its HBR bit): each
    /// adjacent block owes a read again.
    #[inline]
    pub fn on_rearm(&mut self, l: usize) {
        let [a, b] = self.adj[l];
        if a != NONE {
            self.inc(a);
        }
        if b != NONE {
            self.inc(b);
        }
    }

    /// Block `b` was evaluated for the first time this cycle.
    #[inline]
    pub fn on_first_eval(&mut self, b: usize) {
        self.dec(b as u32);
    }

    /// Round-robin pick: the position of the first non-stable block at or
    /// after `rr_pos` (circularly), or `None` when the system is stable.
    pub fn next_unstable(&self, rr_pos: usize) -> Option<usize> {
        if self.n == 0 {
            return None;
        }
        let words = self.unstable.len();
        let (start_w, start_b) = (rr_pos / 64, rr_pos % 64);
        // First word: only bits at or after rr_pos.
        let w = self.unstable[start_w] & (!0u64 << start_b);
        if w != 0 {
            return Some(start_w * 64 + w.trailing_zeros() as usize);
        }
        // Remaining words, wrapping once past the end.
        for k in 1..=words {
            let i = (start_w + k) % words;
            let mut w = self.unstable[i];
            if i == start_w {
                // Wrapped back: only bits before rr_pos remain.
                w &= !(!0u64 << start_b);
            }
            if w != 0 {
                return Some(i * 64 + w.trailing_zeros() as usize);
            }
            if i == start_w {
                break;
            }
        }
        None
    }

    /// Is any block non-stable? (Used by sanity checks and tests.)
    pub fn any_unstable(&self) -> bool {
        self.unstable.iter().any(|&w| w != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::comb_demo;

    #[test]
    fn begin_cycle_marks_all_unstable() {
        let (spec, _) = comb_demo();
        let order: Vec<usize> = (0..spec.blocks().len()).collect();
        let mut wl = Worklist::new(&spec, &order);
        wl.begin_cycle();
        assert!(wl.any_unstable());
        assert_eq!(wl.next_unstable(0), Some(0));
        assert_eq!(wl.next_unstable(1), Some(1));
    }

    #[test]
    fn scan_wraps_circularly() {
        let (spec, _) = comb_demo();
        let n = spec.blocks().len();
        let order: Vec<usize> = (0..n).collect();
        let mut wl = Worklist::new(&spec, &order);
        wl.begin_cycle();
        // Clear all but position 0; a scan from 1 must wrap to 0.
        for b in 1..n {
            while wl.pending[b] > 0 {
                wl.dec(b as u32);
            }
        }
        assert_eq!(wl.next_unstable(1), Some(0));
        assert_eq!(wl.next_unstable(0), Some(0));
    }

    #[test]
    fn stable_system_yields_none() {
        let (spec, _) = comb_demo();
        let n = spec.blocks().len();
        let order: Vec<usize> = (0..n).collect();
        let mut wl = Worklist::new(&spec, &order);
        wl.begin_cycle();
        for b in 0..n {
            while wl.pending[b] > 0 {
                wl.dec(b as u32);
            }
        }
        assert_eq!(wl.next_unstable(0), None);
        assert!(!wl.any_unstable());
    }
}
