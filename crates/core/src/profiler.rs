//! Per-block/per-SCC kernel profiler for the dynamic-schedule engine.
//!
//! The paper's throughput claim (§6) is an aggregate; this module
//! answers *where the time goes*. A [`KernelProfiler`] rides inside
//! [`DynamicEngine`](crate::DynamicEngine) as an `Option<Box<_>>` — the
//! disabled path is a single pointer null-check per evaluation, no
//! clock reads, no allocation. When attached it accumulates, per block:
//! evaluation counts, HBR-forced re-evaluations, and *sampled* self
//! time (every Nth system cycle is wall-clock timed; self time is
//! scaled to the full eval count at report time, keeping the overhead
//! of `Instant::now` off most cycles). Per multi-block SCC it tracks
//! convergence-bound consumption: the largest number of evaluation
//! rounds the SCC actually took in any one system cycle, to compare
//! against the static bound `speccheck` proved.
//!
//! Attribution (block names, block→SCC map, per-SCC bounds) comes from
//! the `speccheck` condensation via [`KernelProfiler::set_attribution`];
//! without it every block is its own singleton SCC. The harvest is a
//! [`simtrace::ProfileReport`] — ranked hotspots, flamegraph text and
//! diffs all live in `simtrace::prof`.

use simtrace::{ProfileEntry, ProfileReport, SccProfile};
use std::time::Instant;

/// Accumulates per-block self-time/eval/retry totals and per-SCC
/// convergence accounting for one engine.
#[derive(Debug, Clone)]
pub struct KernelProfiler {
    /// Wall-clock-time every `sample_every`-th system cycle (1 = every
    /// cycle).
    sample_every: u64,
    /// Is the currently open system cycle being timed?
    timing: bool,
    /// System cycles seen (drives the sampling decision).
    cycles: u64,
    /// Per-block total evaluations.
    evals: Vec<u64>,
    /// Per-block HBR-forced re-evaluations.
    retries: Vec<u64>,
    /// Per-block evaluations that were wall-clock timed.
    timed_evals: Vec<u64>,
    /// Per-block nanoseconds across the timed evaluations.
    timed_ns: Vec<u64>,
    /// Per-block evaluations inside the currently open cycle (consumed
    /// by the per-SCC round accounting, reset each cycle).
    cycle_evals: Vec<u32>,
    /// Block → SCC index.
    scc_of: Vec<usize>,
    /// Block names (flamegraph frames).
    names: Vec<String>,
    /// Per-SCC block counts.
    scc_blocks: Vec<usize>,
    /// Per-SCC static convergence bound (0 = unknown).
    scc_bound: Vec<u64>,
    /// Per-SCC worst-case rounds consumed in one system cycle.
    scc_consumed_max: Vec<u64>,
}

impl KernelProfiler {
    /// A profiler for `n_blocks` blocks, timing every
    /// `sample_every`-th system cycle. Until
    /// [`set_attribution`](Self::set_attribution) is called, every
    /// block is its own SCC named `block{i}`.
    pub fn new(n_blocks: usize, sample_every: u64) -> Self {
        KernelProfiler {
            sample_every: sample_every.max(1),
            timing: false,
            cycles: 0,
            evals: vec![0; n_blocks],
            retries: vec![0; n_blocks],
            timed_evals: vec![0; n_blocks],
            timed_ns: vec![0; n_blocks],
            cycle_evals: vec![0; n_blocks],
            scc_of: (0..n_blocks).collect(),
            names: (0..n_blocks).map(|i| format!("block{i}")).collect(),
            scc_blocks: vec![1; n_blocks],
            scc_bound: vec![0; n_blocks],
            scc_consumed_max: vec![0; n_blocks],
        }
    }

    /// Attach the condensation: `names[b]` and `scc_of[b]` per block,
    /// `(blocks, bound)` per SCC (same indexing as `scc_of` values).
    ///
    /// # Panics
    /// If the shapes disagree with the block count or an SCC index is
    /// out of range.
    pub fn set_attribution(
        &mut self,
        names: Vec<String>,
        scc_of: Vec<usize>,
        sccs: Vec<(usize, u64)>,
    ) {
        let n = self.evals.len();
        assert_eq!(names.len(), n, "one name per block");
        assert_eq!(scc_of.len(), n, "one SCC index per block");
        assert!(
            scc_of.iter().all(|&s| s < sccs.len()),
            "SCC index out of range"
        );
        self.names = names;
        self.scc_of = scc_of;
        self.scc_blocks = sccs.iter().map(|&(b, _)| b).collect();
        self.scc_bound = sccs.iter().map(|&(_, b)| b).collect();
        self.scc_consumed_max = vec![0; sccs.len()];
    }

    /// Open a system cycle; decides whether this cycle is timed.
    #[inline]
    pub fn begin_cycle(&mut self) {
        self.timing = self.cycles.is_multiple_of(self.sample_every);
    }

    /// Called at the top of a block evaluation; returns the timestamp
    /// to hand back to [`end_eval`](Self::end_eval) (`None` on untimed
    /// cycles — no clock read happens).
    #[inline]
    pub fn begin_eval(&self) -> Option<Instant> {
        if self.timing {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Called at the bottom of a block evaluation.
    #[inline]
    pub fn end_eval(&mut self, block: usize, re_evaluation: bool, t0: Option<Instant>) {
        self.evals[block] += 1;
        self.cycle_evals[block] += 1;
        if re_evaluation {
            self.retries[block] += 1;
        }
        if let Some(t0) = t0 {
            self.timed_evals[block] += 1;
            self.timed_ns[block] += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Charge op wall time to `block` without counting an evaluation.
    /// Used by the compiled engine for its comb-pass opcodes: the time
    /// folds into the block's per-eval self time (the update op is the
    /// one counted evaluation), so report scaling stays correct.
    #[inline]
    pub fn end_op(&mut self, block: usize, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            self.timed_ns[block] += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Close a system cycle: fold this cycle's per-block eval counts
    /// into the per-SCC round maxima and reset them.
    pub fn end_cycle(&mut self) {
        for b in 0..self.cycle_evals.len() {
            let rounds = self.cycle_evals[b] as u64;
            if rounds > 0 {
                let s = self.scc_of[b];
                if rounds > self.scc_consumed_max[s] {
                    self.scc_consumed_max[s] = rounds;
                }
                self.cycle_evals[b] = 0;
            }
        }
        self.cycles += 1;
    }

    /// System cycles profiled so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Harvest the profile. `engine` labels the report (flamegraph
    /// root frame); `wall_s` is the caller-measured wall clock of the
    /// profiled region (0.0 when unknown). Per-block self time is the
    /// timed-sample mean scaled to the full eval count. Block indices
    /// can be offset (sharded engines merge several sub-engines into
    /// one report) via `block_base`.
    pub fn report(&self, engine: &str, wall_s: f64, block_base: usize) -> ProfileReport {
        let mut report = ProfileReport {
            engine: engine.to_string(),
            cycles: self.cycles,
            wall_s,
            entries: Vec::with_capacity(self.evals.len()),
            sccs: Vec::new(),
        };
        for b in 0..self.evals.len() {
            let scc = self.scc_of[b];
            let self_ns = if self.timed_evals[b] > 0 {
                // Scale the timed sample to the full eval count.
                (self.timed_ns[b] as f64 * self.evals[b] as f64 / self.timed_evals[b] as f64) as u64
            } else {
                0
            };
            report.entries.push(ProfileEntry {
                scc,
                block: block_base + b,
                name: self.names[b].clone(),
                fixed_point: self.scc_blocks[scc] > 1,
                evals: self.evals[b],
                hbr_retries: self.retries[b],
                self_ns,
            });
        }
        for s in 0..self.scc_blocks.len() {
            if self.scc_blocks[s] > 1 {
                report.sccs.push(SccProfile {
                    scc: s,
                    blocks: self.scc_blocks[s],
                    bound: self.scc_bound[s],
                    consumed_max: self.scc_consumed_max[s],
                    hbr_retries: (0..self.evals.len())
                        .filter(|&b| self.scc_of[b] == s)
                        .map(|b| self.retries[b])
                        .sum(),
                });
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_scales_sampled_time() {
        let mut p = KernelProfiler::new(2, 2); // time every 2nd cycle
        for cycle in 0..4u64 {
            p.begin_cycle();
            let timed = cycle % 2 == 0;
            for b in 0..2 {
                let t0 = p.begin_eval();
                assert_eq!(t0.is_some(), timed, "cycle {cycle}");
                p.end_eval(b, false, t0);
            }
            // Block 1 re-evaluates once per cycle.
            let t0 = p.begin_eval();
            p.end_eval(1, true, t0);
            p.end_cycle();
        }
        assert_eq!(p.cycles(), 4);
        let r = p.report("test", 1.0, 0);
        assert_eq!(r.entries[0].evals, 4);
        assert_eq!(r.entries[1].evals, 8);
        assert_eq!(r.entries[1].hbr_retries, 4);
        // Timed on 2 of 4 cycles, scaled back to all evals: self time
        // is nonzero for both blocks.
        assert!(r.entries[0].self_ns > 0);
        assert!(r.entries[1].self_ns > 0);
        // Default attribution: singleton SCCs, so no SCC rows.
        assert!(r.sccs.is_empty());
        assert!(!r.entries[0].fixed_point);
    }

    #[test]
    fn scc_attribution_tracks_bound_consumption() {
        let mut p = KernelProfiler::new(3, 1);
        p.set_attribution(
            vec!["r0".into(), "r1".into(), "ni".into()],
            vec![0, 0, 1], // r0,r1 share a loop SCC; ni is singleton
            vec![(2, 6), (1, 1)],
        );
        // Cycle 0: r0 evaluated 3 times, r1 twice, ni once.
        p.begin_cycle();
        for (b, times) in [(0usize, 3), (1, 2), (2, 1)] {
            for i in 0..times {
                let t0 = p.begin_eval();
                p.end_eval(b, i > 0, t0);
            }
        }
        p.end_cycle();
        // Cycle 1: everything settles in one round.
        p.begin_cycle();
        for b in 0..3 {
            let t0 = p.begin_eval();
            p.end_eval(b, false, t0);
        }
        p.end_cycle();

        let r = p.report("seqsim", 0.0, 10);
        assert_eq!(r.entries[0].block, 10, "block_base offsets indices");
        assert_eq!(r.entries[0].name, "r0");
        assert!(r.entries[0].fixed_point);
        assert!(!r.entries[2].fixed_point);
        assert_eq!(r.sccs.len(), 1, "only the multi-block SCC is reported");
        let s = &r.sccs[0];
        assert_eq!(s.blocks, 2);
        assert_eq!(s.bound, 6);
        assert_eq!(s.consumed_max, 3, "worst round count of any member");
        assert_eq!(s.hbr_retries, 3);
    }
}
