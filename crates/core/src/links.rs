//! The link memory with Has-Been-Read status bits (paper §4.2).
//!
//! "For the links we have a separate memory, where every link has only a
//! single memory position and not two as for the registers. Per memory
//! position one additional status bit is stored. This bit indicates whether
//! the last written value Has Been Read (HBR) from this link."
//!
//! Link *values* persist across system cycles; only the HBR bits are reset
//! at the start of each system cycle.

use crate::block::{LinkDriver, LinkSpec};
use crate::wire::{Dec, Enc, WireError};

/// Single-banked link memory with per-link HBR bits.
#[derive(Debug, Clone)]
pub struct LinkMemory {
    values: Vec<u64>,
    widths: Vec<usize>,
    hbr: Vec<bool>,
    /// Links that never participate in stability tracking: constant and
    /// external links have no block driver and dangling links no consumer,
    /// but consts/externals still get an HBR bit so their consumer's first
    /// read of the cycle is observable.
    drivers: Vec<LinkDriver>,
}

impl LinkMemory {
    /// Build the link memory from the system's link specs, at reset values.
    pub fn new(specs: &[LinkSpec]) -> Self {
        LinkMemory {
            values: specs.iter().map(|s| s.reset_value).collect(),
            widths: specs.iter().map(|s| s.width).collect(),
            hbr: vec![false; specs.len()],
            drivers: specs.iter().map(|s| s.driver).collect(),
        }
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the memory holds no links.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Current value of link `l`.
    #[inline]
    pub fn value(&self, l: usize) -> u64 {
        self.values[l]
    }

    /// Width in bits of link `l`.
    #[inline]
    pub fn width(&self, l: usize) -> usize {
        self.widths[l]
    }

    /// HBR bit of link `l`.
    #[inline]
    pub fn hbr(&self, l: usize) -> bool {
        self.hbr[l]
    }

    /// Mark link `l` as read (consumer evaluated with its current value).
    /// Returns `true` when this call flipped the HBR bit 0→1 — the edge the
    /// incremental stability tracker ([`crate::worklist`]) keys on.
    #[inline]
    pub fn mark_read(&mut self, l: usize) -> bool {
        let was = self.hbr[l];
        self.hbr[l] = true;
        !was
    }

    /// Write `value` to link `l` after a block evaluation.
    ///
    /// Implements the paper's rule: "if the router writes a value to a
    /// link, which is not equal to the current value in the memory, it will
    /// reset this link's status bit to zero." Returns `true` when the value
    /// changed (the consumer must be re-evaluated).
    #[inline]
    pub fn write(&mut self, l: usize, value: u64) -> bool {
        debug_assert!(
            self.widths[l] == 64 || value < (1u64 << self.widths[l]),
            "link {l} value wider than {} bits",
            self.widths[l]
        );
        if self.values[l] != value {
            self.values[l] = value;
            self.hbr[l] = false;
            true
        } else {
            false
        }
    }

    /// [`write`](Self::write) variant that additionally reports whether the
    /// write *re-armed* the link: `(changed, rearmed)` where `rearmed` means
    /// the HBR bit was set and this write cleared it — the 1→0 edge that
    /// makes an already-read consumer non-stable again.
    #[inline]
    pub fn write_tracked(&mut self, l: usize, value: u64) -> (bool, bool) {
        let was_read = self.hbr[l];
        let changed = self.write(l, value);
        (changed, changed && was_read)
    }

    /// Host write to an external link (ARM writing an FPGA register).
    /// Clears HBR when the value changes so the consumer re-evaluates.
    pub fn write_external(&mut self, l: usize, value: u64) {
        assert!(
            matches!(self.drivers[l], LinkDriver::External),
            "link {l} is not external"
        );
        self.write(l, value);
    }

    /// Reset all HBR bits to zero — the start of a system cycle ("Every
    /// system cycle is started by resetting all status bits to zero").
    pub fn reset_hbr(&mut self) {
        self.hbr.iter_mut().for_each(|b| *b = false);
    }

    /// True when every HBR bit is set — the stability condition half that
    /// lives in link memory.
    pub fn all_read(&self) -> bool {
        self.hbr.iter().all(|&b| b)
    }

    /// Serialize values, HBR bits, widths and drivers for a durable
    /// checkpoint.
    pub fn encode(&self, e: &mut Enc) {
        e.u64s(&self.values);
        e.usizes(&self.widths);
        e.bools(&self.hbr);
        e.usize(self.drivers.len());
        for d in &self.drivers {
            match *d {
                LinkDriver::Block { block, port } => {
                    e.u8(0);
                    e.usize(block);
                    e.usize(port);
                }
                LinkDriver::Const(v) => {
                    e.u8(1);
                    e.u64(v);
                }
                LinkDriver::External => e.u8(2),
            }
        }
    }

    /// Rebuild a memory encoded by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// [`WireError`] on underrun, an unknown driver tag, or mismatched
    /// per-link vector lengths.
    pub fn decode(d: &mut Dec<'_>) -> Result<Self, WireError> {
        let values = d.u64s()?;
        let widths = d.usizes()?;
        let hbr = d.bools()?;
        let n = d.usize()?;
        let mut drivers = Vec::with_capacity(n.min(values.len()));
        for _ in 0..n {
            drivers.push(match d.u8()? {
                0 => LinkDriver::Block {
                    block: d.usize()?,
                    port: d.usize()?,
                },
                1 => LinkDriver::Const(d.u64()?),
                2 => LinkDriver::External,
                t => return Err(WireError::new(format!("unknown link driver tag {t}"))),
            });
        }
        if widths.len() != values.len()
            || hbr.len() != values.len()
            || drivers.len() != values.len()
        {
            return Err(WireError::new("inconsistent link-memory layout"));
        }
        Ok(LinkMemory {
            values,
            widths,
            hbr,
            drivers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::LinkDriver;

    fn specs() -> Vec<LinkSpec> {
        vec![
            LinkSpec {
                width: 21,
                driver: LinkDriver::Block { block: 0, port: 0 },
                consumer: Some((1, 0)),
                reset_value: 0,
            },
            LinkSpec {
                width: 4,
                driver: LinkDriver::Const(0xF),
                consumer: Some((0, 0)),
                reset_value: 0xF,
            },
        ]
    }

    #[test]
    fn write_same_value_keeps_hbr() {
        let mut m = LinkMemory::new(&specs());
        m.mark_read(0);
        assert!(!m.write(0, 0)); // unchanged
        assert!(m.hbr(0));
    }

    #[test]
    fn write_new_value_clears_hbr() {
        let mut m = LinkMemory::new(&specs());
        m.mark_read(0);
        assert!(m.write(0, 5));
        assert!(!m.hbr(0));
        assert_eq!(m.value(0), 5);
    }

    #[test]
    fn values_persist_across_hbr_reset() {
        let mut m = LinkMemory::new(&specs());
        m.write(0, 7);
        m.mark_read(0);
        m.mark_read(1);
        assert!(m.all_read());
        m.reset_hbr();
        assert!(!m.all_read());
        assert_eq!(m.value(0), 7); // value survives the cycle boundary
        assert_eq!(m.value(1), 0xF);
    }

    #[test]
    #[should_panic(expected = "not external")]
    fn external_write_to_block_link_rejected() {
        let mut m = LinkMemory::new(&specs());
        m.write_external(0, 1);
    }
}
