//! Side memory: the FPGA's BRAM cyclic buffers (paper §5.2).
//!
//! "The stimuli are buffered per virtual channel (VC) in cyclic buffers in
//! the FPGA. The output values of the network are stored per router [...]
//! in a cyclic buffer. The data in the buffers has a timestamp and can be
//! read or written by the ARM9."
//!
//! Blocks address these rings with read/write *pointers held in their
//! register state*, which keeps block evaluation idempotent under the
//! dynamic scheduler's re-evaluation: a re-run reads the same slots and
//! rewrites the same slots, and pointers only advance via the next-state
//! bank. The host (the "ARM") reads and writes slots directly, mirroring
//! the memory-interface access of the real platform.

/// Ring storage for all block instances: `rings[block][ring][slot]`.
///
/// Rings are plain word arrays; *cyclic* semantics (wrap-around, fill
/// level) are implemented by the pointer registers of the owning block and
/// by the host, exactly as on the FPGA where BRAM is dumb storage.
#[derive(Debug, Clone, Default)]
pub struct SideMem {
    rings: Vec<Vec<Vec<u64>>>,
}

impl SideMem {
    /// Build side memory with the given ring capacities per block.
    pub fn new(per_block_caps: &[Vec<usize>]) -> Self {
        SideMem {
            rings: per_block_caps
                .iter()
                .map(|caps| caps.iter().map(|&c| vec![0u64; c]).collect())
                .collect(),
        }
    }

    /// A mutable view scoped to one block (what its `eval` receives).
    #[inline]
    pub fn view(&mut self, block: usize) -> SideView<'_> {
        SideView {
            rings: &mut self.rings[block],
        }
    }

    /// Host read of `(block, ring, slot)`.
    #[inline]
    pub fn read(&self, block: usize, ring: usize, slot: usize) -> u64 {
        let r = &self.rings[block][ring];
        r[slot % r.len()]
    }

    /// Host write of `(block, ring, slot)`.
    #[inline]
    pub fn write(&mut self, block: usize, ring: usize, slot: usize, value: u64) {
        let r = &mut self.rings[block][ring];
        let len = r.len();
        r[slot % len] = value;
    }

    /// Capacity of `(block, ring)` in words.
    #[inline]
    pub fn capacity(&self, block: usize, ring: usize) -> usize {
        self.rings[block][ring].len()
    }

    /// Serialize every ring (shape and contents) for a durable checkpoint.
    pub fn encode(&self, e: &mut crate::wire::Enc) {
        e.usize(self.rings.len());
        for block in &self.rings {
            e.usize(block.len());
            for ring in block {
                e.u64s(ring);
            }
        }
    }

    /// Rebuild a side memory encoded by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// [`crate::wire::WireError`] on underrun or a corrupt length prefix.
    pub fn decode(d: &mut crate::wire::Dec<'_>) -> Result<Self, crate::wire::WireError> {
        let n_blocks = d.usize()?;
        let mut rings = Vec::new();
        for _ in 0..n_blocks {
            let n_rings = d.usize()?;
            let mut block = Vec::new();
            for _ in 0..n_rings {
                block.push(d.u64s()?);
            }
            rings.push(block);
        }
        Ok(SideMem { rings })
    }
}

/// One block's slice of the side memory.
#[derive(Debug)]
pub struct SideView<'a> {
    rings: &'a mut Vec<Vec<u64>>,
}

impl SideView<'_> {
    /// Read `(ring, slot)` (slot reduced modulo capacity).
    #[inline]
    pub fn read(&self, ring: usize, slot: usize) -> u64 {
        let r = &self.rings[ring];
        r[slot % r.len()]
    }

    /// Write `(ring, slot)` (slot reduced modulo capacity).
    #[inline]
    pub fn write(&mut self, ring: usize, slot: usize, value: u64) {
        let r = &mut self.rings[ring];
        let len = r.len();
        r[slot % len] = value;
    }

    /// Capacity of `ring` in words.
    #[inline]
    pub fn capacity(&self, ring: usize) -> usize {
        self.rings[ring].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_roundtrip() {
        let mut m = SideMem::new(&[vec![8, 4], vec![16]]);
        assert_eq!(m.capacity(0, 0), 8);
        assert_eq!(m.capacity(1, 0), 16);
        m.write(0, 1, 3, 0xABCD);
        assert_eq!(m.read(0, 1, 3), 0xABCD);
        // Blocks do not alias.
        assert_eq!(m.read(1, 0, 3), 0);
    }

    #[test]
    fn view_and_host_see_same_storage() {
        let mut m = SideMem::new(&[vec![4]]);
        {
            let mut v = m.view(0);
            v.write(0, 6, 9); // 6 % 4 == 2
            assert_eq!(v.read(0, 2), 9);
            assert_eq!(v.capacity(0), 4);
        }
        assert_eq!(m.read(0, 0, 2), 9);
        m.write(0, 0, 2, 11);
        assert_eq!(m.view(0).read(0, 6), 11);
    }
}
