//! A systolic-array case study — paper §7.1: "The same technique used for
//! the NoC simulator can also be used for testing other parallel systems
//! on an FPGA. In particular systolic algorithms with many equal parts
//! with a small state space."
//!
//! An output-stationary systolic matrix multiplier: an `n × n` grid of
//! identical processing elements. `A` streams in from the west (one row
//! per array row, skewed), `B` from the north (one column per array
//! column, skewed); every PE multiply-accumulates its current inputs and
//! passes them on east/south through *registered* links — a textbook
//! registered-boundary system, simulated with the static schedule of
//! §4.1 at exactly one evaluation per PE per cycle.
//!
//! The whole array is one [`SystemSpec`]: the PEs are a single shared
//! [`BlockKind`] (the paper's one-implementation-for-all-instances
//! principle), the operand feeders are host-driven external links, and
//! the accumulated results are read back from the state memory — the
//! same host/state-memory interaction the NoC simulator uses.

use crate::block::{BlockKind, CombInputs, SystemSpec};
use crate::side::SideView;
use crate::static_sched::StaticEngine;
use noc_types::bits::{BitReader, BitWriter};

/// Operand width in bits.
pub const OPERAND_BITS: usize = 16;
/// Accumulator width in bits.
pub const ACC_BITS: usize = 40;

/// The shared processing-element implementation: `acc += a · b`, with the
/// operand pass-through registered by the engine's link memory.
#[derive(Debug, Clone)]
pub struct SystolicPe;

impl BlockKind for SystolicPe {
    fn name(&self) -> &str {
        "systolic-pe"
    }

    fn state_bits(&self) -> usize {
        ACC_BITS
    }

    fn input_widths(&self) -> Vec<usize> {
        vec![OPERAND_BITS, OPERAND_BITS] // a from west, b from north
    }

    fn output_widths(&self) -> Vec<usize> {
        vec![OPERAND_BITS, OPERAND_BITS] // a to east, b to south
    }

    fn reset(&self, _state: &mut [u64]) {}

    fn eval(
        &self,
        _instance: usize,
        cur: &[u64],
        inputs: &[u64],
        _cycle: u64,
        next: &mut [u64],
        outputs: &mut [u64],
        _side: &mut SideView<'_>,
    ) {
        let acc = BitReader::new(cur).take(ACC_BITS);
        let (a, b) = (inputs[0], inputs[1]);
        let mask = (1u64 << ACC_BITS) - 1;
        BitWriter::new(next).put(ACC_BITS, acc.wrapping_add(a * b) & mask);
        outputs[0] = a;
        outputs[1] = b;
    }

    fn comb_inputs(&self, port: usize) -> CombInputs {
        // Pure pass-through: east is west's operand, south is north's.
        // (The static engine's double-banked links are what register
        // the boundary — the combinational path is through the PE.)
        CombInputs::Some(vec![port])
    }
}

/// An `n × n` output-stationary systolic multiplier on the static
/// sequential engine.
pub struct SystolicArray {
    n: usize,
    engine: StaticEngine,
    /// `pe[row][col]` block ids.
    pe: Vec<Vec<usize>>,
    /// West-edge feeder links (one per row).
    a_feed: Vec<usize>,
    /// North-edge feeder links (one per column). (Rows stream west→east,
    /// columns north→south; "north" here is row 0.)
    b_feed: Vec<usize>,
}

impl SystolicArray {
    /// Build an `n × n` array.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        let mut spec = SystemSpec::new();
        let kind = spec.add_kind(Box::new(SystolicPe));
        let pe: Vec<Vec<usize>> = (0..n)
            .map(|_| (0..n).map(|_| spec.add_block(kind)).collect())
            .collect();
        // Horizontal chains (a: west -> east) and vertical (b: north ->
        // south, north = row 0).
        for r in 0..n {
            for c in 0..n {
                if c + 1 < n {
                    spec.wire((pe[r][c], 0), (pe[r][c + 1], 0));
                } else {
                    spec.sink((pe[r][c], 0));
                }
                if r + 1 < n {
                    spec.wire((pe[r][c], 1), (pe[r + 1][c], 1));
                } else {
                    spec.sink((pe[r][c], 1));
                }
            }
        }
        let a_feed: Vec<usize> = (0..n).map(|r| spec.external((pe[r][0], 0), 0)).collect();
        let b_feed: Vec<usize> = (0..n).map(|c| spec.external((pe[0][c], 1), 0)).collect();
        SystolicArray {
            n,
            engine: StaticEngine::new(spec),
            pe,
            a_feed,
            b_feed,
        }
    }

    /// Multiply `a · b` (row-major `n × n` matrices of `u16`), returning
    /// the row-major product accumulated in the PE array.
    pub fn multiply(&mut self, a: &[Vec<u16>], b: &[Vec<u16>]) -> Vec<Vec<u64>> {
        let n = self.n;
        assert_eq!(a.len(), n);
        assert_eq!(b.len(), n);
        // Classic skew: row r of A is delayed by r cycles, column c of B
        // by c cycles; PE (r,c) sees a[r][k] and b[k][c] together at
        // cycle r + c + k (plus the feeder-register pipeline).
        let total = 3 * n + 2;
        for t in 0..total as u64 {
            for r in 0..n {
                let k = t as i64 - r as i64;
                let v = if (0..n as i64).contains(&k) {
                    a[r][k as usize]
                } else {
                    0
                };
                self.engine.set_external(self.a_feed[r], v as u64);
            }
            for c in 0..n {
                let k = t as i64 - c as i64;
                let v = if (0..n as i64).contains(&k) {
                    b[k as usize][c]
                } else {
                    0
                };
                self.engine.set_external(self.b_feed[c], v as u64);
            }
            self.engine.step();
        }
        // Read the accumulators back from the state memory (the host
        // reading results over the memory interface).
        (0..n)
            .map(|r| {
                (0..n)
                    .map(|c| BitReader::new(self.engine.peek_state(self.pe[r][c])).take(ACC_BITS))
                    .collect()
            })
            .collect()
    }

    /// Delta statistics (static schedule: exactly `n²` per cycle).
    pub fn stats(&self) -> &crate::counters::DeltaStats {
        self.engine.stats()
    }

    /// The system spec backing the array (e.g. for static analysis).
    pub fn spec(&self) -> &SystemSpec {
        self.engine.spec()
    }
}

/// Plain reference multiply for verification.
pub fn reference_multiply(a: &[Vec<u16>], b: &[Vec<u16>]) -> Vec<Vec<u64>> {
    let n = a.len();
    (0..n)
        .map(|r| {
            (0..n)
                .map(|c| (0..n).map(|k| a[r][k] as u64 * b[k][c] as u64).sum())
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(n: usize, f: impl Fn(usize, usize) -> u16) -> Vec<Vec<u16>> {
        (0..n).map(|r| (0..n).map(|c| f(r, c)).collect()).collect()
    }

    #[test]
    fn multiplies_identity() {
        let n = 4;
        let a = mat(n, |r, c| if r == c { 1 } else { 0 });
        let b = mat(n, |r, c| (r * n + c) as u16);
        let mut arr = SystolicArray::new(n);
        let got = arr.multiply(&a, &b);
        assert_eq!(got, reference_multiply(&a, &b));
    }

    #[test]
    fn multiplies_dense_matrices() {
        for n in [1usize, 2, 3, 5] {
            let a = mat(n, |r, c| (3 * r + 7 * c + 1) as u16);
            let b = mat(n, |r, c| (5 * r + 2 * c + 3) as u16);
            let mut arr = SystolicArray::new(n);
            let got = arr.multiply(&a, &b);
            assert_eq!(got, reference_multiply(&a, &b), "n = {n}");
        }
    }

    #[test]
    fn static_schedule_costs_exactly_n_squared_per_cycle() {
        let n = 4;
        let mut arr = SystolicArray::new(n);
        let a = mat(n, |_, _| 1);
        let _ = arr.multiply(&a, &a);
        let stats = arr.stats();
        assert_eq!(
            stats.delta_cycles,
            stats.system_cycles * (n * n) as u64,
            "static schedule must not re-evaluate"
        );
    }

    #[test]
    fn large_values_do_not_collide_in_accumulator() {
        let n = 3;
        let a = mat(n, |_, _| u16::MAX);
        let b = mat(n, |_, _| u16::MAX);
        let mut arr = SystolicArray::new(n);
        let got = arr.multiply(&a, &b);
        assert_eq!(got[0][0], 3 * (u16::MAX as u64 * u16::MAX as u64));
    }
}
