//! The structured error taxonomy of the simulation engines.
//!
//! The hot failure paths of the workspace — a non-converging §4.2 fixed
//! point, a crashed shard worker, a violated network invariant — used to
//! panic (or worse, spin). They now surface as typed [`SimError`]s so a
//! host program can report, checkpoint or retry instead of aborting, and
//! so the differential suites can assert that *failures* are as
//! deterministic and engine-independent as successes.

use crate::trace::TraceEvent;
use std::fmt;

/// A typed simulation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The dynamic scheduler exhausted its delta-cycle budget without
    /// reaching the per-cycle fixed point — a non-converging
    /// combinational dependency (or a budget set too low).
    Diverged {
        /// System cycle in which convergence failed.
        cycle: u64,
        /// The delta-cycle budget that was exhausted.
        budget: u32,
        /// Blocks still unstable when the budget ran out, in evaluation
        /// order.
        unstable_blocks: Vec<usize>,
        /// Tail of the schedule trace leading up to the failure (empty
        /// unless tracing was enabled on the engine).
        last_trace: Vec<TraceEvent>,
    },
    /// A shard worker failed (panicked or hit its own `SimError`); the
    /// barrier was poisoned and every worker joined cleanly.
    ShardFailed {
        /// Index of the first failing shard.
        shard: usize,
        /// The panic payload or inner error message.
        payload: String,
    },
    /// A runtime invariant check (flit conservation, queue bounds, HBR
    /// sanity) failed.
    InvariantViolated {
        /// System cycle at which the violation was detected.
        cycle: u64,
        /// Short name of the violated invariant (e.g. `conservation`).
        invariant: String,
        /// Human-readable account of observed vs expected.
        details: String,
    },
    /// The run was mis-configured (bad flag value, impossible request).
    Config(String),
    /// The supervisor's watchdog saw no per-cycle progress within its
    /// stall timeout: the campaign hung (a livelock, a wedged worker)
    /// and was cancelled.
    Stalled {
        /// Last system cycle the heartbeat reported before progress
        /// stopped.
        last_cycle: u64,
        /// The stall timeout that expired, in milliseconds.
        timeout_ms: u64,
    },
    /// A batched lane panicked (or was poisoned by the host) and was
    /// quarantined: its state froze at `cycle` and the remaining lanes
    /// finished untouched.
    LaneQuarantined {
        /// The quarantined lane index.
        lane: usize,
        /// System cycle at which the lane was poisoned.
        cycle: u64,
        /// The panic payload (or the host's quarantine reason).
        payload: String,
    },
    /// A supervised campaign attempt crashed (panicked outside any
    /// lane's isolation) and was caught by the supervisor.
    Crashed {
        /// 1-based attempt number that crashed.
        attempt: u32,
        /// The panic payload.
        payload: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Diverged {
                cycle,
                budget,
                unstable_blocks,
                ..
            } => write!(
                f,
                "system did not stabilise within {budget} delta cycles in cycle {cycle} — \
                 non-converging combinational dependency ({} block(s) unstable: {:?})",
                unstable_blocks.len(),
                &unstable_blocks[..unstable_blocks.len().min(8)]
            ),
            SimError::ShardFailed { shard, payload } => {
                write!(f, "shard {shard} failed: {payload}")
            }
            SimError::InvariantViolated {
                cycle,
                invariant,
                details,
            } => write!(
                f,
                "invariant `{invariant}` violated at cycle {cycle}: {details}"
            ),
            SimError::Config(msg) => write!(f, "configuration error: {msg}"),
            SimError::Stalled {
                last_cycle,
                timeout_ms,
            } => write!(
                f,
                "campaign stalled: no progress past cycle {last_cycle} within {timeout_ms} ms"
            ),
            SimError::LaneQuarantined {
                lane,
                cycle,
                payload,
            } => write!(f, "lane {lane} quarantined at cycle {cycle}: {payload}"),
            SimError::Crashed { attempt, payload } => {
                write!(f, "campaign attempt {attempt} crashed: {payload}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact_and_named() {
        let e = SimError::Diverged {
            cycle: 7,
            budget: 640,
            unstable_blocks: (0..20).collect(),
            last_trace: Vec::new(),
        };
        let s = e.to_string();
        assert!(s.contains("cycle 7") && s.contains("640"));
        assert!(s.contains("20 block(s)"));
        // The block list is truncated, not dumped wholesale.
        assert!(!s.contains("19"));

        let e = SimError::ShardFailed {
            shard: 3,
            payload: "boom".into(),
        };
        assert_eq!(e.to_string(), "shard 3 failed: boom");

        let e = SimError::InvariantViolated {
            cycle: 12,
            invariant: "conservation".into(),
            details: "2 flits missing".into(),
        };
        assert!(e.to_string().contains("`conservation`"));
        assert!(SimError::Config("bad".into()).to_string().contains("bad"));

        let e = SimError::Stalled {
            last_cycle: 4096,
            timeout_ms: 2000,
        };
        assert!(e.to_string().contains("4096") && e.to_string().contains("2000 ms"));

        let e = SimError::LaneQuarantined {
            lane: 2,
            cycle: 300,
            payload: "chaos".into(),
        };
        assert!(e.to_string().contains("lane 2") && e.to_string().contains("cycle 300"));

        let e = SimError::Crashed {
            attempt: 1,
            payload: "boom".into(),
        };
        assert!(e.to_string().contains("attempt 1") && e.to_string().contains("boom"));
    }
}
