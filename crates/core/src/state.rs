//! The double-buffered state memory (paper §4.1, Fig 2b).
//!
//! "In the memory, both the old and new version of the register values are
//! stored. [...] this copy action is performed by switching the offset
//! pointer of the current state and new state. In the even system cycles
//! the registers R1..3 are the current state and R′1..3 are the next state.
//! In the odd system cycles, R′1..3 are the current state and R1..3 are the
//! next state."
//!
//! One bank holds the concatenated register words of every block instance;
//! the two banks live in one allocation and are selected by an offset —
//! the software equivalent of the paper's pointer switch.

use crate::wire::{Dec, Enc, WireError};
use noc_types::bits::words_for_bits;

/// Double-buffered, bit-packed register memory for all block instances.
#[derive(Debug, Clone)]
pub struct StateMemory {
    words: Vec<u64>,
    /// Word offset of each block within a bank.
    offsets: Vec<usize>,
    /// Word count of each block.
    lens: Vec<usize>,
    /// Words per bank.
    bank_words: usize,
    /// Which bank is "current" (0 or 1) — the offset pointer.
    cur: usize,
}

impl StateMemory {
    /// Allocate a state memory for blocks with the given state widths in
    /// bits. Both banks are zeroed.
    pub fn new(state_bits: &[usize]) -> Self {
        let mut offsets = Vec::with_capacity(state_bits.len());
        let mut lens = Vec::with_capacity(state_bits.len());
        let mut off = 0usize;
        for &bits in state_bits {
            let w = words_for_bits(bits);
            offsets.push(off);
            lens.push(w);
            off += w;
        }
        StateMemory {
            words: vec![0; off * 2],
            offsets,
            lens,
            bank_words: off,
            cur: 0,
        }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.offsets.len()
    }

    /// Words per bank (the FPGA memory depth × width, in `u64` units).
    pub fn bank_words(&self) -> usize {
        self.bank_words
    }

    /// Current-state words of block `b` (read side of a delta cycle).
    #[inline]
    pub fn cur(&self, b: usize) -> &[u64] {
        let start = self.cur * self.bank_words + self.offsets[b];
        &self.words[start..start + self.lens[b]]
    }

    /// Next-state words of block `b` (write side of a delta cycle).
    #[inline]
    pub fn next_mut(&mut self, b: usize) -> &mut [u64] {
        let start = (self.cur ^ 1) * self.bank_words + self.offsets[b];
        &mut self.words[start..start + self.lens[b]]
    }

    /// Current- and next-state words of block `b` simultaneously.
    ///
    /// This is the FPGA's dual-port access: the evaluation reads the old
    /// word while writing the new word of the same block.
    #[inline]
    pub fn cur_and_next_mut(&mut self, b: usize) -> (&[u64], &mut [u64]) {
        let len = self.lens[b];
        if len == 0 {
            return (&[], &mut []);
        }
        let cur_start = self.cur * self.bank_words + self.offsets[b];
        let next_start = (self.cur ^ 1) * self.bank_words + self.offsets[b];
        debug_assert_ne!(cur_start, next_start);
        if cur_start < next_start {
            let (lo, hi) = self.words.split_at_mut(next_start);
            (&lo[cur_start..cur_start + len], &mut hi[..len])
        } else {
            let (lo, hi) = self.words.split_at_mut(cur_start);
            let cur = &hi[..len];
            let next = &mut lo[next_start..next_start + len];
            // Reborrow in the right order for the return type.
            (cur, next)
        }
    }

    /// Write directly into the *current* bank of block `b` (reset only).
    pub fn cur_mut(&mut self, b: usize) -> &mut [u64] {
        let start = self.cur * self.bank_words + self.offsets[b];
        &mut self.words[start..start + self.lens[b]]
    }

    /// Switch the offset pointer: next becomes current. O(1), no copy —
    /// the paper's bank swap.
    #[inline]
    pub fn swap(&mut self) {
        self.cur ^= 1;
    }

    /// Copy the current bank of block `b` into its next bank. Used at
    /// reset so that an un-evaluated block carries its state forward.
    pub fn copy_cur_to_next(&mut self, b: usize) {
        let cur_start = self.cur * self.bank_words + self.offsets[b];
        let next_start = (self.cur ^ 1) * self.bank_words + self.offsets[b];
        let len = self.lens[b];
        let (a, bnk) = if cur_start < next_start {
            let (lo, hi) = self.words.split_at_mut(next_start);
            (&lo[cur_start..cur_start + len], &mut hi[..len])
        } else {
            let (lo, hi) = self.words.split_at_mut(cur_start);
            (&hi[..len], &mut lo[next_start..next_start + len])
        };
        bnk.copy_from_slice(a);
    }

    /// Total size of both banks in bits (FPGA BRAM footprint of the state
    /// memory).
    pub fn total_bits(&self) -> usize {
        self.words.len() * 64
    }

    /// Serialize the full memory (layout and both banks) for a durable
    /// checkpoint.
    pub fn encode(&self, e: &mut Enc) {
        e.usizes(&self.offsets);
        e.usizes(&self.lens);
        e.usize(self.bank_words);
        e.usize(self.cur);
        e.u64s(&self.words);
    }

    /// Rebuild a memory encoded by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// [`WireError`] on underrun or an internally inconsistent layout.
    pub fn decode(d: &mut Dec<'_>) -> Result<Self, WireError> {
        let offsets = d.usizes()?;
        let lens = d.usizes()?;
        let bank_words = d.usize()?;
        let cur = d.usize()?;
        let words = d.u64s()?;
        if offsets.len() != lens.len() || cur > 1 || words.len() != bank_words * 2 {
            return Err(WireError::new("inconsistent state-memory layout"));
        }
        Ok(StateMemory {
            words,
            offsets,
            lens,
            bank_words,
            cur,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_and_swap() {
        let mut m = StateMemory::new(&[70, 1, 128]);
        assert_eq!(m.num_blocks(), 3);
        assert_eq!(m.bank_words(), 2 + 1 + 2);
        m.cur_mut(0)[0] = 0xAA;
        m.next_mut(0)[0] = 0xBB;
        assert_eq!(m.cur(0)[0], 0xAA);
        m.swap();
        assert_eq!(m.cur(0)[0], 0xBB);
        m.swap();
        assert_eq!(m.cur(0)[0], 0xAA);
    }

    #[test]
    fn cur_and_next_are_distinct() {
        let mut m = StateMemory::new(&[64, 64]);
        m.cur_mut(1)[0] = 7;
        let (cur, next) = m.cur_and_next_mut(1);
        assert_eq!(cur[0], 7);
        next[0] = 9;
        assert_eq!(m.cur(1)[0], 7);
        m.swap();
        assert_eq!(m.cur(1)[0], 9);
        // After swap the roles reverse (cur bank index 1).
        let (cur, next) = m.cur_and_next_mut(1);
        assert_eq!(cur[0], 9);
        next[0] = 11;
        m.swap();
        assert_eq!(m.cur(1)[0], 11);
    }

    #[test]
    fn copy_cur_to_next_carries_state() {
        let mut m = StateMemory::new(&[64]);
        m.cur_mut(0)[0] = 42;
        m.copy_cur_to_next(0);
        m.swap();
        assert_eq!(m.cur(0)[0], 42);
    }

    #[test]
    fn blocks_do_not_alias() {
        let mut m = StateMemory::new(&[64, 64, 64]);
        m.cur_mut(0)[0] = 1;
        m.cur_mut(1)[0] = 2;
        m.cur_mut(2)[0] = 3;
        assert_eq!((m.cur(0)[0], m.cur(1)[0], m.cur(2)[0]), (1, 2, 3));
    }
}
