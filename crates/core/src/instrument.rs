//! Kernel instrumentation — the delta-cycle engines' connection to the
//! [`simtrace`] observability layer.
//!
//! The engines hold a [`KernelInstr`] unconditionally. The default
//! ([`KernelInstr::disabled`]) is a no-op tracer plus detached counters
//! (single relaxed atomics that nothing reads), so the uninstrumented
//! hot path costs a handful of uncontended atomic adds per *system*
//! cycle. Wiring a registry ([`KernelInstr::with_registry`]) swaps in
//! registered counters and an enabled tracer; the engine code does not
//! change.

use simtrace::{lbl, Counter, Hist, Registry, Tracer};

/// Instrumentation handles threaded through a delta-cycle engine.
#[derive(Clone)]
pub struct KernelInstr {
    /// Event tracer (disabled by default). When
    /// [`Tracer::detail`] is set, engines additionally emit one
    /// `kernel.eval` instant per delta cycle (block evaluation).
    pub tracer: Tracer,
    /// System cycles simulated (`kernel.cycles`).
    pub cycles: Counter,
    /// Delta cycles, i.e. block evaluations (`kernel.evals`).
    pub evals: Counter,
    /// Delta cycles beyond the per-cycle minimum of one evaluation per
    /// block (`kernel.re_evals`).
    pub re_evals: Counter,
    /// Re-evaluations forced by HBR invalidation in the dynamic
    /// scheduler — a block evaluated again after its first evaluation
    /// of the system cycle (`kernel.hbr_retries`).
    pub hbr_retries: Counter,
    /// Distribution of delta cycles per system cycle
    /// (`kernel.deltas_per_cycle`) — the percentile view of the paper's
    /// "1.5–2× input load" re-evaluation overhead.
    pub deltas_hist: Hist,
}

impl KernelInstr {
    /// The default no-op instrumentation.
    pub fn disabled() -> Self {
        KernelInstr {
            tracer: Tracer::disabled(),
            cycles: Counter::detached(),
            evals: Counter::detached(),
            re_evals: Counter::detached(),
            hbr_retries: Counter::detached(),
            deltas_hist: Hist::detached(),
        }
    }

    /// Instrumentation publishing into `registry` under an `engine`
    /// label, tracing into `tracer`. The label is any string — per-shard
    /// engines pass computed labels like `seqsim.shard3`.
    pub fn with_registry(registry: &Registry, tracer: Tracer, engine: &str) -> Self {
        let labels = [("engine", lbl(engine))];
        KernelInstr {
            tracer,
            cycles: registry.counter("kernel.cycles", &labels),
            evals: registry.counter("kernel.evals", &labels),
            re_evals: registry.counter("kernel.re_evals", &labels),
            hbr_retries: registry.counter("kernel.hbr_retries", &labels),
            deltas_hist: registry.hist("kernel.deltas_per_cycle", &labels),
        }
    }

    /// Record one completed system cycle of a system with `blocks`
    /// blocks that took `deltas` evaluations. Emits the per-cycle
    /// kernel event and counter track when tracing is on.
    #[inline]
    pub fn record_cycle(&self, cycle: u64, deltas: u64, blocks: u64) {
        self.cycles.inc();
        self.evals.add(deltas);
        let re = deltas.saturating_sub(blocks);
        self.re_evals.add(re);
        self.deltas_hist.record(deltas);
        if self.tracer.enabled() {
            self.tracer.instant(
                "kernel.cycle",
                "kernel",
                &[
                    ("cycle", cycle.into()),
                    ("deltas", deltas.into()),
                    ("re_evals", re.into()),
                ],
            );
            self.tracer.counter(
                "kernel.deltas",
                &[("deltas", deltas as f64), ("re_evals", re as f64)],
            );
        }
    }

    /// Record one block evaluation (one delta cycle). Only emits an
    /// event when the tracer is in detail mode; the counters for this
    /// are aggregated per cycle in [`record_cycle`](Self::record_cycle).
    #[inline]
    pub fn record_eval(&self, cycle: u64, delta: u32, block: usize, re_evaluation: bool) {
        if re_evaluation {
            self.hbr_retries.inc();
        }
        if self.tracer.detail() {
            self.tracer.instant(
                "kernel.eval",
                "kernel",
                &[
                    ("cycle", cycle.into()),
                    ("delta", (delta as u64).into()),
                    ("block", block.into()),
                    ("re_eval", (re_evaluation as u64).into()),
                ],
            );
        }
    }
}

impl Default for KernelInstr {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_into_detached_counters() {
        let i = KernelInstr::disabled();
        i.record_cycle(0, 40, 36);
        i.record_eval(0, 38, 3, true);
        assert_eq!(i.cycles.get(), 1);
        assert_eq!(i.evals.get(), 40);
        assert_eq!(i.re_evals.get(), 4);
        assert_eq!(i.hbr_retries.get(), 1);
        assert_eq!(i.tracer.len(), 0);
    }

    #[test]
    fn registry_wiring_publishes_counters_and_events() {
        let r = Registry::new();
        let t = Tracer::new();
        let i = KernelInstr::with_registry(&r, t.clone(), "dynamic");
        i.record_cycle(7, 20, 16);
        assert_eq!(
            r.counter_value("kernel.evals", &[("engine", lbl("dynamic"))]),
            Some(20)
        );
        assert_eq!(
            r.counter_value("kernel.re_evals", &[("engine", lbl("dynamic"))]),
            Some(4)
        );
        // One instant + one counter sample per cycle.
        assert_eq!(t.len(), 2);
        // Detail off: eval events are not recorded, retries still count.
        i.record_eval(7, 3, 1, true);
        assert_eq!(t.len(), 2);
        assert_eq!(
            r.counter_value("kernel.hbr_retries", &[("engine", lbl("dynamic"))]),
            Some(1)
        );
    }

    #[test]
    fn detailed_tracer_gets_eval_events() {
        let r = Registry::new();
        let t = Tracer::new_detailed();
        let i = KernelInstr::with_registry(&r, t.clone(), "dynamic");
        i.record_eval(1, 0, 5, false);
        assert_eq!(t.event_names(), vec!["kernel.eval"]);
    }
}
