//! Dynamic-schedule engine for systems with combinatorial boundaries
//! (paper §4.2, Fig 5).
//!
//! Links have a single memory slot plus a Has-Been-Read bit. Each system
//! cycle starts by clearing every HBR bit, which guarantees each block is
//! evaluated at least once ("this is necessary as a router might change its
//! outputs independent of its inputs"). A round-robin scheduler then picks
//! non-stable blocks — a block is stable when it has been evaluated and all
//! links adjacent to it (inputs *and* outputs) carry the valid bit — until
//! the whole system is stable, at which point the state banks are swapped
//! and simulated time advances.

use crate::block::SystemSpec;
use crate::counters::DeltaStats;
use crate::error::SimError;
use crate::instrument::KernelInstr;
use crate::links::LinkMemory;
use crate::profiler::KernelProfiler;
use crate::side::SideMem;
use crate::state::StateMemory;
use crate::trace::{ScheduleTrace, TraceEvent};
use crate::worklist::Worklist;
use std::sync::Arc;

/// One contiguous run of a [`HybridSchedule`]'s evaluation order: the
/// blocks of one SCC of the condensed spec graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HybridRun {
    /// First index into [`HybridSchedule::order`].
    pub start: usize,
    /// Number of blocks in the run.
    pub len: usize,
    /// `false` for a singleton SCC: in condensation topological order
    /// the block's inputs are already settled when it is reached, so it
    /// is evaluated exactly once (§4.1 static behaviour). `true` for a
    /// multi-block (or self-looping) SCC, which the HBR worklist
    /// iterates to its fixed point (§4.2).
    pub fixed_point: bool,
}

/// An analyzer-derived evaluation order: the topological order of the
/// spec graph's SCC condensation, one [`HybridRun`] per SCC.
///
/// Executed by [`Scheduling::Hybrid`], the order is driven through the
/// engine's ordinary HBR worklist with the round-robin position reset to
/// the head of the order each system cycle. The HBR machinery is what
/// makes the schedule *safe* regardless of the analysis: a block whose
/// inputs change after its evaluation is simply re-evaluated, so
/// behaviour stays bit-identical to any other order (the engine's
/// order-independence property). What the analysis buys is that blocks
/// in singleton SCCs are provably never re-armed — they run exactly once
/// per cycle — and re-evaluation is confined to the multi-block SCCs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HybridSchedule {
    /// Evaluation order: a permutation of block ids, SCCs contiguous,
    /// condensation-topologically sorted.
    pub order: Vec<usize>,
    /// The SCC runs partitioning `order`.
    pub runs: Vec<HybridRun>,
}

impl HybridSchedule {
    /// Number of blocks in singleton (single-evaluation) runs.
    pub fn static_blocks(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| !r.fixed_point)
            .map(|r| r.len)
            .sum()
    }

    /// Panic unless `order` is a permutation of `0..n` and `runs`
    /// partitions it contiguously.
    pub fn assert_valid(&self, n: usize) {
        assert_eq!(self.order.len(), n, "schedule must cover all blocks");
        let mut seen = vec![false; n];
        for &b in &self.order {
            assert!(b < n && !seen[b], "schedule order is not a permutation");
            seen[b] = true;
        }
        let mut at = 0usize;
        for r in &self.runs {
            assert_eq!(r.start, at, "schedule runs must tile the order");
            assert!(r.len > 0, "empty schedule run");
            at += r.len;
        }
        assert_eq!(at, n, "schedule runs must cover the order");
    }
}

/// Scheduling policy of the sequential simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Scheduling {
    /// The paper's scheduler: HBR status bits + round-robin over
    /// non-stable blocks, driven by the incremental [`Worklist`] — O(1)
    /// scheduler work per delta cycle, same evaluation sequence as the
    /// naive scan (verified by `tests/worklist_differential.rs`).
    HbrRoundRobin,
    /// The same scheduler computed the obvious way: a full O(n × links)
    /// stability rescan per delta cycle. Retained as the differential
    /// reference for [`HbrRoundRobin`](Scheduling::HbrRoundRobin) and as
    /// the measurable pre-optimisation baseline.
    HbrRoundRobinNaive,
    /// Ablation baseline: repeat full evaluation passes over all blocks
    /// until a pass changes no link value (no HBR bookkeeping; typically
    /// many more delta cycles).
    FullPasses,
    /// An analyzer-derived [`HybridSchedule`] (see `speccheck`): the HBR
    /// worklist sweeps the condensation-topological order from its head
    /// every system cycle, evaluating singleton-SCC blocks exactly once
    /// and iterating only inside multi-block SCCs. Bit-identical to
    /// [`HbrRoundRobin`](Scheduling::HbrRoundRobin); fewer delta cycles
    /// wherever the order avoids avoidable re-evaluations.
    Hybrid(Arc<HybridSchedule>),
}

/// A host-visible checkpoint of a running engine.
///
/// Paper §5.1: "All registers and memory of the FPGA design, via the
/// memory interface, are available in the address map of the ARM9
/// processor" — the host can read and later rewrite the complete
/// simulator state. Snapshots capture the state memory, the link memory,
/// the side (BRAM) memory and the scheduler position; restoring one
/// resumes a bit-identical simulation.
#[derive(Debug, Clone)]
pub struct Snapshot {
    state: StateMemory,
    links: LinkMemory,
    side: SideMem,
    rr_pos: usize,
    cycle: u64,
    stats: DeltaStats,
}

impl Snapshot {
    /// Serialize the snapshot for a durable checkpoint.
    pub fn encode(&self, e: &mut crate::wire::Enc) {
        self.state.encode(e);
        self.links.encode(e);
        self.side.encode(e);
        e.usize(self.rr_pos);
        e.u64(self.cycle);
        self.stats.encode(e);
    }

    /// Rebuild a snapshot encoded by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// [`crate::wire::WireError`] when the payload is truncated or
    /// internally inconsistent.
    pub fn decode(d: &mut crate::wire::Dec<'_>) -> Result<Self, crate::wire::WireError> {
        Ok(Snapshot {
            state: StateMemory::decode(d)?,
            links: LinkMemory::decode(d)?,
            side: SideMem::decode(d)?,
            rr_pos: d.usize()?,
            cycle: d.u64()?,
            stats: DeltaStats::decode(d)?,
        })
    }
}

/// Sequential engine with the paper's dynamic (HBR-driven) schedule.
pub struct DynamicEngine {
    spec: SystemSpec,
    state: StateMemory,
    links: LinkMemory,
    side: SideMem,
    scheduling: Scheduling,
    /// Base evaluation order (a permutation of block ids); the round-robin
    /// scan walks this order.
    order: Vec<usize>,
    /// Position in `order` where the next round-robin scan starts.
    rr_pos: usize,
    /// Restart the round-robin scan at the head of `order` every system
    /// cycle (instead of continuing from where the last cycle stopped).
    /// Implied by [`Scheduling::Hybrid`] — a topological sweep must
    /// start at the condensation head — and settable on its own for
    /// differential testing.
    sweep_from_head: bool,
    evaluated: Vec<bool>,
    cycle: u64,
    stats: DeltaStats,
    trace: Option<ScheduleTrace>,
    instr: KernelInstr,
    in_buf: Vec<u64>,
    out_buf: Vec<u64>,
    /// Scratch for the links an evaluation changed; only filled while a
    /// trace is attached (the hot path tracks a bool instead).
    changed_buf: Vec<usize>,
    /// Incremental stability tracker (derived state, rebuilt per cycle);
    /// consulted only under [`Scheduling::HbrRoundRobin`] but kept
    /// consistent by `eval_block` under every policy.
    worklist: Worklist,
    /// Delta-cycle budget per system cycle, as a multiple of the block
    /// count; exceeded means a non-converging combinational loop.
    cap_factor: usize,
    /// Delta cycles spent in the system cycle currently open (between
    /// [`begin_cycle`](Self::begin_cycle) and
    /// [`finish_cycle`](Self::finish_cycle)); persists across the
    /// multiple [`stabilize`](Self::stabilize) calls a sharded cycle
    /// makes, so the per-cycle budget and the trace's delta numbering
    /// span the whole cycle.
    delta_in_cycle: u32,
    /// The first error this engine hit. Once set, every further
    /// `try_*` call returns a clone of it: a diverged engine holds a
    /// half-settled cycle whose state must not be advanced further.
    broken: Option<SimError>,
    /// Per-block/per-SCC profiler (`None` = off: the hot path pays one
    /// pointer null-check per evaluation, nothing else).
    profiler: Option<Box<KernelProfiler>>,
}

impl DynamicEngine {
    /// Build an engine over `spec` with round-robin base order `0..n`.
    pub fn new(spec: SystemSpec) -> Self {
        let order = (0..spec.blocks().len()).collect();
        Self::with_order(spec, order)
    }

    /// Build an engine with an explicit base order (a permutation of block
    /// ids). Evaluation order affects only the delta-cycle count, never the
    /// simulated behaviour; the tests verify both properties.
    pub fn with_order(spec: SystemSpec, order: Vec<usize>) -> Self {
        if let Err(ds) = spec.check() {
            let msgs: Vec<String> = ds.iter().map(|d| d.to_string()).collect();
            panic!("invalid SystemSpec:\n{}", msgs.join("\n"));
        }
        assert_eq!(
            order.len(),
            spec.blocks().len(),
            "order must cover all blocks"
        );
        {
            let mut seen = vec![false; order.len()];
            for &b in &order {
                assert!(!seen[b], "duplicate block {b} in order");
                seen[b] = true;
            }
        }
        let state_bits: Vec<usize> = spec
            .blocks()
            .iter()
            .map(|b| spec.kinds()[b.kind].state_bits())
            .collect();
        let mut state = StateMemory::new(&state_bits);
        for (b, inst) in spec.blocks().iter().enumerate() {
            spec.kinds()[inst.kind].reset(state.cur_mut(b));
            state.copy_cur_to_next(b);
        }
        let links = LinkMemory::new(spec.links());
        let per_block_caps: Vec<Vec<usize>> = spec
            .blocks()
            .iter()
            .map(|b| spec.kinds()[b.kind].side_rings())
            .collect();
        let side = SideMem::new(&per_block_caps);
        let max_ports = spec
            .blocks()
            .iter()
            .map(|b| b.inputs.len().max(b.outputs.len()))
            .max()
            .unwrap_or(0);
        let n = spec.blocks().len();
        let worklist = Worklist::new(&spec, &order);
        DynamicEngine {
            spec,
            state,
            links,
            side,
            scheduling: Scheduling::HbrRoundRobin,
            order,
            rr_pos: 0,
            sweep_from_head: false,
            evaluated: vec![false; n],
            cycle: 0,
            stats: DeltaStats::default(),
            trace: None,
            instr: KernelInstr::disabled(),
            in_buf: vec![0; max_ports],
            out_buf: vec![0; max_ports],
            changed_buf: Vec::with_capacity(max_ports),
            worklist,
            cap_factor: 64,
            delta_in_cycle: 0,
            broken: None,
            profiler: None,
        }
    }

    /// Set the convergence watchdog budget: a system cycle may spend at
    /// most `cap_factor × blocks` delta cycles before
    /// [`SimError::Diverged`] is raised (default 64).
    pub fn set_delta_budget(&mut self, cap_factor: usize) {
        assert!(cap_factor > 0, "delta budget must be positive");
        self.cap_factor = cap_factor;
    }

    /// Select the scheduling policy (default [`Scheduling::HbrRoundRobin`]).
    ///
    /// Selecting [`Scheduling::Hybrid`] adopts the schedule's evaluation
    /// order (replacing the engine's base order, rebuilding the
    /// worklist) and turns on the per-cycle sweep reset. Call between
    /// system cycles.
    ///
    /// # Panics
    /// If a hybrid schedule does not cover this spec's blocks.
    pub fn set_scheduling(&mut self, s: Scheduling) {
        if let Scheduling::Hybrid(schedule) = &s {
            schedule.assert_valid(self.spec.blocks().len());
            self.order = schedule.order.clone();
            self.worklist = Worklist::new(&self.spec, &self.order);
            self.rr_pos = 0;
            self.sweep_from_head = true;
        }
        self.scheduling = s;
    }

    /// Restart the round-robin scan at the head of the base order every
    /// system cycle. [`Scheduling::Hybrid`] implies this; exposing it
    /// separately lets a differential test drive a plain
    /// [`Scheduling::HbrRoundRobin`] engine through the exact evaluation
    /// sequence a hybrid engine with the same order produces.
    pub fn set_sweep_reset(&mut self, on: bool) {
        self.sweep_from_head = on;
    }

    /// Enable schedule tracing (Fig 5 reproduction).
    pub fn enable_trace(&mut self) {
        self.trace = Some(ScheduleTrace::default());
    }

    /// Enable schedule tracing with an event cap: once `limit` events
    /// are held, further events are dropped and counted.
    pub fn enable_trace_limited(&mut self, limit: usize) {
        self.trace = Some(ScheduleTrace::with_limit(limit));
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&ScheduleTrace> {
        self.trace.as_ref()
    }

    /// Attach metrics/tracing instrumentation (see [`KernelInstr`]).
    pub fn set_instrumentation(&mut self, instr: KernelInstr) {
        self.instr = instr;
    }

    /// Attach a per-block/per-SCC profiler (see [`KernelProfiler`]).
    /// Replaces any previous profiler. Call between system cycles.
    pub fn attach_profiler(&mut self, p: KernelProfiler) {
        self.profiler = Some(Box::new(p));
    }

    /// Detach and return the profiler, if one was attached.
    pub fn take_profiler(&mut self) -> Option<Box<KernelProfiler>> {
        self.profiler.take()
    }

    /// The attached profiler, if any.
    pub fn profiler(&self) -> Option<&KernelProfiler> {
        self.profiler.as_deref()
    }

    /// Is block `b` stable? (evaluated, and every adjacent link read.)
    fn stable(&self, b: usize) -> bool {
        if !self.evaluated[b] {
            return false;
        }
        let inst = &self.spec.blocks()[b];
        inst.inputs
            .iter()
            .chain(inst.outputs.iter())
            .all(|&l| self.links.hbr(l))
    }

    /// Evaluate block `b` once (one delta cycle). Returns `true` when any
    /// output link value changed.
    fn eval_block(&mut self, b: usize, delta: u32) -> bool {
        // Timestamp covers the whole evaluation (input gather through
        // worklist updates), so per-block self time sums to the loop's
        // wall time minus only the scheduler's block-picking overhead.
        let prof_t0 = self.profiler.as_ref().and_then(|p| p.begin_eval());
        let inst = &self.spec.blocks()[b];
        for (i, &l) in inst.inputs.iter().enumerate() {
            self.in_buf[i] = self.links.value(l);
        }
        let kind = &self.spec.kinds()[inst.kind];
        let n_out = inst.outputs.len();
        let (cur, next) = self.state.cur_and_next_mut(b);
        kind.eval(
            inst.instance_of_kind,
            cur,
            &self.in_buf[..inst.inputs.len()],
            self.cycle,
            next,
            &mut self.out_buf[..n_out],
            &mut self.side.view(b),
        );
        let re_evaluation = self.evaluated[b];
        self.evaluated[b] = true;
        if !re_evaluation {
            self.worklist.on_first_eval(b);
        }
        for &l in &inst.inputs {
            if self.links.mark_read(l) {
                self.worklist.on_read(l);
            }
        }
        let tracing = self.trace.is_some();
        self.changed_buf.clear();
        let mut any_changed = false;
        for (o, &l) in inst.outputs.iter().enumerate() {
            let (changed, rearmed) = self.links.write_tracked(l, self.out_buf[o]);
            if changed {
                any_changed = true;
                if tracing {
                    self.changed_buf.push(l);
                }
            }
            if rearmed {
                self.worklist.on_rearm(l);
            }
            // Dangling outputs have no reader; auto-read keeps the writer
            // from looking eternally unstable.
            if self.spec.links()[l].consumer.is_none() && self.links.mark_read(l) {
                self.worklist.on_read(l);
            }
        }
        self.instr.record_eval(self.cycle, delta, b, re_evaluation);
        if let Some(p) = self.profiler.as_mut() {
            p.end_eval(b, re_evaluation, prof_t0);
        }
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceEvent {
                system_cycle: self.cycle,
                delta,
                block: b,
                changed_links: self.changed_buf.clone(),
                re_evaluation,
            });
        }
        any_changed
    }

    /// Simulate one system cycle: reset HBR bits, evaluate until stable,
    /// swap the state banks.
    ///
    /// Panics if the cycle diverges; use [`try_step`](Self::try_step) to
    /// receive [`SimError::Diverged`] instead.
    pub fn step(&mut self) {
        match self.try_step() {
            Ok(()) => {}
            Err(e) => panic!("{e}"),
        }
    }

    /// Simulate one system cycle, surfacing divergence as a typed error
    /// instead of a panic. After an error the engine is *broken*: the
    /// half-settled cycle is not committed and every further `try_*`
    /// call returns the same error (restore a [`Snapshot`] to recover).
    pub fn try_step(&mut self) -> Result<(), SimError> {
        self.begin_cycle();
        self.try_stabilize()?;
        self.finish_cycle();
        Ok(())
    }

    /// Open a system cycle: reset every HBR bit ("Every system cycle is
    /// started by resetting all status bits to zero"), mark every block
    /// unevaluated and zero the cycle's delta counter.
    ///
    /// [`step`](Self::step) is `begin_cycle`, one
    /// [`stabilize`](Self::stabilize), then
    /// [`finish_cycle`](Self::finish_cycle). The sharded engine drives
    /// the phases itself, interleaving extra `stabilize` calls with
    /// boundary-value exchanges until no boundary changes.
    pub fn begin_cycle(&mut self) {
        self.links.reset_hbr();
        self.evaluated.iter_mut().for_each(|e| *e = false);
        self.worklist.begin_cycle();
        self.delta_in_cycle = 0;
        if self.sweep_from_head {
            self.rr_pos = 0;
        }
        if let Some(p) = self.profiler.as_mut() {
            p.begin_cycle();
        }
    }

    /// Evaluate until every block is stable under the configured
    /// scheduling policy, and return the number of delta cycles this call
    /// spent. Re-entrant within one system cycle: a later
    /// [`write_boundary`](Self::write_boundary) may re-arm consumers, and
    /// the next `stabilize` call evaluates exactly those.
    ///
    /// Panics if the cycle diverges; use
    /// [`try_stabilize`](Self::try_stabilize) to receive
    /// [`SimError::Diverged`] instead.
    pub fn stabilize(&mut self) -> u32 {
        match self.try_stabilize() {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`stabilize`](Self::stabilize) with the convergence watchdog
    /// surfacing as a typed error: once `cap_factor × blocks` delta
    /// cycles have been spent inside one system cycle without reaching
    /// the fixed point, returns [`SimError::Diverged`] naming the
    /// still-unstable blocks (identically under all three scheduling
    /// policies) and marks the engine broken.
    pub fn try_stabilize(&mut self) -> Result<u32, SimError> {
        if let Some(e) = &self.broken {
            return Err(e.clone());
        }
        let n = self.spec.blocks().len();
        let cap = (self.cap_factor * n) as u32;
        let before = self.delta_in_cycle;
        let mut delta = self.delta_in_cycle;
        // Cheap clone (at most one Arc bump) so the arms can borrow
        // `self` mutably.
        let scheduling = self.scheduling.clone();
        match scheduling {
            // Round-robin pick of the first non-stable block — the
            // incremental tracker's bitset scan returns exactly the
            // block the naive rescan below would find. A hybrid
            // schedule runs on the identical machinery: its analysis
            // went into the base order and the per-cycle sweep reset,
            // so the worklist sweep visits the condensation in
            // topological order and never re-arms a singleton SCC.
            Scheduling::HbrRoundRobin | Scheduling::Hybrid(_) => {
                while let Some(pos) = self.worklist.next_unstable(self.rr_pos) {
                    let b = self.order[pos];
                    debug_assert!(!self.stable(b));
                    self.rr_pos = (pos + 1) % n;
                    self.eval_block(b, delta);
                    delta += 1;
                    if delta >= cap {
                        return Err(self.diverge(cap, delta));
                    }
                }
            }
            Scheduling::HbrRoundRobinNaive => loop {
                // Reference implementation: full stability rescan per delta.
                let mut found = None;
                for i in 0..n {
                    let b = self.order[(self.rr_pos + i) % n];
                    if !self.stable(b) {
                        found = Some((i, b));
                        break;
                    }
                }
                let Some((i, b)) = found else { break };
                self.rr_pos = (self.rr_pos + i + 1) % n;
                self.eval_block(b, delta);
                delta += 1;
                if delta >= cap {
                    return Err(self.diverge(cap, delta));
                }
            },
            Scheduling::FullPasses => loop {
                let mut pass_changed = false;
                for i in 0..n {
                    let b = self.order[i];
                    pass_changed |= self.eval_block(b, delta);
                    delta += 1;
                    if delta >= cap {
                        return Err(self.diverge(cap, delta));
                    }
                }
                if !pass_changed {
                    break;
                }
            },
        }
        self.delta_in_cycle = delta;
        Ok(delta - before)
    }

    /// Record and return the divergence error for the current cycle.
    fn diverge(&mut self, cap: u32, delta: u32) -> SimError {
        self.delta_in_cycle = delta;
        let unstable_blocks: Vec<usize> = self
            .order
            .iter()
            .copied()
            .filter(|&b| !self.stable(b))
            .collect();
        let last_trace = self.trace.as_ref().map_or_else(Vec::new, |t| {
            let tail = t.events.len().saturating_sub(16);
            t.events[tail..].to_vec()
        });
        let e = SimError::Diverged {
            cycle: self.cycle,
            budget: cap,
            unstable_blocks,
            last_trace,
        };
        self.broken = Some(e.clone());
        e
    }

    /// Close a system cycle: swap the state banks, record the delta
    /// accounting and advance simulated time.
    pub fn finish_cycle(&mut self) {
        let n = self.spec.blocks().len();
        let delta = self.delta_in_cycle;
        self.state.swap();
        self.stats.record_cycle(delta as u64, n as u64);
        self.instr.record_cycle(self.cycle, delta as u64, n as u64);
        if let Some(p) = self.profiler.as_mut() {
            p.end_cycle();
        }
        self.cycle += 1;
        self.delta_in_cycle = 0;
    }

    /// Mid-cycle write to an external link carrying a value from another
    /// engine's boundary (the sharded engine's mailbox application).
    ///
    /// Unlike [`set_external`](Self::set_external) — which is only safe
    /// *between* cycles because the worklist does not observe it — this
    /// keeps the incremental stability tracker consistent: a changed
    /// value that clears a read HBR bit re-arms the consumer, so the next
    /// [`stabilize`](Self::stabilize) call re-evaluates it.
    pub fn write_boundary(&mut self, l: usize, value: u64) {
        debug_assert!(
            matches!(
                self.spec.links()[l].driver,
                crate::block::LinkDriver::External
            ),
            "boundary link {l} is not host/peer writable"
        );
        let (_changed, rearmed) = self.links.write_tracked(l, value);
        if rearmed {
            self.worklist.on_rearm(l);
        }
    }

    /// Simulate `n` system cycles. Panics on divergence; see
    /// [`try_run`](Self::try_run).
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Simulate `n` system cycles, stopping at the first
    /// [`SimError::Diverged`].
    pub fn try_run(&mut self, n: u64) -> Result<(), SimError> {
        for _ in 0..n {
            self.try_step()?;
        }
        Ok(())
    }

    /// The first error this engine hit, if it is broken.
    pub fn error(&self) -> Option<&SimError> {
        self.broken.as_ref()
    }

    /// Current system cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Current value of link `l`.
    pub fn link_value(&self, l: usize) -> u64 {
        self.links.value(l)
    }

    /// Host write to an external link (between system cycles).
    pub fn set_external(&mut self, l: usize, value: u64) {
        self.links.write_external(l, value);
    }

    /// Current register state of block `b` (host peek over the memory
    /// interface).
    pub fn peek_state(&self, b: usize) -> &[u64] {
        self.state.cur(b)
    }

    /// Delta statistics so far.
    pub fn stats(&self) -> &DeltaStats {
        &self.stats
    }

    /// Reset accumulated statistics (e.g. after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = DeltaStats::default();
    }

    /// Capture a checkpoint (between system cycles).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            state: self.state.clone(),
            links: self.links.clone(),
            side: self.side.clone(),
            rr_pos: self.rr_pos,
            cycle: self.cycle,
            stats: self.stats.clone(),
        }
    }

    /// Restore a checkpoint taken from this engine (or an identically
    /// built one). Subsequent simulation is bit-identical to the
    /// original run.
    pub fn restore(&mut self, snap: &Snapshot) {
        self.state = snap.state.clone();
        self.links = snap.links.clone();
        self.side = snap.side.clone();
        self.rr_pos = snap.rr_pos;
        self.cycle = snap.cycle;
        self.stats = snap.stats.clone();
        self.evaluated.iter_mut().for_each(|e| *e = false);
        self.delta_in_cycle = 0;
        self.broken = None;
    }

    /// Side memory (host reads results).
    pub fn side(&self) -> &SideMem {
        &self.side
    }

    /// Mutable side memory (host writes stimuli).
    pub fn side_mut(&mut self) -> &mut SideMem {
        &mut self.side
    }

    /// The system specification.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }
}
