//! Durable checkpoint wire format: a zero-dependency, versioned,
//! length-prefixed, CRC32-checksummed binary container plus the
//! little-endian primitive encoder/decoder the snapshot types use.
//!
//! The container layout (all integers little-endian) is:
//!
//! ```text
//! offset  size  field
//!      0     8  magic  "SOCSIMCK"
//!      8     4  format version (u32)
//!     12     8  payload length in bytes (u64)
//!     20     4  CRC32 (IEEE) of the payload
//!     24     N  payload
//! ```
//!
//! [`seal`] builds a container; [`open`] verifies magic, version, length
//! and checksum before handing the payload back — a truncated file fails
//! the length check, a bit flip anywhere in the payload fails the CRC, a
//! bit flip in the header fails magic/version/length. Every check is a
//! typed [`WireError`], never a panic, so a supervisor can skip corrupt
//! checkpoints and fall back to an older one.

use std::fmt;

/// The 8-byte magic prefix of every checkpoint container.
pub const MAGIC: [u8; 8] = *b"SOCSIMCK";

/// Size of the container header ([`MAGIC`] + version + length + CRC).
pub const HEADER_LEN: usize = 24;

/// A malformed or corrupt wire payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(String);

impl WireError {
    /// Build an error with a human-readable cause.
    pub fn new(msg: impl Into<String>) -> WireError {
        WireError(msg.into())
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    // Tableless bit-at-a-time implementation: checkpoint payloads are
    // megabytes at most and written once per cadence, so simplicity and
    // zero static storage beat a lookup table here.
    let mut crc = !0u32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Wrap `payload` in a checksummed container of format `version`.
pub fn seal(version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Verify a container and return its payload slice.
///
/// # Errors
///
/// [`WireError`] when the container is shorter than its header, carries
/// the wrong magic or version, its payload is truncated (or trailed by
/// junk), or the CRC32 does not match.
pub fn open(data: &[u8], expect_version: u32) -> Result<&[u8], WireError> {
    if data.len() < HEADER_LEN {
        return Err(WireError::new(format!(
            "container truncated: {} bytes, header needs {HEADER_LEN}",
            data.len()
        )));
    }
    if data[..8] != MAGIC {
        return Err(WireError::new("bad magic: not a checkpoint container"));
    }
    let version = u32::from_le_bytes([data[8], data[9], data[10], data[11]]);
    if version != expect_version {
        return Err(WireError::new(format!(
            "format version {version}, expected {expect_version}"
        )));
    }
    let len = u64::from_le_bytes([
        data[12], data[13], data[14], data[15], data[16], data[17], data[18], data[19],
    ]) as usize;
    let crc = u32::from_le_bytes([data[20], data[21], data[22], data[23]]);
    let payload = &data[HEADER_LEN..];
    if payload.len() != len {
        return Err(WireError::new(format!(
            "payload truncated: {} bytes on disk, header claims {len}",
            payload.len()
        )));
    }
    let actual = crc32(payload);
    if actual != crc {
        return Err(WireError::new(format!(
            "checksum mismatch: computed {actual:#010x}, header claims {crc:#010x}"
        )));
    }
    Ok(payload)
}

/// Little-endian primitive encoder. Append-only; the matching [`Dec`]
/// reads fields back in the same order.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Enc {
        Enc { buf: Vec::new() }
    }

    /// Consume the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64` (two's complement).
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append a boolean as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Append an `f64` by bit pattern (exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed `&str` (UTF-8 bytes).
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Append a length-prefixed `u64` slice.
    pub fn u64s(&mut self, v: &[u64]) {
        self.usize(v.len());
        for &w in v {
            self.u64(w);
        }
    }

    /// Append a length-prefixed `usize` slice (as `u64`s).
    pub fn usizes(&mut self, v: &[usize]) {
        self.usize(v.len());
        for &w in v {
            self.usize(w);
        }
    }

    /// Append a length-prefixed boolean slice.
    pub fn bools(&mut self, v: &[bool]) {
        self.usize(v.len());
        for &b in v {
            self.bool(b);
        }
    }
}

/// Little-endian primitive decoder over a byte slice; every read is
/// bounds-checked and returns a typed [`WireError`] on underrun.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decode from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed (a successful full parse).
    pub fn finished(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::new(format!(
                "underrun: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    /// Read an `i64`.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(self.u64()? as i64)
    }

    /// Read a `usize` (bounded by the remaining buffer to keep corrupt
    /// length prefixes from causing huge allocations).
    pub fn usize(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::new(format!("length {v} exceeds usize")))
    }

    /// Read a length prefix that counts items of at least `item_bytes`
    /// bytes each, rejecting prefixes larger than the remaining buffer.
    fn len_prefix(&mut self, item_bytes: usize) -> Result<usize, WireError> {
        let n = self.usize()?;
        if n.saturating_mul(item_bytes.max(1)) > self.remaining() {
            return Err(WireError::new(format!(
                "length prefix {n} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Read a boolean (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(WireError::new(format!("bad boolean byte {v:#04x}"))),
        }
    }

    /// Read an `f64` by bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.len_prefix(1)?;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::new("invalid UTF-8 string"))
    }

    /// Read a length-prefixed `u64` vector.
    pub fn u64s(&mut self) -> Result<Vec<u64>, WireError> {
        let n = self.len_prefix(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    /// Read a length-prefixed `usize` vector.
    pub fn usizes(&mut self) -> Result<Vec<usize>, WireError> {
        let n = self.len_prefix(8)?;
        (0..n).map(|_| self.usize()).collect()
    }

    /// Read a length-prefixed boolean vector.
    pub fn bools(&mut self) -> Result<Vec<bool>, WireError> {
        let n = self.len_prefix(1)?;
        (0..n).map(|_| self.bool()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut e = Enc::new();
        e.u8(0xAB);
        e.u16(0xBEEF);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 3);
        e.i64(-42);
        e.bool(true);
        e.f64(core::f64::consts::PI);
        e.bytes(b"hello");
        e.str("wörld");
        e.u64s(&[1, 2, 3]);
        e.usizes(&[7, 8]);
        e.bools(&[true, false, true]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 0xAB);
        assert_eq!(d.u16().unwrap(), 0xBEEF);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.i64().unwrap(), -42);
        assert!(d.bool().unwrap());
        assert_eq!(d.f64().unwrap(), core::f64::consts::PI);
        assert_eq!(d.bytes().unwrap(), b"hello");
        assert_eq!(d.str().unwrap(), "wörld");
        assert_eq!(d.u64s().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.usizes().unwrap(), vec![7, 8]);
        assert_eq!(d.bools().unwrap(), vec![true, false, true]);
        assert!(d.finished());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn container_round_trips() {
        let payload = b"checkpoint payload".to_vec();
        let sealed = seal(3, &payload);
        assert_eq!(open(&sealed, 3).unwrap(), &payload[..]);
    }

    #[test]
    fn container_rejects_corruption() {
        let sealed = seal(1, b"some payload bytes");
        // Truncation (both header-level and payload-level).
        assert!(open(&sealed[..10], 1).is_err());
        assert!(open(&sealed[..sealed.len() - 1], 1).is_err());
        // A bit flip in the payload fails the CRC.
        let mut flipped = sealed.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x10;
        let err = open(&flipped, 1).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        // Wrong magic and wrong version are distinct failures.
        let mut bad_magic = sealed.clone();
        bad_magic[0] ^= 0xFF;
        assert!(open(&bad_magic, 1)
            .unwrap_err()
            .to_string()
            .contains("magic"));
        assert!(open(&sealed, 2)
            .unwrap_err()
            .to_string()
            .contains("version"));
    }

    #[test]
    fn decoder_rejects_oversized_length_prefixes() {
        let mut e = Enc::new();
        e.usize(usize::MAX / 2);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(d.u64s().is_err(), "huge length prefix must not allocate");
    }
}
