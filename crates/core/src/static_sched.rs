//! Static-schedule engine for systems with registered boundaries
//! (paper §4.1, Fig 3).
//!
//! "The order in which the circuitry is evaluated to calculate new register
//! values can be arbitrary, because for all parts of the system a
//! previously calculated register value is used at input [...] After all
//! three functions are evaluated we should copy the new state to the
//! current state of the registers [...] this copy action is performed by
//! switching the offset pointer."
//!
//! Inter-block links are treated as *registered*: evaluations read the link
//! bank written in the previous system cycle and write a separate next
//! bank, which is swapped at the cycle boundary. This engine is only
//! correct for systems whose block outputs are functions of registered
//! state alone; for combinatorial boundaries use
//! [`DynamicEngine`](crate::dynamic_sched::DynamicEngine).

use crate::block::{LinkDriver, SystemSpec};
use crate::counters::DeltaStats;
use crate::instrument::KernelInstr;
use crate::side::SideMem;
use crate::state::StateMemory;
use crate::trace::{ScheduleTrace, TraceEvent};

/// Sequential engine with a static (fixed-order) schedule and
/// double-banked links.
pub struct StaticEngine {
    spec: SystemSpec,
    state: StateMemory,
    links_cur: Vec<u64>,
    links_next: Vec<u64>,
    side: SideMem,
    order: Vec<usize>,
    cycle: u64,
    stats: DeltaStats,
    trace: Option<ScheduleTrace>,
    instr: KernelInstr,
    in_buf: Vec<u64>,
    out_buf: Vec<u64>,
    /// Scratch for the links an evaluation changed; only filled while a
    /// trace is attached.
    changed_buf: Vec<usize>,
}

impl StaticEngine {
    /// Build an engine over `spec`, evaluating blocks in index order.
    pub fn new(spec: SystemSpec) -> Self {
        let order = (0..spec.blocks().len()).collect();
        Self::with_order(spec, order)
    }

    /// Build an engine with an explicit evaluation order (a permutation of
    /// block ids). The paper's §4.1 argues the result is order-independent;
    /// the tests verify it.
    pub fn with_order(spec: SystemSpec, order: Vec<usize>) -> Self {
        if let Err(ds) = spec.check() {
            let msgs: Vec<String> = ds.iter().map(|d| d.to_string()).collect();
            panic!("invalid SystemSpec:\n{}", msgs.join("\n"));
        }
        assert_eq!(
            order.len(),
            spec.blocks().len(),
            "order must cover all blocks"
        );
        {
            let mut seen = vec![false; order.len()];
            for &b in &order {
                assert!(!seen[b], "duplicate block {b} in order");
                seen[b] = true;
            }
        }
        let state_bits: Vec<usize> = spec
            .blocks()
            .iter()
            .map(|b| spec.kinds()[b.kind].state_bits())
            .collect();
        let mut state = StateMemory::new(&state_bits);
        for (b, inst) in spec.blocks().iter().enumerate() {
            spec.kinds()[inst.kind].reset(state.cur_mut(b));
            state.copy_cur_to_next(b);
        }
        let links_cur: Vec<u64> = spec.links().iter().map(|l| l.reset_value).collect();
        let links_next = links_cur.clone();
        let per_block_caps: Vec<Vec<usize>> = spec
            .blocks()
            .iter()
            .map(|b| spec.kinds()[b.kind].side_rings())
            .collect();
        let side = SideMem::new(&per_block_caps);
        let max_ports = spec
            .blocks()
            .iter()
            .map(|b| b.inputs.len().max(b.outputs.len()))
            .max()
            .unwrap_or(0);
        StaticEngine {
            spec,
            state,
            links_cur,
            links_next,
            side,
            order,
            cycle: 0,
            stats: DeltaStats::default(),
            trace: None,
            instr: KernelInstr::disabled(),
            in_buf: vec![0; max_ports],
            out_buf: vec![0; max_ports],
            changed_buf: Vec::with_capacity(max_ports),
        }
    }

    /// Enable schedule tracing (Fig 3 reproduction).
    pub fn enable_trace(&mut self) {
        self.trace = Some(ScheduleTrace::default());
    }

    /// Enable schedule tracing with an event cap: once `limit` events
    /// are held, further events are dropped and counted.
    pub fn enable_trace_limited(&mut self, limit: usize) {
        self.trace = Some(ScheduleTrace::with_limit(limit));
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&ScheduleTrace> {
        self.trace.as_ref()
    }

    /// Attach metrics/tracing instrumentation (see [`KernelInstr`]).
    pub fn set_instrumentation(&mut self, instr: KernelInstr) {
        self.instr = instr;
    }

    /// Simulate one system cycle.
    pub fn step(&mut self) {
        let n = self.spec.blocks().len();
        for delta in 0..n {
            let b = self.order[delta];
            let inst = &self.spec.blocks()[b];
            for (i, &l) in inst.inputs.iter().enumerate() {
                self.in_buf[i] = self.links_cur[l];
            }
            let kind = &self.spec.kinds()[inst.kind];
            let n_out = inst.outputs.len();
            let (cur, next) = self.state.cur_and_next_mut(b);
            kind.eval(
                inst.instance_of_kind,
                cur,
                &self.in_buf[..inst.inputs.len()],
                self.cycle,
                next,
                &mut self.out_buf[..n_out],
                &mut self.side.view(b),
            );
            let tracing = self.trace.is_some();
            self.changed_buf.clear();
            for (o, &l) in inst.outputs.iter().enumerate() {
                if tracing && self.links_next[l] != self.out_buf[o] {
                    self.changed_buf.push(l);
                }
                self.links_next[l] = self.out_buf[o];
            }
            self.instr.record_eval(self.cycle, delta as u32, b, false);
            if let Some(t) = self.trace.as_mut() {
                t.push(TraceEvent {
                    system_cycle: self.cycle,
                    delta: delta as u32,
                    block: b,
                    changed_links: self.changed_buf.clone(),
                    re_evaluation: false,
                });
            }
        }
        // Constants and externals hold their value in the next bank too.
        for (l, spec) in self.spec.links().iter().enumerate() {
            if !matches!(spec.driver, LinkDriver::Block { .. }) {
                self.links_next[l] = self.links_cur[l];
            }
        }
        core::mem::swap(&mut self.links_cur, &mut self.links_next);
        self.state.swap();
        self.stats.record_cycle(n as u64, n as u64);
        self.instr.record_cycle(self.cycle, n as u64, n as u64);
        self.cycle += 1;
    }

    /// Simulate `n` system cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Current system cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Current value of link `l` (the registered value readable this cycle).
    pub fn link_value(&self, l: usize) -> u64 {
        self.links_cur[l]
    }

    /// Host write to an external link.
    pub fn set_external(&mut self, l: usize, value: u64) {
        assert!(
            matches!(self.spec.links()[l].driver, LinkDriver::External),
            "link {l} is not external"
        );
        self.links_cur[l] = value;
        self.links_next[l] = value;
    }

    /// Current register state of block `b` (host peek over the memory
    /// interface).
    pub fn peek_state(&self, b: usize) -> &[u64] {
        self.state.cur(b)
    }

    /// Delta statistics so far.
    pub fn stats(&self) -> &DeltaStats {
        &self.stats
    }

    /// Side memory (host access to BRAM rings).
    pub fn side(&self) -> &SideMem {
        &self.side
    }

    /// Mutable side memory (host writes stimuli).
    pub fn side_mut(&mut self) -> &mut SideMem {
        &mut self.side
    }

    /// The system specification.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }
}
