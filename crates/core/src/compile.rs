//! Schedule compilation: lower a checked [`SystemSpec`] into a flat
//! bytecode program over one contiguous `u64` arena, plus the
//! interpreter engine that executes it.
//!
//! The hybrid scheduler ([`DynamicEngine`](crate::DynamicEngine) with a
//! `speccheck` schedule) still *interprets* the spec every delta cycle:
//! virtual `BlockKind::eval` calls, per-link change tracking, worklist
//! scans. This module compiles the schedule once, ahead of time:
//!
//! * **Arena** — every link value and both state banks live at fixed
//!   `u64` offsets in one contiguous allocation ([`Arena`]); a link read
//!   is one indexed load, the bank swap is an XOR of one offset.
//! * **Bytecode** — the per-cycle work is a flat [`Op`] list executed by
//!   a computed-dispatch `match` ([`CompiledEngine::try_step`]). Gather
//!   and scatter port↔link moves are table-driven
//!   ([`CompiledProgram::gathers`] / [`scatters`](CompiledProgram::scatters)).
//! * **HBR elision** — when the port-level combinational graph is
//!   acyclic (the analyzer's single-evaluation proof), the program is a
//!   straight line: one comb pass per dependency level, then one
//!   state-update pass. No change detection, no re-evaluation, no
//!   worklist — each value is written exactly once per cycle, after
//!   everything it depends on has settled.
//! * **Specialized opcodes** — a [`BlockKind`] may provide a
//!   [`CompiledExec`] ([`BlockKind::compile`]) that keeps its register
//!   state *decoded* between cycles, eliding the per-delta pack/unpack
//!   of the generic path; kinds without one fall back to packed
//!   [`Op::CombPacked`] / [`Op::UpdatePacked`] evaluation, which is
//!   bit-identical by construction.
//!
//! If the comb graph is cyclic the compiler degrades to a bounded
//! fixed-point program ([`ProgramMode::FixedPoint`]): full passes over
//! all blocks until no link changes, with a divergence budget — the
//! semantics of [`Scheduling::FullPasses`](crate::Scheduling::FullPasses).
//!
//! # Why the straight-line program is bit-identical
//!
//! Level ℓ of an output port is defined over the *declared* comb
//! dependencies ([`BlockKind::comb_inputs`]): a port at level ℓ depends
//! only on links driven by ports at levels < ℓ (plus registered state,
//! constants and externals). The program scatters all level-0 outputs,
//! then all level-1 outputs, … so by the time an op runs, every link it
//! is allowed to read holds its settled value for this cycle. A packed
//! fallback op evaluates the whole block but scatters *only* the ports
//! of its level, so not-yet-settled garbage it may compute from stale
//! inputs never reaches a link; its side-ring writes are idempotent by
//! the [`BlockKind`] contract (the HBR engine re-evaluates under the
//! same assumption). The final update pass then sees exactly the link
//! values a parallel-settled hardware cycle would produce.

use crate::block::{CombInputs, LinkDriver, SystemSpec};
use crate::counters::DeltaStats;
use crate::error::SimError;
use crate::profiler::KernelProfiler;
use crate::side::{SideMem, SideView};
use noc_types::bits::words_for_bits;

/// Default fixed-point pass budget per system cycle (cyclic specs only).
pub const DEFAULT_MAX_PASSES: u32 = 64;

// ---------------------------------------------------------------------------
// Specialized execution units
// ---------------------------------------------------------------------------

/// A specialized, decoded-state execution unit for one [`BlockKind`].
///
/// The compiled engine keeps one exec per kind; it owns the *decoded*
/// register state of every instance of that kind, so the per-cycle path
/// never packs/unpacks bit fields. The engine synchronizes decoded and
/// packed state only at snapshot/restore/peek boundaries via
/// [`load`](CompiledExec::load) / [`store`](CompiledExec::store).
pub trait CompiledExec: Send {
    /// Replace instance `instance`'s decoded state by unpacking `packed`
    /// (same encoding as [`BlockKind::reset`] state words).
    fn load(&mut self, instance: usize, packed: &[u64]);

    /// Pack instance `instance`'s decoded state into `packed`.
    fn store(&self, instance: usize, packed: &mut [u64]);

    /// Evaluate comb pass `pass` (0-based over the kind's distinct comb
    /// levels, ascending) for `instance`. `inputs` is port-indexed; only
    /// the ports gathered for this op (the union of the pass's declared
    /// comb dependencies) are fresh. Write the pass's output ports into
    /// the port-indexed `outputs`; the interpreter scatters them.
    fn comb(
        &mut self,
        instance: usize,
        pass: usize,
        inputs: &[u64],
        cycle: u64,
        outputs: &mut [u64],
        side: &mut SideView<'_>,
    );

    /// Commit the clock edge for `instance`: consume the settled
    /// `inputs` (all ports fresh) and advance the decoded register state
    /// in place. Runs exactly once per system cycle.
    fn update(&mut self, instance: usize, inputs: &[u64], cycle: u64, side: &mut SideView<'_>);
}

// ---------------------------------------------------------------------------
// Bytecode
// ---------------------------------------------------------------------------

/// A `(start, len)` window into one of the program's side tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRange {
    /// First entry index.
    pub start: u32,
    /// Number of entries.
    pub len: u32,
}

impl OpRange {
    /// The window as a `usize` range, for indexing the side table.
    pub fn as_range(self) -> std::ops::Range<usize> {
        self.start as usize..(self.start + self.len) as usize
    }
}

/// One gather move: load `arena.words[link]`, shift it left by `shift`
/// and either overwrite (`acc == false`) or OR into (`acc == true`)
/// `in_buf[port]`. Plain links use one move with `shift == 0, acc ==
/// false` (the old semantics exactly); a sliced link reassembles its
/// port word through one accumulating move per bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatherMove {
    /// Destination input port.
    pub port: u32,
    /// Source arena link offset.
    pub link: u32,
    /// Left shift applied to the loaded word (sub-word bit position).
    pub shift: u8,
    /// OR into the port word instead of overwriting it.
    pub acc: bool,
}

/// One scatter move: `arena.words[link] = (out_buf[port] >> shift) &
/// mask`. Plain links use `shift == 0` and the link-width mask; a
/// sliced link scatters one bit per move with `mask == 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScatterMove {
    /// Source output port.
    pub port: u32,
    /// Destination arena link offset.
    pub link: u32,
    /// Link width mask (applied after the shift).
    pub mask: u64,
    /// Right shift applied to the port word (sub-word bit position).
    pub shift: u8,
}

/// One bytecode instruction. `kind` / `block` / `instance` are
/// back-pointers into the spec (`block` also drives profiler
/// attribution); `gather` / `scatter` index the program's side tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Specialized comb pass via the kind's [`CompiledExec`].
    Comb {
        /// Kind id (exec table index).
        kind: u32,
        /// Block-local comb pass index (see [`CompiledExec::comb`]).
        pass: u32,
        /// Block id (attribution / side rings).
        block: u32,
        /// Instance index within the kind.
        instance: u32,
        /// Input moves (the pass's declared comb dependencies).
        gather: OpRange,
        /// Output moves (this level's ports only).
        scatter: OpRange,
    },
    /// Packed-fallback comb pass: full [`BlockKind::eval`] with current
    /// state, next-state words discarded, only this level's outputs
    /// scattered.
    CombPacked {
        /// Kind id.
        kind: u32,
        /// Block-local comb pass index (disassembly only).
        pass: u32,
        /// Block id.
        block: u32,
        /// Instance index within the kind.
        instance: u32,
        /// Input moves (all input ports).
        gather: OpRange,
        /// Output moves (this level's ports only).
        scatter: OpRange,
    },
    /// Specialized clock edge via the kind's [`CompiledExec`].
    Update {
        /// Kind id (exec table index).
        kind: u32,
        /// Block id.
        block: u32,
        /// Instance index within the kind.
        instance: u32,
        /// Input moves (all input ports).
        gather: OpRange,
    },
    /// Packed-fallback clock edge: full [`BlockKind::eval`] writing the
    /// next-state bank; outputs discarded (already scattered by the comb
    /// passes).
    UpdatePacked {
        /// Kind id.
        kind: u32,
        /// Block id.
        block: u32,
        /// Instance index within the kind.
        instance: u32,
        /// Input moves (all input ports).
        gather: OpRange,
    },
    /// Fixed-point full evaluation (cyclic comb graphs only): full
    /// [`BlockKind::eval`], next-state bank written, all outputs
    /// scattered with change detection.
    EvalFull {
        /// Kind id.
        kind: u32,
        /// Block id.
        block: u32,
        /// Instance index within the kind.
        instance: u32,
        /// Input moves (all input ports).
        gather: OpRange,
        /// Output moves (all output ports).
        scatter: OpRange,
    },
}

impl Op {
    /// The block this op is attributed to.
    pub fn block(&self) -> usize {
        match *self {
            Op::Comb { block, .. }
            | Op::CombPacked { block, .. }
            | Op::Update { block, .. }
            | Op::UpdatePacked { block, .. }
            | Op::EvalFull { block, .. } => block as usize,
        }
    }

    /// The scatter window, if this op writes links.
    pub fn scatter(&self) -> Option<OpRange> {
        match *self {
            Op::Comb { scatter, .. }
            | Op::CombPacked { scatter, .. }
            | Op::EvalFull { scatter, .. } => Some(scatter),
            Op::Update { .. } | Op::UpdatePacked { .. } => None,
        }
    }
}

/// How the program advances one system cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramMode {
    /// Acyclic comb graph: one pass over `ops[..update_start]` (comb,
    /// grouped by dependency level), one pass over
    /// `ops[update_start..]` (updates). HBR fully elided.
    StraightLine {
        /// Number of comb dependency levels.
        levels: u32,
    },
    /// Cyclic comb graph: repeat full passes over all ops until no link
    /// changes, up to `max_passes` per cycle (then
    /// [`SimError::Diverged`]).
    FixedPoint {
        /// Pass budget per system cycle.
        max_passes: u32,
    },
}

/// A bit-slicing plan: links the compiler decomposes into per-bit
/// arena sub-words when lowering a straight-line program.
///
/// Slicing is *unconditionally semantics-preserving*: the scatter
/// splits the driver's exact output bits into one word per bit and the
/// gather reassembles the exact same word at every consumer, so a
/// sliced program is bit-identical to the unsliced one by construction.
/// The plan only decides where the per-bit representation (which the
/// batched engine can pack 64 lanes deep) is worth the extra moves —
/// the `speccheck` bitflow pass derives it from proven bit
/// independence.
///
/// Links that cannot be sliced (width outside `2..=64`, or not
/// block-driven) are silently skipped; fixed-point programs ignore the
/// plan entirely.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlicePlan {
    /// Link ids to slice (any order; duplicates are ignored).
    pub links: Vec<usize>,
}

/// One sliced link of a compiled program: bits `0..width` of `link`
/// live one per arena word at offsets `base..base + width` (LSB
/// first). The link's own word offset is dead in a sliced program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceEntry {
    /// The source link id.
    pub link: u32,
    /// Arena word offset of the link's bit 0.
    pub base: u32,
    /// The link's width in bits.
    pub width: u32,
}

/// Options for [`CompiledProgram::compile`].
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Block evaluation order inside each pass (e.g. the hybrid
    /// schedule's topological order). Defaults to spec order; any
    /// permutation is bit-identical in straight-line mode.
    pub order: Option<Vec<usize>>,
    /// Fixed-point pass budget per cycle (cyclic specs only).
    pub max_passes: u32,
    /// Links to decompose into per-bit sub-words (see [`SlicePlan`]).
    pub slice: SlicePlan,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            order: None,
            max_passes: DEFAULT_MAX_PASSES,
            slice: SlicePlan::default(),
        }
    }
}

/// A compiled schedule: the bytecode, its gather/scatter side tables,
/// and the arena geometry it addresses.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    /// Execution mode.
    pub mode: ProgramMode,
    /// The flat instruction list. In straight-line mode,
    /// `ops[..update_start]` are comb passes in level order and
    /// `ops[update_start..]` are updates; in fixed-point mode the whole
    /// list is the per-pass body.
    pub ops: Vec<Op>,
    /// Gather side table ([`OpRange`]-indexed).
    pub gathers: Vec<GatherMove>,
    /// Scatter side table ([`OpRange`]-indexed).
    pub scatters: Vec<ScatterMove>,
    /// First update op (straight-line mode; `0` in fixed-point mode).
    pub update_start: usize,
    /// Number of blocks in the source spec.
    pub n_blocks: usize,
    /// Number of links in the source spec (= arena link words).
    pub n_links: usize,
    /// Sliced links, ascending by link id (empty without a slice plan).
    pub slices: Vec<SliceEntry>,
}

impl CompiledProgram {
    /// Lower `spec` into a program. Chooses straight-line mode when the
    /// port-level comb graph is acyclic (always, for the NoC router
    /// specs — the analyzer proves it), fixed-point mode otherwise.
    pub fn compile(spec: &SystemSpec, opts: &CompileOptions) -> CompiledProgram {
        let blocks = spec.blocks();
        let kinds = spec.kinds();
        let links = spec.links();
        let nb = blocks.len();

        let order: Vec<usize> = match &opts.order {
            Some(o) => {
                assert_eq!(o.len(), nb, "order must list every block exactly once");
                o.clone()
            }
            None => (0..nb).collect(),
        };

        // Which kinds ship a specialized exec? (Probe once; the engine
        // instantiates its own copies.)
        let has_exec: Vec<bool> = kinds.iter().map(|k| k.compile().is_some()).collect();

        // ---- port-level comb levels (Kahn) ----
        let mut port_base = vec![0usize; nb + 1];
        for b in 0..nb {
            port_base[b + 1] = port_base[b] + blocks[b].outputs.len();
        }
        let np = port_base[nb];
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); np];
        let mut indeg = vec![0u32; np];
        for (b, inst) in blocks.iter().enumerate() {
            let kind = &kinds[inst.kind];
            for p in 0..inst.outputs.len() {
                let v = (port_base[b] + p) as u32;
                let ci = kind.comb_inputs(p);
                if ci.is_registered() {
                    continue;
                }
                for (i, &l) in inst.inputs.iter().enumerate() {
                    if !ci.depends_on(i) {
                        continue;
                    }
                    if let LinkDriver::Block { block, port } = links[l].driver {
                        adj[port_base[block] + port].push(v);
                        indeg[v as usize] += 1;
                    }
                }
            }
        }
        let mut level = vec![0u32; np];
        let mut queue: Vec<u32> = (0..np as u32).filter(|&v| indeg[v as usize] == 0).collect();
        let mut processed = 0usize;
        while let Some(u) = queue.pop() {
            processed += 1;
            for &v in &adj[u as usize] {
                let lv = level[u as usize] + 1;
                if lv > level[v as usize] {
                    level[v as usize] = lv;
                }
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    queue.push(v);
                }
            }
        }
        let cyclic = processed < np;

        // ---- slice-plan resolution (straight-line mode only) ----
        // `sub_base[l]` is the arena word of link `l`'s bit 0 when
        // sliced, `usize::MAX` otherwise. Ineligible links (width
        // outside 2..=64, or not block-driven — external/const words
        // are written through `Arena::set_link` which cannot fan out)
        // are skipped.
        let mut sub_base = vec![usize::MAX; links.len()];
        let mut n_sub = 0usize;
        if !cyclic {
            let mut wanted = opts.slice.links.clone();
            wanted.sort_unstable();
            wanted.dedup();
            for l in wanted {
                if l < links.len()
                    && (2..=64).contains(&links[l].width)
                    && matches!(links[l].driver, LinkDriver::Block { .. })
                {
                    sub_base[l] = links.len() + n_sub;
                    n_sub += links[l].width;
                }
            }
        }

        let mut prog = CompiledProgram {
            mode: ProgramMode::StraightLine { levels: 0 },
            ops: Vec::new(),
            gathers: Vec::new(),
            scatters: Vec::new(),
            update_start: 0,
            n_blocks: nb,
            n_links: links.len(),
            slices: Vec::new(),
        };
        for (l, &base) in sub_base.iter().enumerate() {
            if base != usize::MAX {
                prog.slices.push(SliceEntry {
                    link: l as u32,
                    base: base as u32,
                    width: links[l].width as u32,
                });
            }
        }
        let mask_of = |l: usize| -> u64 {
            let w = links[l].width;
            if w >= 64 {
                u64::MAX
            } else {
                (1u64 << w) - 1
            }
        };
        let push_gather = |tbl: &mut Vec<GatherMove>, ports: &[usize], b: usize| -> OpRange {
            let start = tbl.len() as u32;
            for &i in ports {
                let l = blocks[b].inputs[i];
                if sub_base[l] == usize::MAX {
                    tbl.push(GatherMove {
                        port: i as u32,
                        link: l as u32,
                        shift: 0,
                        acc: false,
                    });
                } else {
                    for bit in 0..links[l].width {
                        tbl.push(GatherMove {
                            port: i as u32,
                            link: (sub_base[l] + bit) as u32,
                            shift: bit as u8,
                            acc: bit > 0,
                        });
                    }
                }
            }
            OpRange {
                start,
                len: tbl.len() as u32 - start,
            }
        };
        let push_scatter = |tbl: &mut Vec<ScatterMove>, p: usize, l: usize| {
            if sub_base[l] == usize::MAX {
                tbl.push(ScatterMove {
                    port: p as u32,
                    link: l as u32,
                    mask: mask_of(l),
                    shift: 0,
                });
            } else {
                for bit in 0..links[l].width {
                    tbl.push(ScatterMove {
                        port: p as u32,
                        link: (sub_base[l] + bit) as u32,
                        mask: 1,
                        shift: bit as u8,
                    });
                }
            }
        };

        if cyclic {
            // Degenerate mode: bounded fixed-point full passes.
            prog.mode = ProgramMode::FixedPoint {
                max_passes: opts.max_passes.max(1),
            };
            for &b in &order {
                let inst = &blocks[b];
                let all_in: Vec<usize> = (0..inst.inputs.len()).collect();
                let gather = push_gather(&mut prog.gathers, &all_in, b);
                let sstart = prog.scatters.len() as u32;
                for (p, &l) in inst.outputs.iter().enumerate() {
                    push_scatter(&mut prog.scatters, p, l);
                }
                prog.ops.push(Op::EvalFull {
                    kind: inst.kind as u32,
                    block: b as u32,
                    instance: inst.instance_of_kind as u32,
                    gather,
                    scatter: OpRange {
                        start: sstart,
                        len: prog.scatters.len() as u32 - sstart,
                    },
                });
            }
            return prog;
        }

        // ---- straight-line emission ----
        let n_levels = if np == 0 {
            0
        } else {
            level.iter().max().map_or(0, |&m| m + 1)
        };
        for lvl in 0..n_levels {
            for &b in &order {
                let inst = &blocks[b];
                let kind = &kinds[inst.kind];
                let outs_at: Vec<usize> = (0..inst.outputs.len())
                    .filter(|&p| level[port_base[b] + p] == lvl)
                    .collect();
                if outs_at.is_empty() {
                    continue;
                }
                // Block-local pass index: how many distinct lower levels
                // this block's ports occupy.
                let pass = (0..inst.outputs.len())
                    .filter(|&p| level[port_base[b] + p] < lvl)
                    .map(|p| level[port_base[b] + p])
                    .collect::<std::collections::BTreeSet<_>>()
                    .len() as u32;
                let sstart = prog.scatters.len() as u32;
                for &p in &outs_at {
                    push_scatter(&mut prog.scatters, p, inst.outputs[p]);
                }
                let scatter = OpRange {
                    start: sstart,
                    len: prog.scatters.len() as u32 - sstart,
                };
                if has_exec[inst.kind] {
                    // Gather only the pass's declared comb dependencies.
                    let mut deps = std::collections::BTreeSet::new();
                    for &p in &outs_at {
                        match kind.comb_inputs(p) {
                            CombInputs::None => {}
                            CombInputs::All => {
                                deps.extend(0..inst.inputs.len());
                            }
                            CombInputs::Some(list) => deps.extend(list),
                        }
                    }
                    let deps: Vec<usize> = deps.into_iter().collect();
                    let gather = push_gather(&mut prog.gathers, &deps, b);
                    prog.ops.push(Op::Comb {
                        kind: inst.kind as u32,
                        pass,
                        block: b as u32,
                        instance: inst.instance_of_kind as u32,
                        gather,
                        scatter,
                    });
                } else {
                    let all_in: Vec<usize> = (0..inst.inputs.len()).collect();
                    let gather = push_gather(&mut prog.gathers, &all_in, b);
                    prog.ops.push(Op::CombPacked {
                        kind: inst.kind as u32,
                        pass,
                        block: b as u32,
                        instance: inst.instance_of_kind as u32,
                        gather,
                        scatter,
                    });
                }
            }
        }
        prog.update_start = prog.ops.len();
        for &b in &order {
            let inst = &blocks[b];
            let all_in: Vec<usize> = (0..inst.inputs.len()).collect();
            let gather = push_gather(&mut prog.gathers, &all_in, b);
            if has_exec[inst.kind] {
                prog.ops.push(Op::Update {
                    kind: inst.kind as u32,
                    block: b as u32,
                    instance: inst.instance_of_kind as u32,
                    gather,
                });
            } else {
                prog.ops.push(Op::UpdatePacked {
                    kind: inst.kind as u32,
                    block: b as u32,
                    instance: inst.instance_of_kind as u32,
                    gather,
                });
            }
        }
        prog.mode = ProgramMode::StraightLine { levels: n_levels };
        prog
    }

    /// Total per-bit sub-words the slice table adds to the arena.
    pub fn n_sub(&self) -> usize {
        self.slices.iter().map(|s| s.width as usize).sum()
    }

    /// Arena word holding bit `bit` of link `l`: the link's own word
    /// when unsliced, the per-bit sub-word otherwise.
    pub fn bit_word(&self, l: usize, bit: usize) -> usize {
        match self.slices.binary_search_by_key(&(l as u32), |s| s.link) {
            Ok(i) => self.slices[i].base as usize + bit,
            Err(_) => l,
        }
    }

    /// The slice entry of link `l`, if it is sliced.
    pub fn slice_of(&self, l: usize) -> Option<SliceEntry> {
        self.slices
            .binary_search_by_key(&(l as u32), |s| s.link)
            .ok()
            .map(|i| self.slices[i])
    }

    /// Render the program as parseable text (one op per line). The
    /// inverse is [`CompiledProgram::parse`].
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("; seqsim compiled program\n");
        match self.mode {
            ProgramMode::StraightLine { levels } => {
                let _ = writeln!(out, "mode straight levels={levels}");
            }
            ProgramMode::FixedPoint { max_passes } => {
                let _ = writeln!(out, "mode fixed_point max_passes={max_passes}");
            }
        }
        let _ = writeln!(out, "blocks {}", self.n_blocks);
        let _ = writeln!(out, "links {}", self.n_links);
        let _ = writeln!(out, "update_start {}", self.update_start);
        for sl in &self.slices {
            let _ = writeln!(out, "slice {} {} {}", sl.link, sl.base, sl.width);
        }
        let g = |r: OpRange| -> String {
            let moves: Vec<String> = self.gathers[r.as_range()]
                .iter()
                .map(|m| {
                    if m.shift == 0 && !m.acc {
                        format!("({},{})", m.port, m.link)
                    } else {
                        format!("({},{},{},{})", m.port, m.link, m.shift, u8::from(m.acc))
                    }
                })
                .collect();
            format!("[{}]", moves.join(","))
        };
        let s = |r: OpRange| -> String {
            let moves: Vec<String> = self.scatters[r.as_range()]
                .iter()
                .map(|m| {
                    if m.shift == 0 {
                        format!("({},{},{:#x})", m.port, m.link, m.mask)
                    } else {
                        format!("({},{},{:#x},{})", m.port, m.link, m.mask, m.shift)
                    }
                })
                .collect();
            format!("[{}]", moves.join(","))
        };
        for op in &self.ops {
            match *op {
                Op::Comb {
                    kind,
                    pass,
                    block,
                    instance,
                    gather,
                    scatter,
                } => {
                    let _ = writeln!(
                        out,
                        "op comb k={kind} p={pass} b={block} i={instance} g={} s={}",
                        g(gather),
                        s(scatter)
                    );
                }
                Op::CombPacked {
                    kind,
                    pass,
                    block,
                    instance,
                    gather,
                    scatter,
                } => {
                    let _ = writeln!(
                        out,
                        "op comb_packed k={kind} p={pass} b={block} i={instance} g={} s={}",
                        g(gather),
                        s(scatter)
                    );
                }
                Op::Update {
                    kind,
                    block,
                    instance,
                    gather,
                } => {
                    let _ = writeln!(
                        out,
                        "op update k={kind} b={block} i={instance} g={}",
                        g(gather)
                    );
                }
                Op::UpdatePacked {
                    kind,
                    block,
                    instance,
                    gather,
                } => {
                    let _ = writeln!(
                        out,
                        "op update_packed k={kind} b={block} i={instance} g={}",
                        g(gather)
                    );
                }
                Op::EvalFull {
                    kind,
                    block,
                    instance,
                    gather,
                    scatter,
                } => {
                    let _ = writeln!(
                        out,
                        "op eval_full k={kind} b={block} i={instance} g={} s={}",
                        g(gather),
                        s(scatter)
                    );
                }
            }
        }
        out
    }

    /// Parse the output of [`disassemble`](Self::disassemble) back into
    /// a program (round-trips exactly, `PartialEq`-comparable).
    pub fn parse(text: &str) -> Result<CompiledProgram, String> {
        let mut prog = CompiledProgram {
            mode: ProgramMode::StraightLine { levels: 0 },
            ops: Vec::new(),
            gathers: Vec::new(),
            scatters: Vec::new(),
            update_start: 0,
            n_blocks: 0,
            n_links: 0,
            slices: Vec::new(),
        };
        fn field(line: &str, key: &str) -> Result<String, String> {
            let pat = format!("{key}=");
            let start = line
                .find(&pat)
                .ok_or_else(|| format!("missing {key}= in `{line}`"))?
                + pat.len();
            let rest = &line[start..];
            let end = if rest.starts_with('[') {
                rest.find(']').map(|i| i + 1)
            } else {
                Some(rest.find(' ').unwrap_or(rest.len()))
            }
            .ok_or_else(|| format!("unterminated {key}= in `{line}`"))?;
            Ok(rest[..end].to_string())
        }
        fn num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
            s.parse().map_err(|_| format!("bad number `{s}`"))
        }
        fn tuples(list: &str) -> Result<Vec<Vec<String>>, String> {
            let inner = list
                .strip_prefix('[')
                .and_then(|s| s.strip_suffix(']'))
                .ok_or_else(|| format!("bad list `{list}`"))?;
            let mut out = Vec::new();
            for part in inner.split("),").filter(|p| !p.is_empty()) {
                let t = part.trim_start_matches('(').trim_end_matches(')');
                out.push(t.split(',').map(str::to_string).collect());
            }
            Ok(out)
        }
        let parse_gather = |prog: &mut CompiledProgram, line: &str| -> Result<OpRange, String> {
            let start = prog.gathers.len() as u32;
            for t in tuples(&field(line, "g")?)? {
                let (shift, acc) = match t.len() {
                    2 => (0u8, false),
                    4 => (num::<u8>(&t[2])?, t[3] == "1"),
                    _ => return Err(format!("bad gather tuple in `{line}`")),
                };
                prog.gathers.push(GatherMove {
                    port: num(&t[0])?,
                    link: num(&t[1])?,
                    shift,
                    acc,
                });
            }
            Ok(OpRange {
                start,
                len: prog.gathers.len() as u32 - start,
            })
        };
        let parse_scatter = |prog: &mut CompiledProgram, line: &str| -> Result<OpRange, String> {
            let start = prog.scatters.len() as u32;
            for t in tuples(&field(line, "s")?)? {
                let shift: u8 = match t.len() {
                    3 => 0,
                    4 => num(&t[3])?,
                    _ => return Err(format!("bad scatter tuple in `{line}`")),
                };
                let mask = t[2]
                    .strip_prefix("0x")
                    .ok_or_else(|| format!("bad mask `{}`", t[2]))
                    .and_then(|h| {
                        u64::from_str_radix(h, 16).map_err(|_| format!("bad mask `{h}`"))
                    })?;
                prog.scatters.push(ScatterMove {
                    port: num(&t[0])?,
                    link: num(&t[1])?,
                    mask,
                    shift,
                });
            }
            Ok(OpRange {
                start,
                len: prog.scatters.len() as u32 - start,
            })
        };
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with(';') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("mode ") {
                prog.mode = if rest.starts_with("straight") {
                    ProgramMode::StraightLine {
                        levels: num(&field(rest, "levels")?)?,
                    }
                } else if rest.starts_with("fixed_point") {
                    ProgramMode::FixedPoint {
                        max_passes: num(&field(rest, "max_passes")?)?,
                    }
                } else {
                    return Err(format!("unknown mode `{rest}`"));
                };
            } else if let Some(rest) = line.strip_prefix("blocks ") {
                prog.n_blocks = num(rest.trim())?;
            } else if let Some(rest) = line.strip_prefix("links ") {
                prog.n_links = num(rest.trim())?;
            } else if let Some(rest) = line.strip_prefix("update_start ") {
                prog.update_start = num(rest.trim())?;
            } else if let Some(rest) = line.strip_prefix("slice ") {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 3 {
                    return Err(format!("bad slice line `{line}`"));
                }
                prog.slices.push(SliceEntry {
                    link: num(parts[0])?,
                    base: num(parts[1])?,
                    width: num(parts[2])?,
                });
            } else if let Some(rest) = line.strip_prefix("op ") {
                let kind = num(&field(rest, "k")?)?;
                let block = num(&field(rest, "b")?)?;
                let instance = num(&field(rest, "i")?)?;
                if rest.starts_with("comb_packed ") {
                    let pass = num(&field(rest, "p")?)?;
                    let gather = parse_gather(&mut prog, rest)?;
                    let scatter = parse_scatter(&mut prog, rest)?;
                    prog.ops.push(Op::CombPacked {
                        kind,
                        pass,
                        block,
                        instance,
                        gather,
                        scatter,
                    });
                } else if rest.starts_with("comb ") {
                    let pass = num(&field(rest, "p")?)?;
                    let gather = parse_gather(&mut prog, rest)?;
                    let scatter = parse_scatter(&mut prog, rest)?;
                    prog.ops.push(Op::Comb {
                        kind,
                        pass,
                        block,
                        instance,
                        gather,
                        scatter,
                    });
                } else if rest.starts_with("update_packed ") {
                    let gather = parse_gather(&mut prog, rest)?;
                    prog.ops.push(Op::UpdatePacked {
                        kind,
                        block,
                        instance,
                        gather,
                    });
                } else if rest.starts_with("update ") {
                    let gather = parse_gather(&mut prog, rest)?;
                    prog.ops.push(Op::Update {
                        kind,
                        block,
                        instance,
                        gather,
                    });
                } else if rest.starts_with("eval_full ") {
                    let gather = parse_gather(&mut prog, rest)?;
                    let scatter = parse_scatter(&mut prog, rest)?;
                    prog.ops.push(Op::EvalFull {
                        kind,
                        block,
                        instance,
                        gather,
                        scatter,
                    });
                } else {
                    return Err(format!("unknown op `{rest}`"));
                }
            } else {
                return Err(format!("unknown line `{line}`"));
            }
        }
        Ok(prog)
    }
}

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

/// One contiguous `u64` allocation holding every link value (word
/// offset = [`LinkId`](crate::block::LinkId)) followed by both packed
/// state banks. The bank swap is the paper's offset-pointer switch.
#[derive(Debug, Clone, PartialEq)]
pub struct Arena {
    words: Vec<u64>,
    n_links: usize,
    /// Per-block word offset within a bank.
    state_off: Vec<usize>,
    /// Per-block word count.
    state_len: Vec<usize>,
    bank_words: usize,
    /// Current bank (0/1).
    cur: usize,
}

impl Arena {
    /// Allocate and reset an arena for `spec`: link words take their
    /// reset values, both state banks are zeroed.
    pub fn new(spec: &SystemSpec) -> Arena {
        Self::new_sliced(spec, &[])
    }

    /// Allocate an arena with extra per-bit sub-words for `slices` (a
    /// compiled program's slice table): sub-words sit between the
    /// source links and the state banks, seeded from the parent link's
    /// reset bits.
    pub fn new_sliced(spec: &SystemSpec, slices: &[SliceEntry]) -> Arena {
        let n_sub: usize = slices.iter().map(|s| s.width as usize).sum();
        let n_links = spec.links().len() + n_sub;
        let mut state_off = Vec::with_capacity(spec.blocks().len());
        let mut state_len = Vec::with_capacity(spec.blocks().len());
        let mut off = 0usize;
        for b in spec.blocks() {
            let w = words_for_bits(spec.kinds()[b.kind].state_bits());
            state_off.push(off);
            state_len.push(w);
            off += w;
        }
        let mut words = vec![0u64; n_links + 2 * off];
        for (l, ls) in spec.links().iter().enumerate() {
            words[l] = ls.reset_value;
        }
        for s in slices {
            let rv = spec.links()[s.link as usize].reset_value;
            for bit in 0..s.width as usize {
                words[s.base as usize + bit] = (rv >> bit) & 1;
            }
        }
        Arena {
            words,
            n_links,
            state_off,
            state_len,
            bank_words: off,
            cur: 0,
        }
    }

    /// Read link `l`.
    #[inline]
    pub fn link(&self, l: usize) -> u64 {
        self.words[l]
    }

    /// Write link `l`.
    #[inline]
    pub fn set_link(&mut self, l: usize, v: u64) {
        self.words[l] = v;
    }

    /// Current-state words of block `b`.
    #[inline]
    pub fn cur(&self, b: usize) -> &[u64] {
        let start = self.n_links + self.cur * self.bank_words + self.state_off[b];
        &self.words[start..start + self.state_len[b]]
    }

    /// Current-state words of block `b`, writable (reset / sync only).
    #[inline]
    pub fn cur_mut(&mut self, b: usize) -> &mut [u64] {
        let start = self.n_links + self.cur * self.bank_words + self.state_off[b];
        &mut self.words[start..start + self.state_len[b]]
    }

    /// Current- and next-state words of block `b` simultaneously.
    #[inline]
    pub fn cur_and_next_mut(&mut self, b: usize) -> (&[u64], &mut [u64]) {
        let len = self.state_len[b];
        if len == 0 {
            return (&[], &mut []);
        }
        let cur_start = self.n_links + self.cur * self.bank_words + self.state_off[b];
        let next_start = self.n_links + (self.cur ^ 1) * self.bank_words + self.state_off[b];
        if cur_start < next_start {
            let (lo, hi) = self.words.split_at_mut(next_start);
            (&lo[cur_start..cur_start + len], &mut hi[..len])
        } else {
            let (lo, hi) = self.words.split_at_mut(cur_start);
            (&hi[..len], &mut lo[next_start..next_start + len])
        }
    }

    /// Copy the current bank of block `b` into its next bank (reset).
    pub fn copy_cur_to_next(&mut self, b: usize) {
        let (cur, next) = self.cur_and_next_mut(b);
        let tmp: Vec<u64> = cur.to_vec();
        next.copy_from_slice(&tmp);
    }

    /// Switch the bank pointer: next becomes current. O(1).
    #[inline]
    pub fn swap(&mut self) {
        self.cur ^= 1;
    }

    /// Number of link words (state banks start here).
    pub fn n_links(&self) -> usize {
        self.n_links
    }

    /// Total arena words (links + both banks).
    pub fn total_words(&self) -> usize {
        self.words.len()
    }

    /// Serialize the arena (layout and every word) for a durable
    /// checkpoint.
    pub fn encode(&self, e: &mut crate::wire::Enc) {
        e.usize(self.n_links);
        e.usizes(&self.state_off);
        e.usizes(&self.state_len);
        e.usize(self.bank_words);
        e.usize(self.cur);
        e.u64s(&self.words);
    }

    /// Rebuild an arena encoded by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// [`crate::wire::WireError`] on underrun or an inconsistent layout.
    pub fn decode(d: &mut crate::wire::Dec<'_>) -> Result<Self, crate::wire::WireError> {
        let n_links = d.usize()?;
        let state_off = d.usizes()?;
        let state_len = d.usizes()?;
        let bank_words = d.usize()?;
        let cur = d.usize()?;
        let words = d.u64s()?;
        if state_off.len() != state_len.len() || cur > 1 || words.len() != n_links + 2 * bank_words
        {
            return Err(crate::wire::WireError::new("inconsistent arena layout"));
        }
        Ok(Arena {
            words,
            n_links,
            state_off,
            state_len,
            bank_words,
            cur,
        })
    }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// A full engine snapshot: the arena (custom-exec state packed in),
/// side rings, cycle number and stats. Restore is bit-exact.
#[derive(Debug, Clone)]
pub struct CompiledSnapshot {
    arena: Arena,
    side: SideMem,
    cycle: u64,
    stats: DeltaStats,
}

impl CompiledSnapshot {
    /// Serialize the snapshot for a durable checkpoint.
    pub fn encode(&self, e: &mut crate::wire::Enc) {
        self.arena.encode(e);
        self.side.encode(e);
        e.u64(self.cycle);
        self.stats.encode(e);
    }

    /// Rebuild a snapshot encoded by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// [`crate::wire::WireError`] when the payload is truncated or
    /// internally inconsistent.
    pub fn decode(d: &mut crate::wire::Dec<'_>) -> Result<Self, crate::wire::WireError> {
        Ok(CompiledSnapshot {
            arena: Arena::decode(d)?,
            side: SideMem::decode(d)?,
            cycle: d.u64()?,
            stats: DeltaStats::decode(d)?,
        })
    }
}

/// The compiled-schedule engine: executes a [`CompiledProgram`] over an
/// [`Arena`] with a computed-dispatch interpreter loop.
pub struct CompiledEngine {
    spec: SystemSpec,
    prog: CompiledProgram,
    /// One exec per kind (None = packed fallback).
    execs: Vec<Option<Box<dyn CompiledExec>>>,
    arena: Arena,
    side: SideMem,
    /// Per block: decoded exec state is newer than the arena words.
    dirty: Vec<bool>,
    in_buf: Vec<u64>,
    out_buf: Vec<u64>,
    /// Next-state scratch for packed comb passes (discarded).
    scratch: Vec<u64>,
    cycle: u64,
    stats: DeltaStats,
    broken: Option<SimError>,
    profiler: Option<Box<KernelProfiler>>,
}

impl CompiledEngine {
    /// Compile `spec` with default options and build an engine.
    ///
    /// # Panics
    /// If `spec.check()` fails.
    pub fn new(spec: SystemSpec) -> CompiledEngine {
        Self::with_options(spec, &CompileOptions::default())
    }

    /// Compile `spec` with `opts` and build an engine.
    ///
    /// # Panics
    /// If `spec.check()` fails.
    pub fn with_options(spec: SystemSpec, opts: &CompileOptions) -> CompiledEngine {
        if let Err(diags) = spec.check() {
            panic!("invalid spec: {diags:?}");
        }
        let prog = CompiledProgram::compile(&spec, opts);
        let execs: Vec<Option<Box<dyn CompiledExec>>> =
            if matches!(prog.mode, ProgramMode::FixedPoint { .. }) {
                // Fixed-point mode always uses packed full evaluation.
                spec.kinds().iter().map(|_| None).collect()
            } else {
                spec.kinds().iter().map(|k| k.compile()).collect()
            };
        let mut arena = Arena::new_sliced(&spec, &prog.slices);
        for (b, inst) in spec.blocks().iter().enumerate() {
            spec.kinds()[inst.kind].reset(arena.cur_mut(b));
            arena.copy_cur_to_next(b);
        }
        let rings: Vec<Vec<usize>> = spec
            .blocks()
            .iter()
            .map(|b| spec.kinds()[b.kind].side_rings())
            .collect();
        let side = SideMem::new(&rings);
        let max_ports = spec
            .blocks()
            .iter()
            .map(|b| b.inputs.len().max(b.outputs.len()))
            .max()
            .unwrap_or(0);
        let max_words = spec
            .blocks()
            .iter()
            .map(|b| words_for_bits(spec.kinds()[b.kind].state_bits()))
            .max()
            .unwrap_or(0);
        let mut eng = CompiledEngine {
            dirty: vec![false; spec.blocks().len()],
            in_buf: vec![0; max_ports],
            out_buf: vec![0; max_ports],
            scratch: vec![0; max_words],
            execs,
            arena,
            side,
            cycle: 0,
            stats: DeltaStats::default(),
            broken: None,
            profiler: None,
            prog,
            spec,
        };
        eng.load_execs();
        eng
    }

    /// (Re)load every custom exec's decoded state from the arena's
    /// current bank.
    fn load_execs(&mut self) {
        for (b, inst) in self.spec.blocks().iter().enumerate() {
            if let Some(exec) = self.execs[inst.kind].as_mut() {
                exec.load(inst.instance_of_kind, self.arena.cur(b));
            }
            self.dirty[b] = false;
        }
    }

    /// The compiled program being executed.
    pub fn program(&self) -> &CompiledProgram {
        &self.prog
    }

    /// The source spec.
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// Current system cycle (number of completed cycles).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The sticky error, if the engine diverged.
    pub fn error(&self) -> Option<&SimError> {
        self.broken.as_ref()
    }

    /// Current value of link `l` (sliced links are reassembled from
    /// their per-bit sub-words).
    pub fn link_value(&self, l: usize) -> u64 {
        match self.prog.slice_of(l) {
            Some(s) => {
                let mut v = 0u64;
                for bit in 0..s.width as usize {
                    v |= self.arena.link(s.base as usize + bit) << bit;
                }
                v
            }
            None => self.arena.link(l),
        }
    }

    /// Drive an [`External`](LinkDriver::External) link.
    ///
    /// # Panics
    /// If the link is not external.
    pub fn set_external(&mut self, l: usize, v: u64) {
        assert!(
            matches!(self.spec.links()[l].driver, LinkDriver::External),
            "link {l} is not external"
        );
        self.arena.set_link(l, v);
    }

    /// Packed current-state words of block `b` (packs decoded exec
    /// state on demand).
    pub fn peek_state(&self, b: usize) -> Vec<u64> {
        let inst = &self.spec.blocks()[b];
        if self.dirty[b] {
            if let Some(exec) = self.execs[inst.kind].as_ref() {
                let mut out = vec![0u64; self.arena.state_len[b]];
                exec.store(inst.instance_of_kind, &mut out);
                return out;
            }
        }
        self.arena.cur(b).to_vec()
    }

    /// Delta statistics (updates count one delta per block per cycle;
    /// fixed-point passes beyond the first count as re-evaluations).
    pub fn stats(&self) -> &DeltaStats {
        &self.stats
    }

    /// Reset the delta statistics.
    pub fn reset_stats(&mut self) {
        self.stats = DeltaStats::default();
    }

    /// Side-ring memory (host access to iface rings).
    pub fn side(&self) -> &SideMem {
        &self.side
    }

    /// Mutable side-ring memory.
    pub fn side_mut(&mut self) -> &mut SideMem {
        &mut self.side
    }

    /// Attach a profiler (op self time and eval counts are attributed
    /// to blocks through the opcode back-pointers).
    pub fn attach_profiler(&mut self, p: KernelProfiler) {
        self.profiler = Some(Box::new(p));
    }

    /// Detach and return the profiler.
    pub fn take_profiler(&mut self) -> Option<Box<KernelProfiler>> {
        self.profiler.take()
    }

    /// The attached profiler, if any.
    pub fn profiler(&self) -> Option<&KernelProfiler> {
        self.profiler.as_deref()
    }

    /// Capture a bit-exact snapshot (custom-exec state packed into the
    /// arena copy).
    pub fn snapshot(&self) -> CompiledSnapshot {
        let mut arena = self.arena.clone();
        for (b, inst) in self.spec.blocks().iter().enumerate() {
            if self.dirty[b] {
                if let Some(exec) = self.execs[inst.kind].as_ref() {
                    exec.store(inst.instance_of_kind, arena.cur_mut(b));
                }
            }
        }
        CompiledSnapshot {
            arena,
            side: self.side.clone(),
            cycle: self.cycle,
            stats: self.stats.clone(),
        }
    }

    /// Restore a snapshot taken on an engine built from the same spec.
    pub fn restore(&mut self, snap: &CompiledSnapshot) {
        self.arena = snap.arena.clone();
        self.side = snap.side.clone();
        self.cycle = snap.cycle;
        self.stats = snap.stats.clone();
        self.broken = None;
        self.load_execs();
    }

    /// Advance one system cycle.
    ///
    /// # Panics
    /// On a sticky error (use [`try_step`](Self::try_step)).
    pub fn step(&mut self) {
        if let Err(e) = self.try_step() {
            panic!("{e}");
        }
    }

    /// Advance one system cycle, surfacing divergence as an error
    /// (sticky: further calls keep failing).
    pub fn try_step(&mut self) -> Result<(), SimError> {
        if let Some(e) = &self.broken {
            return Err(e.clone());
        }
        if let Some(p) = self.profiler.as_mut() {
            p.begin_cycle();
        }
        let deltas = match self.prog.mode {
            ProgramMode::StraightLine { .. } => {
                self.run_straight();
                (self.prog.ops.len() - self.prog.update_start) as u64
            }
            ProgramMode::FixedPoint { max_passes } => {
                let passes = match self.run_fixed_point(max_passes) {
                    Ok(p) => p,
                    Err(e) => {
                        self.broken = Some(e.clone());
                        return Err(e);
                    }
                };
                passes as u64 * self.prog.ops.len() as u64
            }
        };
        self.arena.swap();
        self.stats.record_cycle(deltas, self.prog.n_blocks as u64);
        if let Some(p) = self.profiler.as_mut() {
            p.end_cycle();
        }
        self.cycle += 1;
        Ok(())
    }

    /// Run `n` system cycles.
    ///
    /// # Panics
    /// On a sticky error (use [`try_run`](Self::try_run)).
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Run `n` system cycles, stopping at the first error.
    pub fn try_run(&mut self, n: u64) -> Result<(), SimError> {
        for _ in 0..n {
            self.try_step()?;
        }
        Ok(())
    }

    /// The straight-line interpreter: one pass over the comb section
    /// (level order), one pass over the updates. No change detection.
    fn run_straight(&mut self) {
        let cycle = self.cycle;
        for idx in 0..self.prog.ops.len() {
            let op = self.prog.ops[idx];
            match op {
                Op::Comb {
                    kind,
                    pass,
                    block,
                    instance,
                    gather,
                    scatter,
                } => {
                    let t0 = self.profiler.as_ref().and_then(|p| p.begin_eval());
                    for m in &self.prog.gathers[gather.as_range()] {
                        let v = self.arena.words[m.link as usize] << m.shift;
                        if m.acc {
                            self.in_buf[m.port as usize] |= v;
                        } else {
                            self.in_buf[m.port as usize] = v;
                        }
                    }
                    let Some(exec) = self.execs[kind as usize].as_mut() else {
                        unreachable!("comb op for kind {kind} without exec");
                    };
                    exec.comb(
                        instance as usize,
                        pass as usize,
                        &self.in_buf,
                        cycle,
                        &mut self.out_buf,
                        &mut self.side.view(block as usize),
                    );
                    for m in &self.prog.scatters[scatter.as_range()] {
                        self.arena.words[m.link as usize] =
                            (self.out_buf[m.port as usize] >> m.shift) & m.mask;
                    }
                    if let Some(p) = self.profiler.as_mut() {
                        p.end_op(block as usize, t0);
                    }
                }
                Op::CombPacked {
                    kind,
                    block,
                    instance,
                    gather,
                    scatter,
                    ..
                } => {
                    let t0 = self.profiler.as_ref().and_then(|p| p.begin_eval());
                    for m in &self.prog.gathers[gather.as_range()] {
                        let v = self.arena.words[m.link as usize] << m.shift;
                        if m.acc {
                            self.in_buf[m.port as usize] |= v;
                        } else {
                            self.in_buf[m.port as usize] = v;
                        }
                    }
                    let b = block as usize;
                    let n_in = self.spec.blocks()[b].inputs.len();
                    let n_out = self.spec.blocks()[b].outputs.len();
                    let sw = self.arena.state_len[b];
                    self.spec.kinds()[kind as usize].eval(
                        instance as usize,
                        self.arena.cur(b),
                        &self.in_buf[..n_in],
                        cycle,
                        &mut self.scratch[..sw],
                        &mut self.out_buf[..n_out],
                        &mut self.side.view(b),
                    );
                    for m in &self.prog.scatters[scatter.as_range()] {
                        self.arena.words[m.link as usize] =
                            (self.out_buf[m.port as usize] >> m.shift) & m.mask;
                    }
                    if let Some(p) = self.profiler.as_mut() {
                        p.end_op(b, t0);
                    }
                }
                Op::Update {
                    kind,
                    block,
                    instance,
                    gather,
                } => {
                    let t0 = self.profiler.as_ref().and_then(|p| p.begin_eval());
                    for m in &self.prog.gathers[gather.as_range()] {
                        let v = self.arena.words[m.link as usize] << m.shift;
                        if m.acc {
                            self.in_buf[m.port as usize] |= v;
                        } else {
                            self.in_buf[m.port as usize] = v;
                        }
                    }
                    let Some(exec) = self.execs[kind as usize].as_mut() else {
                        unreachable!("update op for kind {kind} without exec");
                    };
                    exec.update(
                        instance as usize,
                        &self.in_buf,
                        cycle,
                        &mut self.side.view(block as usize),
                    );
                    self.dirty[block as usize] = true;
                    if let Some(p) = self.profiler.as_mut() {
                        p.end_eval(block as usize, false, t0);
                    }
                }
                Op::UpdatePacked {
                    kind,
                    block,
                    instance,
                    gather,
                } => {
                    let t0 = self.profiler.as_ref().and_then(|p| p.begin_eval());
                    for m in &self.prog.gathers[gather.as_range()] {
                        let v = self.arena.words[m.link as usize] << m.shift;
                        if m.acc {
                            self.in_buf[m.port as usize] |= v;
                        } else {
                            self.in_buf[m.port as usize] = v;
                        }
                    }
                    let b = block as usize;
                    let n_in = self.spec.blocks()[b].inputs.len();
                    let n_out = self.spec.blocks()[b].outputs.len();
                    // Split borrows: out_buf/in_buf/side are separate
                    // fields from arena; kinds/spec are read-only.
                    let CompiledEngine {
                        spec,
                        arena,
                        in_buf,
                        out_buf,
                        side,
                        ..
                    } = self;
                    let (cur, next) = arena.cur_and_next_mut(b);
                    spec.kinds()[kind as usize].eval(
                        instance as usize,
                        cur,
                        &in_buf[..n_in],
                        cycle,
                        next,
                        &mut out_buf[..n_out],
                        &mut side.view(b),
                    );
                    if let Some(p) = self.profiler.as_mut() {
                        p.end_eval(b, false, t0);
                    }
                }
                Op::EvalFull { .. } => {
                    unreachable!("eval_full op in straight-line program");
                }
            }
        }
    }

    /// The fixed-point interpreter (cyclic comb graphs): full packed
    /// passes until no link changes, bounded by `max_passes`.
    fn run_fixed_point(&mut self, max_passes: u32) -> Result<u32, SimError> {
        let cycle = self.cycle;
        let mut passes = 0u32;
        loop {
            let mut unstable: Vec<usize> = Vec::new();
            for idx in 0..self.prog.ops.len() {
                let Op::EvalFull {
                    kind,
                    block,
                    instance,
                    gather,
                    scatter,
                } = self.prog.ops[idx]
                else {
                    unreachable!("non-eval_full op in fixed-point program");
                };
                let t0 = self.profiler.as_ref().and_then(|p| p.begin_eval());
                for m in &self.prog.gathers[gather.as_range()] {
                    let v = self.arena.words[m.link as usize] << m.shift;
                    if m.acc {
                        self.in_buf[m.port as usize] |= v;
                    } else {
                        self.in_buf[m.port as usize] = v;
                    }
                }
                let b = block as usize;
                let n_in = self.spec.blocks()[b].inputs.len();
                let n_out = self.spec.blocks()[b].outputs.len();
                let CompiledEngine {
                    spec,
                    arena,
                    in_buf,
                    out_buf,
                    side,
                    ..
                } = self;
                let (cur, next) = arena.cur_and_next_mut(b);
                spec.kinds()[kind as usize].eval(
                    instance as usize,
                    cur,
                    &in_buf[..n_in],
                    cycle,
                    next,
                    &mut out_buf[..n_out],
                    &mut side.view(b),
                );
                let mut changed = false;
                for m in &self.prog.scatters[scatter.as_range()] {
                    let v = (self.out_buf[m.port as usize] >> m.shift) & m.mask;
                    if self.arena.words[m.link as usize] != v {
                        self.arena.words[m.link as usize] = v;
                        changed = true;
                    }
                }
                if changed {
                    unstable.push(b);
                }
                if let Some(p) = self.profiler.as_mut() {
                    p.end_eval(b, passes > 0, t0);
                }
            }
            passes += 1;
            if unstable.is_empty() {
                return Ok(passes);
            }
            if passes >= max_passes {
                return Err(SimError::Diverged {
                    cycle,
                    budget: max_passes * self.prog.ops.len() as u32,
                    unstable_blocks: unstable,
                    last_trace: Vec::new(),
                });
            }
        }
    }
}

impl std::fmt::Debug for CompiledEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledEngine")
            .field("cycle", &self.cycle)
            .field("mode", &self.prog.mode)
            .field("ops", &self.prog.ops.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockKind;
    use crate::demo::{comb_demo, comb_demo_reference, RegisteredDemoKind, DEMO_WIDTH};
    use crate::dynamic_sched::DynamicEngine;
    use noc_types::bits::BitReader;

    fn state16(words: &[u64]) -> u64 {
        BitReader::new(words).take(DEMO_WIDTH)
    }

    #[test]
    fn comb_chain_compiles_to_levelled_straight_line() {
        // ext -> F -> F -> F -> sink: three comb levels, settled in one
        // pass each, no fixed point anywhere.
        let mut spec = SystemSpec::new();
        let k = spec.add_kind(Box::new(RegisteredDemoKind::new(0)));
        let b1 = spec.add_block(k);
        let b2 = spec.add_block(k);
        let b3 = spec.add_block(k);
        spec.external((b1, 0), 2);
        spec.wire((b1, 0), (b2, 0));
        spec.wire((b2, 0), (b3, 0));
        let out = spec.sink((b3, 0));
        let mut eng = CompiledEngine::new(spec);
        match eng.program().mode {
            ProgramMode::StraightLine { levels } => assert_eq!(levels, 3),
            m => panic!("expected straight-line, got {m:?}"),
        }
        eng.step();
        let f = |x: u64| (x * 3 + 1) & 0xFFFF;
        assert_eq!(eng.link_value(out), f(f(f(2))));
    }

    #[test]
    fn comb_demo_matches_reference_and_dynamic_engine() {
        for cycles in [1u64, 2, 3, 25] {
            let (spec, _) = comb_demo();
            let mut eng = CompiledEngine::new(spec);
            // The demo ring is signal-acyclic: B0's registered output
            // breaks it, so the compiler must prove straight-line.
            assert!(matches!(
                eng.program().mode,
                ProgramMode::StraightLine { .. }
            ));
            eng.run(cycles);
            let expect = comb_demo_reference(cycles);
            let got = [
                state16(&eng.peek_state(0)),
                state16(&eng.peek_state(1)),
                state16(&eng.peek_state(2)),
            ];
            assert_eq!(got, expect, "after {cycles} cycles");

            let (spec, _) = comb_demo();
            let mut dy = DynamicEngine::new(spec);
            dy.run(cycles);
            for b in 0..3 {
                assert_eq!(eng.peek_state(b), dy.peek_state(b).to_vec());
            }
        }
    }

    #[test]
    fn straight_line_needs_minimum_deltas_only() {
        let (spec, _) = comb_demo();
        let mut eng = CompiledEngine::new(spec);
        eng.run(40);
        assert_eq!(eng.stats().system_cycles, 40);
        assert_eq!(eng.stats().delta_cycles, 40 * 3, "one update per block");
        assert_eq!(eng.stats().re_evaluations, 0, "HBR fully elided");
    }

    #[test]
    fn order_is_irrelevant_in_straight_line_mode() {
        let mut results = Vec::new();
        for order in [vec![0usize, 1, 2], vec![2, 1, 0], vec![1, 2, 0]] {
            let (spec, _) = comb_demo();
            let mut eng = CompiledEngine::with_options(
                spec,
                &CompileOptions {
                    order: Some(order),
                    ..CompileOptions::default()
                },
            );
            eng.run(25);
            results.push([
                state16(&eng.peek_state(0)),
                state16(&eng.peek_state(1)),
                state16(&eng.peek_state(2)),
            ]);
        }
        assert!(results.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let (spec, _) = comb_demo();
        let mut eng = CompiledEngine::new(spec);
        eng.run(13);
        let snap = eng.snapshot();
        eng.run(29);
        let tail: Vec<Vec<u64>> = (0..3).map(|b| eng.peek_state(b)).collect();
        eng.restore(&snap);
        assert_eq!(eng.cycle(), 13);
        eng.run(29);
        for b in 0..3 {
            assert_eq!(eng.peek_state(b), tail[b], "block {b}");
        }
    }

    #[test]
    fn disassembly_round_trips() {
        let (spec, _) = comb_demo();
        let eng = CompiledEngine::new(spec);
        let text = eng.program().disassemble();
        let parsed = CompiledProgram::parse(&text).expect("parse");
        assert_eq!(&parsed, eng.program());
        // And a second render is identical.
        assert_eq!(parsed.disassemble(), text);
    }

    #[test]
    fn every_link_written_by_at_most_one_op() {
        let (spec, _) = comb_demo();
        let eng = CompiledEngine::new(spec);
        let prog = eng.program();
        let mut writers = vec![0u32; prog.n_links];
        for op in &prog.ops {
            if let Some(r) = op.scatter() {
                for m in &prog.scatters[r.as_range()] {
                    writers[m.link as usize] += 1;
                }
            }
        }
        assert!(writers.iter().all(|&w| w <= 1));
    }

    /// A two-block truly comb-cyclic system (a ^ b feedback) to drive
    /// the fixed-point fallback.
    struct XorKind {
        converging: bool,
    }

    impl BlockKind for XorKind {
        fn name(&self) -> &str {
            "xor"
        }
        fn state_bits(&self) -> usize {
            0
        }
        fn input_widths(&self) -> Vec<usize> {
            vec![8]
        }
        fn output_widths(&self) -> Vec<usize> {
            vec![8]
        }
        fn reset(&self, _state: &mut [u64]) {}
        fn eval(
            &self,
            _instance: usize,
            _cur: &[u64],
            inputs: &[u64],
            _cycle: u64,
            _next: &mut [u64],
            outputs: &mut [u64],
            _side: &mut SideView<'_>,
        ) {
            // Converging: settles to a fixed point (x -> x | 1).
            // Diverging: oscillates forever (x -> !x).
            outputs[0] = if self.converging {
                inputs[0] | 1
            } else {
                !inputs[0] & 0xFF
            };
        }
        // CombInputs::All by default: a comb cycle through both blocks.
    }

    /// `n`-block comb ring (cyclic at every length; an odd inverter
    /// ring has no fixed point).
    fn comb_ring(n: usize, converging: bool) -> SystemSpec {
        let mut spec = SystemSpec::new();
        let k = spec.add_kind(Box::new(XorKind { converging }));
        let blocks: Vec<usize> = (0..n).map(|_| spec.add_block(k)).collect();
        for i in 0..n {
            spec.wire((blocks[i], 0), (blocks[(i + 1) % n], 0));
        }
        spec
    }

    #[test]
    fn cyclic_spec_falls_back_to_fixed_point() {
        let mut eng = CompiledEngine::new(comb_ring(2, true));
        assert!(matches!(eng.program().mode, ProgramMode::FixedPoint { .. }));
        eng.try_run(5).expect("converging ring settles");
        assert!(eng.stats().delta_cycles >= 5 * 2);
    }

    #[test]
    fn fixed_point_divergence_is_a_typed_sticky_error() {
        let mut eng = CompiledEngine::new(comb_ring(1, false));
        let err = eng.try_step().expect_err("oscillator cannot settle");
        match &err {
            SimError::Diverged {
                cycle,
                unstable_blocks,
                ..
            } => {
                assert_eq!(*cycle, 0);
                assert!(!unstable_blocks.is_empty());
            }
            e => panic!("expected Diverged, got {e:?}"),
        }
        assert_eq!(eng.try_step().expect_err("sticky"), err);
    }

    #[test]
    fn profiler_attributes_ops_to_blocks() {
        let (spec, _) = comb_demo();
        let n = spec.blocks().len();
        let mut eng = CompiledEngine::new(spec);
        eng.attach_profiler(KernelProfiler::new(n, 1));
        eng.run(10);
        let report = eng
            .take_profiler()
            .expect("attached")
            .report("seqsim-compiled", 0.0, 0);
        assert_eq!(report.cycles, 10);
        for e in &report.entries {
            assert_eq!(e.evals, 10, "one update per block per cycle");
            assert_eq!(e.hbr_retries, 0);
            assert!(e.self_ns > 0, "comb op time folded into block self time");
        }
    }

    /// Toy kind with a specialized exec: a 16-bit accumulator whose
    /// port 0 is the registered value and port 1 the comb sum.
    struct AccKind;

    impl BlockKind for AccKind {
        fn name(&self) -> &str {
            "acc"
        }
        fn state_bits(&self) -> usize {
            16
        }
        fn input_widths(&self) -> Vec<usize> {
            vec![16]
        }
        fn output_widths(&self) -> Vec<usize> {
            vec![16, 16]
        }
        fn reset(&self, state: &mut [u64]) {
            state[0] = 1;
        }
        fn eval(
            &self,
            _instance: usize,
            cur: &[u64],
            inputs: &[u64],
            _cycle: u64,
            next: &mut [u64],
            outputs: &mut [u64],
            _side: &mut SideView<'_>,
        ) {
            let s = cur[0];
            outputs[0] = s;
            outputs[1] = (s + inputs[0]) & 0xFFFF;
            next[0] = (s + inputs[0]) & 0xFFFF;
        }
        fn comb_inputs(&self, port: usize) -> CombInputs {
            if port == 0 {
                CombInputs::None
            } else {
                CombInputs::All
            }
        }
        fn compile(&self) -> Option<Box<dyn CompiledExec>> {
            Some(Box::new(AccExec { s: Vec::new() }))
        }
    }

    struct AccExec {
        s: Vec<u64>,
    }

    impl AccExec {
        fn slot(&mut self, instance: usize) -> &mut u64 {
            if self.s.len() <= instance {
                self.s.resize(instance + 1, 0);
            }
            &mut self.s[instance]
        }
    }

    impl CompiledExec for AccExec {
        fn load(&mut self, instance: usize, packed: &[u64]) {
            *self.slot(instance) = packed[0];
        }
        fn store(&self, instance: usize, packed: &mut [u64]) {
            packed[0] = self.s[instance];
        }
        fn comb(
            &mut self,
            instance: usize,
            pass: usize,
            inputs: &[u64],
            _cycle: u64,
            outputs: &mut [u64],
            _side: &mut SideView<'_>,
        ) {
            let s = self.s[instance];
            if pass == 0 {
                outputs[0] = s;
            } else {
                outputs[1] = (s + inputs[0]) & 0xFFFF;
            }
        }
        fn update(
            &mut self,
            instance: usize,
            inputs: &[u64],
            _cycle: u64,
            _side: &mut SideView<'_>,
        ) {
            let slot = self.slot(instance);
            *slot = (*slot + inputs[0]) & 0xFFFF;
        }
    }

    fn acc_pair() -> SystemSpec {
        // Registered ports close the ring; comb ports go to sinks.
        let mut spec = SystemSpec::new();
        let k = spec.add_kind(Box::new(AccKind));
        let a = spec.add_block(k);
        let b = spec.add_block(k);
        spec.wire((a, 0), (b, 0));
        spec.wire((b, 0), (a, 0));
        spec.sink((a, 1));
        spec.sink((b, 1));
        spec
    }

    #[test]
    fn specialized_exec_matches_packed_dynamic_engine() {
        let mut eng = CompiledEngine::new(acc_pair());
        assert!(
            eng.program()
                .ops
                .iter()
                .any(|op| matches!(op, Op::Comb { .. })),
            "custom exec should produce specialized comb ops"
        );
        assert!(eng
            .program()
            .ops
            .iter()
            .any(|op| matches!(op, Op::Update { .. })));
        let mut dy = DynamicEngine::new(acc_pair());
        for cycle in 1..=40u64 {
            eng.step();
            dy.step();
            for b in 0..2 {
                assert_eq!(
                    eng.peek_state(b),
                    dy.peek_state(b).to_vec(),
                    "block {b} cycle {cycle}"
                );
            }
            for l in 0..eng.spec().links().len() {
                assert_eq!(
                    eng.link_value(l),
                    dy.link_value(l),
                    "link {l} cycle {cycle}"
                );
            }
        }
    }

    #[test]
    fn sliced_program_is_bit_identical_and_round_trips() {
        // Slice every block-driven multi-bit link of the comb demo:
        // slicing is semantics-preserving regardless of what bitflow
        // would prove, so the sliced engine must match the plain one
        // bit for bit on every link, state word and delta count.
        let (spec, _) = comb_demo();
        let all: Vec<usize> = spec
            .links()
            .iter()
            .enumerate()
            .filter(|(_, ls)| ls.width > 1 && matches!(ls.driver, LinkDriver::Block { .. }))
            .map(|(l, _)| l)
            .collect();
        assert!(!all.is_empty());
        let opts = CompileOptions {
            slice: SlicePlan { links: all },
            ..CompileOptions::default()
        };
        let (spec2, _) = comb_demo();
        let mut sliced = CompiledEngine::with_options(spec2, &opts);
        assert!(!sliced.program().slices.is_empty());
        let (spec3, _) = comb_demo();
        let mut plain = CompiledEngine::new(spec3);
        for cycle in 1..=25u64 {
            sliced.step();
            plain.step();
            for b in 0..3 {
                assert_eq!(
                    sliced.peek_state(b),
                    plain.peek_state(b),
                    "block {b} cycle {cycle}"
                );
            }
            for l in 0..plain.spec().links().len() {
                assert_eq!(
                    sliced.link_value(l),
                    plain.link_value(l),
                    "link {l} cycle {cycle}"
                );
            }
        }
        assert_eq!(sliced.stats(), plain.stats());

        // Snapshot/restore of a sliced engine resumes bit-identically.
        let snap = sliced.snapshot();
        sliced.run(7);
        let n_links = plain.spec().links().len();
        let tail: Vec<u64> = (0..n_links).map(|l| sliced.link_value(l)).collect();
        sliced.restore(&snap);
        sliced.run(7);
        for (l, &v) in tail.iter().enumerate() {
            assert_eq!(sliced.link_value(l), v, "link {l} after restore");
        }

        // Disassembly of a sliced program round-trips exactly.
        let text = sliced.program().disassemble();
        let parsed = CompiledProgram::parse(&text).expect("parse");
        assert_eq!(&parsed, sliced.program());
    }

    #[test]
    fn set_external_drives_links() {
        let mut spec = SystemSpec::new();
        let k = spec.add_kind(Box::new(crate::demo::RegisteredDemoKind::new(0)));
        let b = spec.add_block(k);
        let ext = spec.external((b, 0), 3);
        let out = spec.sink((b, 0));
        let mut eng = CompiledEngine::new(spec);
        eng.step();
        assert_eq!(eng.link_value(out), (3 * 3 + 1) & 0xFFFF);
        eng.set_external(ext, 10);
        eng.step();
        assert_eq!(eng.link_value(out), 31);
    }
}
