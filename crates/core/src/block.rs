//! Block kinds, block instances and system wiring.
//!
//! A *block* is the unit of sequential evaluation — in the paper's case
//! study one block is one router (plus its stimuli interface). Blocks of
//! the same *kind* share a single implementation, exactly as the FPGA holds
//! one copy of the combinational circuitry for all identical routers
//! (paper Fig 2b: "All identical functions Fi(x), Fj(x) can use the same
//! implementation").

use crate::side::SideView;
use noc_types::diag::{codes, Diagnostic, Severity, Site};

/// Index of a block kind within a [`SystemSpec`].
pub type KindId = usize;
/// Index of a block instance within a [`SystemSpec`].
pub type BlockId = usize;
/// Index of a link within a [`SystemSpec`].
pub type LinkId = usize;

/// Which of a block's *input* ports an *output* port depends on
/// combinationally — i.e. within the same system cycle, before the clock
/// edge. This is the declaration the static analyzer (`speccheck`) uses
/// to classify producer→consumer edges as *registered* (§4.1: the output
/// is a function of registered state only, final after the block's first
/// evaluation) or *combinational* (§4.2: a change on an input can
/// propagate through to the output mid-cycle, requiring HBR
/// re-evaluation).
///
/// The default is the conservative [`CombInputs::All`]; kinds whose
/// outputs are functions of state only (like the router's `room` words)
/// should override with [`CombInputs::None`] to unlock the fast path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CombInputs {
    /// The output may depend combinationally on every input
    /// (conservative default).
    All,
    /// The output is a function of registered state only — a
    /// *registered* output in the paper's sense.
    None,
    /// The output depends combinationally on exactly these input port
    /// indices.
    Some(Vec<usize>),
}

impl CombInputs {
    /// Does this output depend combinationally on input port `input`?
    pub fn depends_on(&self, input: usize) -> bool {
        match self {
            CombInputs::All => true,
            CombInputs::None => false,
            CombInputs::Some(list) => list.contains(&input),
        }
    }

    /// Is the output registered (no combinational input dependency)?
    pub fn is_registered(&self) -> bool {
        matches!(self, CombInputs::None)
    }
}

/// A per-bit boolean expression over a block's *input port bits*: the
/// bit-level analogue of [`CombInputs`], declared by
/// [`BlockKind::bit_semantics`] and consumed by the `speccheck` bitflow
/// pass (constant folding, copy propagation) and by the batched
/// engine's packed-expression lowering.
///
/// An expression must be a sound model of the corresponding output bit:
/// for every reachable `(cur, inputs, cycle)` the concrete bit `eval`
/// produces must equal the expression evaluated over the concrete input
/// bits. [`BitExpr::Opaque`] is always sound — it promises nothing
/// beyond *which* input bits the output bit may depend on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitExpr {
    /// The bit is this constant in every cycle.
    Const(bool),
    /// The bit copies input bit `bit` of input port `port` verbatim.
    In {
        /// Input port index.
        port: usize,
        /// Bit index within that port's link word.
        bit: usize,
    },
    /// Logical NOT of the operand.
    Not(Box<BitExpr>),
    /// Logical AND of the operands.
    And(Box<BitExpr>, Box<BitExpr>),
    /// Logical OR of the operands.
    Or(Box<BitExpr>, Box<BitExpr>),
    /// Logical XOR of the operands.
    Xor(Box<BitExpr>, Box<BitExpr>),
    /// An unmodelled function of the listed `(port, bit)` input bits
    /// (and possibly internal state). Dataflow treats the bit as
    /// Unknown; the dependency list still feeds bit-independence
    /// proofs. An empty list means "state/cycle only" — unknown value,
    /// but independent of every input bit.
    Opaque {
        /// Every input `(port, bit)` the output bit may depend on.
        deps: Vec<(usize, usize)>,
    },
}

impl BitExpr {
    /// Every input `(port, bit)` this expression reads, in first-visit
    /// order (duplicates removed).
    pub fn deps(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        self.collect_deps(&mut out);
        out
    }

    fn collect_deps(&self, out: &mut Vec<(usize, usize)>) {
        match self {
            BitExpr::Const(_) => {}
            BitExpr::In { port, bit } => {
                if !out.contains(&(*port, *bit)) {
                    out.push((*port, *bit));
                }
            }
            BitExpr::Not(a) => a.collect_deps(out),
            BitExpr::And(a, b) | BitExpr::Or(a, b) | BitExpr::Xor(a, b) => {
                a.collect_deps(out);
                b.collect_deps(out);
            }
            BitExpr::Opaque { deps } => {
                for d in deps {
                    if !out.contains(d) {
                        out.push(*d);
                    }
                }
            }
        }
    }

    /// Evaluate over concrete input port words (bit `b` of `inputs[p]`
    /// supplies `In { port: p, bit: b }`). `Opaque` must not be
    /// evaluated — callers check [`is_pure`](Self::is_pure) first.
    ///
    /// # Panics
    /// On an [`Opaque`](BitExpr::Opaque) node.
    pub fn eval_concrete(&self, inputs: &[u64]) -> bool {
        match self {
            BitExpr::Const(c) => *c,
            BitExpr::In { port, bit } => (inputs[*port] >> bit) & 1 == 1,
            BitExpr::Not(a) => !a.eval_concrete(inputs),
            BitExpr::And(a, b) => a.eval_concrete(inputs) && b.eval_concrete(inputs),
            BitExpr::Or(a, b) => a.eval_concrete(inputs) || b.eval_concrete(inputs),
            BitExpr::Xor(a, b) => a.eval_concrete(inputs) != b.eval_concrete(inputs),
            BitExpr::Opaque { .. } => panic!("eval_concrete on an opaque bit expression"),
        }
    }

    /// Is this expression free of [`Opaque`](BitExpr::Opaque) nodes
    /// (i.e. a complete boolean model, evaluable by
    /// [`eval_concrete`](Self::eval_concrete))?
    pub fn is_pure(&self) -> bool {
        match self {
            BitExpr::Const(_) | BitExpr::In { .. } => true,
            BitExpr::Not(a) => a.is_pure(),
            BitExpr::And(a, b) | BitExpr::Or(a, b) | BitExpr::Xor(a, b) => {
                a.is_pure() && b.is_pure()
            }
            BitExpr::Opaque { .. } => false,
        }
    }
}

/// The declared bit-level semantics of one *output port*: one
/// [`BitExpr`] per bit, LSB first, `bits.len()` equal to the port's
/// declared width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSemantics {
    /// One expression per output bit, index 0 = LSB.
    pub bits: Vec<BitExpr>,
}

/// A shared block implementation: the combinational circuitry plus the
/// declaration of its register and port shape.
///
/// `eval` must be a *pure function* of `(cur, inputs, cycle, side)` —
/// the dynamic scheduler may call it several times per system cycle
/// (re-evaluation, §4.2) and the last call wins. Side-memory interaction
/// must therefore be pointer-based and idempotent: read any slot freely,
/// write slots addressed by pointers held in `cur`, and advance pointers
/// only through `next`.
///
/// Kinds must be [`Send`]: the sharded engine moves each shard's
/// `SystemSpec` onto a worker thread. (They need not be `Sync` — a shard
/// is only ever evaluated by one thread at a time, so interior
/// mutability like a per-kind decode cache stays safe.)
pub trait BlockKind: Send {
    /// Human-readable kind name (diagnostics, traces).
    fn name(&self) -> &str;

    /// Number of state (register) bits of one instance.
    fn state_bits(&self) -> usize;

    /// Widths in bits of the input links, in port order.
    fn input_widths(&self) -> Vec<usize>;

    /// Widths in bits of the output links, in port order.
    fn output_widths(&self) -> Vec<usize>;

    /// Number of side-memory rings per instance and their word capacities.
    /// Default: no side memory.
    fn side_rings(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Which input ports output `port` depends on *combinationally*
    /// (within the same system cycle). Used by the static analyzer to
    /// classify edges as registered vs combinational; the conservative
    /// default declares every output combinational in every input. An
    /// override must be sound: declaring an input independent that
    /// actually feeds through combinationally breaks the derived hybrid
    /// schedule's single-evaluation guarantee.
    fn comb_inputs(&self, port: usize) -> CombInputs {
        let _ = port;
        CombInputs::All
    }

    /// Write the reset state into `state` (a zeroed word slice of
    /// `state_bits()` bits).
    fn reset(&self, state: &mut [u64]);

    /// Evaluate one instance combinationally.
    ///
    /// * `instance` — which instance of this kind is being evaluated (for
    ///   side-memory addressing).
    /// * `cur` — current-state words (read-only; stable for the whole
    ///   system cycle).
    /// * `inputs` — input link words, one `u64` per input port.
    /// * `cycle` — current system cycle (driven by the engine's global
    ///   control, like the paper's "global control" block).
    /// * `next` — next-state words; the *entire* state must be written.
    /// * `outputs` — output link words, one `u64` per output port; all
    ///   must be written.
    /// * `side` — this block's slice of the side memory (the FPGA's BRAM
    ///   stimuli/result buffers).
    #[allow(clippy::too_many_arguments)]
    fn eval(
        &self,
        instance: usize,
        cur: &[u64],
        inputs: &[u64],
        cycle: u64,
        next: &mut [u64],
        outputs: &mut [u64],
        side: &mut SideView<'_>,
    );

    /// A specialized execution unit for the compiled engine
    /// ([`crate::compile::CompiledEngine`]): keeps decoded per-instance
    /// state between cycles, splitting `eval` into per-level comb passes
    /// and one clock edge. Must be observably bit-identical to `eval`
    /// (the differential suites enforce this). Default: `None`, which
    /// makes the compiler fall back to packed `eval` opcodes — always
    /// correct, just slower.
    fn compile(&self) -> Option<Box<dyn crate::compile::CompiledExec>> {
        None
    }

    /// Opt this kind into GSIM-style bitwise lane packing in the batched
    /// engine: 64 lanes of a width-1 signal share one `u64` word, and
    /// `eval` is called once on the packed words instead of once per
    /// lane.
    ///
    /// **Proof obligation.** Returning `true` asserts all of:
    ///
    /// * every input and output port is exactly 1 bit wide, and
    ///   `state_bits() == 0` and `side_rings()` is empty (the batcher
    ///   statically rejects the kind otherwise);
    /// * `eval` computes each output as a *lanewise bitwise* function of
    ///   the inputs — bit `j` of every output depends only on bit `j` of
    ///   the inputs. Shifts, adds, comparisons against the numeric value
    ///   of an input, and any `cycle`- or `instance`-dependent behaviour
    ///   that is not the same for all 64 bits all break this;
    /// * the function is identical across instances of the kind.
    ///
    /// The static checks cover the shape constraints only; the lanewise
    /// property is enforced empirically by the batched differential
    /// suites. Default: `false` (per-lane evaluation, always correct).
    fn bit_parallel(&self) -> bool {
        false
    }

    /// The bit-level semantics of output `port`, if this kind models
    /// them. `None` (the default) makes the bitflow analysis treat
    /// every bit of the output as Unknown with a dependency on *every*
    /// bit of *every* input — always sound, never useful.
    ///
    /// An override must be sound per bit (see [`BitExpr`]); the
    /// bitflow soundness property suite cross-checks declared
    /// semantics against concrete runs.
    fn bit_semantics(&self, port: usize) -> Option<BitSemantics> {
        let _ = port;
        None
    }

    /// Which bits of input `port` `eval` can observe: `Some(mask)` with
    /// one `bool` per bit (LSB first, length = the port's width) marks
    /// unread bits `false`; `None` (the default) declares every bit
    /// read. Feeds the bitflow `DEAD_BIT` lint. An override must be
    /// sound: marking a bit unread that `eval` actually observes makes
    /// dead-bit reports wrong.
    fn input_bits_used(&self, port: usize) -> Option<Vec<bool>> {
        let _ = port;
        None
    }
}

/// What drives a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDriver {
    /// Output `port` of block `block`.
    Block {
        /// Driving block instance.
        block: BlockId,
        /// Output port index on that block.
        port: usize,
    },
    /// A constant tie-off (mesh edge ports, configuration straps).
    Const(u64),
    /// Host-written register (the ARM writing FPGA registers over the
    /// memory interface, e.g. stimuli-ring write pointers).
    External,
}

/// A wire bundle crossing block boundaries, stored in link memory.
#[derive(Debug, Clone)]
pub struct LinkSpec {
    /// Width in bits (1..=64).
    pub width: usize,
    /// Driver of the link.
    pub driver: LinkDriver,
    /// Consuming block and input port, if connected.
    pub consumer: Option<(BlockId, usize)>,
    /// Initial value at reset.
    pub reset_value: u64,
}

/// One block instance.
#[derive(Debug, Clone)]
pub struct BlockInst {
    /// The shared implementation this instance uses.
    pub kind: KindId,
    /// Which instance of its kind this is (0-based), for side-memory
    /// addressing.
    pub instance_of_kind: usize,
    /// Input link ids, one per input port.
    pub inputs: Vec<LinkId>,
    /// Output link ids, one per output port.
    pub outputs: Vec<LinkId>,
}

/// A complete system description: kinds, instances and wiring.
///
/// Build with [`SystemSpec::new`], [`add_kind`](SystemSpec::add_kind),
/// [`add_block`](SystemSpec::add_block) and the wiring methods, then
/// validate and hand to an engine.
pub struct SystemSpec {
    kinds: Vec<Box<dyn BlockKind>>,
    blocks: Vec<BlockInst>,
    links: Vec<LinkSpec>,
    kind_instance_counts: Vec<usize>,
}

impl Default for SystemSpec {
    fn default() -> Self {
        Self::new()
    }
}

impl SystemSpec {
    /// Create an empty system.
    pub fn new() -> Self {
        Self {
            kinds: Vec::new(),
            blocks: Vec::new(),
            links: Vec::new(),
            kind_instance_counts: Vec::new(),
        }
    }

    /// Register a block kind (one shared implementation).
    pub fn add_kind(&mut self, kind: Box<dyn BlockKind>) -> KindId {
        self.kinds.push(kind);
        self.kind_instance_counts.push(0);
        self.kinds.len() - 1
    }

    /// Instantiate a block of `kind`. Its ports start unconnected; every
    /// input must be wired (or tied off) before validation.
    pub fn add_block(&mut self, kind: KindId) -> BlockId {
        let n_in = self.kinds[kind].input_widths().len();
        let n_out = self.kinds[kind].output_widths().len();
        let instance_of_kind = self.kind_instance_counts[kind];
        self.kind_instance_counts[kind] += 1;
        self.blocks.push(BlockInst {
            kind,
            instance_of_kind,
            inputs: vec![usize::MAX; n_in],
            outputs: vec![usize::MAX; n_out],
        });
        self.blocks.len() - 1
    }

    /// Wire output `from.1` of block `from.0` to input `to.1` of block
    /// `to.0`, creating a link. Widths must agree.
    pub fn wire(&mut self, from: (BlockId, usize), to: (BlockId, usize)) -> LinkId {
        let w_out = self.kinds[self.blocks[from.0].kind].output_widths()[from.1];
        let w_in = self.kinds[self.blocks[to.0].kind].input_widths()[to.1];
        assert_eq!(
            w_out, w_in,
            "width mismatch wiring block {} out {} ({w_out}b) to block {} in {} ({w_in}b)",
            from.0, from.1, to.0, to.1
        );
        let id = self.links.len();
        self.links.push(LinkSpec {
            width: w_out,
            driver: LinkDriver::Block {
                block: from.0,
                port: from.1,
            },
            consumer: Some((to.0, to.1)),
            reset_value: 0,
        });
        assert_eq!(
            self.blocks[from.0].outputs[from.1],
            usize::MAX,
            "output ({},{}) already wired",
            from.0,
            from.1
        );
        assert_eq!(
            self.blocks[to.0].inputs[to.1],
            usize::MAX,
            "input ({},{}) already wired",
            to.0,
            to.1
        );
        self.blocks[from.0].outputs[from.1] = id;
        self.blocks[to.0].inputs[to.1] = id;
        id
    }

    /// Tie input `to.1` of block `to.0` to a constant (e.g. mesh edge).
    pub fn tie_off(&mut self, to: (BlockId, usize), value: u64) -> LinkId {
        let width = self.kinds[self.blocks[to.0].kind].input_widths()[to.1];
        let id = self.links.len();
        self.links.push(LinkSpec {
            width,
            driver: LinkDriver::Const(value),
            consumer: Some((to.0, to.1)),
            reset_value: value,
        });
        assert_eq!(
            self.blocks[to.0].inputs[to.1],
            usize::MAX,
            "input ({},{}) already wired",
            to.0,
            to.1
        );
        self.blocks[to.0].inputs[to.1] = id;
        id
    }

    /// Connect input `to.1` of block `to.0` to a host-written register.
    pub fn external(&mut self, to: (BlockId, usize), reset_value: u64) -> LinkId {
        let width = self.kinds[self.blocks[to.0].kind].input_widths()[to.1];
        let id = self.links.len();
        self.links.push(LinkSpec {
            width,
            driver: LinkDriver::External,
            consumer: Some((to.0, to.1)),
            reset_value,
        });
        assert_eq!(
            self.blocks[to.0].inputs[to.1],
            usize::MAX,
            "input ({},{}) already wired",
            to.0,
            to.1
        );
        self.blocks[to.0].inputs[to.1] = id;
        id
    }

    /// Leave output `from.1` of block `from.0` dangling but observable (a
    /// probe point, e.g. an unconnected mesh edge output).
    pub fn sink(&mut self, from: (BlockId, usize)) -> LinkId {
        let width = self.kinds[self.blocks[from.0].kind].output_widths()[from.1];
        let id = self.links.len();
        self.links.push(LinkSpec {
            width,
            driver: LinkDriver::Block {
                block: from.0,
                port: from.1,
            },
            consumer: None,
            reset_value: 0,
        });
        assert_eq!(
            self.blocks[from.0].outputs[from.1],
            usize::MAX,
            "output ({},{}) already wired",
            from.0,
            from.1
        );
        self.blocks[from.0].outputs[from.1] = id;
        id
    }

    /// Set the reset value of a link (the register contents at power-up
    /// for registered boundaries, the initial wire sample otherwise).
    pub fn set_link_reset(&mut self, link: LinkId, value: u64) {
        assert!(
            self.links[link].width == 64 || value < (1u64 << self.links[link].width),
            "reset value wider than link"
        );
        self.links[link].reset_value = value;
    }

    /// Structurally check the spec: every port connected, every link
    /// width representable in the 64-bit link-memory word.
    ///
    /// Returns every finding as a typed [`Diagnostic`] (error severity —
    /// an engine must refuse such a spec). Deeper graph analysis —
    /// multiple writers, combinational loops, reachability, schedule
    /// derivation — lives in the `speccheck` crate, which builds on the
    /// same diagnostics.
    pub fn check(&self) -> Result<(), Vec<Diagnostic>> {
        let mut ds = Vec::new();
        for (b, inst) in self.blocks.iter().enumerate() {
            for (i, &l) in inst.inputs.iter().enumerate() {
                if l == usize::MAX {
                    ds.push(Diagnostic::new(
                        Severity::Error,
                        codes::UNCONNECTED_INPUT,
                        Site::InputPort { block: b, port: i },
                        format!("block {b} input {i} unconnected"),
                    ));
                }
            }
            for (o, &l) in inst.outputs.iter().enumerate() {
                if l == usize::MAX {
                    ds.push(Diagnostic::new(
                        Severity::Error,
                        codes::UNCONNECTED_OUTPUT,
                        Site::OutputPort { block: b, port: o },
                        format!("block {b} output {o} unconnected"),
                    ));
                }
            }
        }
        for (l, spec) in self.links.iter().enumerate() {
            if spec.width == 0 || spec.width > 64 {
                ds.push(Diagnostic::new(
                    Severity::Error,
                    codes::WIDTH_OVERFLOW,
                    Site::Link(l),
                    format!(
                        "link {l} is {} bits wide; the link memory holds 1..=64",
                        spec.width
                    ),
                ));
            }
        }
        if ds.is_empty() {
            Ok(())
        } else {
            Err(ds)
        }
    }

    /// The registered kinds.
    pub fn kinds(&self) -> &[Box<dyn BlockKind>] {
        &self.kinds
    }

    /// The block instances.
    pub fn blocks(&self) -> &[BlockInst] {
        &self.blocks
    }

    /// The links.
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// Total register bits across all instances — the depth×width of the
    /// FPGA state memory (one bank).
    pub fn total_state_bits(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| self.kinds[b.kind].state_bits())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::RegisteredDemoKind;

    #[test]
    fn wiring_and_validation() {
        let mut spec = SystemSpec::new();
        let k = spec.add_kind(Box::new(RegisteredDemoKind::new(0)));
        let a = spec.add_block(k);
        let b = spec.add_block(k);
        spec.wire((a, 0), (b, 0));
        spec.wire((b, 0), (a, 0));
        spec.check().unwrap();
        assert_eq!(spec.links().len(), 2);
        assert_eq!(spec.blocks()[0].instance_of_kind, 0);
        assert_eq!(spec.blocks()[1].instance_of_kind, 1);
    }

    #[test]
    fn unconnected_input_reported() {
        let mut spec = SystemSpec::new();
        let k = spec.add_kind(Box::new(RegisteredDemoKind::new(0)));
        let a = spec.add_block(k);
        spec.sink((a, 0));
        let ds = spec.check().unwrap_err();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, codes::UNCONNECTED_INPUT);
        assert_eq!(ds[0].severity, Severity::Error);
        assert_eq!(ds[0].site, Site::InputPort { block: a, port: 0 });
    }

    #[test]
    #[should_panic(expected = "already wired")]
    fn double_wiring_rejected() {
        let mut spec = SystemSpec::new();
        let k = spec.add_kind(Box::new(RegisteredDemoKind::new(0)));
        let a = spec.add_block(k);
        let b = spec.add_block(k);
        spec.wire((a, 0), (b, 0));
        spec.tie_off((b, 0), 0);
    }
}
