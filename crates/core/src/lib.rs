//! # seqsim — sequential simulation of parallel synchronous systems
//!
//! This crate is the Rust embodiment of the simulation method of
//! Wolkotte, Hölzenspies and Smit, *"Using an FPGA for Fast Bit Accurate
//! SoC Simulation"* (IPDPS 2007), §4: how to simulate a large parallel
//! system — many identical combinational blocks with registered state —
//! *sequentially*, one block evaluation ("delta cycle") at a time, while
//! remaining bit and cycle accurate.
//!
//! The key ideas, mapped to modules:
//!
//! * All registers of every block instance are extracted into a single
//!   **double-buffered state memory** ([`state::StateMemory`]); the
//!   current/next banks are exchanged by switching an offset pointer, not
//!   by copying (paper Fig 2b / §4.1).
//! * Blocks of the same kind share one implementation (the
//!   [`block::BlockKind`] trait object) — in the FPGA, one copy of the
//!   combinational logic; here, one `eval` function.
//! * Inter-block wires are held in a **link memory** ([`links::LinkMemory`]).
//!   For systems with *registered* boundaries the link memory is double
//!   buffered and a **static schedule** suffices ([`static_sched`], Fig 3).
//! * For systems with *combinatorial* boundaries each link has a single
//!   memory slot plus a **Has-Been-Read (HBR) status bit**; a round-robin
//!   **dynamic scheduler** re-evaluates blocks whose adjacent links are not
//!   all valid until the whole system is stable ([`dynamic_sched`], Fig 5,
//!   §4.2).
//! * A **system cycle** (one simulated clock edge) therefore consists of at
//!   least one *delta cycle* per block; the surplus is the re-evaluation
//!   overhead reported in the paper's §6 ("between 1.5 and 2 times the
//!   input load"). [`counters::DeltaStats`] tracks it.
//! * [`trace::ScheduleTrace`] records the exact delta-cycle schedule, used
//!   to regenerate the paper's Fig 3 and Fig 5.
//! * [`demo`] contains the paper's running examples: the three-block
//!   registered-boundary system (Fig 2) and the combinatorial-boundary
//!   system (Fig 4).
//!
//! The blocks simulated by this crate are *bit-accurate*: block state is a
//! plain bit vector, and `eval` is a pure function from (current state
//! bits, input link words) to (next state bits, output link words) — the
//! same contract a synthesised netlist has on the FPGA.
//!
//! ```
//! use seqsim::demo::{comb_demo, comb_demo_reference};
//! use seqsim::DynamicEngine;
//!
//! // The paper's Fig 4 example system, simulated sequentially with the
//! // dynamic (HBR) schedule of §4.2 ...
//! let (spec, _links) = comb_demo();
//! let mut engine = DynamicEngine::new(spec);
//! engine.run(10);
//!
//! // ... matches the parallel-hardware semantics bit for bit,
//! assert_eq!(
//!     noc_types::bits::BitReader::new(engine.peek_state(0)).take(16),
//!     comb_demo_reference(10)[0]
//! );
//! // ... at a delta-cycle cost of at least one evaluation per block.
//! assert!(engine.stats().delta_cycles >= 30);
//! ```

#![warn(missing_docs)]
// Positional `for i in 0..n` loops indexing several parallel arrays are
// the natural shape for port/node-indexed hardware code; iterator zips
// would obscure which port is which.
#![allow(clippy::needless_range_loop)]
// Library failure paths must be typed (`SimError`), not panics hidden in
// unwraps. Tests may still unwrap.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod batch;
pub mod block;
pub mod check;
pub mod compile;
pub mod counters;
pub mod demo;
pub mod dynamic_sched;
pub mod error;
pub mod instrument;
pub mod links;
pub mod pool;
pub mod profiler;
pub mod side;
pub mod state;
pub mod static_sched;
pub mod systolic;
pub mod trace;
pub mod wire;
pub mod worklist;

pub use batch::{check_lane_structure, BatchedEngine, BatchedProgram, BatchedSnapshot};
pub use block::{
    BitExpr, BitSemantics, BlockId, BlockInst, BlockKind, CombInputs, KindId, LinkDriver, LinkId,
    LinkSpec, SystemSpec,
};
pub use compile::{
    CompileOptions, CompiledEngine, CompiledExec, CompiledProgram, CompiledSnapshot, ProgramMode,
    SlicePlan,
};
pub use counters::DeltaStats;
pub use dynamic_sched::{DynamicEngine, HybridRun, HybridSchedule, Scheduling, Snapshot};
pub use error::SimError;
pub use instrument::KernelInstr;
pub use links::LinkMemory;
pub use pool::{BarrierPoisoned, ScopedTask, SpinBarrier, ThreadPool};
pub use profiler::KernelProfiler;
pub use side::{SideMem, SideView};
pub use state::StateMemory;
pub use static_sched::StaticEngine;
pub use trace::{ScheduleTrace, TraceEvent};
pub use wire::{Dec, Enc, WireError};
pub use worklist::Worklist;
