//! Lane-batched execution of a compiled program: N independent
//! simulations advanced in lockstep by one pass over the bytecode.
//!
//! The paper's core economy — all identical blocks share one
//! implementation — generalizes across *simulations*: N instances of the
//! same system (different seeds, fault plans, stimuli) can advance under
//! one walk of the [`CompiledProgram`]'s op list. The
//! [`Arena`](crate::compile::Arena)'s contiguous-`u64` layout turns into
//! a structure-of-arrays with a stride: link `l`, lane `j` lives at
//! `l * lanes + j`, so the per-op dispatch cost (decode, gather/scatter
//! table walk) is paid once per op instead of once per op per
//! simulation.
//!
//! Two lane representations coexist:
//!
//! * **Per-lane words** — one `u64` per lane per link/state word, the
//!   general case. Each op loops over the active lanes, gathering from
//!   and scattering into the strided slabs.
//! * **Bit-packed words** — for width-1 links between
//!   [`bit_parallel`](crate::block::BlockKind::bit_parallel) blocks, 64
//!   lanes share one `u64` (GSIM-style): one `eval` call on the packed
//!   words advances 64 lanes at once. The lowering proves the shape
//!   constraints statically and demotes any block whose neighbourhood
//!   does not cooperate back to per-lane evaluation.
//!
//! Per-lane divergence (a lane whose `FaultPlan` stalls a router, a lane
//! retired early by its host) is handled by *masked scatter*: every lane
//! has an active flag, per-lane ops skip inactive lanes, and bitwise ops
//! AND their writes with an active-mask word, so a halted lane's state
//! stays bit-exact across bank swaps.

use crate::block::{BitExpr, BlockInst, LinkDriver, SystemSpec};
use crate::compile::{CompileOptions, CompiledExec, CompiledProgram, Op, ProgramMode};
use crate::counters::DeltaStats;
use crate::error::SimError;
use crate::profiler::KernelProfiler;
use crate::side::SideMem;
use noc_types::bits::words_for_bits;
use noc_types::diag::codes;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Structural lane compatibility
// ---------------------------------------------------------------------------

/// Check that every lane spec shares one structure with `specs[0]`:
/// same blocks (kind, shape, state and ring geometry, comb
/// declarations), same links (width, driver class, consumer). Per-lane
/// *contents* — fault plans baked into kinds, link reset values,
/// constant tie-off values — may differ.
///
/// On mismatch returns [`SimError::Config`] carrying the
/// [`BATCH_DIVERGENT_TOPOLOGY`](codes::BATCH_DIVERGENT_TOPOLOGY) code.
pub fn check_lane_structure(specs: &[SystemSpec]) -> Result<(), SimError> {
    let Some(base) = specs.first() else {
        return Err(SimError::Config(
            "batched engine needs at least one lane".into(),
        ));
    };
    let fail = |lane: usize, what: String| {
        SimError::Config(format!(
            "{}: lane {lane} diverges from lane 0: {what}",
            codes::BATCH_DIVERGENT_TOPOLOGY
        ))
    };
    for (lane, spec) in specs.iter().enumerate().skip(1) {
        if spec.kinds().len() != base.kinds().len() {
            return Err(fail(
                lane,
                format!("{} kinds vs {}", spec.kinds().len(), base.kinds().len()),
            ));
        }
        for (k, (ka, kb)) in base.kinds().iter().zip(spec.kinds()).enumerate() {
            if ka.name() != kb.name()
                || ka.state_bits() != kb.state_bits()
                || ka.input_widths() != kb.input_widths()
                || ka.output_widths() != kb.output_widths()
                || ka.side_rings() != kb.side_rings()
                || ka.bit_parallel() != kb.bit_parallel()
            {
                return Err(fail(lane, format!("kind {k} shape differs")));
            }
            for p in 0..ka.output_widths().len() {
                if ka.comb_inputs(p) != kb.comb_inputs(p) {
                    return Err(fail(
                        lane,
                        format!("kind {k} comb declaration differs on port {p}"),
                    ));
                }
                // Bit semantics feed the packed-expression lowering: one
                // shared program evaluates every lane, so the declared
                // boolean model must be lane-invariant.
                if ka.bit_semantics(p) != kb.bit_semantics(p) {
                    return Err(fail(
                        lane,
                        format!("kind {k} bit semantics differ on output {p}"),
                    ));
                }
            }
            for p in 0..ka.input_widths().len() {
                if ka.input_bits_used(p) != kb.input_bits_used(p) {
                    return Err(fail(
                        lane,
                        format!("kind {k} input-bit liveness differs on input {p}"),
                    ));
                }
            }
        }
        if spec.blocks().len() != base.blocks().len() {
            return Err(fail(
                lane,
                format!("{} blocks vs {}", spec.blocks().len(), base.blocks().len()),
            ));
        }
        for (b, (ba, bb)) in base.blocks().iter().zip(spec.blocks()).enumerate() {
            if ba.kind != bb.kind
                || ba.instance_of_kind != bb.instance_of_kind
                || ba.inputs != bb.inputs
                || ba.outputs != bb.outputs
            {
                return Err(fail(lane, format!("block {b} wiring differs")));
            }
        }
        if spec.links().len() != base.links().len() {
            return Err(fail(
                lane,
                format!("{} links vs {}", spec.links().len(), base.links().len()),
            ));
        }
        for (l, (la, lb)) in base.links().iter().zip(spec.links()).enumerate() {
            let driver_class_matches = match (la.driver, lb.driver) {
                (
                    LinkDriver::Block {
                        block: b1,
                        port: p1,
                    },
                    LinkDriver::Block {
                        block: b2,
                        port: p2,
                    },
                ) => b1 == b2 && p1 == p2,
                // Constant *values* are per-lane contents.
                (LinkDriver::Const(_), LinkDriver::Const(_)) => true,
                (LinkDriver::External, LinkDriver::External) => true,
                _ => false,
            };
            if la.width != lb.width || !driver_class_matches || la.consumer != lb.consumer {
                return Err(fail(lane, format!("link {l} shape differs")));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Lowered batched program
// ---------------------------------------------------------------------------

/// One packed move: `buf[port] <-> packed[slab * lane_words + w]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PackedMove {
    port: u32,
    slab: u32,
}

/// A `(start, len)` window into the packed move tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PackedRange {
    start: u32,
    len: u32,
}

impl PackedRange {
    fn as_range(self) -> std::ops::Range<usize> {
        self.start as usize..(self.start + self.len) as usize
    }
}

/// A [`BitExpr`] lowered onto packed slabs: every `In{port,bit}` leaf is
/// resolved to the slab holding that bit lanewise, so one evaluation
/// computes the output bit of up to 64 lanes at once.
#[derive(Debug, Clone)]
enum SlabExpr {
    /// All lanes `0` / all lanes `1`.
    Const(bool),
    /// The packed word of one slab.
    Slab(u32),
    /// Lanewise NOT.
    Not(Box<SlabExpr>),
    /// Lanewise AND.
    And(Box<SlabExpr>, Box<SlabExpr>),
    /// Lanewise OR.
    Or(Box<SlabExpr>, Box<SlabExpr>),
    /// Lanewise XOR.
    Xor(Box<SlabExpr>, Box<SlabExpr>),
}

impl SlabExpr {
    /// Evaluate over packed word `w` of every referenced slab.
    fn eval(&self, packed: &[u64], lane_words: usize, w: usize) -> u64 {
        match self {
            SlabExpr::Const(false) => 0,
            SlabExpr::Const(true) => !0u64,
            SlabExpr::Slab(s) => packed[*s as usize * lane_words + w],
            SlabExpr::Not(a) => !a.eval(packed, lane_words, w),
            SlabExpr::And(a, b) => a.eval(packed, lane_words, w) & b.eval(packed, lane_words, w),
            SlabExpr::Or(a, b) => a.eval(packed, lane_words, w) | b.eval(packed, lane_words, w),
            SlabExpr::Xor(a, b) => a.eval(packed, lane_words, w) ^ b.eval(packed, lane_words, w),
        }
    }

    /// Lower `e` (an output-bit expression of `inst`) onto packed
    /// slabs. `None` when the expression is opaque or references a bit
    /// whose arena word is not packed (the block then stays per-lane).
    fn lower(
        e: &BitExpr,
        inst: &BlockInst,
        scalar: &CompiledProgram,
        packed_of: &[Option<u32>],
    ) -> Option<SlabExpr> {
        let bin = |a: &BitExpr,
                   b: &BitExpr,
                   inst: &BlockInst,
                   scalar: &CompiledProgram,
                   packed_of: &[Option<u32>]|
         -> Option<(Box<SlabExpr>, Box<SlabExpr>)> {
            Some((
                Box::new(SlabExpr::lower(a, inst, scalar, packed_of)?),
                Box::new(SlabExpr::lower(b, inst, scalar, packed_of)?),
            ))
        };
        match e {
            BitExpr::Const(v) => Some(SlabExpr::Const(*v)),
            BitExpr::In { port, bit } => {
                let l = inst.inputs[*port];
                packed_of[scalar.bit_word(l, *bit)].map(SlabExpr::Slab)
            }
            BitExpr::Not(a) => Some(SlabExpr::Not(Box::new(SlabExpr::lower(
                a, inst, scalar, packed_of,
            )?))),
            BitExpr::And(a, b) => {
                let (a, b) = bin(a, b, inst, scalar, packed_of)?;
                Some(SlabExpr::And(a, b))
            }
            BitExpr::Or(a, b) => {
                let (a, b) = bin(a, b, inst, scalar, packed_of)?;
                Some(SlabExpr::Or(a, b))
            }
            BitExpr::Xor(a, b) => {
                let (a, b) = bin(a, b, inst, scalar, packed_of)?;
                Some(SlabExpr::Xor(a, b))
            }
            BitExpr::Opaque { .. } => None,
        }
    }
}

/// One packed-expression write: `packed[slab] = expr` (masked by the
/// active-lane word).
#[derive(Debug, Clone)]
struct ExprWrite {
    slab: u32,
    expr: SlabExpr,
}

/// One batched instruction.
#[derive(Debug, Clone)]
enum BatchOp {
    /// Execute the scalar op once per active lane over the strided
    /// slabs.
    PerLane(Op),
    /// Execute the kind's `eval` once per packed word, advancing up to
    /// 64 lanes per call (width-1 bitwise blocks only).
    Bitwise {
        kind: u32,
        block: u32,
        instance: u32,
        gather: PackedRange,
        scatter: PackedRange,
    },
    /// Evaluate the block's declared [`BitExpr`] semantics directly on
    /// packed slabs, one [`ExprWrite`] per output bit at this comb
    /// level. Requires bitflow-sliced input and output links (every
    /// referenced bit must live in its own packed sub-word); no `eval`
    /// call is made at all.
    Expr { block: u32, writes: Vec<ExprWrite> },
}

/// A [`CompiledProgram`] lowered for lane batching: per-lane ops keep
/// the scalar gather/scatter tables; provably width-1 bitwise blocks get
/// packed-slab ops. Group-size independent — one lowered program is
/// shared (via `Arc`) by every lane group.
#[derive(Debug)]
pub struct BatchedProgram {
    /// The scalar program (lane 0's structure; shared by construction).
    scalar: CompiledProgram,
    ops: Vec<BatchOp>,
    pgathers: Vec<PackedMove>,
    pscatters: Vec<PackedMove>,
    /// Arena word (link id, or per-bit sub-word of a sliced link) ->
    /// packed slab index (None = per-lane representation). Sub-words
    /// always pack: they hold one bit per lane by construction.
    packed_of_link: Vec<Option<u32>>,
    n_packed: usize,
    /// Per-lane deltas per cycle, identical to the scalar engine's
    /// accounting (`ops.len() - update_start`).
    scalar_deltas: u64,
}

impl BatchedProgram {
    /// Lower the scalar `prog` (compiled from `spec`) for batching.
    ///
    /// Only straight-line programs batch: fixed-point mode needs
    /// per-lane change detection with divergent pass counts, which
    /// defeats the lockstep walk. Cyclic specs are rejected with
    /// [`SimError::Config`].
    pub fn lower(spec: &SystemSpec, prog: CompiledProgram) -> Result<BatchedProgram, SimError> {
        let ProgramMode::StraightLine { .. } = prog.mode else {
            return Err(SimError::Config(
                "batched engine requires a straight-line (acyclic) program; \
                 this spec compiled to fixed-point mode"
                    .into(),
            ));
        };
        let blocks = spec.blocks();
        let kinds = spec.kinds();
        let links = spec.links();

        // Bitwise eligibility: the statically checkable half of the
        // `bit_parallel` proof obligation.
        let mut bitwise: Vec<bool> = blocks
            .iter()
            .map(|inst| {
                let k = &kinds[inst.kind];
                k.bit_parallel()
                    && k.state_bits() == 0
                    && k.side_rings().is_empty()
                    && k.input_widths().iter().all(|&w| w == 1)
                    && k.output_widths().iter().all(|&w| w == 1)
            })
            .collect();

        // A link can live packed only between bitwise parties; a block
        // stays bitwise only if *all* its links pack. Iterate the mutual
        // demotion to a fixed point (monotone, terminates).
        fn link_packs(links: &[crate::block::LinkSpec], bitwise: &[bool], l: usize) -> bool {
            let ls = &links[l];
            if ls.width != 1 {
                return false;
            }
            let driver_ok = match ls.driver {
                LinkDriver::Block { block, .. } => bitwise[block],
                LinkDriver::Const(_) | LinkDriver::External => true,
            };
            let consumer_ok = match ls.consumer {
                None => true,
                Some((b, _)) => bitwise[b],
            };
            driver_ok && consumer_ok
        }
        loop {
            let mut changed = false;
            for b in 0..blocks.len() {
                if !bitwise[b] {
                    continue;
                }
                let inst = &blocks[b];
                let ok = inst
                    .inputs
                    .iter()
                    .chain(inst.outputs.iter())
                    .all(|&l| link_packs(links, &bitwise, l));
                if !ok {
                    bitwise[b] = false;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Arena words: spec links first, then per-bit sub-words of
        // sliced links. Width-1 links between bitwise parties pack under
        // the rule above; sub-words pack unconditionally (each holds one
        // bit per lane by construction, whoever reads or writes it).
        let n_words = links.len() + prog.n_sub();
        let mut packed_of_link: Vec<Option<u32>> = vec![None; n_words];
        let mut n_packed = 0usize;
        for l in 0..links.len() {
            if link_packs(links, &bitwise, l) {
                packed_of_link[l] = Some(n_packed as u32);
                n_packed += 1;
            }
        }
        for w in links.len()..n_words {
            packed_of_link[w] = Some(n_packed as u32);
            n_packed += 1;
        }
        let slab_of = |l: usize| -> u32 {
            match packed_of_link[l] {
                Some(s) => s,
                None => unreachable!("bitwise op touches unpacked link {l}"),
            }
        };

        // Packed-expression eligibility: a stateless ring-free block
        // whose every output bit has a pure declared `BitExpr` and whose
        // every referenced bit (inputs and outputs) lives in a packed
        // word. In practice that means bitflow sliced the block's links:
        // unsliced multi-bit words never pack, and a width-1 output of a
        // non-`bit_parallel` block doesn't either.
        let expr_ok: Vec<bool> = blocks
            .iter()
            .enumerate()
            .map(|(b, inst)| {
                if bitwise[b] {
                    return false;
                }
                let k = &kinds[inst.kind];
                if k.state_bits() != 0 || !k.side_rings().is_empty() {
                    return false;
                }
                let out_widths = k.output_widths();
                if inst.outputs.len() != out_widths.len()
                    || inst.inputs.len() != k.input_widths().len()
                {
                    return false;
                }
                for (p, &width) in out_widths.iter().enumerate() {
                    let Some(sem) = k.bit_semantics(p) else {
                        return false;
                    };
                    if sem.bits.len() != width {
                        return false;
                    }
                    for bit in 0..width {
                        if packed_of_link[prog.bit_word(inst.outputs[p], bit)].is_none() {
                            return false;
                        }
                    }
                    for e in &sem.bits {
                        if !e.is_pure() {
                            return false;
                        }
                        for (port, in_bit) in e.deps() {
                            if packed_of_link[prog.bit_word(inst.inputs[port], in_bit)].is_none() {
                                return false;
                            }
                        }
                    }
                }
                true
            })
            .collect();

        let mut ops = Vec::with_capacity(prog.ops.len());
        let mut pgathers = Vec::new();
        let mut pscatters = Vec::new();
        for (i, &op) in prog.ops.iter().enumerate() {
            let b = op.block();
            if expr_ok[b] {
                if i >= prog.update_start {
                    // Stateless and ring-free: the clock edge is a no-op
                    // (still counted in `scalar_deltas`, like bitwise).
                    continue;
                }
                // One write per scatter move of this comb level: the
                // move's shift is the output bit index, its target word
                // the bit's packed sub-word.
                let inst = &blocks[b];
                let k = &kinds[inst.kind];
                let writes: Vec<ExprWrite> = op
                    .scatter()
                    .map(|r| {
                        prog.scatters[r.as_range()]
                            .iter()
                            .map(|m| {
                                let sem = k.bit_semantics(m.port as usize).unwrap_or_else(|| {
                                    unreachable!("expr block lost its semantics")
                                });
                                let e = &sem.bits[m.shift as usize];
                                let expr = SlabExpr::lower(e, inst, &prog, &packed_of_link)
                                    .unwrap_or_else(|| {
                                        unreachable!("expr eligibility proved lowerable")
                                    });
                                ExprWrite {
                                    slab: slab_of(m.link as usize),
                                    expr,
                                }
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                ops.push(BatchOp::Expr {
                    block: b as u32,
                    writes,
                });
                continue;
            }
            if !bitwise[b] {
                ops.push(BatchOp::PerLane(op));
                continue;
            }
            if i >= prog.update_start {
                // A bitwise block is stateless and ring-free: its clock
                // edge is a no-op. Skip it (still counted in
                // `scalar_deltas` so per-lane stats match the scalar
                // engine).
                continue;
            }
            // Full-input gather, this level's scatter, both pre-resolved
            // to packed slab indices.
            let inst = &blocks[b];
            let gstart = pgathers.len() as u32;
            for (port, &l) in inst.inputs.iter().enumerate() {
                pgathers.push(PackedMove {
                    port: port as u32,
                    slab: slab_of(l),
                });
            }
            let gather = PackedRange {
                start: gstart,
                len: pgathers.len() as u32 - gstart,
            };
            let sstart = pscatters.len() as u32;
            if let Some(r) = op.scatter() {
                for m in &prog.scatters[r.as_range()] {
                    pscatters.push(PackedMove {
                        port: m.port,
                        slab: slab_of(m.link as usize),
                    });
                }
            }
            let scatter = PackedRange {
                start: sstart,
                len: pscatters.len() as u32 - sstart,
            };
            let (kind, instance) = match op {
                Op::Comb { kind, instance, .. } | Op::CombPacked { kind, instance, .. } => {
                    (kind, instance)
                }
                _ => unreachable!("comb section held a non-comb op"),
            };
            ops.push(BatchOp::Bitwise {
                kind,
                block: b as u32,
                instance,
                gather,
                scatter,
            });
        }

        let scalar_deltas = (prog.ops.len() - prog.update_start) as u64;
        Ok(BatchedProgram {
            scalar: prog,
            ops,
            pgathers,
            pscatters,
            packed_of_link,
            n_packed,
            scalar_deltas,
        })
    }

    /// The scalar program this was lowered from.
    pub fn scalar(&self) -> &CompiledProgram {
        &self.scalar
    }

    /// Number of arena words (width-1 links and per-bit sub-words of
    /// sliced links) promoted to bit-packed representation.
    pub fn packed_links(&self) -> usize {
        self.n_packed
    }

    /// Number of bitwise (64-lanes-per-eval) ops: packed `eval` calls on
    /// width-1 blocks plus packed-expression ops on bitflow-sliced
    /// blocks.
    pub fn bitwise_ops(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, BatchOp::Bitwise { .. } | BatchOp::Expr { .. }))
            .count()
    }
}

// ---------------------------------------------------------------------------
// Lane-group core
// ---------------------------------------------------------------------------

/// Current- and next-bank state slices of one `(lane, block)` — the
/// lane-strided equivalent of [`Arena::cur_and_next_mut`].
///
/// [`Arena::cur_and_next_mut`]: crate::compile::Arena::cur_and_next_mut
fn cur_next_split(
    state: &mut [u64],
    cur: usize,
    bank_lane_words: usize,
    off: usize,
    len: usize,
    lanes: usize,
    lane: usize,
) -> (&[u64], &mut [u64]) {
    if len == 0 {
        return (&[], &mut []);
    }
    let cur_start = cur * bank_lane_words + off * lanes + lane * len;
    let next_start = (cur ^ 1) * bank_lane_words + off * lanes + lane * len;
    if cur_start < next_start {
        let (lo, hi) = state.split_at_mut(next_start);
        (&lo[cur_start..cur_start + len], &mut hi[..len])
    } else {
        let (lo, hi) = state.split_at_mut(cur_start);
        (&hi[..len], &mut lo[next_start..next_start + len])
    }
}

/// A bit-exact snapshot of one lane group.
#[derive(Debug, Clone)]
struct CoreSnapshot {
    links: Vec<u64>,
    state: Vec<u64>,
    packed: Vec<u64>,
    sides: Vec<SideMem>,
    cycle: u64,
    stats: Vec<DeltaStats>,
    active: Vec<bool>,
    active_words: Vec<u64>,
    cur: usize,
    poisoned: Vec<Option<(u64, String)>>,
}

impl CoreSnapshot {
    fn encode(&self, e: &mut crate::wire::Enc) {
        e.u64s(&self.links);
        e.u64s(&self.state);
        e.u64s(&self.packed);
        e.usize(self.sides.len());
        for s in &self.sides {
            s.encode(e);
        }
        e.u64(self.cycle);
        e.usize(self.stats.len());
        for s in &self.stats {
            s.encode(e);
        }
        e.bools(&self.active);
        e.u64s(&self.active_words);
        e.usize(self.cur);
        e.usize(self.poisoned.len());
        for p in &self.poisoned {
            match p {
                Some((cycle, payload)) => {
                    e.bool(true);
                    e.u64(*cycle);
                    e.str(payload);
                }
                None => e.bool(false),
            }
        }
    }

    fn decode(d: &mut crate::wire::Dec<'_>) -> Result<Self, crate::wire::WireError> {
        let links = d.u64s()?;
        let state = d.u64s()?;
        let packed = d.u64s()?;
        let n_sides = d.usize()?;
        let mut sides = Vec::new();
        for _ in 0..n_sides {
            sides.push(SideMem::decode(d)?);
        }
        let cycle = d.u64()?;
        let n_stats = d.usize()?;
        let mut stats = Vec::new();
        for _ in 0..n_stats {
            stats.push(DeltaStats::decode(d)?);
        }
        let active = d.bools()?;
        let active_words = d.u64s()?;
        let cur = d.usize()?;
        let n_poisoned = d.usize()?;
        let mut poisoned = Vec::new();
        for _ in 0..n_poisoned {
            poisoned.push(if d.bool()? {
                Some((d.u64()?, d.str()?))
            } else {
                None
            });
        }
        if cur > 1 || active.len() != stats.len() || poisoned.len() != active.len() {
            return Err(crate::wire::WireError::new(
                "inconsistent batched-core snapshot layout",
            ));
        }
        Ok(CoreSnapshot {
            links,
            state,
            packed,
            sides,
            cycle,
            stats,
            active,
            active_words,
            cur,
            poisoned,
        })
    }
}

/// One contiguous group of lanes, advanced single-threaded by one walk
/// of the batched op list per cycle. [`BatchedEngine`] shards lanes into
/// groups, one per worker.
struct BatchedCore {
    /// Per-lane specs (lane-divergent contents like fault plans live in
    /// the kinds). `specs[0]` is the structural reference.
    specs: Vec<SystemSpec>,
    prog: Arc<BatchedProgram>,
    lanes: usize,
    /// `(lanes + 63) / 64` — packed words per slab.
    lane_words: usize,
    /// `execs[lane][kind]` — per-lane decoded-state execution units.
    execs: Vec<Vec<Option<Box<dyn CompiledExec>>>>,
    /// `sides[lane]` — per-lane side-ring memory.
    sides: Vec<SideMem>,
    /// Per-lane link words: link `l`, lane `j` at `l * lanes + j`.
    links: Vec<u64>,
    /// Both state banks, lane-major per block: bank `k`, block `b`,
    /// lane `j` at `k * bank_lane_words + state_off[b] * lanes
    /// + j * state_len[b]`.
    state: Vec<u64>,
    /// Bit-packed slabs: slab `s`, word `w` at `s * lane_words + w`.
    packed: Vec<u64>,
    state_off: Vec<usize>,
    state_len: Vec<usize>,
    /// One bank's words across all lanes.
    bank_lane_words: usize,
    cur: usize,
    /// `dirty[lane][block]`: decoded exec state is newer than `state`.
    dirty: Vec<Vec<bool>>,
    in_buf: Vec<u64>,
    out_buf: Vec<u64>,
    scratch: Vec<u64>,
    cycle: u64,
    stats: Vec<DeltaStats>,
    /// Masked scatter: inactive lanes are skipped by per-lane ops and
    /// masked out of bitwise writes; their state is frozen bit-exactly.
    active: Vec<bool>,
    /// `active` as packed mask words (tail lanes zero).
    active_words: Vec<u64>,
    /// `poisoned[lane]`: the cycle and panic payload of a quarantined
    /// lane. A poisoned lane is also inactive, but unlike a halted lane
    /// its exec state was NOT synced back (it may be mid-evaluation);
    /// the bank holds the last consistent pre-panic words.
    poisoned: Vec<Option<(u64, String)>>,
    /// Chaos knob: deliberately panic `lane`'s next per-lane op at the
    /// given cycle (testing only; not part of snapshots).
    chaos_panic: Vec<Option<u64>>,
    profiler: Option<Box<KernelProfiler>>,
}

/// Render a `catch_unwind` payload as text (panic messages are almost
/// always `&str` or `String`).
fn panic_payload(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl BatchedCore {
    fn new(specs: Vec<SystemSpec>, prog: Arc<BatchedProgram>) -> BatchedCore {
        let lanes = specs.len();
        let lane_words = lanes.div_ceil(64);
        let base = &specs[0];
        let mut state_off = Vec::with_capacity(base.blocks().len());
        let mut state_len = Vec::with_capacity(base.blocks().len());
        let mut off = 0usize;
        for b in base.blocks() {
            let w = words_for_bits(base.kinds()[b.kind].state_bits());
            state_off.push(off);
            state_len.push(w);
            off += w;
        }
        let bank_lane_words = off * lanes;
        let n_links = base.links().len();

        let mut links = vec![0u64; n_links * lanes];
        let mut packed = vec![0u64; prog.n_packed * lane_words];
        for (j, spec) in specs.iter().enumerate() {
            for (l, ls) in spec.links().iter().enumerate() {
                if let Some(sl) = prog.scalar.slice_of(l) {
                    // Sliced link: spread the per-lane reset bits over
                    // the per-bit sub-word slabs (the parent's own word
                    // is dead in a sliced program).
                    for bit in 0..sl.width as usize {
                        if (ls.reset_value >> bit) & 1 == 1 {
                            let s = prog.packed_of_link[sl.base as usize + bit]
                                .unwrap_or_else(|| unreachable!("sub-words always pack"))
                                as usize;
                            packed[s * lane_words + j / 64] |= 1u64 << (j % 64);
                        }
                    }
                    continue;
                }
                match prog.packed_of_link[l] {
                    Some(s) => {
                        if ls.reset_value & 1 == 1 {
                            packed[s as usize * lane_words + j / 64] |= 1u64 << (j % 64);
                        }
                    }
                    None => links[l * lanes + j] = ls.reset_value,
                }
            }
        }

        let execs: Vec<Vec<Option<Box<dyn CompiledExec>>>> = specs
            .iter()
            .map(|spec| spec.kinds().iter().map(|k| k.compile()).collect())
            .collect();
        let sides: Vec<SideMem> = specs
            .iter()
            .map(|spec| {
                let rings: Vec<Vec<usize>> = spec
                    .blocks()
                    .iter()
                    .map(|b| spec.kinds()[b.kind].side_rings())
                    .collect();
                SideMem::new(&rings)
            })
            .collect();
        let max_ports = base
            .blocks()
            .iter()
            .map(|b| b.inputs.len().max(b.outputs.len()))
            .max()
            .unwrap_or(0);
        let max_words = state_len.iter().copied().max().unwrap_or(0);

        let mut active_words = vec![0u64; lane_words];
        for j in 0..lanes {
            active_words[j / 64] |= 1u64 << (j % 64);
        }

        let mut core = BatchedCore {
            dirty: vec![vec![false; base.blocks().len()]; lanes],
            in_buf: vec![0; max_ports],
            out_buf: vec![0; max_ports],
            scratch: vec![0; max_words],
            stats: vec![DeltaStats::default(); lanes],
            active: vec![true; lanes],
            active_words,
            poisoned: vec![None; lanes],
            chaos_panic: vec![None; lanes],
            cycle: 0,
            cur: 0,
            profiler: None,
            execs,
            sides,
            links,
            state: vec![0u64; 2 * bank_lane_words],
            packed,
            state_off,
            state_len,
            bank_lane_words,
            lane_words,
            lanes,
            prog,
            specs,
        };
        // Reset: per lane, per block, write reset state into the current
        // bank and mirror it into the next bank.
        for j in 0..core.lanes {
            for b in 0..core.specs[j].blocks().len() {
                let kind = core.specs[j].blocks()[b].kind;
                let (off, len) = (core.state_off[b], core.state_len[b]);
                let start = core.cur * core.bank_lane_words + off * core.lanes + j * len;
                core.specs[j].kinds()[kind].reset(&mut core.state[start..start + len]);
                let (cur, next) = cur_next_split(
                    &mut core.state,
                    core.cur,
                    core.bank_lane_words,
                    off,
                    len,
                    core.lanes,
                    j,
                );
                let tmp: Vec<u64> = cur.to_vec();
                next.copy_from_slice(&tmp);
            }
        }
        core.load_execs();
        core
    }

    /// (Re)load every lane's exec decoded state from the current bank.
    fn load_execs(&mut self) {
        for j in 0..self.lanes {
            for b in 0..self.specs[j].blocks().len() {
                let inst = &self.specs[j].blocks()[b];
                let (off, len) = (self.state_off[b], self.state_len[b]);
                let start = self.cur * self.bank_lane_words + off * self.lanes + j * len;
                if let Some(exec) = self.execs[j][inst.kind].as_mut() {
                    exec.load(inst.instance_of_kind, &self.state[start..start + len]);
                }
                self.dirty[j][b] = false;
            }
        }
    }

    /// Packed current-state words of `(lane, block)`.
    fn peek_state(&self, lane: usize, b: usize) -> Vec<u64> {
        let inst = &self.specs[lane].blocks()[b];
        let (off, len) = (self.state_off[b], self.state_len[b]);
        if self.dirty[lane][b] {
            if let Some(exec) = self.execs[lane][inst.kind].as_ref() {
                let mut out = vec![0u64; len];
                exec.store(inst.instance_of_kind, &mut out);
                return out;
            }
        }
        let start = self.cur * self.bank_lane_words + off * self.lanes + lane * len;
        self.state[start..start + len].to_vec()
    }

    /// Value of link `l` in `lane` (bit-extracted if packed,
    /// reassembled from its sub-word slabs if sliced).
    fn link_value(&self, lane: usize, l: usize) -> u64 {
        if let Some(sl) = self.prog.scalar.slice_of(l) {
            let mut v = 0u64;
            for bit in 0..sl.width as usize {
                let s = self.prog.packed_of_link[sl.base as usize + bit]
                    .unwrap_or_else(|| unreachable!("sub-words always pack"))
                    as usize;
                v |= ((self.packed[s * self.lane_words + lane / 64] >> (lane % 64)) & 1) << bit;
            }
            return v;
        }
        match self.prog.packed_of_link[l] {
            Some(s) => (self.packed[s as usize * self.lane_words + lane / 64] >> (lane % 64)) & 1,
            None => self.links[l * self.lanes + lane],
        }
    }

    /// Drive an external link in one lane.
    fn set_external(&mut self, lane: usize, l: usize, v: u64) {
        assert!(
            matches!(self.specs[lane].links()[l].driver, LinkDriver::External),
            "link {l} is not external"
        );
        match self.prog.packed_of_link[l] {
            Some(s) => {
                let word = &mut self.packed[s as usize * self.lane_words + lane / 64];
                let bit = 1u64 << (lane % 64);
                if v & 1 == 1 {
                    *word |= bit;
                } else {
                    *word &= !bit;
                }
            }
            None => self.links[l * self.lanes + lane] = v,
        }
    }

    /// Run lane `j`'s gather window of a per-lane op: the scalar
    /// [`GatherMove`](crate::compile::GatherMove) semantics (shift +
    /// accumulate, reassembling sliced links bit by bit) over the
    /// strided per-lane slabs, with packed words read via lane-bit
    /// extraction.
    #[inline]
    fn gather_lane(&mut self, r: std::ops::Range<usize>, j: usize, lanes: usize) {
        for i in r {
            let m = self.prog.scalar.gathers[i];
            let w = m.link as usize;
            let word = match self.prog.packed_of_link[w] {
                Some(s) => (self.packed[s as usize * self.lane_words + j / 64] >> (j % 64)) & 1,
                None => self.links[w * lanes + j],
            };
            let v = word << m.shift;
            if m.acc {
                self.in_buf[m.port as usize] |= v;
            } else {
                self.in_buf[m.port as usize] = v;
            }
        }
    }

    /// Run lane `j`'s scatter window of a per-lane op: the scalar
    /// [`ScatterMove`](crate::compile::ScatterMove) semantics (shift +
    /// mask, slicing output words bit by bit) with packed words written
    /// via lane-bit insertion.
    #[inline]
    fn scatter_lane(&mut self, r: std::ops::Range<usize>, j: usize, lanes: usize) {
        for i in r {
            let m = self.prog.scalar.scatters[i];
            let w = m.link as usize;
            let v = (self.out_buf[m.port as usize] >> m.shift) & m.mask;
            match self.prog.packed_of_link[w] {
                Some(s) => {
                    let slot = &mut self.packed[s as usize * self.lane_words + j / 64];
                    let bit = 1u64 << (j % 64);
                    if v & 1 == 1 {
                        *slot |= bit;
                    } else {
                        *slot &= !bit;
                    }
                }
                None => self.links[w * lanes + j] = v,
            }
        }
    }

    /// Retire a lane: sync decoded exec state into the current bank,
    /// freeze both banks, and mask the lane out of every future write.
    fn halt_lane(&mut self, lane: usize) {
        if !self.active[lane] {
            return;
        }
        for b in 0..self.specs[lane].blocks().len() {
            let inst_kind = self.specs[lane].blocks()[b].kind;
            let instance = self.specs[lane].blocks()[b].instance_of_kind;
            let (off, len) = (self.state_off[b], self.state_len[b]);
            if self.dirty[lane][b] {
                if let Some(exec) = self.execs[lane][inst_kind].as_ref() {
                    let start = self.cur * self.bank_lane_words + off * self.lanes + lane * len;
                    exec.store(instance, &mut self.state[start..start + len]);
                }
                self.dirty[lane][b] = false;
            }
            let (cur, next) = cur_next_split(
                &mut self.state,
                self.cur,
                self.bank_lane_words,
                off,
                len,
                self.lanes,
                lane,
            );
            let tmp: Vec<u64> = cur.to_vec();
            next.copy_from_slice(&tmp);
        }
        self.active[lane] = false;
        self.active_words[lane / 64] &= !(1u64 << (lane % 64));
    }

    /// Quarantine a lane whose evaluation panicked: mask it out of every
    /// future write and record the payload. Unlike [`halt_lane`]
    /// (`Self::halt_lane`) the decoded exec state is *not* synced back —
    /// a panic may have left it mid-evaluation — so the dirty flags are
    /// cleared and host peeks read the last consistent bank words.
    fn quarantine(&mut self, lane: usize, cycle: u64, payload: String) {
        if self.poisoned[lane].is_some() {
            return;
        }
        self.poisoned[lane] = Some((cycle, payload));
        self.active[lane] = false;
        self.active_words[lane / 64] &= !(1u64 << (lane % 64));
        self.dirty[lane].iter_mut().for_each(|d| *d = false);
    }

    fn snapshot(&self) -> CoreSnapshot {
        let mut state = self.state.clone();
        for j in 0..self.lanes {
            for b in 0..self.specs[j].blocks().len() {
                if !self.dirty[j][b] {
                    continue;
                }
                let inst = &self.specs[j].blocks()[b];
                if let Some(exec) = self.execs[j][inst.kind].as_ref() {
                    let (off, len) = (self.state_off[b], self.state_len[b]);
                    let start = self.cur * self.bank_lane_words + off * self.lanes + j * len;
                    exec.store(inst.instance_of_kind, &mut state[start..start + len]);
                }
            }
        }
        CoreSnapshot {
            links: self.links.clone(),
            state,
            packed: self.packed.clone(),
            sides: self.sides.clone(),
            cycle: self.cycle,
            stats: self.stats.clone(),
            active: self.active.clone(),
            active_words: self.active_words.clone(),
            cur: self.cur,
            poisoned: self.poisoned.clone(),
        }
    }

    fn restore(&mut self, snap: &CoreSnapshot) {
        self.links = snap.links.clone();
        self.state = snap.state.clone();
        self.packed = snap.packed.clone();
        self.sides = snap.sides.clone();
        self.cycle = snap.cycle;
        self.stats = snap.stats.clone();
        self.active = snap.active.clone();
        self.active_words = snap.active_words.clone();
        self.cur = snap.cur;
        self.poisoned = snap.poisoned.clone();
        self.load_execs();
    }

    /// Advance every active lane by `n` system cycles.
    fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Advance every active lane one system cycle: one walk over the
    /// batched op list, then the bank swap.
    fn step(&mut self) {
        if let Some(p) = self.profiler.as_mut() {
            p.begin_cycle();
        }
        self.run_ops();
        self.cur ^= 1;
        for j in 0..self.lanes {
            if self.active[j] {
                self.stats[j]
                    .record_cycle(self.prog.scalar_deltas, self.prog.scalar.n_blocks as u64);
            }
        }
        if let Some(p) = self.profiler.as_mut() {
            p.end_cycle();
        }
        self.cycle += 1;
    }

    fn run_ops(&mut self) {
        let cycle = self.cycle;
        let lanes = self.lanes;
        // Expression ops hold owned `SlabExpr` trees; iterate over a
        // cheap `Arc` clone of the program so `self` stays free for the
        // per-op bodies.
        let ops_prog = Arc::clone(&self.prog);
        for bop in ops_prog.ops.iter() {
            match bop {
                BatchOp::PerLane(op) => self.run_per_lane_op(*op, cycle, lanes),
                BatchOp::Expr { block, writes } => {
                    let t0 = self.profiler.as_ref().and_then(|p| p.begin_eval());
                    let b = *block as usize;
                    for w in 0..self.lane_words {
                        let act = self.active_words[w];
                        if act == 0 {
                            continue;
                        }
                        for wr in writes {
                            let val = wr.expr.eval(&self.packed, self.lane_words, w);
                            let slot = &mut self.packed[wr.slab as usize * self.lane_words + w];
                            *slot = (*slot & !act) | (val & act);
                        }
                    }
                    if let Some(p) = self.profiler.as_mut() {
                        p.end_op(b, t0);
                    }
                }
                &BatchOp::Bitwise {
                    kind,
                    block,
                    instance,
                    gather,
                    scatter,
                } => {
                    let t0 = self.profiler.as_ref().and_then(|p| p.begin_eval());
                    // One eval per packed word advances up to 64 lanes;
                    // inactive lanes are preserved via the active mask.
                    let BatchedCore {
                        specs,
                        prog,
                        packed,
                        in_buf,
                        out_buf,
                        sides,
                        active_words,
                        lane_words,
                        ..
                    } = self;
                    let b = block as usize;
                    let n_in = specs[0].blocks()[b].inputs.len();
                    let n_out = specs[0].blocks()[b].outputs.len();
                    let kindref = &specs[0].kinds()[kind as usize];
                    for w in 0..*lane_words {
                        let act = active_words[w];
                        if act == 0 {
                            continue;
                        }
                        for m in &prog.pgathers[gather.as_range()] {
                            in_buf[m.port as usize] = packed[m.slab as usize * *lane_words + w];
                        }
                        kindref.eval(
                            instance as usize,
                            &[],
                            &in_buf[..n_in],
                            cycle,
                            &mut [],
                            &mut out_buf[..n_out],
                            &mut sides[0].view(b),
                        );
                        for m in &prog.pscatters[scatter.as_range()] {
                            let slot = &mut packed[m.slab as usize * *lane_words + w];
                            *slot = (*slot & !act) | (out_buf[m.port as usize] & act);
                        }
                    }
                    if let Some(p) = self.profiler.as_mut() {
                        p.end_op(b, t0);
                    }
                }
            }
        }
    }

    /// Run one per-lane op over every active lane. Each lane's body runs
    /// under `catch_unwind`: a panicking lane (a buggy exec, or the
    /// chaos knob) is quarantined via [`quarantine`](Self::quarantine)
    /// and the remaining lanes continue untouched. Bitwise ops are not
    /// isolated this way — one eval advances up to 64 lanes at once, so
    /// a panic there cannot be attributed to a single lane.
    fn run_per_lane_op(&mut self, op: Op, cycle: u64, lanes: usize) {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        match op {
            Op::Comb {
                kind,
                pass,
                block,
                instance,
                gather,
                scatter,
            } => {
                let t0 = self.profiler.as_ref().and_then(|p| p.begin_eval());
                for j in 0..lanes {
                    if !self.active[j] {
                        continue;
                    }
                    let chaos = self.chaos_panic[j];
                    let res = catch_unwind(AssertUnwindSafe(|| {
                        if chaos == Some(cycle) {
                            panic!("chaos: injected panic in lane {j} at cycle {cycle}");
                        }
                        self.gather_lane(gather.as_range(), j, lanes);
                        let Some(exec) = self.execs[j][kind as usize].as_mut() else {
                            unreachable!("comb op for kind {kind} without exec");
                        };
                        exec.comb(
                            instance as usize,
                            pass as usize,
                            &self.in_buf,
                            cycle,
                            &mut self.out_buf,
                            &mut self.sides[j].view(block as usize),
                        );
                        self.scatter_lane(scatter.as_range(), j, lanes);
                    }));
                    if let Err(p) = res {
                        self.quarantine(j, cycle, panic_payload(p.as_ref()));
                    }
                }
                if let Some(p) = self.profiler.as_mut() {
                    p.end_op(block as usize, t0);
                }
            }
            Op::CombPacked {
                kind,
                block,
                instance,
                gather,
                scatter,
                ..
            } => {
                let t0 = self.profiler.as_ref().and_then(|p| p.begin_eval());
                let b = block as usize;
                for j in 0..lanes {
                    if !self.active[j] {
                        continue;
                    }
                    let chaos = self.chaos_panic[j];
                    let res = catch_unwind(AssertUnwindSafe(|| {
                        if chaos == Some(cycle) {
                            panic!("chaos: injected panic in lane {j} at cycle {cycle}");
                        }
                        self.gather_lane(gather.as_range(), j, lanes);
                        let n_in = self.specs[j].blocks()[b].inputs.len();
                        let n_out = self.specs[j].blocks()[b].outputs.len();
                        let (off, len) = (self.state_off[b], self.state_len[b]);
                        let start = self.cur * self.bank_lane_words + off * lanes + j * len;
                        // Split borrows: `state` read-only, `scratch` is the
                        // discarded next-state buffer — separate fields.
                        let BatchedCore {
                            specs,
                            state,
                            in_buf,
                            out_buf,
                            scratch,
                            sides,
                            ..
                        } = self;
                        specs[j].kinds()[kind as usize].eval(
                            instance as usize,
                            &state[start..start + len],
                            &in_buf[..n_in],
                            cycle,
                            &mut scratch[..len],
                            &mut out_buf[..n_out],
                            &mut sides[j].view(b),
                        );
                        self.scatter_lane(scatter.as_range(), j, lanes);
                    }));
                    if let Err(p) = res {
                        self.quarantine(j, cycle, panic_payload(p.as_ref()));
                    }
                }
                if let Some(p) = self.profiler.as_mut() {
                    p.end_op(b, t0);
                }
            }
            Op::Update {
                kind,
                block,
                instance,
                gather,
            } => {
                let t0 = self.profiler.as_ref().and_then(|p| p.begin_eval());
                for j in 0..lanes {
                    if !self.active[j] {
                        continue;
                    }
                    let chaos = self.chaos_panic[j];
                    let res = catch_unwind(AssertUnwindSafe(|| {
                        if chaos == Some(cycle) {
                            panic!("chaos: injected panic in lane {j} at cycle {cycle}");
                        }
                        self.gather_lane(gather.as_range(), j, lanes);
                        let Some(exec) = self.execs[j][kind as usize].as_mut() else {
                            unreachable!("update op for kind {kind} without exec");
                        };
                        exec.update(
                            instance as usize,
                            &self.in_buf,
                            cycle,
                            &mut self.sides[j].view(block as usize),
                        );
                        self.dirty[j][block as usize] = true;
                    }));
                    if let Err(p) = res {
                        self.quarantine(j, cycle, panic_payload(p.as_ref()));
                    }
                }
                if let Some(p) = self.profiler.as_mut() {
                    p.end_eval(block as usize, false, t0);
                }
            }
            Op::UpdatePacked {
                kind,
                block,
                instance,
                gather,
            } => {
                let t0 = self.profiler.as_ref().and_then(|p| p.begin_eval());
                let b = block as usize;
                for j in 0..lanes {
                    if !self.active[j] {
                        continue;
                    }
                    let chaos = self.chaos_panic[j];
                    let res = catch_unwind(AssertUnwindSafe(|| {
                        if chaos == Some(cycle) {
                            panic!("chaos: injected panic in lane {j} at cycle {cycle}");
                        }
                        self.gather_lane(gather.as_range(), j, lanes);
                        let n_in = self.specs[j].blocks()[b].inputs.len();
                        let n_out = self.specs[j].blocks()[b].outputs.len();
                        // Split borrows: state is a separate field from the
                        // buffers and sides; specs are read-only.
                        let BatchedCore {
                            specs,
                            state,
                            in_buf,
                            out_buf,
                            sides,
                            ..
                        } = self;
                        let (cur, next) = cur_next_split(
                            state,
                            self.cur,
                            self.bank_lane_words,
                            self.state_off[b],
                            self.state_len[b],
                            lanes,
                            j,
                        );
                        specs[j].kinds()[kind as usize].eval(
                            instance as usize,
                            cur,
                            &in_buf[..n_in],
                            cycle,
                            next,
                            &mut out_buf[..n_out],
                            &mut sides[j].view(b),
                        );
                    }));
                    if let Err(p) = res {
                        self.quarantine(j, cycle, panic_payload(p.as_ref()));
                    }
                }
                if let Some(p) = self.profiler.as_mut() {
                    p.end_eval(b, false, t0);
                }
            }
            Op::EvalFull { .. } => {
                unreachable!("eval_full op in straight-line batched program");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// A bit-exact snapshot of a whole batch (every lane of every group).
#[derive(Debug, Clone)]
pub struct BatchedSnapshot {
    cores: Vec<CoreSnapshot>,
}

impl BatchedSnapshot {
    /// Serialize the snapshot for a durable checkpoint.
    pub fn encode(&self, e: &mut crate::wire::Enc) {
        e.usize(self.cores.len());
        for c in &self.cores {
            c.encode(e);
        }
    }

    /// Rebuild a snapshot encoded by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// [`crate::wire::WireError`] when the payload is truncated or
    /// internally inconsistent.
    pub fn decode(d: &mut crate::wire::Dec<'_>) -> Result<Self, crate::wire::WireError> {
        let n = d.usize()?;
        let mut cores = Vec::new();
        for _ in 0..n {
            cores.push(CoreSnapshot::decode(d)?);
        }
        Ok(BatchedSnapshot { cores })
    }
}

/// The lane-batched engine: N structurally identical simulations
/// advanced in lockstep over one shared [`BatchedProgram`].
///
/// Lanes are split into contiguous groups, one [`BatchedCore`] each;
/// groups are fully independent (no inter-lane wiring exists), so a
/// multi-group [`run`](Self::run) spawns one scoped thread per group
/// with no per-cycle barrier — host synchronisation happens only between
/// `run` calls, mirroring the runner's period granularity.
pub struct BatchedEngine {
    groups: Vec<BatchedCore>,
    /// Lane id -> (group, lane-within-group).
    lane_of: Vec<(usize, usize)>,
    prog: Arc<BatchedProgram>,
    threads: usize,
}

impl BatchedEngine {
    /// Build a batched engine over `specs` (one per lane, all
    /// structurally identical), compiled with `opts`, sharded over at
    /// most `threads` lane groups.
    ///
    /// Fails with [`SimError::Config`] when the lanes diverge
    /// structurally ([`codes::BATCH_DIVERGENT_TOPOLOGY`]) or the spec
    /// needs fixed-point mode, and propagates lane 0's
    /// [`check`](SystemSpec::check) diagnostics.
    pub fn new(
        specs: Vec<SystemSpec>,
        opts: &CompileOptions,
        threads: usize,
    ) -> Result<BatchedEngine, SimError> {
        check_lane_structure(&specs)?;
        if let Err(diags) = specs[0].check() {
            return Err(SimError::Config(format!(
                "invalid lane spec: {}",
                diags
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            )));
        }
        let scalar = CompiledProgram::compile(&specs[0], opts);
        let prog = Arc::new(BatchedProgram::lower(&specs[0], scalar)?);
        let lanes = specs.len();
        let n_groups = threads.max(1).min(lanes);
        // Contiguous chunks, sizes differing by at most one.
        let base_sz = lanes / n_groups;
        let extra = lanes % n_groups;
        let mut lane_of = Vec::with_capacity(lanes);
        let mut groups = Vec::with_capacity(n_groups);
        let mut specs = specs.into_iter();
        for g in 0..n_groups {
            let sz = base_sz + usize::from(g < extra);
            let chunk: Vec<SystemSpec> = specs.by_ref().take(sz).collect();
            for local in 0..sz {
                lane_of.push((g, local));
            }
            groups.push(BatchedCore::new(chunk, Arc::clone(&prog)));
        }
        Ok(BatchedEngine {
            groups,
            lane_of,
            prog,
            threads: n_groups,
        })
    }

    /// Number of lanes in the batch.
    pub fn lanes(&self) -> usize {
        self.lane_of.len()
    }

    /// Number of lane groups (= worker threads used by multi-group
    /// runs).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The lowered program shared by every group.
    pub fn program(&self) -> &BatchedProgram {
        &self.prog
    }

    /// The spec of `lane` (its fault plan and contents are baked into
    /// the kinds).
    pub fn spec(&self, lane: usize) -> &SystemSpec {
        let (g, j) = self.lane_of[lane];
        &self.groups[g].specs[j]
    }

    /// Current system cycle (lanes advance in lockstep).
    pub fn cycle(&self) -> u64 {
        self.groups[0].cycle
    }

    /// Is `lane` still advancing?
    pub fn lane_active(&self, lane: usize) -> bool {
        let (g, j) = self.lane_of[lane];
        self.groups[g].active[j]
    }

    /// Retire `lane`: its state freezes bit-exactly and every future
    /// write to it is masked out.
    pub fn halt_lane(&mut self, lane: usize) {
        let (g, j) = self.lane_of[lane];
        self.groups[g].halt_lane(j);
    }

    /// The quarantine record of `lane`: the system cycle it was poisoned
    /// at and the panic payload, or `None` while the lane is healthy.
    pub fn lane_poisoned(&self, lane: usize) -> Option<(u64, &str)> {
        let (g, j) = self.lane_of[lane];
        self.groups[g].poisoned[j]
            .as_ref()
            .map(|(c, p)| (*c, p.as_str()))
    }

    /// Quarantine `lane` from the host side (e.g. an invariant violation
    /// detected by the runner): the lane is masked out like a panicking
    /// lane, with `payload` as its quarantine record.
    pub fn quarantine_lane(&mut self, lane: usize, cycle: u64, payload: String) {
        let (g, j) = self.lane_of[lane];
        self.groups[g].quarantine(j, cycle, payload);
    }

    /// Chaos knob (testing): deliberately panic `lane`'s next per-lane
    /// evaluation at system cycle `cycle`, exercising the quarantine
    /// path end to end.
    pub fn poison_lane_at(&mut self, lane: usize, cycle: u64) {
        let (g, j) = self.lane_of[lane];
        self.groups[g].chaos_panic[j] = Some(cycle);
    }

    /// Value of link `l` in `lane`.
    pub fn link_value(&self, lane: usize, l: usize) -> u64 {
        let (g, j) = self.lane_of[lane];
        self.groups[g].link_value(j, l)
    }

    /// Drive an [`External`](LinkDriver::External) link in one lane.
    ///
    /// # Panics
    /// If the link is not external.
    pub fn set_external(&mut self, lane: usize, l: usize, v: u64) {
        let (g, j) = self.lane_of[lane];
        self.groups[g].set_external(j, l, v);
    }

    /// Packed current-state words of block `b` in `lane`.
    pub fn peek_state(&self, lane: usize, b: usize) -> Vec<u64> {
        let (g, j) = self.lane_of[lane];
        self.groups[g].peek_state(j, b)
    }

    /// Side-ring memory of `lane`.
    pub fn side(&self, lane: usize) -> &SideMem {
        let (g, j) = self.lane_of[lane];
        &self.groups[g].sides[j]
    }

    /// Mutable side-ring memory of `lane`.
    pub fn side_mut(&mut self, lane: usize) -> &mut SideMem {
        let (g, j) = self.lane_of[lane];
        &mut self.groups[g].sides[j]
    }

    /// Delta statistics of `lane` (bit-identical to a scalar compiled
    /// run of the same spec).
    pub fn stats(&self, lane: usize) -> &DeltaStats {
        let (g, j) = self.lane_of[lane];
        &self.groups[g].stats[j]
    }

    /// Reset every lane's delta statistics.
    pub fn reset_stats(&mut self) {
        for g in &mut self.groups {
            for s in &mut g.stats {
                *s = DeltaStats::default();
            }
        }
    }

    /// Attach a profiler to group 0. Op self-time aggregates that
    /// group's lanes (lane-aggregated attribution); eval counts per
    /// cycle match the scalar engine's.
    pub fn attach_profiler(&mut self, p: KernelProfiler) {
        self.groups[0].profiler = Some(Box::new(p));
    }

    /// Detach and return the group-0 profiler.
    pub fn take_profiler(&mut self) -> Option<Box<KernelProfiler>> {
        self.groups[0].profiler.take()
    }

    /// Capture a bit-exact snapshot of the whole batch.
    pub fn snapshot(&self) -> BatchedSnapshot {
        BatchedSnapshot {
            cores: self.groups.iter().map(BatchedCore::snapshot).collect(),
        }
    }

    /// Restore a snapshot taken on an engine built from the same specs.
    pub fn restore(&mut self, snap: &BatchedSnapshot) {
        assert_eq!(
            snap.cores.len(),
            self.groups.len(),
            "snapshot group count mismatch"
        );
        for (g, s) in self.groups.iter_mut().zip(&snap.cores) {
            g.restore(s);
        }
    }

    /// Advance every active lane by `n` system cycles. With more than
    /// one group, each group runs on its own scoped thread for the whole
    /// `n`-cycle span (lanes are independent, so there is no per-cycle
    /// barrier to pay).
    pub fn run(&mut self, n: u64) {
        if self.groups.len() == 1 {
            self.groups[0].run(n);
            return;
        }
        std::thread::scope(|scope| {
            for g in &mut self.groups {
                scope.spawn(move || g.run(n));
            }
        });
    }
}

impl std::fmt::Debug for BatchedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchedEngine")
            .field("lanes", &self.lanes())
            .field("groups", &self.groups.len())
            .field("cycle", &self.cycle())
            .field("bitwise_ops", &self.prog.bitwise_ops())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockKind, CombInputs};
    use crate::compile::CompiledEngine;
    use crate::demo::RegisteredDemoKind;
    use crate::side::SideView;

    /// 16-bit accumulator with a specialized exec: port 0 registered,
    /// port 1 the comb sum (exercises `Op::Comb` / `Op::Update` lanes).
    struct AccKind;

    impl BlockKind for AccKind {
        fn name(&self) -> &str {
            "acc"
        }
        fn state_bits(&self) -> usize {
            16
        }
        fn input_widths(&self) -> Vec<usize> {
            vec![16]
        }
        fn output_widths(&self) -> Vec<usize> {
            vec![16, 16]
        }
        fn reset(&self, state: &mut [u64]) {
            state[0] = 1;
        }
        fn eval(
            &self,
            _instance: usize,
            cur: &[u64],
            inputs: &[u64],
            _cycle: u64,
            next: &mut [u64],
            outputs: &mut [u64],
            _side: &mut SideView<'_>,
        ) {
            let s = cur[0];
            outputs[0] = s;
            outputs[1] = (s + inputs[0]) & 0xFFFF;
            next[0] = (s + inputs[0]) & 0xFFFF;
        }
        fn comb_inputs(&self, port: usize) -> CombInputs {
            if port == 0 {
                CombInputs::None
            } else {
                CombInputs::All
            }
        }
        fn compile(&self) -> Option<Box<dyn CompiledExec>> {
            Some(Box::new(AccExec { s: Vec::new() }))
        }
    }

    struct AccExec {
        s: Vec<u64>,
    }

    impl AccExec {
        fn slot(&mut self, instance: usize) -> &mut u64 {
            if self.s.len() <= instance {
                self.s.resize(instance + 1, 0);
            }
            &mut self.s[instance]
        }
    }

    impl CompiledExec for AccExec {
        fn load(&mut self, instance: usize, packed: &[u64]) {
            *self.slot(instance) = packed[0];
        }
        fn store(&self, instance: usize, packed: &mut [u64]) {
            packed[0] = self.s[instance];
        }
        fn comb(
            &mut self,
            instance: usize,
            pass: usize,
            inputs: &[u64],
            _cycle: u64,
            outputs: &mut [u64],
            _side: &mut SideView<'_>,
        ) {
            let s = self.s[instance];
            if pass == 0 {
                outputs[0] = s;
            } else {
                outputs[1] = (s + inputs[0]) & 0xFFFF;
            }
        }
        fn update(
            &mut self,
            instance: usize,
            inputs: &[u64],
            _cycle: u64,
            _side: &mut SideView<'_>,
        ) {
            let slot = self.slot(instance);
            *slot = (*slot + inputs[0]) & 0xFFFF;
        }
    }

    /// ext -> F' -> acc -> sinks: externals give lanes divergent
    /// contents; the acc covers the specialized exec path, F' the
    /// packed-fallback path.
    fn mixed_spec() -> (SystemSpec, usize, usize) {
        let mut spec = SystemSpec::new();
        let kf = spec.add_kind(Box::new(RegisteredDemoKind::new(0)));
        let ka = spec.add_kind(Box::new(AccKind));
        let f = spec.add_block(kf);
        let a = spec.add_block(ka);
        let ext = spec.external((f, 0), 0);
        // F' output is 16 bits wide, matching the acc input.
        spec.wire((f, 0), (a, 0));
        spec.sink((a, 0));
        let out = spec.sink((a, 1));
        (spec, ext, out)
    }

    fn mixed_lanes(n: usize) -> Vec<SystemSpec> {
        (0..n).map(|_| mixed_spec().0).collect()
    }

    /// Per-lane external value: lane-distinct, cycle-varying.
    fn ext_value(lane: usize, cycle: u64) -> u64 {
        ((lane as u64 + 1) * 7 + cycle * 3) & 0xFFFF
    }

    /// Reference scalar run of `mixed_spec` for one lane.
    fn scalar_reference(lane: usize, cycles: u64) -> CompiledEngine {
        let (spec, ext, _) = mixed_spec();
        let mut eng = CompiledEngine::new(spec);
        for c in 0..cycles {
            eng.set_external(ext, ext_value(lane, c));
            eng.step();
        }
        eng
    }

    fn assert_lane_matches(be: &BatchedEngine, lane: usize, scalar: &CompiledEngine) {
        for b in 0..be.spec(lane).blocks().len() {
            assert_eq!(
                be.peek_state(lane, b),
                scalar.peek_state(b),
                "lane {lane} block {b} state"
            );
        }
        for l in 0..be.spec(lane).links().len() {
            assert_eq!(
                be.link_value(lane, l),
                scalar.link_value(l),
                "lane {lane} link {l}"
            );
        }
        assert_eq!(be.stats(lane), scalar.stats(), "lane {lane} stats");
    }

    #[test]
    fn lanes_are_bit_identical_to_scalar_runs() {
        let lanes = 5usize;
        let (_, ext, _) = mixed_spec();
        let mut be = BatchedEngine::new(mixed_lanes(lanes), &CompileOptions::default(), 1)
            .expect("structurally identical lanes");
        let cycles = 9u64;
        for c in 0..cycles {
            for j in 0..lanes {
                be.set_external(j, ext, ext_value(j, c));
            }
            be.run(1);
        }
        for j in 0..lanes {
            let scalar = scalar_reference(j, cycles);
            assert_lane_matches(&be, j, &scalar);
        }
    }

    #[test]
    fn multi_group_matches_single_group() {
        let lanes = 5usize;
        let (_, ext, _) = mixed_spec();
        let mut one =
            BatchedEngine::new(mixed_lanes(lanes), &CompileOptions::default(), 1).expect("build");
        let mut two =
            BatchedEngine::new(mixed_lanes(lanes), &CompileOptions::default(), 2).expect("build");
        assert_eq!(two.threads(), 2);
        for c in 0..7u64 {
            for j in 0..lanes {
                one.set_external(j, ext, ext_value(j, c));
                two.set_external(j, ext, ext_value(j, c));
            }
            one.run(1);
            two.run(1);
        }
        for j in 0..lanes {
            for b in 0..one.spec(j).blocks().len() {
                assert_eq!(one.peek_state(j, b), two.peek_state(j, b));
            }
        }
    }

    #[test]
    fn halted_lane_freezes_bit_exactly_while_others_advance() {
        let lanes = 3usize;
        let (_, ext, _) = mixed_spec();
        let mut be =
            BatchedEngine::new(mixed_lanes(lanes), &CompileOptions::default(), 1).expect("build");
        for c in 0..4u64 {
            for j in 0..lanes {
                be.set_external(j, ext, ext_value(j, c));
            }
            be.run(1);
        }
        be.halt_lane(1);
        let frozen_state: Vec<Vec<u64>> = (0..be.spec(1).blocks().len())
            .map(|b| be.peek_state(1, b))
            .collect();
        let frozen_links: Vec<u64> = (0..be.spec(1).links().len())
            .map(|l| be.link_value(1, l))
            .collect();
        for c in 4..10u64 {
            for j in [0usize, 2] {
                be.set_external(j, ext, ext_value(j, c));
            }
            be.run(1);
        }
        assert!(!be.lane_active(1));
        assert_eq!(be.stats(1).system_cycles, 4, "stats freeze at halt");
        for b in 0..be.spec(1).blocks().len() {
            assert_eq!(be.peek_state(1, b), frozen_state[b], "halted block {b}");
        }
        for l in 0..be.spec(1).links().len() {
            assert_eq!(be.link_value(1, l), frozen_links[l], "halted link {l}");
        }
        // The surviving lanes still match their scalar references.
        for j in [0usize, 2] {
            let scalar = scalar_reference(j, 10);
            assert_lane_matches(&be, j, &scalar);
        }
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let lanes = 4usize;
        let (_, ext, _) = mixed_spec();
        let mut be =
            BatchedEngine::new(mixed_lanes(lanes), &CompileOptions::default(), 2).expect("build");
        let drive = |be: &mut BatchedEngine, from: u64, to: u64| {
            for c in from..to {
                for j in 0..lanes {
                    be.set_external(j, ext, ext_value(j, c));
                }
                be.run(1);
            }
        };
        drive(&mut be, 0, 5);
        let snap = be.snapshot();
        drive(&mut be, 5, 12);
        let tail: Vec<Vec<Vec<u64>>> = (0..lanes)
            .map(|j| {
                (0..be.spec(j).blocks().len())
                    .map(|b| be.peek_state(j, b))
                    .collect()
            })
            .collect();
        be.restore(&snap);
        assert_eq!(be.cycle(), 5);
        drive(&mut be, 5, 12);
        for j in 0..lanes {
            for b in 0..be.spec(j).blocks().len() {
                assert_eq!(be.peek_state(j, b), tail[j][b], "lane {j} block {b}");
            }
        }
    }

    // ---- bitwise packing ----

    /// Width-1 inverter, lanewise-bitwise by construction.
    struct NotGate;

    impl BlockKind for NotGate {
        fn name(&self) -> &str {
            "not1"
        }
        fn state_bits(&self) -> usize {
            0
        }
        fn input_widths(&self) -> Vec<usize> {
            vec![1]
        }
        fn output_widths(&self) -> Vec<usize> {
            vec![1]
        }
        fn reset(&self, _state: &mut [u64]) {}
        fn eval(
            &self,
            _instance: usize,
            _cur: &[u64],
            inputs: &[u64],
            _cycle: u64,
            _next: &mut [u64],
            outputs: &mut [u64],
            _side: &mut SideView<'_>,
        ) {
            outputs[0] = !inputs[0];
        }
        fn bit_parallel(&self) -> bool {
            true
        }
    }

    /// Width-1 AND, lanewise-bitwise by construction.
    struct AndGate;

    impl BlockKind for AndGate {
        fn name(&self) -> &str {
            "and1"
        }
        fn state_bits(&self) -> usize {
            0
        }
        fn input_widths(&self) -> Vec<usize> {
            vec![1, 1]
        }
        fn output_widths(&self) -> Vec<usize> {
            vec![1]
        }
        fn reset(&self, _state: &mut [u64]) {}
        fn eval(
            &self,
            _instance: usize,
            _cur: &[u64],
            inputs: &[u64],
            _cycle: u64,
            _next: &mut [u64],
            outputs: &mut [u64],
            _side: &mut SideView<'_>,
        ) {
            outputs[0] = inputs[0] & inputs[1];
        }
        fn bit_parallel(&self) -> bool {
            true
        }
    }

    /// ext0 -> NOT -> AND <- ext1, AND -> sink. Fully bitwise.
    fn gate_spec() -> (SystemSpec, usize, usize, usize) {
        let mut spec = SystemSpec::new();
        let kn = spec.add_kind(Box::new(NotGate));
        let ka = spec.add_kind(Box::new(AndGate));
        let n = spec.add_block(kn);
        let a = spec.add_block(ka);
        let e0 = spec.external((n, 0), 0);
        spec.wire((n, 0), (a, 0));
        let e1 = spec.external((a, 1), 0);
        let out = spec.sink((a, 0));
        (spec, e0, e1, out)
    }

    #[test]
    fn width1_blocks_pack_and_evaluate_64_lanes_per_word() {
        // 70 lanes: exercises the tail mask of the second packed word.
        let lanes = 70usize;
        let specs: Vec<SystemSpec> = (0..lanes).map(|_| gate_spec().0).collect();
        let (_, e0, e1, out) = gate_spec();
        let mut be = BatchedEngine::new(specs, &CompileOptions::default(), 1).expect("build");
        assert!(be.program().bitwise_ops() > 0, "gates must pack");
        assert!(be.program().packed_links() >= 4, "gate links must pack");
        for c in 0..3u64 {
            for j in 0..lanes {
                be.set_external(j, e0, (j as u64 >> (c % 2)) & 1);
                be.set_external(j, e1, (j as u64 / 3) & 1);
            }
            be.run(1);
            for j in 0..lanes {
                let expect = (!((j as u64 >> (c % 2)) & 1) & 1) & ((j as u64 / 3) & 1);
                assert_eq!(be.link_value(j, out), expect, "lane {j} cycle {c}");
            }
        }
    }

    #[test]
    fn bitwise_matches_scalar_engine_bit_for_bit() {
        let lanes = 67usize;
        let specs: Vec<SystemSpec> = (0..lanes).map(|_| gate_spec().0).collect();
        let mut be = BatchedEngine::new(specs, &CompileOptions::default(), 1).expect("build");
        let (_, e0, e1, out) = gate_spec();
        for j in 0..lanes {
            be.set_external(j, e0, (j as u64) & 1);
            be.set_external(j, e1, (j as u64 >> 1) & 1);
        }
        be.run(2);
        for j in 0..lanes {
            let (spec, s0, s1, sout) = gate_spec();
            let mut scalar = CompiledEngine::new(spec);
            scalar.set_external(s0, (j as u64) & 1);
            scalar.set_external(s1, (j as u64 >> 1) & 1);
            scalar.run(2);
            assert_eq!(be.link_value(j, out), scalar.link_value(sout), "lane {j}");
        }
    }

    #[test]
    fn bitwise_respects_halted_lane_mask() {
        let lanes = 66usize;
        let specs: Vec<SystemSpec> = (0..lanes).map(|_| gate_spec().0).collect();
        let (_, e0, e1, out) = gate_spec();
        let mut be = BatchedEngine::new(specs, &CompileOptions::default(), 1).expect("build");
        for j in 0..lanes {
            be.set_external(j, e0, 0);
            be.set_external(j, e1, 1);
        }
        be.run(1);
        // NOT(0) & 1 == 1 everywhere.
        assert_eq!(be.link_value(65, out), 1);
        be.halt_lane(65);
        for j in 0..lanes {
            be.set_external(j, e0, 1); // would flip the output to 0
        }
        be.run(1);
        assert_eq!(be.link_value(65, out), 1, "halted lane bits frozen");
        assert_eq!(be.link_value(64, out), 0, "active lane advanced");
    }

    /// 1-bit register (not bit-parallel): forces demotion of adjacent
    /// gates back to per-lane evaluation.
    struct BitReg;

    impl BlockKind for BitReg {
        fn name(&self) -> &str {
            "bitreg"
        }
        fn state_bits(&self) -> usize {
            1
        }
        fn input_widths(&self) -> Vec<usize> {
            vec![1]
        }
        fn output_widths(&self) -> Vec<usize> {
            vec![1]
        }
        fn reset(&self, state: &mut [u64]) {
            state[0] = 0;
        }
        fn eval(
            &self,
            _instance: usize,
            cur: &[u64],
            inputs: &[u64],
            _cycle: u64,
            next: &mut [u64],
            outputs: &mut [u64],
            _side: &mut SideView<'_>,
        ) {
            outputs[0] = cur[0];
            next[0] = inputs[0] & 1;
        }
        fn comb_inputs(&self, _port: usize) -> CombInputs {
            CombInputs::None
        }
    }

    #[test]
    fn gate_feeding_stateful_block_is_demoted_to_per_lane() {
        // ext -> NOT -> reg -> sink: the NOT's output link cannot pack
        // (consumer holds state), so the NOT falls back to per-lane.
        let build = || {
            let mut spec = SystemSpec::new();
            let kn = spec.add_kind(Box::new(NotGate));
            let kr = spec.add_kind(Box::new(BitReg));
            let n = spec.add_block(kn);
            let r = spec.add_block(kr);
            let ext = spec.external((n, 0), 0);
            spec.wire((n, 0), (r, 0));
            let out = spec.sink((r, 0));
            (spec, ext, out)
        };
        let lanes = 3usize;
        let specs: Vec<SystemSpec> = (0..lanes).map(|_| build().0).collect();
        let mut be = BatchedEngine::new(specs, &CompileOptions::default(), 1).expect("build");
        assert_eq!(be.program().bitwise_ops(), 0, "demotion must cascade");
        let (_, ext, out) = build();
        for j in 0..lanes {
            be.set_external(j, ext, (j as u64) & 1);
        }
        be.run(2);
        for j in 0..lanes {
            assert_eq!(be.link_value(j, out), !(j as u64) & 1, "lane {j}");
        }
    }

    // ---- bitflow slicing / packed expressions ----

    /// 4-bit register: out = state, next = in. Per-lane (no
    /// `bit_parallel`), so its sliced links exercise the per-lane
    /// sub-word gather/scatter path.
    struct Reg4;

    impl BlockKind for Reg4 {
        fn name(&self) -> &str {
            "reg4"
        }
        fn state_bits(&self) -> usize {
            4
        }
        fn input_widths(&self) -> Vec<usize> {
            vec![4]
        }
        fn output_widths(&self) -> Vec<usize> {
            vec![4]
        }
        fn reset(&self, state: &mut [u64]) {
            state[0] = 0b1010;
        }
        fn eval(
            &self,
            _instance: usize,
            cur: &[u64],
            inputs: &[u64],
            _cycle: u64,
            next: &mut [u64],
            outputs: &mut [u64],
            _side: &mut SideView<'_>,
        ) {
            outputs[0] = cur[0];
            next[0] = inputs[0] & 0xF;
        }
        fn comb_inputs(&self, _port: usize) -> CombInputs {
            CombInputs::None
        }
    }

    /// Stateless 4-bit mixer with exact declared bit semantics:
    /// out[i] = in[i] ^ in[i+1] for i < 3, out[3] = !in[3]. With its
    /// links sliced it lowers to a packed-expression op.
    struct Rot4;

    impl BlockKind for Rot4 {
        fn name(&self) -> &str {
            "rot4"
        }
        fn state_bits(&self) -> usize {
            0
        }
        fn input_widths(&self) -> Vec<usize> {
            vec![4]
        }
        fn output_widths(&self) -> Vec<usize> {
            vec![4]
        }
        fn reset(&self, _state: &mut [u64]) {}
        fn eval(
            &self,
            _instance: usize,
            _cur: &[u64],
            inputs: &[u64],
            _cycle: u64,
            _next: &mut [u64],
            outputs: &mut [u64],
            _side: &mut SideView<'_>,
        ) {
            let x = inputs[0];
            let mut o = 0u64;
            for i in 0..3 {
                o |= (((x >> i) ^ (x >> (i + 1))) & 1) << i;
            }
            o |= ((!(x >> 3)) & 1) << 3;
            outputs[0] = o;
        }
        fn bit_semantics(&self, port: usize) -> Option<crate::block::BitSemantics> {
            if port != 0 {
                return None;
            }
            let inb = |bit: usize| Box::new(BitExpr::In { port: 0, bit });
            let mut bits: Vec<BitExpr> = (0..3).map(|i| BitExpr::Xor(inb(i), inb(i + 1))).collect();
            bits.push(BitExpr::Not(inb(3)));
            Some(crate::block::BitSemantics { bits })
        }
    }

    /// ext -> reg4 -> rot4 -> reg4 -> sink, with both 4-bit interior
    /// links sliced into per-bit sub-words.
    fn sliced_spec() -> (SystemSpec, usize, CompileOptions) {
        let mut spec = SystemSpec::new();
        let kr = spec.add_kind(Box::new(Reg4));
        let kx = spec.add_kind(Box::new(Rot4));
        let r_in = spec.add_block(kr);
        let rot = spec.add_block(kx);
        let r_out = spec.add_block(kr);
        let ext = spec.external((r_in, 0), 0);
        let l1 = spec.wire((r_in, 0), (rot, 0));
        let l2 = spec.wire((rot, 0), (r_out, 0));
        spec.sink((r_out, 0));
        let opts = CompileOptions {
            slice: crate::compile::SlicePlan {
                links: vec![l1, l2],
            },
            ..Default::default()
        };
        (spec, ext, opts)
    }

    /// Lane-distinct, cycle-varying 4-bit external value.
    fn ext4(lane: usize, cycle: u64) -> u64 {
        (lane as u64 * 5 + cycle * 3 + 1) & 0xF
    }

    /// Plain (unsliced) scalar reference run of `sliced_spec`.
    fn sliced_scalar_reference(lane: usize, cycles: u64) -> CompiledEngine {
        let (spec, ext, _) = sliced_spec();
        let mut eng = CompiledEngine::new(spec);
        for c in 0..cycles {
            eng.set_external(ext, ext4(lane, c));
            eng.step();
        }
        eng
    }

    #[test]
    fn sliced_links_pack_and_expr_blocks_go_bitwise() {
        // 67 lanes: exercises the tail mask of the second packed word.
        let lanes = 67usize;
        let (_, ext, opts) = sliced_spec();
        let specs: Vec<SystemSpec> = (0..lanes).map(|_| sliced_spec().0).collect();
        let mut be = BatchedEngine::new(specs, &opts, 2).expect("build");
        assert!(
            be.program().bitwise_ops() > 0,
            "rot4 must lower to a packed-expression op"
        );
        assert!(
            be.program().packed_links() >= 8,
            "both sliced links' sub-words must pack"
        );
        let cycles = 9u64;
        for c in 0..cycles {
            for j in 0..lanes {
                be.set_external(j, ext, ext4(j, c));
            }
            be.run(1);
        }
        // Sliced + batched must be bit-identical to a plain scalar run.
        for j in 0..lanes {
            let scalar = sliced_scalar_reference(j, cycles);
            assert_lane_matches(&be, j, &scalar);
        }
    }

    #[test]
    fn sliced_snapshot_and_halt_stay_bit_exact() {
        let lanes = 66usize;
        let (_, ext, opts) = sliced_spec();
        let specs: Vec<SystemSpec> = (0..lanes).map(|_| sliced_spec().0).collect();
        let mut be = BatchedEngine::new(specs, &opts, 1).expect("build");
        let drive = |be: &mut BatchedEngine, from: u64, to: u64, skip: Option<usize>| {
            for c in from..to {
                for j in 0..lanes {
                    if Some(j) != skip {
                        be.set_external(j, ext, ext4(j, c));
                    }
                }
                be.run(1);
            }
        };
        drive(&mut be, 0, 4, None);
        let snap = be.snapshot();
        // Halt lane 65 (tail of the second packed word) and keep going.
        be.halt_lane(65);
        let frozen: Vec<u64> = (0..be.spec(65).links().len())
            .map(|l| be.link_value(65, l))
            .collect();
        drive(&mut be, 4, 9, Some(65));
        for (l, &v) in frozen.iter().enumerate() {
            assert_eq!(be.link_value(65, l), v, "halted lane link {l}");
        }
        for j in 0..3 {
            let scalar = sliced_scalar_reference(j, 9);
            assert_lane_matches(&be, j, &scalar);
        }
        // Restore rewinds every lane (packed sub-words included).
        let tail: Vec<Vec<u64>> = (0..lanes)
            .map(|j| {
                (0..be.spec(j).links().len())
                    .map(|l| be.link_value(j, l))
                    .collect()
            })
            .collect();
        be.restore(&snap);
        assert_eq!(be.cycle(), 4);
        be.halt_lane(65);
        drive(&mut be, 4, 9, Some(65));
        for j in 0..lanes {
            for (l, &v) in tail[j].iter().enumerate() {
                assert_eq!(be.link_value(j, l), v, "lane {j} link {l} after restore");
            }
        }
    }

    #[test]
    fn divergent_bit_semantics_are_rejected() {
        /// Same shape as `Rot4` but different declared semantics.
        struct Rot4Other;
        impl BlockKind for Rot4Other {
            fn name(&self) -> &str {
                "rot4"
            }
            fn state_bits(&self) -> usize {
                0
            }
            fn input_widths(&self) -> Vec<usize> {
                vec![4]
            }
            fn output_widths(&self) -> Vec<usize> {
                vec![4]
            }
            fn reset(&self, _state: &mut [u64]) {}
            fn eval(
                &self,
                _instance: usize,
                _cur: &[u64],
                inputs: &[u64],
                _cycle: u64,
                _next: &mut [u64],
                outputs: &mut [u64],
                _side: &mut SideView<'_>,
            ) {
                outputs[0] = inputs[0];
            }
            fn bit_semantics(&self, port: usize) -> Option<crate::block::BitSemantics> {
                if port != 0 {
                    return None;
                }
                Some(crate::block::BitSemantics {
                    bits: (0..4).map(|bit| BitExpr::In { port: 0, bit }).collect(),
                })
            }
        }
        let build = |other: bool| {
            let mut spec = SystemSpec::new();
            let kr = spec.add_kind(Box::new(Reg4));
            let kx: usize = if other {
                spec.add_kind(Box::new(Rot4Other))
            } else {
                spec.add_kind(Box::new(Rot4))
            };
            let r_in = spec.add_block(kr);
            let rot = spec.add_block(kx);
            spec.external((r_in, 0), 0);
            spec.wire((r_in, 0), (rot, 0));
            spec.sink((rot, 0));
            spec
        };
        let err = BatchedEngine::new(
            vec![build(false), build(true)],
            &CompileOptions::default(),
            1,
        )
        .expect_err("divergent semantics");
        assert!(err.to_string().contains(codes::BATCH_DIVERGENT_TOPOLOGY));
    }

    // ---- structural lint and mode rejection ----

    #[test]
    fn divergent_lane_topology_is_rejected_with_the_lint_code() {
        let (a, _, _) = mixed_spec();
        let (b, _, _, _) = gate_spec();
        let err = BatchedEngine::new(vec![a, b], &CompileOptions::default(), 1)
            .expect_err("divergent lanes");
        let msg = err.to_string();
        assert!(
            msg.contains(codes::BATCH_DIVERGENT_TOPOLOGY),
            "error must carry the lint code: {msg}"
        );
    }

    #[test]
    fn empty_batch_is_rejected() {
        assert!(BatchedEngine::new(Vec::new(), &CompileOptions::default(), 1).is_err());
    }

    #[test]
    fn cyclic_spec_is_rejected() {
        // A comb self-loop compiles to fixed-point mode, which cannot
        // batch.
        let build = || {
            let mut spec = SystemSpec::new();
            let kn = spec.add_kind(Box::new(NotGate));
            let n = spec.add_block(kn);
            spec.wire((n, 0), (n, 0));
            spec
        };
        let err = BatchedEngine::new(vec![build(), build()], &CompileOptions::default(), 1)
            .expect_err("cyclic");
        assert!(err.to_string().contains("straight-line"));
    }

    #[test]
    fn profiler_counts_match_scalar_attribution() {
        let lanes = 3usize;
        let mut be =
            BatchedEngine::new(mixed_lanes(lanes), &CompileOptions::default(), 1).expect("build");
        let n_blocks = be.spec(0).blocks().len();
        be.attach_profiler(KernelProfiler::new(n_blocks, 1));
        be.run(10);
        let report = be
            .take_profiler()
            .expect("attached")
            .report("seqsim-batched", 0.0, 0);
        assert_eq!(report.cycles, 10);
        for e in &report.entries {
            assert_eq!(e.evals, 10, "one update per block per cycle");
        }
    }
}
