//! Bitflow soundness property suite.
//!
//! The pass's contract is *soundness by construction*: every claim it
//! derives from truthful [`BlockKind::bit_semantics`] declarations must
//! hold on concrete engine runs. This suite generates random acyclic
//! specs out of blocks whose `eval` is **defined as** the concrete
//! evaluation of their declared bit expressions (so the declarations
//! are truthful by construction, the same trust boundary as `eval`
//! itself), drives them with random stimuli, and checks:
//!
//! * every bit claimed `Const0`/`Const1` holds that value in every
//!   converged cycle;
//! * every bit claimed `Copy(l, b)` equals bit `b` of link `l` in
//!   every converged cycle;
//! * flipping only *dead* bits of the external stimuli never changes
//!   any live bit anywhere in the system (paired-run check).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use seqsim::{BitExpr, BitSemantics, BlockKind, CombInputs, CompiledEngine, SideView, SystemSpec};
use speccheck::{bitflow_graph, BitValue, SpecGraph};

// ---------------------------------------------------------------------
// Deterministic PRNG (the suite must not depend on ambient entropy).
// ---------------------------------------------------------------------

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
    fn chance(&mut self, pct: u64) -> bool {
        self.next() % 100 < pct
    }
}

// ---------------------------------------------------------------------
// Truthful-by-construction block kinds.
// ---------------------------------------------------------------------

/// A stateless block whose `eval` *is* the concrete evaluation of its
/// declared bit expressions, with an `input_bits_used` mask derived
/// from the expressions' actual dependency sets.
struct ExprKind {
    name: String,
    in_widths: Vec<usize>,
    bits: Vec<BitExpr>,
    /// Whether to declare the (exact) liveness masks or stay silent.
    declare_used: bool,
}

impl ExprKind {
    fn used_mask(&self, port: usize) -> Vec<bool> {
        let mut m = vec![false; self.in_widths[port]];
        for e in &self.bits {
            for (p, b) in e.deps() {
                if p == port && b < m.len() {
                    m[b] = true;
                }
            }
        }
        m
    }
}

impl BlockKind for ExprKind {
    fn name(&self) -> &str {
        &self.name
    }
    fn state_bits(&self) -> usize {
        0
    }
    fn input_widths(&self) -> Vec<usize> {
        self.in_widths.clone()
    }
    fn output_widths(&self) -> Vec<usize> {
        vec![self.bits.len()]
    }
    fn comb_inputs(&self, _port: usize) -> CombInputs {
        CombInputs::All
    }
    fn reset(&self, _state: &mut [u64]) {}
    fn eval(
        &self,
        _instance: usize,
        _cur: &[u64],
        inputs: &[u64],
        _cycle: u64,
        _next: &mut [u64],
        outputs: &mut [u64],
        _side: &mut SideView<'_>,
    ) {
        outputs[0] = self.bits.iter().enumerate().fold(0u64, |acc, (i, e)| {
            acc | ((e.eval_concrete(inputs) as u64) << i)
        });
    }
    fn bit_semantics(&self, _port: usize) -> Option<BitSemantics> {
        Some(BitSemantics {
            bits: self.bits.clone(),
        })
    }
    fn input_bits_used(&self, port: usize) -> Option<Vec<bool>> {
        self.declare_used.then(|| self.used_mask(port))
    }
}

/// A free-running counter with *undeclared* semantics: an opaque
/// entropy source the pass must treat as `Unknown` (and whose output
/// link becomes the root of downstream `Copy` chains).
struct CounterKind {
    width: usize,
}

impl BlockKind for CounterKind {
    fn name(&self) -> &str {
        "counter"
    }
    fn state_bits(&self) -> usize {
        self.width
    }
    fn input_widths(&self) -> Vec<usize> {
        vec![]
    }
    fn output_widths(&self) -> Vec<usize> {
        vec![self.width]
    }
    fn comb_inputs(&self, _port: usize) -> CombInputs {
        CombInputs::None
    }
    fn reset(&self, state: &mut [u64]) {
        state[0] = 0;
    }
    fn eval(
        &self,
        _instance: usize,
        cur: &[u64],
        _inputs: &[u64],
        _cycle: u64,
        next: &mut [u64],
        outputs: &mut [u64],
        _side: &mut SideView<'_>,
    ) {
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        next[0] = cur[0].wrapping_add(3) & mask;
        outputs[0] = cur[0] & mask;
    }
}

// ---------------------------------------------------------------------
// Random spec generation.
// ---------------------------------------------------------------------

fn rand_expr(rng: &mut Lcg, in_widths: &[usize], depth: usize) -> BitExpr {
    if depth == 0 || rng.chance(35) {
        if rng.chance(25) || in_widths.is_empty() {
            BitExpr::Const(rng.chance(50))
        } else {
            let port = rng.below(in_widths.len());
            BitExpr::In {
                port,
                bit: rng.below(in_widths[port]),
            }
        }
    } else {
        let a = Box::new(rand_expr(rng, in_widths, depth - 1));
        match rng.below(4) {
            0 => BitExpr::Not(a),
            1 => BitExpr::And(a, Box::new(rand_expr(rng, in_widths, depth - 1))),
            2 => BitExpr::Or(a, Box::new(rand_expr(rng, in_widths, depth - 1))),
            _ => BitExpr::Xor(a, Box::new(rand_expr(rng, in_widths, depth - 1))),
        }
    }
}

/// What feeds one input port of a generated block.
#[derive(Clone, Copy)]
enum Source {
    /// Output `port` of earlier block `block` (width recorded).
    Open {
        block: usize,
        port: usize,
        width: usize,
    },
    External {
        width: usize,
    },
    Const {
        width: usize,
        value: u64,
    },
}

/// Deterministically generate a random layered spec. Returns the spec
/// and its external link ids — the build is a pure function of `seed`,
/// so calling it twice yields bit-identical systems.
fn build_spec(seed: u64) -> (SystemSpec, Vec<usize>) {
    let mut rng = Lcg(seed);
    let mut spec = SystemSpec::new();
    let n_blocks = 3 + rng.below(5);

    // An opaque entropy source first.
    let ctr_w = 1 + rng.below(6);
    let ctr = {
        let k = spec.add_kind(Box::new(CounterKind { width: ctr_w }));
        spec.add_block(k)
    };
    let mut open: Vec<(usize, usize, usize)> = vec![(ctr, 0, ctr_w)];

    // Plan each block's input sources, then materialize.
    let mut externals = Vec::new();
    for bi in 0..n_blocks {
        let n_in = 1 + rng.below(2);
        let mut sources: Vec<Source> = Vec::new();
        for _ in 0..n_in {
            if !open.is_empty() && rng.chance(55) {
                let i = rng.below(open.len());
                let (block, port, width) = open.swap_remove(i);
                sources.push(Source::Open { block, port, width });
            } else if rng.chance(60) {
                sources.push(Source::External {
                    width: 1 + rng.below(6),
                });
            } else {
                let width = 1 + rng.below(6);
                sources.push(Source::Const {
                    width,
                    value: rng.next() & ((1u64 << width) - 1),
                });
            }
        }
        let in_widths: Vec<usize> = sources
            .iter()
            .map(|s| match s {
                Source::Open { width, .. }
                | Source::External { width }
                | Source::Const { width, .. } => *width,
            })
            .collect();
        let out_w = 1 + rng.below(6);
        let bits: Vec<BitExpr> = (0..out_w)
            .map(|_| rand_expr(&mut rng, &in_widths, 3))
            .collect();
        let kind = ExprKind {
            name: format!("expr-{bi}"),
            in_widths,
            bits,
            declare_used: rng.chance(70),
        };
        let k = spec.add_kind(Box::new(kind));
        let b = spec.add_block(k);
        for (p, s) in sources.iter().enumerate() {
            match *s {
                Source::Open { block, port, .. } => {
                    spec.wire((block, port), (b, p));
                }
                Source::External { .. } => externals.push(spec.external((b, p), 0)),
                Source::Const { value, .. } => {
                    spec.tie_off((b, p), value);
                }
            }
        }
        open.push((b, 0, out_w));
    }
    for (b, p, _) in open {
        spec.sink((b, p));
    }
    (spec, externals)
}

// ---------------------------------------------------------------------
// The properties.
// ---------------------------------------------------------------------

#[test]
fn const_and_copy_claims_hold_on_concrete_runs() {
    let (mut checked_const, mut checked_copy) = (0usize, 0usize);
    for seed in 0..40u64 {
        let (spec, externals) = build_spec(seed * 0x9e37 + 1);
        let g = SpecGraph::from_spec(&spec);
        let bf = bitflow_graph(&g);
        let mut eng = CompiledEngine::new(spec);
        let mut rng = Lcg(seed ^ 0xabcdef);
        for _cycle in 0..8 {
            for &e in &externals {
                let w = g.links[e].width;
                eng.set_external(e, rng.next() & ((1u64 << w) - 1));
            }
            eng.step();
            for (l, bits) in bf.values.iter().enumerate() {
                let v = eng.link_value(l);
                for (i, claim) in bits.iter().enumerate() {
                    let concrete = (v >> i) & 1;
                    match *claim {
                        BitValue::Const0 => {
                            checked_const += 1;
                            assert_eq!(concrete, 0, "seed {seed}: link {l} bit {i}");
                        }
                        BitValue::Const1 => {
                            checked_const += 1;
                            assert_eq!(concrete, 1, "seed {seed}: link {l} bit {i}");
                        }
                        BitValue::Copy { link, bit } => {
                            checked_copy += 1;
                            assert_eq!(
                                concrete,
                                (eng.link_value(link) >> bit) & 1,
                                "seed {seed}: link {l} bit {i} claimed copy of \
                                 link {link} bit {bit}"
                            );
                        }
                        BitValue::Bot | BitValue::Unknown => {}
                    }
                }
            }
        }
    }
    // The suite must actually exercise the claims it verifies.
    assert!(
        checked_const > 100,
        "only {checked_const} const claims checked"
    );
    assert!(
        checked_copy > 100,
        "only {checked_copy} copy claims checked"
    );
}

#[test]
fn flipping_dead_stimulus_bits_changes_no_live_bit() {
    let mut flipped_total = 0usize;
    for seed in 0..40u64 {
        let (spec_a, externals) = build_spec(seed * 0x51f1 + 7);
        let (spec_b, _) = build_spec(seed * 0x51f1 + 7);
        let g = SpecGraph::from_spec(&spec_a);
        let bf = bitflow_graph(&g);

        // Dead-bit masks of the external links (bits no consumer reads).
        let flip_mask: Vec<u64> = (0..g.links.len())
            .map(|l| {
                if !externals.contains(&l) {
                    return 0;
                }
                bf.live[l]
                    .iter()
                    .enumerate()
                    .filter(|&(_, &lv)| !lv)
                    .fold(0u64, |m, (i, _)| m | (1 << i))
            })
            .collect();
        if flip_mask.iter().all(|&m| m == 0) {
            continue;
        }

        let mut a = CompiledEngine::new(spec_a);
        let mut b = CompiledEngine::new(spec_b);
        let mut rng = Lcg(seed ^ 0x1234);
        for _cycle in 0..8 {
            for &e in &externals {
                let w = g.links[e].width;
                let v = rng.next() & ((1u64 << w) - 1);
                a.set_external(e, v);
                b.set_external(e, v ^ flip_mask[e]);
            }
            a.step();
            b.step();
            for (l, &mask) in flip_mask.iter().enumerate() {
                let (va, vb) = (a.link_value(l), b.link_value(l));
                // The flipped external bits themselves differ by
                // construction (exactly `flip_mask`); everything else
                // must be identical.
                assert_eq!(
                    va ^ vb,
                    mask,
                    "seed {seed}: link {l} diverged outside its dead bits"
                );
                flipped_total += (va ^ vb).count_ones() as usize;
            }
        }
    }
    assert!(flipped_total > 0, "no dead stimulus bit was ever exercised");
}
