//! Table-driven malformed-spec suite: every diagnostic the analyzer can
//! emit is seeded here at least once, and the expected machine-readable
//! code is asserted. Graph-level defects that the `SystemSpec` builder
//! makes unconstructible (multiple writers, dangling link ids) are built
//! directly in the analyzer's [`SpecGraph`] IR; everything a real
//! `SystemSpec` *can* express is also exercised end to end through
//! [`analyze_spec`].

#![allow(clippy::unwrap_used, clippy::expect_used)]

use seqsim::{BitExpr, BitSemantics, BlockKind, CombInputs, SideView, SystemSpec};
use speccheck::{
    analyze_graph, analyze_spec, codes, AnalyzeOptions, GraphBlock, GraphLink, LinkClass, Severity,
    SpecGraph,
};

/// Shorthand for a graph block.
fn block(
    name: &str,
    inputs: &[Option<usize>],
    outputs: &[Option<usize>],
    comb: CombInputs,
) -> GraphBlock {
    GraphBlock {
        name: name.to_string(),
        inputs: inputs.to_vec(),
        outputs: outputs.to_vec(),
        comb: vec![comb; outputs.len()],
        host_visible: false,
        bit_sem: vec![None; outputs.len()],
        in_used: vec![None; inputs.len()],
    }
}

/// A graph block with declared bit semantics and liveness masks.
fn block_sem(
    name: &str,
    inputs: &[Option<usize>],
    outputs: &[Option<usize>],
    sem: Vec<Option<BitSemantics>>,
    in_used: Vec<Option<Vec<bool>>>,
) -> GraphBlock {
    GraphBlock {
        name: name.to_string(),
        inputs: inputs.to_vec(),
        outputs: outputs.to_vec(),
        comb: vec![CombInputs::All; outputs.len()],
        host_visible: false,
        bit_sem: sem,
        in_used,
    }
}

/// Shorthand for `n` ordinary 8-bit wires.
fn wires(n: usize) -> Vec<GraphLink> {
    (0..n)
        .map(|_| GraphLink {
            width: 8,
            class: LinkClass::Wire,
        })
        .collect()
}

struct Case {
    name: &'static str,
    graph: SpecGraph,
    /// Codes that must appear (set containment, not equality — some
    /// fixtures trip secondary findings too).
    expect_codes: &'static [&'static str],
    expect_severity: Severity,
    /// Whether a hybrid schedule may still be derived (no errors).
    expect_schedule: bool,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "two blocks drive one link",
            graph: SpecGraph {
                blocks: vec![
                    block("a", &[Some(1)], &[Some(0)], CombInputs::None),
                    block("b", &[Some(0)], &[Some(0)], CombInputs::None),
                    block("sink", &[Some(0)], &[Some(1)], CombInputs::None),
                ],
                links: wires(2),
            },
            expect_codes: &[codes::MULTIPLE_WRITER],
            expect_severity: Severity::Error,
            expect_schedule: false,
        },
        Case {
            name: "unconnected input port",
            graph: SpecGraph {
                blocks: vec![block("a", &[None], &[Some(0)], CombInputs::None)],
                links: wires(1),
            },
            expect_codes: &[codes::UNCONNECTED_INPUT],
            expect_severity: Severity::Error,
            expect_schedule: false,
        },
        Case {
            name: "unconnected output port",
            graph: SpecGraph {
                blocks: vec![
                    block("a", &[Some(0)], &[None], CombInputs::None),
                    block("b", &[Some(0)], &[Some(0)], CombInputs::None),
                ],
                links: wires(1),
            },
            expect_codes: &[codes::UNCONNECTED_OUTPUT],
            expect_severity: Severity::Error,
            expect_schedule: false,
        },
        Case {
            name: "input references a link id past the table",
            graph: SpecGraph {
                blocks: vec![block("a", &[Some(99)], &[Some(0)], CombInputs::None)],
                links: wires(1),
            },
            expect_codes: &[codes::UNCONNECTED_INPUT],
            expect_severity: Severity::Error,
            expect_schedule: false,
        },
        Case {
            name: "link wider than the 64-bit word",
            graph: SpecGraph {
                blocks: vec![block("a", &[Some(0)], &[Some(0)], CombInputs::None)],
                links: vec![GraphLink {
                    width: 65,
                    class: LinkClass::Wire,
                }],
            },
            expect_codes: &[codes::WIDTH_OVERFLOW],
            expect_severity: Severity::Error,
            expect_schedule: false,
        },
        Case {
            name: "zero-width link",
            graph: SpecGraph {
                blocks: vec![block("a", &[Some(0)], &[Some(0)], CombInputs::None)],
                links: vec![GraphLink {
                    width: 0,
                    class: LinkClass::Wire,
                }],
            },
            expect_codes: &[codes::WIDTH_OVERFLOW],
            expect_severity: Severity::Error,
            expect_schedule: false,
        },
        Case {
            name: "combinational self-loop on one block",
            graph: SpecGraph {
                blocks: vec![block("a", &[Some(0)], &[Some(0)], CombInputs::All)],
                links: wires(1),
            },
            expect_codes: &[codes::COMB_SELF_LOOP],
            expect_severity: Severity::Error,
            expect_schedule: false,
        },
        Case {
            name: "wire consumed but never written",
            graph: SpecGraph {
                blocks: vec![block("a", &[Some(0)], &[Some(1)], CombInputs::None)],
                links: wires(2),
            },
            expect_codes: &[codes::NEVER_WRITTEN],
            expect_severity: Severity::Warning,
            expect_schedule: true,
        },
        Case {
            name: "external register nobody reads",
            graph: SpecGraph {
                blocks: vec![
                    block("a", &[Some(0)], &[Some(1)], CombInputs::None),
                    block("b", &[Some(1)], &[Some(0)], CombInputs::None),
                ],
                links: vec![
                    GraphLink {
                        width: 8,
                        class: LinkClass::Wire,
                    },
                    GraphLink {
                        width: 8,
                        class: LinkClass::Wire,
                    },
                    GraphLink {
                        width: 8,
                        class: LinkClass::External,
                    },
                ],
            },
            expect_codes: &[codes::NEVER_READ],
            expect_severity: Severity::Warning,
            expect_schedule: true,
        },
        Case {
            name: "island unreachable from any external source",
            graph: SpecGraph {
                blocks: vec![
                    // Reachable: consumes the external register.
                    block("fed", &[Some(0)], &[Some(1)], CombInputs::None),
                    block("fed-sink", &[Some(1)], &[Some(2)], CombInputs::None),
                    // Closed pair no external value can influence.
                    block("island-a", &[Some(3)], &[Some(4)], CombInputs::None),
                    block("island-b", &[Some(4)], &[Some(3)], CombInputs::None),
                ],
                links: vec![
                    GraphLink {
                        width: 8,
                        class: LinkClass::External,
                    },
                    GraphLink {
                        width: 8,
                        class: LinkClass::Wire,
                    },
                    GraphLink {
                        width: 8,
                        class: LinkClass::Wire,
                    },
                    GraphLink {
                        width: 8,
                        class: LinkClass::Wire,
                    },
                    GraphLink {
                        width: 8,
                        class: LinkClass::Wire,
                    },
                ],
            },
            expect_codes: &[codes::UNREACHABLE_BLOCK],
            expect_severity: Severity::Warning,
            expect_schedule: true,
        },
        Case {
            name: "wire bit provably stuck at 1",
            graph: SpecGraph {
                blocks: vec![
                    block_sem(
                        "w",
                        &[Some(0)],
                        &[Some(1)],
                        vec![Some(BitSemantics {
                            bits: vec![BitExpr::Const(true), BitExpr::In { port: 0, bit: 0 }],
                        })],
                        vec![None],
                    ),
                    block_sem("r", &[Some(1)], &[], vec![], vec![None]),
                ],
                links: vec![
                    GraphLink {
                        width: 2,
                        class: LinkClass::External,
                    },
                    GraphLink {
                        width: 2,
                        class: LinkClass::Wire,
                    },
                ],
            },
            expect_codes: &[codes::CONST_BIT],
            expect_severity: Severity::Info,
            expect_schedule: true,
        },
        Case {
            name: "wire bit masked off by its only reader",
            graph: SpecGraph {
                blocks: vec![
                    block_sem(
                        "w",
                        &[Some(0)],
                        &[Some(1)],
                        vec![Some(BitSemantics {
                            bits: vec![
                                BitExpr::In { port: 0, bit: 0 },
                                BitExpr::In { port: 0, bit: 1 },
                            ],
                        })],
                        vec![None],
                    ),
                    block_sem("r", &[Some(1)], &[], vec![], vec![Some(vec![true, false])]),
                ],
                links: vec![
                    GraphLink {
                        width: 2,
                        class: LinkClass::External,
                    },
                    GraphLink {
                        width: 2,
                        class: LinkClass::Wire,
                    },
                ],
            },
            expect_codes: &[codes::DEAD_BIT],
            expect_severity: Severity::Info,
            expect_schedule: true,
        },
        Case {
            name: "wire with a constant top bit narrows",
            graph: SpecGraph {
                blocks: vec![
                    block_sem(
                        "w",
                        &[Some(0)],
                        &[Some(1)],
                        vec![Some(BitSemantics {
                            bits: vec![BitExpr::In { port: 0, bit: 0 }, BitExpr::Const(false)],
                        })],
                        vec![None],
                    ),
                    block_sem("r", &[Some(1)], &[], vec![], vec![None]),
                ],
                links: vec![
                    GraphLink {
                        width: 2,
                        class: LinkClass::External,
                    },
                    GraphLink {
                        width: 2,
                        class: LinkClass::Wire,
                    },
                ],
            },
            expect_codes: &[codes::NARROWABLE_LINK, codes::CONST_BIT],
            expect_severity: Severity::Info,
            expect_schedule: true,
        },
        Case {
            name: "combinational ring has no static bound",
            graph: SpecGraph {
                blocks: vec![
                    block("r0", &[Some(2)], &[Some(0)], CombInputs::All),
                    block("r1", &[Some(0)], &[Some(1)], CombInputs::All),
                    block("r2", &[Some(1)], &[Some(2)], CombInputs::All),
                ],
                links: wires(3),
            },
            expect_codes: &[codes::CONVERGENCE_BUDGET],
            expect_severity: Severity::Warning,
            expect_schedule: true,
        },
    ]
}

#[test]
fn every_seeded_defect_reports_its_code() {
    for case in cases() {
        let a = analyze_graph(&case.graph, &AnalyzeOptions::default());
        for code in case.expect_codes {
            assert!(
                a.diagnostics.iter().any(|d| d.code == *code),
                "case `{}`: expected code {code}, got {:#?}",
                case.name,
                a.diagnostics
            );
        }
        assert_eq!(
            a.max_severity(),
            Some(case.expect_severity),
            "case `{}`: wrong max severity: {:#?}",
            case.name,
            a.diagnostics
        );
        assert_eq!(
            a.schedule.is_some(),
            case.expect_schedule,
            "case `{}`: schedule derivation disagrees with error status",
            case.name
        );
    }
}

#[test]
fn diagnostics_carry_the_expected_severity_class() {
    // Errors refuse a schedule; warnings and infos never do.
    for case in cases() {
        let a = analyze_graph(&case.graph, &AnalyzeOptions::default());
        assert_eq!(
            a.has_errors(),
            !case.expect_schedule,
            "case `{}`",
            case.name
        );
    }
}

// ---------------------------------------------------------------------
// End-to-end: defects expressible in a real `SystemSpec` travel through
// `SpecGraph::from_spec` and keep their codes.
// ---------------------------------------------------------------------

/// A configurable one-in/one-out test kind.
struct TestKind {
    out_width: usize,
    comb: CombInputs,
}

impl BlockKind for TestKind {
    fn name(&self) -> &str {
        "test-kind"
    }
    fn state_bits(&self) -> usize {
        8
    }
    fn input_widths(&self) -> Vec<usize> {
        vec![self.out_width]
    }
    fn output_widths(&self) -> Vec<usize> {
        vec![self.out_width]
    }
    fn comb_inputs(&self, _port: usize) -> CombInputs {
        self.comb.clone()
    }
    fn reset(&self, _state: &mut [u64]) {}
    fn eval(
        &self,
        _instance: usize,
        cur: &[u64],
        inputs: &[u64],
        _cycle: u64,
        next: &mut [u64],
        outputs: &mut [u64],
        _side: &mut SideView<'_>,
    ) {
        next[0] = cur[0];
        outputs[0] = inputs[0];
    }
}

#[test]
fn spec_with_unconnected_input_is_an_error_end_to_end() {
    let mut spec = SystemSpec::new();
    let k = spec.add_kind(Box::new(TestKind {
        out_width: 8,
        comb: CombInputs::None,
    }));
    let a = spec.add_block(k);
    spec.sink((a, 0));
    // The builder-level check and the analyzer agree on the code.
    let ds = spec.check().unwrap_err();
    assert!(ds.iter().any(|d| d.code == codes::UNCONNECTED_INPUT));
    let an = analyze_spec(&spec);
    assert!(an.has_errors());
    assert!(an
        .diagnostics
        .iter()
        .any(|d| d.code == codes::UNCONNECTED_INPUT));
    assert!(an.schedule.is_none());
}

#[test]
fn spec_with_65_bit_port_is_a_width_overflow() {
    let mut spec = SystemSpec::new();
    let k = spec.add_kind(Box::new(TestKind {
        out_width: 65,
        comb: CombInputs::None,
    }));
    let a = spec.add_block(k);
    spec.external((a, 0), 0);
    spec.sink((a, 0));
    let ds = spec.check().unwrap_err();
    assert!(ds.iter().any(|d| d.code == codes::WIDTH_OVERFLOW));
    let an = analyze_spec(&spec);
    assert!(an
        .diagnostics
        .iter()
        .any(|d| d.code == codes::WIDTH_OVERFLOW));
    assert!(an.schedule.is_none());
}

#[test]
fn spec_wired_to_itself_combinationally_is_a_self_loop() {
    let mut spec = SystemSpec::new();
    let k = spec.add_kind(Box::new(TestKind {
        out_width: 8,
        comb: CombInputs::All,
    }));
    let a = spec.add_block(k);
    spec.wire((a, 0), (a, 0));
    spec.check().expect("structurally complete");
    let an = analyze_spec(&spec);
    assert!(an
        .diagnostics
        .iter()
        .any(|d| d.code == codes::COMB_SELF_LOOP));
    assert!(an.has_errors());
    assert!(an.schedule.is_none());
}

#[test]
fn registered_self_loop_is_legal() {
    // The same wiring with a registered output is an ordinary
    // accumulator — no diagnostic, schedule derived.
    let mut spec = SystemSpec::new();
    let k = spec.add_kind(Box::new(TestKind {
        out_width: 8,
        comb: CombInputs::None,
    }));
    let a = spec.add_block(k);
    spec.wire((a, 0), (a, 0));
    let an = analyze_spec(&spec);
    assert!(
        an.diagnostics
            .iter()
            .all(|d| d.code != codes::COMB_SELF_LOOP),
        "{:#?}",
        an.diagnostics
    );
    assert!(!an.has_errors());
    assert!(an.schedule.is_some());
}
