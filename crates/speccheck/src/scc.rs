//! Iterative Tarjan strongly-connected components.
//!
//! The schedule derivation condenses the *full* block graph (every
//! producer→consumer edge, registered or combinational): a topological
//! order over the condensation is exactly the order in which every
//! block's register-only inputs are already settled when it is reached,
//! which is what licenses the §4.1 single evaluation for singleton
//! components. Tarjan emits components in reverse topological order of
//! the condensation, so the schedule is the reversed emission order.

/// Compute the strongly-connected components of a directed graph given
/// as an adjacency list. Returns the components in **reverse
/// topological order** of the condensation (Tarjan's emission order: a
/// component is finished only after everything it reaches). Each
/// component's node list is sorted ascending.
pub fn strongly_connected_components(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comps: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS frame: (node, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if index[w] == UNVISITED {
                    frames.push((w, 0));
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().unwrap_or_else(|| unreachable!("scc stack"));
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    comps.push(comp);
                }
            }
        }
    }
    comps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_singletons_in_reverse_topo_order() {
        // 0 → 1 → 2
        let adj = vec![vec![1], vec![2], vec![]];
        let comps = strongly_connected_components(&adj);
        assert_eq!(comps, vec![vec![2], vec![1], vec![0]]);
    }

    #[test]
    fn ring_is_one_component() {
        let adj = vec![vec![1], vec![2], vec![0]];
        let comps = strongly_connected_components(&adj);
        assert_eq!(comps, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn mixed_graph_condenses() {
        // {0,1} ⇄ cycle, feeding 2 → 3; 4 isolated.
        let adj = vec![vec![1], vec![0, 2], vec![3], vec![], vec![]];
        let comps = strongly_connected_components(&adj);
        // Reverse topo: 3 before 2 before {0,1}; 4 anywhere independent.
        let pos = |needle: &[usize]| {
            comps
                .iter()
                .position(|c| c == needle)
                .unwrap_or_else(|| panic!("missing {needle:?} in {comps:?}"))
        };
        assert!(pos(&[3]) < pos(&[2]));
        assert!(pos(&[2]) < pos(&[0, 1]));
        assert_eq!(comps.len(), 4);
    }

    #[test]
    fn self_loop_is_still_a_singleton() {
        let adj = vec![vec![0]];
        let comps = strongly_connected_components(&adj);
        assert_eq!(comps, vec![vec![0]]);
    }

    #[test]
    fn deep_chain_does_not_overflow_the_stack() {
        // 50k-node chain: a recursive Tarjan would blow the stack.
        let n = 50_000;
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|i| if i + 1 < n { vec![i + 1] } else { vec![] })
            .collect();
        let comps = strongly_connected_components(&adj);
        assert_eq!(comps.len(), n);
        assert_eq!(comps[0], vec![n - 1]);
    }
}
