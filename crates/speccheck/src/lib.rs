//! # speccheck — static analysis of block/link spec graphs
//!
//! The paper's two scheduling regimes are *structural properties* of the
//! simulated system's graph: blocks separated by **registered**
//! boundaries may be evaluated exactly once per system cycle in any
//! topological order (§4.1), while **combinatorial** boundaries force
//! the HBR round-robin fixed point (§4.2). This crate proves, before the
//! first delta cycle, which regime each part of a system may legally
//! use, and catches the whole class of wiring bugs that otherwise only
//! surface as runtime `Diverged`/`InvariantViolated` errors:
//!
//! * [`graph::SpecGraph`] — a neutral block/link IR, extracted from a
//!   [`seqsim::SystemSpec`] (or built directly, e.g. from the `rtl`
//!   crate's event-driven netlist) with each producer→consumer edge
//!   classified *registered* or *combinational* via
//!   [`seqsim::BlockKind::comb_inputs`].
//! * [`scc`] — an iterative Tarjan SCC pass; the condensation of the
//!   full block graph is what the schedule is derived from.
//! * [`analyze`] — the lint pass ([`Diagnostic`]s: multiple writers,
//!   never-read/never-written links, width overflow, combinational
//!   self-loops, unreachable blocks, shard cuts crossing combinational
//!   edges, convergence-budget overruns) and the derived
//!   [`seqsim::HybridSchedule`]: a topological order over the
//!   condensation in which singleton SCCs are evaluated exactly once
//!   and only multi-block SCCs fall back to the HBR worklist.
//!
//! The analyzer is purely static — it never evaluates a block — and the
//! derived schedule is *safe by construction*: it executes on the
//! engine's ordinary HBR machinery, so even an unsound `comb_inputs`
//! declaration can cost re-evaluations, never correctness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod analyze;
pub mod bitflow;
pub mod graph;
pub mod scc;

pub use analyze::{
    analyze_graph, analyze_spec, check_batch, check_cut, normalize_diagnostics, Analysis,
    AnalyzeOptions, SccInfo,
};
pub use bitflow::{bitflow_graph, BitValue, Bitflow, Narrowable};
pub use graph::{GraphBlock, GraphLink, LinkClass, SpecGraph};
pub use noc_types::diag::{codes, Diagnostic, Severity, Site};
pub use scc::strongly_connected_components;
