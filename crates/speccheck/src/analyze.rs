//! The lint pass and the hybrid-schedule derivation.
//!
//! Diagnostics map to the paper's scheduling theory as follows. §4.1
//! licenses a *static* schedule (one evaluation per block per cycle)
//! exactly when every input a block consumes is already settled when it
//! is reached — true for singleton SCCs of the full producer→consumer
//! graph visited in condensation-topological order, because registered
//! outputs are final after their producer's first evaluation and
//! singleton blocks are reached after all their producers. §4.2's HBR
//! fixed point is only needed *inside* multi-block SCCs, where feedback
//! makes a one-pass order impossible; the analyzer bounds the worst-case
//! re-evaluation work per SCC from the combinational port graph's depth
//! and checks the sum against the engine's divergence watchdog.

use crate::graph::{LinkClass, SpecGraph};
use crate::scc::strongly_connected_components;
use noc_types::diag::{codes, Diagnostic, Severity, Site};
use seqsim::{HybridRun, HybridSchedule, SystemSpec};
use std::collections::VecDeque;

/// Analyzer tunables.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// The engine's divergence-watchdog budget as a multiple of the
    /// block count (see `DynamicEngine::set_delta_budget`; default 64).
    pub cap_factor: usize,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions { cap_factor: 64 }
    }
}

/// One SCC of the full block graph, as the schedule sees it.
#[derive(Debug, Clone)]
pub struct SccInfo {
    /// Member block ids (ascending).
    pub blocks: Vec<usize>,
    /// Whether the run falls back to the HBR fixed point (§4.2).
    pub fixed_point: bool,
    /// Longest combinational chain (link levels) inside the SCC;
    /// `None` when the combinational port graph is cyclic (no static
    /// bound exists).
    pub comb_depth: Option<usize>,
    /// Worst-case delta cycles this SCC can spend per system cycle
    /// under the hybrid schedule (`u64::MAX` when unbounded).
    pub bound: u64,
}

/// The result of one analyzer run.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Block count of the analyzed graph.
    pub n_blocks: usize,
    /// Link count of the analyzed graph.
    pub n_links: usize,
    /// Producer→consumer edges classified combinational.
    pub comb_edges: usize,
    /// Producer→consumer edges classified registered.
    pub registered_edges: usize,
    /// Every finding, sorted by `(code, site)` with exact repeats
    /// removed (see [`normalize_diagnostics`]) so reports are stable
    /// across analyzer-internal ordering changes.
    pub diagnostics: Vec<Diagnostic>,
    /// The bit-level dataflow result (values, liveness, slice plan).
    pub bitflow: crate::bitflow::Bitflow,
    /// The SCCs of the full block graph in schedule (topological)
    /// order.
    pub sccs: Vec<SccInfo>,
    /// The derived hybrid schedule; `None` when error-severity
    /// diagnostics make the graph unschedulable.
    pub schedule: Option<HybridSchedule>,
    /// Worst-case delta cycles per system cycle summed over all SCCs
    /// (`u64::MAX` when some SCC is unbounded).
    pub convergence_bound: u64,
    /// The watchdog budget the bound is checked against
    /// (`cap_factor × blocks`).
    pub watchdog_budget: u64,
}

impl Analysis {
    /// The highest severity among the diagnostics, if any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Any error-severity findings?
    pub fn has_errors(&self) -> bool {
        self.max_severity() == Some(Severity::Error)
    }

    /// The diagnostics of exactly `severity`.
    pub fn with_severity(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity == severity)
    }

    /// Block → SCC index map over the schedule-ordered
    /// [`sccs`](Self::sccs) — the attribution table a profiler needs to
    /// charge block self-time to its condensation component.
    pub fn scc_of(&self) -> Vec<usize> {
        let mut map = vec![0usize; self.n_blocks];
        for (s, scc) in self.sccs.iter().enumerate() {
            for &b in &scc.blocks {
                map[b] = s;
            }
        }
        map
    }

    /// Render the whole report as one JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push('{');
        s.push_str(&format!(
            "\"blocks\":{},\"links\":{},\"comb_edges\":{},\"registered_edges\":{},",
            self.n_blocks, self.n_links, self.comb_edges, self.registered_edges
        ));
        s.push_str(&format!(
            "\"sccs\":{},\"static_blocks\":{},\"fixed_point_blocks\":{},",
            self.sccs.len(),
            self.schedule.as_ref().map_or(0, |h| h.static_blocks()),
            self.schedule
                .as_ref()
                .map_or(0, |h| h.order.len() - h.static_blocks()),
        ));
        if self.convergence_bound == u64::MAX {
            s.push_str("\"convergence_bound\":null,");
        } else {
            s.push_str(&format!(
                "\"convergence_bound\":{},",
                self.convergence_bound
            ));
        }
        s.push_str(&format!("\"watchdog_budget\":{},", self.watchdog_budget));
        s.push_str(&format!("\"bitflow\":{},", self.bitflow.to_json()));
        s.push_str(&format!(
            "\"max_severity\":{},",
            self.max_severity()
                .map_or("null".to_string(), |sev| format!("\"{sev}\""))
        ));
        s.push_str("\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&d.to_json());
        }
        s.push_str("]}");
        s
    }
}

/// Analyze a [`SystemSpec`] (extract the graph, then
/// [`analyze_graph`] with default options).
pub fn analyze_spec(spec: &SystemSpec) -> Analysis {
    analyze_graph(&SpecGraph::from_spec(spec), &AnalyzeOptions::default())
}

/// Run every lint and derive the hybrid schedule for `g`.
pub fn analyze_graph(g: &SpecGraph, opts: &AnalyzeOptions) -> Analysis {
    let n = g.blocks.len();
    let nl = g.links.len();
    let writers = g.writers();
    let readers = g.readers();
    let mut ds: Vec<Diagnostic> = Vec::new();

    // ---- port-level structural checks -------------------------------
    for (b, blk) in g.blocks.iter().enumerate() {
        for (i, l) in blk.inputs.iter().enumerate() {
            match *l {
                None => ds.push(Diagnostic::new(
                    Severity::Error,
                    codes::UNCONNECTED_INPUT,
                    Site::InputPort { block: b, port: i },
                    format!("block {b} ({}) input {i} unconnected", blk.name),
                )),
                Some(l) if l >= nl => ds.push(Diagnostic::new(
                    Severity::Error,
                    codes::UNCONNECTED_INPUT,
                    Site::InputPort { block: b, port: i },
                    format!("block {b} input {i} references nonexistent link {l}"),
                )),
                Some(_) => {}
            }
        }
        for (o, l) in blk.outputs.iter().enumerate() {
            match *l {
                None => ds.push(Diagnostic::new(
                    Severity::Error,
                    codes::UNCONNECTED_OUTPUT,
                    Site::OutputPort { block: b, port: o },
                    format!("block {b} ({}) output {o} unconnected", blk.name),
                )),
                Some(l) if l >= nl => ds.push(Diagnostic::new(
                    Severity::Error,
                    codes::UNCONNECTED_OUTPUT,
                    Site::OutputPort { block: b, port: o },
                    format!("block {b} output {o} references nonexistent link {l}"),
                )),
                Some(_) => {}
            }
        }
    }

    // ---- link-level checks ------------------------------------------
    for (l, link) in g.links.iter().enumerate() {
        if link.width == 0 || link.width > 64 {
            ds.push(Diagnostic::new(
                Severity::Error,
                codes::WIDTH_OVERFLOW,
                Site::Link(l),
                format!(
                    "link {l} is {} bits wide; the link memory holds 1..=64",
                    link.width
                ),
            ));
        }
        let block_writers = writers[l].len();
        let non_block_writer = !matches!(link.class, LinkClass::Wire);
        if block_writers + usize::from(non_block_writer) > 1 {
            let who: Vec<String> = writers[l]
                .iter()
                .map(|&(b, p)| format!("block {b} output {p}"))
                .chain(non_block_writer.then(|| "a non-block driver".to_string()))
                .collect();
            ds.push(Diagnostic::new(
                Severity::Error,
                codes::MULTIPLE_WRITER,
                Site::Link(l),
                format!("link {l} is driven by {}", who.join(" and ")),
            ));
        }
        if matches!(link.class, LinkClass::Wire) && block_writers == 0 {
            ds.push(Diagnostic::new(
                Severity::Warning,
                codes::NEVER_WRITTEN,
                Site::Link(l),
                format!(
                    "link {l} is a wire no output port drives; it holds its reset value forever"
                ),
            ));
        }
        if readers[l].is_empty() {
            let (severity, what) = match link.class {
                // The explicit-sink idiom (mesh edge probes).
                LinkClass::Wire if block_writers > 0 => (Severity::Info, "an explicit sink/probe"),
                // Dead but harmless.
                LinkClass::Const(_) => (Severity::Info, "an unused constant tie-off"),
                _ => (Severity::Warning, "written but never consumed"),
            };
            ds.push(Diagnostic::new(
                severity,
                codes::NEVER_READ,
                Site::Link(l),
                format!("link {l} has no consumer ({what})"),
            ));
        }
    }

    // ---- combinational self-loops -----------------------------------
    for (b, blk) in g.blocks.iter().enumerate() {
        for (p, l) in blk.outputs.iter().enumerate() {
            let Some(l) = *l else { continue };
            if l >= nl {
                continue;
            }
            for &(c, i) in &readers[l] {
                if c == b && blk.comb[p].depends_on(i) {
                    ds.push(Diagnostic::new(
                        Severity::Error,
                        codes::COMB_SELF_LOOP,
                        Site::OutputPort { block: b, port: p },
                        format!(
                            "block {b} ({}) output {p} feeds back combinationally into \
                             its own input {i} through link {l}: no HBR fixed point is \
                             structurally guaranteed",
                            blk.name
                        ),
                    ));
                }
            }
        }
    }

    // ---- full block graph + reachability ----------------------------
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut comb_edges = 0usize;
    let mut registered_edges = 0usize;
    for l in 0..nl {
        let comb = g.link_is_comb(l, &writers);
        for &(wb, _) in &writers[l] {
            for &(rb, _) in &readers[l] {
                if comb {
                    comb_edges += 1;
                } else {
                    registered_edges += 1;
                }
                if wb != rb && !adj[wb].contains(&rb) {
                    adj[wb].push(rb);
                }
            }
        }
    }
    adj.iter_mut().for_each(|v| v.sort_unstable());

    let mut sources: Vec<usize> = (0..n)
        .filter(|&b| {
            g.blocks[b].host_visible
                || g.blocks[b]
                    .inputs
                    .iter()
                    .flatten()
                    .any(|&l| l < nl && matches!(g.links[l].class, LinkClass::External))
        })
        .collect();
    if !sources.is_empty() {
        let mut reached = vec![false; n];
        let mut queue: VecDeque<usize> = sources.drain(..).collect();
        queue.iter().for_each(|&b| reached[b] = true);
        while let Some(b) = queue.pop_front() {
            for &c in &adj[b] {
                if !reached[c] {
                    reached[c] = true;
                    queue.push_back(c);
                }
            }
        }
        for b in 0..n {
            if !reached[b] {
                ds.push(Diagnostic::new(
                    Severity::Warning,
                    codes::UNREACHABLE_BLOCK,
                    Site::Block(b),
                    format!(
                        "block {b} ({}) is unreachable from every external/host input",
                        g.blocks[b].name
                    ),
                ));
            }
        }
    }
    // (A closed autonomous system — no external or host inputs at all —
    // skips the reachability check: everything is "unreachable" by the
    // host and deliberately so, like the paper's Fig 2/Fig 4 demos.)

    // ---- combinational port (link-level) graph ----------------------
    // Nodes are links; `l1 → l2` when some block reads `l1` at an input
    // its output driving `l2` combinationally depends on. Longest-path
    // levels bound how far a mid-cycle change can propagate; a cycle
    // here means no static convergence bound exists.
    let mut ladj: Vec<Vec<usize>> = vec![Vec::new(); nl];
    let mut indeg = vec![0usize; nl];
    for blk in &g.blocks {
        for (p, lo) in blk.outputs.iter().enumerate() {
            let Some(lo) = *lo else { continue };
            if lo >= nl {
                continue;
            }
            for (i, li) in blk.inputs.iter().enumerate() {
                let Some(li) = *li else { continue };
                if li >= nl || !blk.comb[p].depends_on(i) {
                    continue;
                }
                if !ladj[li].contains(&lo) {
                    ladj[li].push(lo);
                    indeg[lo] += 1;
                }
            }
        }
    }
    let mut level = vec![0usize; nl];
    let mut queue: VecDeque<usize> = (0..nl).filter(|&l| indeg[l] == 0).collect();
    let mut processed = 0usize;
    while let Some(l) = queue.pop_front() {
        processed += 1;
        for &m in &ladj[l] {
            level[m] = level[m].max(level[l] + 1);
            indeg[m] -= 1;
            if indeg[m] == 0 {
                queue.push_back(m);
            }
        }
    }
    let comb_cyclic = processed < nl;
    if comb_cyclic {
        let cyclic: Vec<usize> = (0..nl).filter(|&l| indeg[l] > 0).collect();
        ds.push(Diagnostic::new(
            Severity::Warning,
            codes::CONVERGENCE_BUDGET,
            Site::System,
            format!(
                "combinational cycle through links {cyclic:?}: no static convergence \
                 bound exists; the divergence watchdog is the only backstop"
            ),
        ));
        // The same cycle also blocks schedule compilation: the compiled
        // engine levels output ports with the identical dependency
        // edges, so a link-level cycle means no straight-line program
        // exists and `seqsim-compiled` degrades to per-cycle bounded
        // fixed-point passes (correct, but the HBR elision is lost).
        ds.push(Diagnostic::new(
            Severity::Info,
            codes::COMPILE_FALLBACK,
            Site::System,
            "comb graph is cyclic: the compiled engine (seqsim-compiled) cannot \
             lower this spec to straight-line code and falls back to bounded \
             fixed-point passes"
                .to_string(),
        ));
    }

    // ---- SCC condensation + hybrid schedule -------------------------
    let comps = strongly_connected_components(&adj);
    let self_looped: Vec<bool> = (0..n).map(|b| adj[b].contains(&b)).collect();
    let mut sccs: Vec<SccInfo> = Vec::with_capacity(comps.len());
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut runs: Vec<HybridRun> = Vec::with_capacity(comps.len());
    let mut bound_total: u64 = 0;
    // Tarjan emits reverse topological order; the schedule wants
    // topological.
    for comp in comps.iter().rev() {
        let fixed_point = comp.len() > 1 || self_looped[comp[0]];
        let members = if comp.len() > 1 {
            two_color_order(g, comp, &writers, &readers)
        } else {
            comp.clone()
        };
        // Depth of combinational chains whose endpoints both live in
        // this SCC (`None` when the comb graph is cyclic).
        let comb_depth = if comb_cyclic {
            None
        } else {
            let in_comp = |b: usize| comp.binary_search(&b).is_ok();
            let mut depth = 0usize;
            for l in 0..nl {
                let internal = writers[l].iter().any(|&(b, _)| in_comp(b))
                    && readers[l].iter().any(|&(b, _)| in_comp(b));
                if internal && g.link_is_comb(l, &writers) {
                    depth = depth.max(level[l] + 1);
                }
            }
            Some(depth)
        };
        let bound = if !fixed_point {
            1
        } else {
            match comb_depth {
                // Every member evaluates once, plus in the worst case one
                // re-evaluation per member per combinational level, plus
                // one settling sweep.
                Some(d) => (comp.len() as u64).saturating_mul(d as u64 + 2),
                None => u64::MAX,
            }
        };
        bound_total = bound_total.saturating_add(bound);
        runs.push(HybridRun {
            start: order.len(),
            len: members.len(),
            fixed_point,
        });
        order.extend_from_slice(&members);
        sccs.push(SccInfo {
            blocks: comp.clone(),
            fixed_point,
            comb_depth,
            bound,
        });
    }
    let watchdog_budget = (opts.cap_factor as u64).saturating_mul(n as u64);
    if bound_total > watchdog_budget && !comb_cyclic {
        ds.push(Diagnostic::new(
            Severity::Warning,
            codes::CONVERGENCE_BUDGET,
            Site::System,
            format!(
                "worst-case convergence bound {bound_total} delta cycles exceeds the \
                 divergence watchdog budget {watchdog_budget} ({}×{n}); raise the \
                 budget or break the combinational coupling",
                opts.cap_factor
            ),
        ));
    }

    let has_errors = ds.iter().any(|d| d.severity == Severity::Error);
    let schedule = if has_errors || n == 0 {
        None
    } else {
        let h = HybridSchedule { order, runs };
        h.assert_valid(n);
        Some(h)
    };

    let bitflow = crate::bitflow::bitflow_graph(g);
    ds.extend(bitflow.diagnostics.iter().cloned());
    normalize_diagnostics(&mut ds);

    Analysis {
        n_blocks: n,
        n_links: nl,
        comb_edges,
        registered_edges,
        diagnostics: ds,
        bitflow,
        sccs,
        schedule,
        convergence_bound: bound_total,
        watchdog_budget,
    }
}

/// Canonicalize a diagnostic list for emission: sort by
/// `(code, site, severity, message)` and drop exact repeats, so the
/// report is deterministic under analyzer-internal ordering changes and
/// a defect detected by two passes surfaces once.
pub fn normalize_diagnostics(ds: &mut Vec<Diagnostic>) {
    fn site_key(s: &Site) -> (u8, usize, usize) {
        match *s {
            Site::System => (0, 0, 0),
            Site::Block(b) => (1, b, 0),
            Site::Link(l) => (2, l, 0),
            Site::InputPort { block, port } => (3, block, port),
            Site::OutputPort { block, port } => (4, block, port),
        }
    }
    ds.sort_by(|a, b| {
        (a.code, site_key(&a.site), a.severity, a.message.as_str()).cmp(&(
            b.code,
            site_key(&b.site),
            b.severity,
            b.message.as_str(),
        ))
    });
    ds.dedup();
}

/// Order a multi-block SCC's members by greedy two-coloring of their
/// *combinational* adjacency (red-black / Gauss–Seidel style): all
/// color-0 blocks first, then color-1, each ascending.
///
/// Rationale: a registered output changes value only across system
/// cycles, so within a cycle it is final after its producer's first
/// evaluation. A consumer that evaluates *after* every producer it
/// combinationally depends on reads only final values and is never
/// re-armed. On a bipartite SCC (the NoC mesh: combinational `fwd`
/// edges connect grid neighbours) the two-coloring makes the entire
/// second color class read only settled first-class outputs — halving
/// the worst-case re-evaluations versus an arbitrary order.
fn two_color_order(
    g: &SpecGraph,
    comp: &[usize],
    writers: &[Vec<(usize, usize)>],
    readers: &[Vec<(usize, usize)>],
) -> Vec<usize> {
    let in_comp: std::collections::HashMap<usize, usize> =
        comp.iter().enumerate().map(|(i, &b)| (b, i)).collect();
    // Undirected combinational adjacency within the component.
    let mut nadj: Vec<Vec<usize>> = vec![Vec::new(); comp.len()];
    for l in 0..g.links.len() {
        if !g.link_is_comb(l, writers) {
            continue;
        }
        for &(wb, _) in &writers[l] {
            for &(rb, _) in &readers[l] {
                let (Some(&wi), Some(&ri)) = (in_comp.get(&wb), in_comp.get(&rb)) else {
                    continue;
                };
                if wi != ri {
                    if !nadj[wi].contains(&ri) {
                        nadj[wi].push(ri);
                    }
                    if !nadj[ri].contains(&wi) {
                        nadj[ri].push(wi);
                    }
                }
            }
        }
    }
    nadj.iter_mut().for_each(|v| v.sort_unstable());
    // Greedy BFS coloring (deterministic: ascending roots/neighbours).
    let mut color = vec![u8::MAX; comp.len()];
    let mut queue = VecDeque::new();
    for root in 0..comp.len() {
        if color[root] != u8::MAX {
            continue;
        }
        color[root] = 0;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            for &w in &nadj[v] {
                if color[w] == u8::MAX {
                    color[w] = 1 - color[v];
                    queue.push_back(w);
                }
            }
        }
    }
    let mut out: Vec<usize> = Vec::with_capacity(comp.len());
    for want in [0u8, 1] {
        for (i, &b) in comp.iter().enumerate() {
            if color[i] == want {
                out.push(b);
            }
        }
    }
    out
}

/// Check a sharded partition: every link whose writer and reader live
/// in different shards is a boundary cut; a cut crossing a
/// *combinational* edge costs extra BSP exchange rounds every system
/// cycle (the sharded engine iterates boundary exchanges to a fixed
/// point, so this is a performance warning, not an error).
/// `shard_of[b]` is the shard index of block `b`.
pub fn check_cut(g: &SpecGraph, shard_of: &[usize]) -> Vec<Diagnostic> {
    assert_eq!(shard_of.len(), g.blocks.len(), "one shard per block");
    let writers = g.writers();
    let readers = g.readers();
    let mut ds = Vec::new();
    for l in 0..g.links.len() {
        if !g.link_is_comb(l, &writers) {
            continue;
        }
        let crossing = writers[l].iter().any(|&(wb, _)| {
            readers[l]
                .iter()
                .any(|&(rb, _)| shard_of[wb] != shard_of[rb])
        });
        if crossing {
            let (wb, _) = writers[l][0];
            let (rb, _) = readers[l][0];
            ds.push(Diagnostic::new(
                Severity::Warning,
                codes::SHARD_CUT_COMB,
                Site::Link(l),
                format!(
                    "shard cut between shard {} and shard {} crosses combinational \
                     link {l}: each system cycle needs extra boundary exchange rounds",
                    shard_of[wb], shard_of[rb]
                ),
            ));
        }
    }
    normalize_diagnostics(&mut ds);
    ds
}

/// Check the lanes of a batched run for structural identity: the
/// batched engine executes *one* compiled program over every lane, so
/// all lane graphs must share block shapes (names, port→link wiring,
/// comb declarations, host visibility) and link shapes (width, driver
/// class). Per-lane *contents* — constant values, fault plans, seeds —
/// may differ; a [`Const`](LinkClass::Const) link only has to stay
/// `Const`, not hold the same value.
///
/// Returns one [`BATCH_DIVERGENT_TOPOLOGY`](codes::BATCH_DIVERGENT_TOPOLOGY)
/// error per divergent site (first divergent lane wins per site).
pub fn check_batch(lanes: &[SpecGraph]) -> Vec<Diagnostic> {
    let mut ds = Vec::new();
    let Some(base) = lanes.first() else {
        return ds;
    };
    let diverge = |site: Site, lane: usize, what: String| {
        Diagnostic::new(
            Severity::Error,
            codes::BATCH_DIVERGENT_TOPOLOGY,
            site,
            format!("lane {lane} diverges from lane 0: {what}"),
        )
    };
    for (lane, g) in lanes.iter().enumerate().skip(1) {
        if g.blocks.len() != base.blocks.len() {
            ds.push(diverge(
                Site::System,
                lane,
                format!("{} blocks vs {}", g.blocks.len(), base.blocks.len()),
            ));
            continue;
        }
        if g.links.len() != base.links.len() {
            ds.push(diverge(
                Site::System,
                lane,
                format!("{} links vs {}", g.links.len(), base.links.len()),
            ));
            continue;
        }
        for (b, (ba, bb)) in base.blocks.iter().zip(&g.blocks).enumerate() {
            if ba.name != bb.name {
                ds.push(diverge(
                    Site::Block(b),
                    lane,
                    format!("kind `{}` vs `{}`", bb.name, ba.name),
                ));
            }
            if ba.inputs != bb.inputs || ba.outputs != bb.outputs {
                ds.push(diverge(
                    Site::Block(b),
                    lane,
                    "port wiring differs".to_string(),
                ));
            }
            if ba.comb != bb.comb {
                ds.push(diverge(
                    Site::Block(b),
                    lane,
                    "combinational declaration differs (lanes would need \
                     different schedules)"
                        .to_string(),
                ));
            }
            if ba.host_visible != bb.host_visible {
                ds.push(diverge(
                    Site::Block(b),
                    lane,
                    "host visibility differs".to_string(),
                ));
            }
            if ba.bit_sem != bb.bit_sem {
                ds.push(diverge(
                    Site::Block(b),
                    lane,
                    "bit-level semantics differ (lanes would disagree on \
                     packed expression lowering)"
                        .to_string(),
                ));
            }
            if ba.in_used != bb.in_used {
                ds.push(diverge(
                    Site::Block(b),
                    lane,
                    "input-bit liveness differs".to_string(),
                ));
            }
        }
        for (l, (la, lb)) in base.links.iter().zip(&g.links).enumerate() {
            if la.width != lb.width {
                ds.push(diverge(
                    Site::Link(l),
                    lane,
                    format!("width {} vs {}", lb.width, la.width),
                ));
            }
            let class_matches = matches!(
                (la.class, lb.class),
                (LinkClass::Wire, LinkClass::Wire)
                    | (LinkClass::Const(_), LinkClass::Const(_))
                    | (LinkClass::External, LinkClass::External)
            );
            if !class_matches {
                ds.push(diverge(
                    Site::Link(l),
                    lane,
                    format!("driver class {:?} vs {:?}", lb.class, la.class),
                ));
            }
        }
    }
    normalize_diagnostics(&mut ds);
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqsim::demo::{comb_demo, registered_demo};

    #[test]
    fn comb_demo_condenses_to_one_fixed_point_scc() {
        let (spec, _) = comb_demo();
        let a = analyze_spec(&spec);
        assert!(!a.has_errors(), "{:?}", a.diagnostics);
        // The full graph is the ring B0→B1→B2→B0: one SCC, fixed point.
        assert_eq!(a.sccs.len(), 1);
        assert!(a.sccs[0].fixed_point);
        let h = a.schedule.expect("schedule");
        assert_eq!(h.static_blocks(), 0);
        assert_eq!(h.order.len(), 3);
        // One registered edge (B0's output) and two comb edges.
        assert_eq!(a.registered_edges, 1);
        assert_eq!(a.comb_edges, 2);
        assert!(a.convergence_bound <= a.watchdog_budget);
    }

    #[test]
    fn registered_demo_is_all_comb_ring() {
        // Fig 2's blocks are stateless pass-throughs (`out = f(in)`),
        // so under *wire* semantics the ring is one combinational SCC —
        // the structural fact that makes the StaticEngine's
        // double-banked links (not a one-pass dynamic order) the right
        // §4.1 execution for it.
        let (spec, _) = registered_demo([1, 2, 3]);
        let a = analyze_spec(&spec);
        assert!(!a.has_errors());
        assert_eq!(a.sccs.len(), 1);
        assert!(a.sccs[0].fixed_point);
        // Comb ring ⇒ no static convergence bound.
        assert_eq!(a.sccs[0].comb_depth, None);
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == codes::CONVERGENCE_BUDGET));
        // The same cycle forces the compiled engine off the
        // straight-line path — surfaced as its own (Info) lint.
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == codes::COMPILE_FALLBACK && d.severity == Severity::Info));
    }

    #[test]
    fn acyclic_comb_graph_has_no_compile_fallback_lint() {
        use seqsim::demo::comb_demo;
        let (spec, _) = comb_demo();
        let a = analyze_spec(&spec);
        assert!(a
            .diagnostics
            .iter()
            .all(|d| d.code != codes::COMPILE_FALLBACK));
    }

    #[test]
    fn chain_of_registered_blocks_schedules_statically() {
        use seqsim::demo::CombDemoKind;
        use seqsim::SystemSpec;
        // B0 → B1 → B2, all with registered outputs, plus an external
        // poke into B0 so reachability has a source.
        let mut spec = SystemSpec::new();
        let k = spec.add_kind(Box::new(CombDemoKind::new(0)));
        let b0 = spec.add_block(k);
        let b1 = spec.add_block(k);
        let b2 = spec.add_block(k);
        spec.external((b0, 0), 0);
        spec.wire((b0, 0), (b1, 0));
        spec.wire((b1, 0), (b2, 0));
        spec.sink((b2, 0));
        let a = analyze_spec(&spec);
        assert!(!a.has_errors(), "{:?}", a.diagnostics);
        let h = a.schedule.expect("schedule");
        // An acyclic chain: every SCC is a singleton, evaluated once, in
        // topological order.
        assert_eq!(h.static_blocks(), 3);
        assert_eq!(h.order, vec![b0, b1, b2]);
        assert_eq!(a.convergence_bound, 3);
    }

    #[test]
    fn two_coloring_is_a_permutation_on_a_ring() {
        let (spec, _) = comb_demo();
        let a = analyze_spec(&spec);
        let h = a.schedule.expect("schedule");
        let mut sorted = h.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        let (spec, _) = comb_demo();
        let a = analyze_spec(&spec);
        let j = a.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"blocks\":3"));
        assert!(j.contains("\"diagnostics\":["));
    }

    #[test]
    fn identical_lanes_pass_the_batch_check() {
        let g0 = SpecGraph::from_spec(&comb_demo().0);
        let g1 = SpecGraph::from_spec(&comb_demo().0);
        assert!(check_batch(&[g0, g1]).is_empty());
        assert!(check_batch(&[]).is_empty());
    }

    #[test]
    fn divergent_lane_contents_are_tolerated_but_shapes_are_not() {
        let g0 = SpecGraph::from_spec(&comb_demo().0);
        // Different Const *value*: contents, fine.
        let mut g1 = SpecGraph::from_spec(&comb_demo().0);
        for l in &mut g1.links {
            if let LinkClass::Const(v) = l.class {
                l.class = LinkClass::Const(v ^ 1);
            }
        }
        assert!(check_batch(&[g0.clone(), g1]).is_empty());

        // Different link width: shape, rejected with the stable code.
        let mut g2 = SpecGraph::from_spec(&comb_demo().0);
        g2.links[0].width += 1;
        let ds = check_batch(&[g0.clone(), g2]);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, codes::BATCH_DIVERGENT_TOPOLOGY);
        assert_eq!(ds[0].severity, Severity::Error);
        assert_eq!(ds[0].site, Site::Link(0));

        // Different block count: rejected at the system site.
        let mut g3 = SpecGraph::from_spec(&comb_demo().0);
        g3.blocks.pop();
        let ds = check_batch(&[g0, g3]);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].site, Site::System);
    }
}
