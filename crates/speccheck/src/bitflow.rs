//! Bit-level forward dataflow over a [`SpecGraph`].
//!
//! Where the rest of the analyzer reasons about whole links, this pass
//! reasons about individual *bits*: each `(link, bit)` is assigned a
//! value from the lattice
//!
//! ```text
//!            Unknown
//!        /  |    |   \
//!   Const0 Const1 Copy(l,b) ...      (flat middle layer)
//!        \  |    |   /
//!             Bot
//! ```
//!
//! computed as a monotone fixpoint of the blocks' declared
//! [`seqsim::BitSemantics`] transfer functions
//! ([`seqsim::BlockKind::bit_semantics`]). A block without declared
//! semantics drives every output bit to `Unknown`; a registered output
//! port (its [`CombInputs`](seqsim::CombInputs) is registered) has any
//! input-referencing bit forced to `Unknown` too, because a registered
//! output cannot copy a *same-cycle* input by construction. Each link
//! bit only ever moves **up** the lattice (new values are joined with
//! old), so the fixpoint terminates and every final claim is one the
//! transfer functions held at every iteration:
//!
//! * `Const0`/`Const1` — the bit provably holds that value in every
//!   converged cycle ([`codes::CONST_BIT`]);
//! * `Copy(l, b)` — the bit provably equals bit `b` of link `l` (the
//!   *root* of the copy chain — a `Copy` never points at another
//!   `Copy`) in every converged cycle;
//! * `Bot` — no writer ever produces the bit (the link-level
//!   `never-written` lint covers the user-facing report).
//!
//! A backward one-step liveness pass over
//! [`seqsim::BlockKind::input_bits_used`] masks marks bits no consumer
//! reads ([`codes::DEAD_BIT`]), and the two combine into the inferred
//! live width of each link ([`codes::NARROWABLE_LINK`]).
//!
//! The pass also derives a [`SlicePlan`]: the set of links whose single
//! writer declares complete per-bit semantics with **pairwise-disjoint
//! dependency sets** (bit `i` of the output is a function of input bits
//! no other output bit reads — bit-independence), restricted to links
//! adjacent to at least one fully-modelled ("pure") block that the
//! batched engine can turn into packed bitwise expressions. Slicing is
//! unconditionally semantics-preserving in `seqsim::compile` — the plan
//! is *policy* (slice only where packing can profit), not *legality*.

use crate::graph::{LinkClass, SpecGraph};
use noc_types::diag::{codes, Diagnostic, Severity, Site};
use seqsim::{BitExpr, SlicePlan};

/// Abstract value of one link bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitValue {
    /// Lattice bottom: no writer has produced the bit (yet).
    Bot,
    /// Provably 0 in every converged cycle.
    Const0,
    /// Provably 1 in every converged cycle.
    Const1,
    /// Provably equal to bit `bit` of link `link` in every converged
    /// cycle. Always the *root* of a copy chain: the referenced bit is
    /// itself `Unknown` (or `Bot`), never another `Copy`.
    Copy {
        /// Source link.
        link: usize,
        /// Source bit (0 = LSB).
        bit: usize,
    },
    /// Lattice top: anything.
    Unknown,
}

impl BitValue {
    fn of_const(v: bool) -> Self {
        if v {
            BitValue::Const1
        } else {
            BitValue::Const0
        }
    }

    /// Least upper bound.
    fn join(self, other: Self) -> Self {
        if self == other {
            self
        } else if self == BitValue::Bot {
            other
        } else if other == BitValue::Bot {
            self
        } else {
            BitValue::Unknown
        }
    }

    /// Is this a constant claim?
    pub fn is_const(self) -> bool {
        matches!(self, BitValue::Const0 | BitValue::Const1)
    }
}

/// One narrowable link: fewer live bits than declared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Narrowable {
    /// The link.
    pub link: usize,
    /// Declared width in bits.
    pub width: usize,
    /// Inferred live width: `1 + ` the highest bit index that is
    /// neither provably constant nor dead (0 if every bit is).
    pub live_width: usize,
}

/// Result of the bit-level dataflow pass.
#[derive(Debug, Clone)]
pub struct Bitflow {
    /// Per link, per bit (LSB first): the fixpoint abstract value.
    /// Bits past 64 are never tracked (the width-overflow lint owns
    /// those links).
    pub values: Vec<Vec<BitValue>>,
    /// Per link, per bit: does some consumer read the bit? (All-false
    /// on links with no readers — the `never-read` lint owns those.)
    pub live: Vec<Vec<bool>>,
    /// The `const-bit` / `dead-bit` / `narrowable-link` findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Links with fewer live bits than declared width.
    pub narrowable: Vec<Narrowable>,
    /// Links proven bit-independent and worth slicing for the packed
    /// batched path (feed to `seqsim::CompileOptions::slice`).
    pub slice: SlicePlan,
    /// Total wire bits proven constant.
    pub const_bits: usize,
    /// Total bits no consumer reads (on links that have readers).
    pub dead_bits: usize,
}

impl Bitflow {
    /// The machine-readable summary embedded in the speclint report
    /// (and emitted standalone by `speclint --emit-bitflow`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"const_bits\":{},\"dead_bits\":{},\"narrowable\":[{}],\"sliceable_links\":[{}]}}",
            self.const_bits,
            self.dead_bits,
            self.narrowable
                .iter()
                .map(|n| format!(
                    "{{\"link\":{},\"width\":{},\"live_width\":{}}}",
                    n.link, n.width, n.live_width
                ))
                .collect::<Vec<_>>()
                .join(","),
            self.slice
                .links
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(","),
        )
    }
}

/// Tracked width of a link: the analyzer never models bits past the
/// 64-bit word (wider links are width-overflow errors anyway).
fn tracked_width(g: &SpecGraph, l: usize) -> usize {
    g.links[l].width.min(64)
}

/// Abstract transfer of one declared bit expression, evaluated in the
/// current fixpoint state. `registered` forces any input-referencing
/// expression to `Unknown` (a registered output holds *last* cycle's
/// function of state, never a same-cycle input copy).
fn abs_eval(e: &BitExpr, g: &SpecGraph, b: usize, values: &[Vec<BitValue>]) -> BitValue {
    use BitValue::*;
    match e {
        BitExpr::Const(v) => BitValue::of_const(*v),
        BitExpr::In { port, bit } => {
            let Some(Some(l)) = g.blocks[b].inputs.get(*port) else {
                return Unknown;
            };
            let l = *l;
            if l >= g.links.len() || *bit >= tracked_width(g, l) {
                return Unknown;
            }
            match values[l][*bit] {
                Bot => Bot,
                Const0 => Const0,
                Const1 => Const1,
                Copy { link, bit } => Copy { link, bit },
                // The source bit is opaque, but this output *is* that
                // bit — record the copy with its root right here.
                Unknown => Copy { link: l, bit: *bit },
            }
        }
        BitExpr::Not(a) => match abs_eval(a, g, b, values) {
            Bot => Bot,
            Const0 => Const1,
            Const1 => Const0,
            _ => Unknown,
        },
        BitExpr::And(x, y) => {
            let (x, y) = (abs_eval(x, g, b, values), abs_eval(y, g, b, values));
            if x == Const0 || y == Const0 {
                Const0
            } else if x == Bot || y == Bot {
                Bot
            } else if x == Const1 {
                y
            // `x == y` only proves equal *values* for copies of one
            // root bit — two `Unknown`s are unrelated.
            } else if y == Const1 || (x == y && matches!(x, Copy { .. })) {
                x
            } else {
                Unknown
            }
        }
        BitExpr::Or(x, y) => {
            let (x, y) = (abs_eval(x, g, b, values), abs_eval(y, g, b, values));
            if x == Const1 || y == Const1 {
                Const1
            } else if x == Bot || y == Bot {
                Bot
            } else if x == Const0 {
                y
            } else if y == Const0 || (x == y && matches!(x, Copy { .. })) {
                x
            } else {
                Unknown
            }
        }
        BitExpr::Xor(x, y) => {
            let (x, y) = (abs_eval(x, g, b, values), abs_eval(y, g, b, values));
            if x == Bot || y == Bot {
                Bot
            } else if x.is_const() && y.is_const() {
                BitValue::of_const((x == Const1) != (y == Const1))
            } else if x == Const0 {
                y
            } else if y == Const0 {
                x
            } else if x == y && matches!(x, Copy { .. }) {
                // v ^ v — two copies of the same root bit.
                Const0
            } else {
                Unknown
            }
        }
        BitExpr::Opaque { .. } => Unknown,
    }
}

/// Is the whole block a candidate for the batched engine's packed
/// expression path: every output port carries complete (`Opaque`-free)
/// per-bit semantics?
fn block_pure(g: &SpecGraph, b: usize) -> bool {
    let blk = &g.blocks[b];
    !blk.outputs.is_empty()
        && blk.outputs.len() == blk.bit_sem.len()
        && blk.bit_sem.iter().all(|s| {
            s.as_ref()
                .is_some_and(|s| s.bits.iter().all(BitExpr::is_pure))
        })
}

/// Do the per-bit dependency sets of `sem` overlap anywhere? Disjoint
/// sets prove bit-independence: slicing the output link can never
/// entangle two bits through the writer.
fn deps_pairwise_disjoint(sem: &seqsim::BitSemantics) -> bool {
    let mut seen = std::collections::HashSet::new();
    for bit in &sem.bits {
        for dep in bit.deps() {
            if !seen.insert(dep) {
                return false;
            }
        }
    }
    true
}

/// Run the bit-level dataflow pass over a graph.
///
/// Never panics on malformed graphs (dangling link ids, width
/// overflows, multiple writers): out-of-range references degrade to
/// `Unknown` and the structural lints own the report.
pub fn bitflow_graph(g: &SpecGraph) -> Bitflow {
    let n = g.links.len();
    let readers = g.readers();
    let writers = g.writers();

    // ---- forward value fixpoint ------------------------------------
    let mut values: Vec<Vec<BitValue>> = (0..n)
        .map(|l| {
            let w = tracked_width(g, l);
            match g.links[l].class {
                LinkClass::Wire => vec![BitValue::Bot; w],
                LinkClass::External => vec![BitValue::Unknown; w],
                LinkClass::Const(v) => (0..w)
                    .map(|i| BitValue::of_const((v >> i) & 1 == 1))
                    .collect(),
            }
        })
        .collect();

    let mut on_list = vec![true; g.blocks.len()];
    let mut work: std::collections::VecDeque<usize> = (0..g.blocks.len()).collect();
    while let Some(b) = work.pop_front() {
        on_list[b] = false;
        let blk = &g.blocks[b];
        for (p, l) in blk.outputs.iter().enumerate() {
            let Some(l) = *l else { continue };
            // Only wires take transfer values; Const/External links
            // have fixed abstract values (a block driving one is a
            // multiple-writer defect the structural pass reports).
            if l >= n || g.links[l].class != LinkClass::Wire {
                continue;
            }
            let sem = blk.bit_sem.get(p).and_then(|s| s.as_ref());
            let registered = blk.comb.get(p).is_some_and(|c| c.is_registered());
            for i in 0..tracked_width(g, l) {
                let new = match sem.and_then(|s| s.bits.get(i)) {
                    Some(e) if registered && !e.deps().is_empty() => BitValue::Unknown,
                    Some(e) => abs_eval(e, g, b, &values),
                    None => BitValue::Unknown,
                };
                let joined = values[l][i].join(new);
                if joined != values[l][i] {
                    values[l][i] = joined;
                    for &(rb, _) in &readers[l] {
                        if !on_list[rb] {
                            on_list[rb] = true;
                            work.push_back(rb);
                        }
                    }
                }
            }
        }
    }

    // ---- backward one-step liveness --------------------------------
    let mut live: Vec<Vec<bool>> = (0..n).map(|l| vec![false; tracked_width(g, l)]).collect();
    for (l, rs) in readers.iter().enumerate() {
        for &(b, p) in rs {
            match g.blocks[b].in_used.get(p) {
                Some(Some(mask)) => {
                    for (i, lv) in live[l].iter_mut().enumerate() {
                        // A mask shorter than the link errs live: only
                        // an explicit `false` may bury a bit.
                        *lv |= mask.get(i).copied().unwrap_or(true);
                    }
                }
                // No mask: the port may read everything.
                _ => live[l].iter_mut().for_each(|lv| *lv = true),
            }
        }
    }

    // ---- lints ------------------------------------------------------
    let mut diagnostics = Vec::new();
    let mut narrowable = Vec::new();
    let mut const_bits = 0usize;
    let mut dead_bits = 0usize;
    for l in 0..n {
        let width = tracked_width(g, l);
        if width == 0 {
            continue;
        }
        let has_readers = !readers[l].is_empty();

        if g.links[l].class == LinkClass::Wire {
            let consts: Vec<String> = (0..width)
                .filter(|&i| values[l][i].is_const())
                .map(|i| {
                    format!(
                        "bit {i} = {}",
                        if values[l][i] == BitValue::Const1 {
                            1
                        } else {
                            0
                        }
                    )
                })
                .collect();
            if !consts.is_empty() {
                const_bits += consts.len();
                diagnostics.push(Diagnostic {
                    severity: Severity::Info,
                    code: codes::CONST_BIT,
                    site: Site::Link(l),
                    message: format!(
                        "{} of {} wire bits are provably constant: {}",
                        consts.len(),
                        width,
                        consts.join(", ")
                    ),
                });
            }
        }

        if has_readers {
            let dead: Vec<String> = (0..width)
                .filter(|&i| !live[l][i])
                .map(|i| i.to_string())
                .collect();
            if !dead.is_empty() {
                dead_bits += dead.len();
                diagnostics.push(Diagnostic {
                    severity: Severity::Info,
                    code: codes::DEAD_BIT,
                    site: Site::Link(l),
                    message: format!(
                        "{} of {} bits are read by no consumer: bits {}",
                        dead.len(),
                        width,
                        dead.join(", ")
                    ),
                });
            }
        }

        // Narrowing claims only make sense on ordinary wires somebody
        // both writes and reads; dangling links have their own lints.
        if g.links[l].class == LinkClass::Wire
            && width >= 2
            && has_readers
            && !writers[l].is_empty()
        {
            let live_width = (0..width)
                .rev()
                .find(|&i| live[l][i] && !values[l][i].is_const())
                .map_or(0, |i| i + 1);
            if live_width < width {
                narrowable.push(Narrowable {
                    link: l,
                    width,
                    live_width,
                });
                diagnostics.push(Diagnostic {
                    severity: Severity::Info,
                    code: codes::NARROWABLE_LINK,
                    site: Site::Link(l),
                    message: format!(
                        "declared {width} bits but only {live_width} carry information \
                         (upper bits constant or dead)"
                    ),
                });
            }
        }
    }

    // ---- slice plan --------------------------------------------------
    let mut slice_links = Vec::new();
    for l in 0..n {
        let width = g.links[l].width;
        if g.links[l].class != LinkClass::Wire || !(2..=64).contains(&width) {
            continue;
        }
        let &[(wb, wp)] = &writers[l][..] else {
            continue;
        };
        let Some(Some(sem)) = g.blocks[wb].bit_sem.get(wp) else {
            continue;
        };
        if sem.bits.len() != width || !deps_pairwise_disjoint(sem) {
            continue;
        }
        // Policy: slicing pays only next to a block the batched engine
        // can lower to packed expressions.
        if block_pure(g, wb) || readers[l].iter().any(|&(rb, _)| block_pure(g, rb)) {
            slice_links.push(l);
        }
    }

    Bitflow {
        values,
        live,
        diagnostics,
        narrowable,
        slice: SlicePlan { links: slice_links },
        const_bits,
        dead_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqsim::{BitSemantics, CombInputs};

    /// A hand-built pure 2-bit block: out bit 0 = !in bit 1,
    /// out bit 1 = in bit 0 & in bit 1.
    fn gate_sem() -> BitSemantics {
        BitSemantics {
            bits: vec![
                BitExpr::Not(Box::new(BitExpr::In { port: 0, bit: 1 })),
                BitExpr::And(
                    Box::new(BitExpr::In { port: 0, bit: 0 }),
                    Box::new(BitExpr::In { port: 0, bit: 1 }),
                ),
            ],
        }
    }

    fn block(
        name: &str,
        inputs: &[Option<usize>],
        outputs: &[Option<usize>],
        comb: CombInputs,
        sem: Vec<Option<BitSemantics>>,
    ) -> crate::GraphBlock {
        crate::GraphBlock {
            name: name.to_string(),
            inputs: inputs.to_vec(),
            outputs: outputs.to_vec(),
            comb: vec![comb; outputs.len()],
            host_visible: false,
            bit_sem: sem,
            in_used: vec![None; inputs.len()],
        }
    }

    fn wire(width: usize) -> crate::GraphLink {
        crate::GraphLink {
            width,
            class: LinkClass::Wire,
        }
    }

    #[test]
    fn constants_fold_through_pure_gates() {
        // const(0b01) -> gate -> wire -> sink.
        // out bit 0 = !in1 = !0 = 1; out bit 1 = in0 & in1 = 1 & 0 = 0.
        let g = SpecGraph {
            blocks: vec![
                block(
                    "g",
                    &[Some(0)],
                    &[Some(1)],
                    CombInputs::All,
                    vec![Some(gate_sem())],
                ),
                block("sink", &[Some(1)], &[], CombInputs::All, vec![]),
            ],
            links: vec![
                crate::GraphLink {
                    width: 2,
                    class: LinkClass::Const(0b01),
                },
                wire(2),
            ],
        };
        let bf = bitflow_graph(&g);
        assert_eq!(bf.values[1], vec![BitValue::Const1, BitValue::Const0]);
        assert_eq!(bf.const_bits, 2);
        assert!(bf
            .diagnostics
            .iter()
            .any(|d| d.code == codes::CONST_BIT && d.site == Site::Link(1)));
    }

    #[test]
    fn copies_resolve_to_their_root() {
        // external -> id -> id -> sink: both wire bits are copies of
        // the *external* link's bits, not of each other.
        let id2 = || BitSemantics {
            bits: vec![
                BitExpr::In { port: 0, bit: 0 },
                BitExpr::In { port: 0, bit: 1 },
            ],
        };
        let g = SpecGraph {
            blocks: vec![
                block(
                    "a",
                    &[Some(0)],
                    &[Some(1)],
                    CombInputs::All,
                    vec![Some(id2())],
                ),
                block(
                    "b",
                    &[Some(1)],
                    &[Some(2)],
                    CombInputs::All,
                    vec![Some(id2())],
                ),
                block("sink", &[Some(2)], &[], CombInputs::All, vec![]),
            ],
            links: vec![
                crate::GraphLink {
                    width: 2,
                    class: LinkClass::External,
                },
                wire(2),
                wire(2),
            ],
        };
        let bf = bitflow_graph(&g);
        for l in [1, 2] {
            for bit in 0..2 {
                assert_eq!(bf.values[l][bit], BitValue::Copy { link: 0, bit });
            }
        }
        // Identity blocks are pure with disjoint deps: both wires are
        // sliceable.
        assert_eq!(bf.slice.links, vec![1, 2]);
    }

    #[test]
    fn registered_ports_never_claim_input_copies() {
        // Same identity semantics, registered output: the claim would
        // be a lie (the output holds last cycle's value), so the pass
        // must refuse it.
        let id2 = BitSemantics {
            bits: vec![
                BitExpr::In { port: 0, bit: 0 },
                BitExpr::In { port: 0, bit: 1 },
            ],
        };
        let g = SpecGraph {
            blocks: vec![
                block(
                    "r",
                    &[Some(0)],
                    &[Some(1)],
                    CombInputs::None,
                    vec![Some(id2)],
                ),
                block("sink", &[Some(1)], &[], CombInputs::All, vec![]),
            ],
            links: vec![
                crate::GraphLink {
                    width: 2,
                    class: LinkClass::External,
                },
                wire(2),
            ],
        };
        let bf = bitflow_graph(&g);
        assert_eq!(bf.values[1], vec![BitValue::Unknown, BitValue::Unknown]);
    }

    #[test]
    fn overlapping_deps_block_the_slice_plan() {
        // gate_sem reads in bit 1 from both output bits — not
        // bit-independent, so no slice even though it is pure.
        let g = SpecGraph {
            blocks: vec![
                block(
                    "g",
                    &[Some(0)],
                    &[Some(1)],
                    CombInputs::All,
                    vec![Some(gate_sem())],
                ),
                block("sink", &[Some(1)], &[], CombInputs::All, vec![]),
            ],
            links: vec![
                crate::GraphLink {
                    width: 2,
                    class: LinkClass::External,
                },
                wire(2),
            ],
        };
        let bf = bitflow_graph(&g);
        assert!(bf.slice.links.is_empty());
    }

    #[test]
    fn dead_and_const_bits_narrow_the_link() {
        // 4-bit wire: bit 3 constant 0, bit 2 masked off by the only
        // reader, bits 0..2 live -> live width 2.
        let sem = BitSemantics {
            bits: vec![
                BitExpr::In { port: 0, bit: 0 },
                BitExpr::In { port: 0, bit: 1 },
                BitExpr::In { port: 0, bit: 2 },
                BitExpr::Const(false),
            ],
        };
        let mut reader = block("sink", &[Some(1)], &[], CombInputs::All, vec![]);
        reader.in_used = vec![Some(vec![true, true, false, true])];
        let g = SpecGraph {
            blocks: vec![
                block(
                    "w",
                    &[Some(0)],
                    &[Some(1)],
                    CombInputs::All,
                    vec![Some(sem)],
                ),
                reader,
            ],
            links: vec![
                crate::GraphLink {
                    width: 4,
                    class: LinkClass::External,
                },
                wire(4),
            ],
        };
        let bf = bitflow_graph(&g);
        assert_eq!(bf.dead_bits, 1);
        assert!(bf.diagnostics.iter().any(|d| d.code == codes::DEAD_BIT));
        assert_eq!(
            bf.narrowable,
            vec![Narrowable {
                link: 1,
                width: 4,
                live_width: 2
            }]
        );
        assert!(bf
            .diagnostics
            .iter()
            .any(|d| d.code == codes::NARROWABLE_LINK));
    }

    #[test]
    fn comb_ring_of_copies_terminates_at_a_fixpoint() {
        // a and b copy each other combinationally: nothing external
        // ever reaches the ring, so both bits stay Bot (the ring has
        // its own convergence lints) — and the pass must terminate.
        let id1 = || BitSemantics {
            bits: vec![BitExpr::In { port: 0, bit: 0 }],
        };
        let g = SpecGraph {
            blocks: vec![
                block(
                    "a",
                    &[Some(1)],
                    &[Some(0)],
                    CombInputs::All,
                    vec![Some(id1())],
                ),
                block(
                    "b",
                    &[Some(0)],
                    &[Some(1)],
                    CombInputs::All,
                    vec![Some(id1())],
                ),
            ],
            links: vec![wire(1), wire(1)],
        };
        let bf = bitflow_graph(&g);
        assert_eq!(bf.values[0], vec![BitValue::Bot]);
        assert_eq!(bf.values[1], vec![BitValue::Bot]);
    }
}
