//! The analyzer's neutral block/link IR.
//!
//! [`SpecGraph`] is deliberately lower-level than
//! [`seqsim::SystemSpec`]: ports reference links by id and nothing
//! enforces single writers, connectedness or width bounds — those are
//! exactly the properties the analyzer *checks*. A graph extracted from
//! a well-formed `SystemSpec` is well-formed by construction; graphs
//! built by other front ends (the `rtl` netlist adapter, the malformed
//! fixtures of the diagnostic test suite) may carry any defect.

use seqsim::{BitSemantics, CombInputs, SystemSpec};

/// What kind of storage/driver a link has beyond ordinary block wiring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkClass {
    /// An ordinary wire bundle driven by a block output port.
    Wire,
    /// A constant tie-off.
    Const(u64),
    /// A host-written register (stimuli write pointers, clocks).
    External,
}

/// One link (wire bundle / signal) of the graph.
#[derive(Debug, Clone)]
pub struct GraphLink {
    /// Width in bits (the link memory holds 1..=64; the analyzer flags
    /// everything else).
    pub width: usize,
    /// Driver class.
    pub class: LinkClass,
}

/// One block (or netlist process) of the graph.
#[derive(Debug, Clone)]
pub struct GraphBlock {
    /// Kind name (diagnostics).
    pub name: String,
    /// Link consumed by each input port (`None` = unconnected).
    pub inputs: Vec<Option<usize>>,
    /// Link driven by each output port (`None` = unconnected).
    pub outputs: Vec<Option<usize>>,
    /// Combinational input dependency of each output port.
    pub comb: Vec<CombInputs>,
    /// Whether the host can reach this block outside the link graph
    /// (side-memory stimuli rings); such blocks count as externally
    /// driven for the reachability check.
    pub host_visible: bool,
    /// Declared per-bit semantics of each output port (`None` =
    /// opaque — the bitflow pass treats every bit as `Unknown`).
    pub bit_sem: Vec<Option<BitSemantics>>,
    /// Per-input liveness mask of each input port (`None` = every bit
    /// potentially read).
    pub in_used: Vec<Option<Vec<bool>>>,
}

/// A complete block/link graph.
#[derive(Debug, Clone, Default)]
pub struct SpecGraph {
    /// The blocks.
    pub blocks: Vec<GraphBlock>,
    /// The links.
    pub links: Vec<GraphLink>,
}

impl SpecGraph {
    /// Extract the graph of a [`SystemSpec`], classifying every output
    /// port through [`seqsim::BlockKind::comb_inputs`].
    pub fn from_spec(spec: &SystemSpec) -> Self {
        let blocks = spec
            .blocks()
            .iter()
            .map(|inst| {
                let kind = &spec.kinds()[inst.kind];
                let n_out = inst.outputs.len();
                let n_in = inst.inputs.len();
                GraphBlock {
                    name: kind.name().to_string(),
                    inputs: inst
                        .inputs
                        .iter()
                        .map(|&l| (l != usize::MAX).then_some(l))
                        .collect(),
                    outputs: inst
                        .outputs
                        .iter()
                        .map(|&l| (l != usize::MAX).then_some(l))
                        .collect(),
                    comb: (0..n_out).map(|p| kind.comb_inputs(p)).collect(),
                    host_visible: !kind.side_rings().is_empty(),
                    bit_sem: (0..n_out).map(|p| kind.bit_semantics(p)).collect(),
                    in_used: (0..n_in).map(|p| kind.input_bits_used(p)).collect(),
                }
            })
            .collect();
        let links = spec
            .links()
            .iter()
            .map(|l| GraphLink {
                width: l.width,
                class: match l.driver {
                    seqsim::LinkDriver::Block { .. } => LinkClass::Wire,
                    seqsim::LinkDriver::Const(v) => LinkClass::Const(v),
                    seqsim::LinkDriver::External => LinkClass::External,
                },
            })
            .collect();
        SpecGraph { blocks, links }
    }

    /// Per link: the `(block, output port)` pairs driving it.
    pub fn writers(&self) -> Vec<Vec<(usize, usize)>> {
        let mut w = vec![Vec::new(); self.links.len()];
        for (b, blk) in self.blocks.iter().enumerate() {
            for (p, l) in blk.outputs.iter().enumerate() {
                if let Some(l) = *l {
                    if l < w.len() {
                        w[l].push((b, p));
                    }
                }
            }
        }
        w
    }

    /// Per link: the `(block, input port)` pairs consuming it.
    pub fn readers(&self) -> Vec<Vec<(usize, usize)>> {
        let mut r = vec![Vec::new(); self.links.len()];
        for (b, blk) in self.blocks.iter().enumerate() {
            for (i, l) in blk.inputs.iter().enumerate() {
                if let Some(l) = *l {
                    if l < r.len() {
                        r[l].push((b, i));
                    }
                }
            }
        }
        r
    }

    /// Is link `l` *combinationally* driven — i.e. does some writer's
    /// output port depend combinationally on one of that writer's
    /// inputs? Registered links (every writer a function of state only)
    /// are final after their writer's first evaluation of the cycle.
    pub fn link_is_comb(&self, l: usize, writers: &[Vec<(usize, usize)>]) -> bool {
        writers[l]
            .iter()
            .any(|&(b, p)| !self.blocks[b].comb[p].is_registered())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqsim::demo::comb_demo;

    #[test]
    fn from_spec_extracts_ports_and_classes() {
        let (spec, links) = comb_demo();
        let g = SpecGraph::from_spec(&spec);
        assert_eq!(g.blocks.len(), 3);
        assert_eq!(g.links.len(), 3);
        let writers = g.writers();
        // y0 is B0's registered output; y1/y2 are comb pass-throughs.
        assert!(!g.link_is_comb(links[0], &writers));
        assert!(g.link_is_comb(links[1], &writers));
        assert!(g.link_is_comb(links[2], &writers));
        assert_eq!(writers[links[0]], vec![(0, 0)]);
        assert_eq!(g.readers()[links[0]], vec![(1, 0)]);
    }
}
