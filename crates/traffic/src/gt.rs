//! Guaranteed-throughput stream allocation.
//!
//! Paper §2.1: "Due to the predictable round-robin arbitration the router
//! is able to handle guaranteed throughput (GT) traffic, if one single
//! data stream is assigned per VC." The allocator walks each requested
//! stream's route and claims one GT virtual channel (VC 2 or 3) on every
//! directed link it uses — including the source's injection and the
//! destination's delivery port — refusing streams that would share a
//! (link, VC) pair.

use crate::rng::SplitMix64;
use noc_types::{Coord, NetworkConfig, NodeId, Port, GT_VCS};
use std::collections::HashSet;
use vc_router::{gt_guarantee, route, RouterCtx};

/// An admitted guaranteed-throughput stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GtStream {
    /// Source node.
    pub src: NodeId,
    /// Destination coordinate.
    pub dest: Coord,
    /// Reserved virtual channel (2 or 3).
    pub vc: u8,
    /// Packet emission period in cycles.
    pub period: u64,
    /// Packet length in flits (paper: 128 for 256-byte GT packets).
    pub flits: u16,
    /// Hop count of the stream's route.
    pub hops: u16,
}

impl GtStream {
    /// The analytic worst-case packet latency of this stream (the Fig 1
    /// "Guarantee" line).
    pub fn guarantee(&self) -> u64 {
        gt_guarantee(self.hops as usize, self.flits as usize)
    }
}

/// Greedy (link, VC) reservation table for GT streams.
#[derive(Debug, Clone)]
pub struct GtAllocator {
    cfg: NetworkConfig,
    /// Claimed (node, output port, vc) triples — a directed link is
    /// identified by its driving router and output port.
    used: HashSet<(NodeId, Port, u8)>,
}

impl GtAllocator {
    /// Fresh allocator for a network.
    pub fn new(cfg: NetworkConfig) -> Self {
        GtAllocator {
            cfg,
            used: HashSet::new(),
        }
    }

    /// The links (as (node, out-port)) a stream from `src` to `dest` uses
    /// on GT VC `vc`, including the delivery port at the destination.
    fn path(&self, src: Coord, dest: Coord, vc: u8) -> Vec<(NodeId, Port)> {
        let mut links = Vec::new();
        let mut cur = src;
        for _ in 0..=self.cfg.shape.num_nodes() {
            let ctx = RouterCtx::new(&self.cfg, cur);
            let (port, out_vc) = route(&ctx, dest, vc);
            debug_assert_eq!(out_vc, vc, "GT streams keep their VC");
            links.push((self.cfg.shape.node_id(cur), port));
            if port == Port::Local {
                return links;
            }
            let dir = port
                .direction()
                .unwrap_or_else(|| unreachable!("non-Local route hop has a direction"));
            cur = self
                .cfg
                .topology
                .neighbour(self.cfg.shape, cur, dir)
                .unwrap_or_else(|| unreachable!("route stepped onto a missing link at {cur:?}"));
        }
        unreachable!("route did not terminate");
    }

    /// Try to admit a stream; returns the allocated stream on success.
    pub fn try_add(
        &mut self,
        src: Coord,
        dest: Coord,
        period: u64,
        flits: u16,
    ) -> Option<GtStream> {
        assert_ne!(src, dest, "a GT stream needs distinct endpoints");
        for &vc in &GT_VCS {
            let path = self.path(src, dest, vc);
            let free = path.iter().all(|&(n, p)| !self.used.contains(&(n, p, vc)));
            if free {
                for &(n, p) in &path {
                    self.used.insert((n, p, vc));
                }
                let hops = (path.len() - 1) as u16;
                // Admission control: the stream's sustained rate must not
                // exceed the guaranteed VC service rate (1 / NUM_VCS).
                assert!(
                    (flits as u64) * (noc_types::NUM_VCS as u64) <= period,
                    "stream rate exceeds the guaranteed VC service rate"
                );
                return Some(GtStream {
                    src: self.cfg.shape.node_id(src),
                    dest,
                    vc,
                    period,
                    flits,
                    hops,
                });
            }
        }
        None
    }

    /// The paper-style default workload: every node sources one stream to
    /// the node `offset` away (dimension-ordered), admitting as many as the
    /// VC budget allows. With offset (2, 1) on a torus every east link
    /// carries exactly two streams — one on each GT VC — and every north
    /// link one, so all streams admit.
    pub fn auto_streams(&mut self, offset: (u8, u8), period: u64, flits: u16) -> Vec<GtStream> {
        let shape = self.cfg.shape;
        let mut streams = Vec::new();
        for src in shape.coords() {
            let dest = Coord::new((src.x + offset.0) % shape.w, (src.y + offset.1) % shape.h);
            if dest == src {
                continue;
            }
            if let Some(s) = self.try_add(src, dest, period, flits) {
                streams.push(s);
            }
        }
        streams
    }

    /// Random-partner streams (for stress tests): each node tries up to
    /// `tries` random partners until one admits.
    pub fn random_streams(
        &mut self,
        rng: &mut SplitMix64,
        period: u64,
        flits: u16,
        tries: usize,
    ) -> Vec<GtStream> {
        let shape = self.cfg.shape;
        let mut streams = Vec::new();
        for src in shape.coords() {
            for _ in 0..tries {
                let dest = shape.coord(NodeId(rng.below(shape.num_nodes() as u64) as u16));
                if dest == src {
                    continue;
                }
                if let Some(s) = self.try_add(src, dest, period, flits) {
                    streams.push(s);
                    break;
                }
            }
        }
        streams
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::Topology;

    fn cfg() -> NetworkConfig {
        NetworkConfig::new(6, 6, Topology::Torus, 2)
    }

    #[test]
    fn offset_pattern_fully_allocates_6x6() {
        let mut alloc = GtAllocator::new(cfg());
        let streams = alloc.auto_streams((2, 1), 2048, 128);
        assert_eq!(streams.len(), 36, "every node must get its stream");
        // Each stream has 3 hops (2 east + 1 north).
        assert!(streams.iter().all(|s| s.hops == 3));
        // Both GT VCs are in use.
        assert!(streams.iter().any(|s| s.vc == 2));
        assert!(streams.iter().any(|s| s.vc == 3));
    }

    #[test]
    fn conflicting_streams_rejected() {
        let mut alloc = GtAllocator::new(cfg());
        // Three identical streams: two fit (VC 2 and VC 3), third fails.
        let a = alloc.try_add(Coord::new(0, 0), Coord::new(3, 0), 2048, 128);
        let b = alloc.try_add(Coord::new(0, 0), Coord::new(3, 0), 2048, 128);
        let c = alloc.try_add(Coord::new(0, 0), Coord::new(3, 0), 2048, 128);
        assert!(a.is_some() && b.is_some());
        assert_ne!(a.unwrap().vc, b.unwrap().vc);
        assert!(c.is_none());
    }

    #[test]
    fn partial_overlap_uses_other_vc() {
        let mut alloc = GtAllocator::new(cfg());
        let a = alloc
            .try_add(Coord::new(0, 0), Coord::new(2, 0), 2048, 128)
            .unwrap();
        // Shares the (1,0)->(2,0) east link.
        let b = alloc
            .try_add(Coord::new(1, 0), Coord::new(3, 0), 2048, 128)
            .unwrap();
        assert_eq!(a.vc, 2);
        assert_eq!(b.vc, 3);
    }

    #[test]
    #[should_panic(expected = "exceeds the guaranteed")]
    fn overrate_stream_rejected() {
        let mut alloc = GtAllocator::new(cfg());
        let _ = alloc.try_add(Coord::new(0, 0), Coord::new(2, 0), 100, 128);
    }

    #[test]
    fn guarantee_scales_with_hops_and_flits() {
        let mut alloc = GtAllocator::new(cfg());
        let s = alloc
            .try_add(Coord::new(0, 0), Coord::new(3, 2), 4096, 128)
            .unwrap();
        assert_eq!(s.hops, 5);
        assert!(s.guarantee() > 128 * 4);
        assert!(s.guarantee() < 700);
    }

    #[test]
    fn random_streams_mostly_admit() {
        let mut alloc = GtAllocator::new(cfg());
        let mut rng = SplitMix64::new(11);
        let streams = alloc.random_streams(&mut rng, 2048, 128, 8);
        assert!(streams.len() >= 30, "only {} admitted", streams.len());
    }
}
