//! Random number generators.
//!
//! [`Lfsr32`] models the FPGA-resident hardware RNG the paper offloads
//! stimulus randomness to ("Reading a 32 bit random number from the FPGA
//! is noticeably faster compared to the standard rand() function in C",
//! §5.3; "A simple improvement by offloading the random number generation
//! to the FPGA gave an extra 50% simulation speed", §8): a 32-bit Galois
//! LFSR, one step per bit, exactly what a handful of LUTs implements.
//!
//! [`SplitMix64`] is the fast, well-distributed software generator used
//! for everything where hardware fidelity does not matter (seeding,
//! shuffling, payload fill).

/// A 32-bit maximal-length Galois LFSR (taps 32, 30, 26, 25 — polynomial
/// `0xA3000000` reversed form `0xA3000000`? The canonical maximal mask
/// used here is `0xA3000000`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lfsr32 {
    state: u32,
}

/// Feedback mask for the maximal-length polynomial
/// x^32 + x^31 + x^29 + x^28 + 1 (Galois form).
const LFSR_MASK: u32 = 0xA300_0000;

impl Lfsr32 {
    /// Seed the LFSR. A zero seed is mapped to a fixed non-zero value
    /// (the all-zero state is the LFSR's only fixed point).
    pub fn new(seed: u32) -> Self {
        Lfsr32 {
            state: if seed == 0 { 0xDEAD_BEEF } else { seed },
        }
    }

    /// Advance one bit.
    #[inline]
    pub fn step(&mut self) -> u32 {
        let lsb = self.state & 1;
        self.state >>= 1;
        if lsb != 0 {
            self.state ^= LFSR_MASK;
        }
        lsb
    }

    /// Produce the next 32-bit word (32 LFSR steps, as the FPGA register
    /// exposes it).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let mut w = 0u32;
        for i in 0..32 {
            w |= self.step() << i;
        }
        w
    }

    /// Uniform value in `0..n` by rejection-free modulo (adequate for
    /// stimulus generation; bias < 2^-24 for the n used here).
    #[inline]
    pub fn below(&mut self, n: u32) -> u32 {
        debug_assert!(n > 0);
        self.next_u32() % n
    }

    /// Bernoulli event with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u32() as f64) < p * (u32::MAX as f64 + 1.0)
    }

    /// Current raw state (for host/FPGA co-simulation checks).
    pub fn state(&self) -> u32 {
        self.state
    }
}

/// SplitMix64 — the standard 64-bit mixing generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit value.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `0..n`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire's multiply-shift reduction.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Bernoulli event with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfsr_is_deterministic_and_nonzero() {
        let mut a = Lfsr32::new(42);
        let mut b = Lfsr32::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
            assert_ne!(a.state(), 0);
        }
        let mut c = Lfsr32::new(43);
        assert_ne!(a.next_u32(), c.next_u32());
    }

    #[test]
    fn lfsr_zero_seed_handled() {
        let mut z = Lfsr32::new(0);
        assert_ne!(z.state(), 0);
        z.next_u32();
        assert_ne!(z.state(), 0);
    }

    #[test]
    fn lfsr_period_is_long() {
        // The state must not recur within a modest horizon (full period is
        // 2^32 - 1 for a maximal polynomial; we spot-check 100k steps).
        let mut l = Lfsr32::new(1);
        let start = l.state();
        for i in 0..100_000 {
            l.step();
            assert_ne!(l.state(), start, "LFSR state recurred after {i} steps");
        }
    }

    #[test]
    fn lfsr_bits_are_balanced() {
        let mut l = Lfsr32::new(7);
        let ones: u32 = (0..2000).map(|_| l.next_u32().count_ones()).sum();
        let total = 2000 * 32;
        let frac = ones as f64 / total as f64;
        assert!((0.47..0.53).contains(&frac), "bit balance {frac}");
    }

    #[test]
    fn splitmix_below_is_in_range_and_covers() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_estimates_probability() {
        let mut r = SplitMix64::new(1234);
        let hits = (0..100_000).filter(|_| r.chance(0.1)).count();
        let p = hits as f64 / 100_000.0;
        assert!((0.09..0.11).contains(&p), "p = {p}");
        let mut l = Lfsr32::new(77);
        let hits = (0..100_000).filter(|_| l.chance(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((0.28..0.32).contains(&p), "lfsr p = {p}");
    }
}
