//! Stimuli-table generation (paper §5.3, step 1).
//!
//! "We start by generating the traffic for each node in a stimuli table.
//! [...] The generated stimuli table contains stimuli for at least x
//! system cycles." The generator produces *windows* of timestamped flits,
//! one list per (node, VC) ring, plus a journal of offered packets the
//! analysis phase matches deliveries against (by the sequence number
//! embedded in the first body flit).

use crate::be::BeConfig;
use crate::gt::GtStream;
use crate::rng::{Lfsr32, SplitMix64};
use noc_types::{Coord, NetworkConfig, NodeId, PacketSpec, TrafficClass, NUM_VCS};
use vc_router::StimEntry;

/// Complete traffic description for a run.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// The network under test.
    pub net: NetworkConfig,
    /// Best-effort traffic.
    pub be: BeConfig,
    /// Admitted GT streams (from [`GtAllocator`](crate::gt::GtAllocator)).
    pub gt_streams: Vec<GtStream>,
    /// Master seed; everything derives deterministically from it.
    pub seed: u64,
}

/// One offered packet, journal entry for latency analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OfferedPacket {
    /// Generation timestamp (earliest injection cycle).
    pub ts: u64,
    /// Source node.
    pub src: NodeId,
    /// Destination coordinate.
    pub dest: Coord,
    /// Service class.
    pub class: TrafficClass,
    /// Stimuli ring (= local input queue) VC.
    pub ring_vc: u8,
    /// Length in flits.
    pub flits: u16,
    /// Per-source sequence number, embedded in the first body flit.
    pub seq: u16,
}

/// A generated window of stimuli covering `[t0, t1)`.
#[derive(Debug, Clone, Default)]
pub struct Window {
    /// Flit entries per node per VC ring, timestamp-ordered.
    pub stim: Vec<[Vec<StimEntry>; NUM_VCS]>,
    /// Offered-packet journal for the window.
    pub offered: Vec<OfferedPacket>,
}

/// Incremental stimuli generator.
#[derive(Debug, Clone)]
pub struct StimuliGenerator {
    cfg: TrafficConfig,
    /// Per-node arrival/destination RNG (software, the "ARM" side).
    node_rng: Vec<SplitMix64>,
    /// Per-node payload RNG — the FPGA's hardware LFSR (§5.3).
    payload_rng: Vec<Lfsr32>,
    /// Next BE packet arrival per node (None = zero load).
    next_be: Vec<Option<u64>>,
    /// BE ring VC toggle per node (packets alternate between the two BE
    /// rings to use both local queues).
    be_toggle: Vec<bool>,
    /// Next emission time per GT stream.
    gt_next: Vec<u64>,
    /// Per-node packet sequence counters.
    seq: Vec<u16>,
    /// End of the last generated window (contiguity enforcement).
    generated_to: u64,
}

impl StimuliGenerator {
    /// Build a generator; arrival processes start at cycle 0.
    pub fn new(cfg: TrafficConfig) -> Self {
        let n = cfg.net.num_nodes();
        let mut node_rng: Vec<SplitMix64> = (0..n)
            .map(|i| SplitMix64::new(cfg.seed ^ (0x5151_0000 + i as u64)))
            .collect();
        let payload_rng = (0..n)
            .map(|i| Lfsr32::new((cfg.seed as u32) ^ (0xACE1_0000 + i as u32)))
            .collect();
        let next_be = (0..n)
            .map(|i| cfg.be.sample_gap(&mut node_rng[i]).map(|g| g - 1))
            .collect();
        let gt_next = cfg
            .gt_streams
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u64 * 97) % s.period)
            .collect();
        StimuliGenerator {
            cfg,
            node_rng,
            payload_rng,
            next_be,
            be_toggle: vec![false; n],
            gt_next,
            seq: vec![0; n],
            generated_to: 0,
        }
    }

    /// The traffic configuration.
    pub fn config(&self) -> &TrafficConfig {
        &self.cfg
    }

    /// Generate all stimuli with timestamps in `[t0, t1)`.
    ///
    /// Must be called with contiguous, increasing windows (the paper's
    /// simulation periods).
    pub fn generate(&mut self, t0: u64, t1: u64) -> Window {
        assert!(t1 > t0);
        assert_eq!(
            t0, self.generated_to,
            "windows must be contiguous: expected t0 = {}, got {t0}",
            self.generated_to
        );
        self.generated_to = t1;
        let n = self.cfg.net.num_nodes();
        let shape = self.cfg.net.shape;
        // Collect per-node packet events first, then emit in time order.
        // (ts, dest, class, flits, ring_vc) per node.
        type Event = (u64, Coord, TrafficClass, u16, u8);
        let mut events: Vec<Vec<Event>> = vec![Vec::new(); n];

        // Best-effort arrivals.
        for node in 0..n {
            while let Some(t) = self.next_be[node] {
                if t >= t1 {
                    break;
                }
                if t >= t0 {
                    let src = shape.coord(NodeId(node as u16));
                    let dest = self
                        .cfg
                        .be
                        .pattern
                        .dest(shape, src, &mut self.node_rng[node]);
                    let ring_vc = if self.be_toggle[node] { 1 } else { 0 };
                    self.be_toggle[node] = !self.be_toggle[node];
                    events[node].push((
                        t,
                        dest,
                        TrafficClass::BestEffort,
                        self.cfg.be.packet_flits,
                        ring_vc,
                    ));
                }
                let gap = self
                    .cfg
                    .be
                    .sample_gap(&mut self.node_rng[node])
                    .unwrap_or_else(|| {
                        // `next_be` is only armed when the offered load is
                        // positive, and the load is immutable after build.
                        unreachable!("armed BE generator has zero load")
                    });
                self.next_be[node] = Some(t + gap);
            }
        }

        // GT stream emissions.
        for (i, s) in self.cfg.gt_streams.iter().enumerate() {
            while self.gt_next[i] < t1 {
                let t = self.gt_next[i];
                if t >= t0 {
                    events[s.src.index()].push((
                        t,
                        s.dest,
                        TrafficClass::GuaranteedThroughput,
                        s.flits,
                        s.vc,
                    ));
                }
                self.gt_next[i] += s.period;
            }
        }

        // Emit flits, per node in timestamp order (ring FIFOs require
        // non-decreasing timestamps per VC).
        let mut win = Window {
            stim: (0..n)
                .map(|_| core::array::from_fn(|_| Vec::new()))
                .collect(),
            offered: Vec::new(),
        };
        for node in 0..n {
            events[node].sort_by_key(|e| e.0);
            for &(ts, dest, class, flits, ring_vc) in &events[node] {
                let seq = self.seq[node];
                self.seq[node] = self.seq[node].wrapping_add(1);
                let spec = PacketSpec {
                    src: NodeId(node as u16),
                    dest,
                    class,
                    flits: flits as usize,
                };
                let rng = &mut self.payload_rng[node];
                let packet = spec.flitise(|i| if i == 0 { seq } else { rng.next_u32() as u16 });
                for f in packet {
                    win.stim[node][ring_vc as usize].push(StimEntry { ts, flit: f });
                }
                win.offered.push(OfferedPacket {
                    ts,
                    src: NodeId(node as u16),
                    dest,
                    class,
                    ring_vc,
                    flits,
                    seq,
                });
            }
        }
        win
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gt::GtAllocator;
    use noc_types::Topology;

    fn traffic(load: f64, with_gt: bool) -> TrafficConfig {
        let net = NetworkConfig::new(6, 6, Topology::Torus, 2);
        let gt_streams = if with_gt {
            GtAllocator::new(net).auto_streams((2, 1), 2048, 128)
        } else {
            Vec::new()
        };
        TrafficConfig {
            net,
            be: BeConfig::fig1(load),
            gt_streams,
            seed: 42,
        }
    }

    #[test]
    fn window_timestamps_in_range_and_ordered() {
        let mut g = StimuliGenerator::new(traffic(0.1, true));
        let w = g.generate(0, 4096);
        assert!(!w.offered.is_empty());
        for node in &w.stim {
            for ring in node {
                assert!(ring.windows(2).all(|p| p[0].ts <= p[1].ts));
                assert!(ring.iter().all(|e| e.ts < 4096));
            }
        }
    }

    #[test]
    fn windows_are_contiguous_and_deterministic() {
        let mut a = StimuliGenerator::new(traffic(0.08, true));
        let w1 = a.generate(0, 1000);
        let w2 = a.generate(1000, 2000);
        assert!(w2.offered.iter().all(|p| p.ts >= 1000 && p.ts < 2000));
        // Same seed, one big window: identical offered set.
        let mut b = StimuliGenerator::new(traffic(0.08, true));
        let big = b.generate(0, 2000);
        let mut merged: Vec<OfferedPacket> = w1
            .offered
            .iter()
            .chain(w2.offered.iter())
            .copied()
            .collect();
        let key = |p: &OfferedPacket| (p.src, p.seq);
        merged.sort_by_key(key);
        let mut whole = big.offered.clone();
        whole.sort_by_key(key);
        assert_eq!(merged, whole);
    }

    #[test]
    fn offered_load_matches_request() {
        let mut g = StimuliGenerator::new(traffic(0.10, false));
        let w = g.generate(0, 50_000);
        let flits: u64 = w.offered.iter().map(|p| p.flits as u64).sum();
        let load = flits as f64 / (50_000.0 * 36.0);
        assert!((load - 0.10).abs() < 0.01, "offered load {load}");
    }

    #[test]
    fn gt_emissions_are_periodic_and_on_gt_vcs() {
        let mut g = StimuliGenerator::new(traffic(0.0, true));
        let w = g.generate(0, 8192);
        let gt: Vec<&OfferedPacket> = w
            .offered
            .iter()
            .filter(|p| p.class == TrafficClass::GuaranteedThroughput)
            .collect();
        // 36 streams, period 2048, window 8192 -> 4 packets per stream.
        assert_eq!(gt.len(), 36 * 4);
        assert!(gt.iter().all(|p| p.ring_vc >= 2));
        assert!(gt.iter().all(|p| p.flits == 128));
    }

    #[test]
    fn seq_embedded_in_first_body() {
        let mut g = StimuliGenerator::new(traffic(0.05, false));
        let w = g.generate(0, 5000);
        // Find the first packet of node 0 and check its flits in ring order.
        let p = w.offered.iter().find(|p| p.src == NodeId(0)).unwrap();
        let ring = &w.stim[0][p.ring_vc as usize];
        assert!(ring[0].flit.kind.is_head());
        assert_eq!(ring[1].flit.payload, p.seq);
    }

    #[test]
    fn be_rings_alternate() {
        let mut g = StimuliGenerator::new(traffic(0.1, false));
        let w = g.generate(0, 20_000);
        let node0: Vec<u8> = w
            .offered
            .iter()
            .filter(|p| p.src == NodeId(0))
            .map(|p| p.ring_vc)
            .collect();
        assert!(node0.len() >= 4);
        assert!(node0.windows(2).all(|p| p[0] != p[1]));
    }
}
