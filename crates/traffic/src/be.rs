//! Best-effort traffic configuration and arrival process.
//!
//! Fig 1's x-axis is "BE load per PE [fraction of channel capacity]": each
//! processing element offers `load` flits per cycle on average, grouped
//! into packets of `packet_flits` flits (10-byte BE packets = 5 flits).
//! Arrivals are Bernoulli per cycle, sampled as geometric gaps so the
//! generator cost scales with the number of packets, not cycles.

use crate::patterns::DestPattern;
use crate::rng::SplitMix64;

/// Best-effort traffic parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeConfig {
    /// Offered load per PE as a fraction of channel capacity (flits per
    /// cycle), the Fig 1 x-axis (0..=1, paper sweeps 0..0.14).
    pub load: f64,
    /// Packet length in flits (paper: 5 for 10-byte BE packets).
    pub packet_flits: u16,
    /// Destination pattern.
    pub pattern: DestPattern,
}

impl BeConfig {
    /// The paper's Fig 1 BE traffic at a given load.
    pub fn fig1(load: f64) -> Self {
        BeConfig {
            load,
            packet_flits: 5,
            pattern: DestPattern::UniformRandom,
        }
    }

    /// Per-cycle packet-arrival probability.
    pub fn packet_rate(&self) -> f64 {
        assert!(self.load >= 0.0 && self.load <= 1.0, "load out of range");
        self.load / self.packet_flits as f64
    }

    /// Sample the gap (in cycles) to the next packet arrival: geometric
    /// with success probability [`packet_rate`](Self::packet_rate).
    /// Returns `None` when the load is zero.
    pub fn sample_gap(&self, rng: &mut SplitMix64) -> Option<u64> {
        let p = self.packet_rate();
        if p <= 0.0 {
            return None;
        }
        // Inverse-transform sampling of a geometric distribution.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let gap = (u.max(1e-300).ln() / (1.0 - p).ln()).floor() as u64 + 1;
        Some(gap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_gaps_match_rate() {
        let be = BeConfig::fig1(0.10); // p = 0.02 packets/cycle
        let mut rng = SplitMix64::new(3);
        let n = 50_000;
        let total: u64 = (0..n).map(|_| be.sample_gap(&mut rng).unwrap()).sum();
        let rate = n as f64 / total as f64;
        assert!(
            (rate - 0.02).abs() < 0.001,
            "measured packet rate {rate}, expected 0.02"
        );
    }

    #[test]
    fn zero_load_generates_nothing() {
        let be = BeConfig::fig1(0.0);
        let mut rng = SplitMix64::new(3);
        assert_eq!(be.sample_gap(&mut rng), None);
    }

    #[test]
    fn gaps_are_at_least_one() {
        let be = BeConfig::fig1(0.9);
        let mut rng = SplitMix64::new(4);
        for _ in 0..1000 {
            assert!(be.sample_gap(&mut rng).unwrap() >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "load out of range")]
    fn overload_rejected() {
        let _ = BeConfig::fig1(1.5).packet_rate();
    }
}
