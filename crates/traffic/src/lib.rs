//! # traffic — workload generation for the NoC simulators
//!
//! Implements the paper's stimuli-generation phase (§5.3, step 1: "We
//! start by generating the traffic for each node in a stimuli table. Any
//! data pattern can be generated as the generation is done in software."):
//!
//! * [`rng`] — the FPGA's hardware random number generator modelled as a
//!   Galois LFSR (§5.3: "The generation process uses a random number
//!   generator on the FPGA"), plus a fast software RNG for host-side use.
//! * [`patterns`] — destination patterns: uniform random, transpose,
//!   bit-complement, hotspot, nearest-neighbour.
//! * [`gt`] — guaranteed-throughput stream allocation: one stream per VC
//!   per link (§2.1), with per-stream latency guarantees.
//! * [`be`] — best-effort injection processes (Bernoulli per-cycle
//!   arrivals at a configured fraction of channel capacity).
//! * [`stimuli`] — assembly of timestamped per-(node, VC) stimuli tables,
//!   generated in windows like the paper's simulation periods, plus the
//!   offered-packet journal the analysis phase matches deliveries against.

//! ```
//! use noc_types::{NetworkConfig, Topology};
//! use traffic::{BeConfig, GtAllocator, StimuliGenerator, TrafficConfig};
//!
//! let net = NetworkConfig::new(6, 6, Topology::Torus, 2);
//! // One guaranteed-throughput stream per node, one VC per stream.
//! let gt = GtAllocator::new(net).auto_streams((2, 1), 2048, 128);
//! assert_eq!(gt.len(), 36);
//! // Timestamped stimuli for the first simulation period.
//! let mut gen = StimuliGenerator::new(TrafficConfig {
//!     net,
//!     be: BeConfig::fig1(0.10),
//!     gt_streams: gt,
//!     seed: 42,
//! });
//! let window = gen.generate(0, 512);
//! assert!(!window.offered.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
// Positional `for i in 0..n` loops indexing several parallel arrays are
// the natural shape for port/node-indexed hardware code; iterator zips
// would obscure which port is which.
#![allow(clippy::needless_range_loop)]

pub mod be;
pub mod gt;
pub mod patterns;
pub mod rng;
pub mod stimuli;

pub use be::BeConfig;
pub use gt::{GtAllocator, GtStream};
pub use patterns::DestPattern;
pub use rng::{Lfsr32, SplitMix64};
pub use stimuli::{OfferedPacket, StimuliGenerator, TrafficConfig};
