//! Destination patterns for best-effort traffic.
//!
//! The paper's FPGA simulator exists precisely to "observe the NoC
//! behavior under a large variety of traffic patterns" (§1); these are the
//! standard patterns of the NoC literature.

use crate::rng::SplitMix64;
use noc_types::{Coord, Shape};

/// A destination pattern: maps a source to a destination, possibly
/// randomly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DestPattern {
    /// Uniform random over all nodes except the source.
    UniformRandom,
    /// Matrix transpose: `(x, y) -> (y, x)`. Sources on the diagonal send
    /// to the diagonally opposite node instead (self-sends carry no load).
    Transpose,
    /// Bit/coordinate complement: `(x, y) -> (w-1-x, h-1-y)`.
    BitComplement,
    /// A fraction `hot_frac` of packets go to `hot`, the rest uniform
    /// random.
    Hotspot {
        /// The hotspot destination.
        hot: Coord,
        /// Fraction of traffic aimed at the hotspot (0..=1).
        hot_frac: f64,
    },
    /// Nearest neighbour: always one hop east (with wrap), the
    /// lowest-stress pattern.
    NearestNeighbour,
}

impl DestPattern {
    /// Pick the destination for a packet from `src`.
    pub fn dest(&self, shape: Shape, src: Coord, rng: &mut SplitMix64) -> Coord {
        match *self {
            DestPattern::UniformRandom => uniform_not_self(shape, src, rng),
            DestPattern::Transpose => {
                let mut d = Coord::new(src.y.min(shape.w - 1), src.x.min(shape.h - 1));
                if d == src {
                    d = Coord::new(shape.w - 1 - src.x, shape.h - 1 - src.y);
                }
                if d == src {
                    // Centre of an odd square: fall back to uniform.
                    d = uniform_not_self(shape, src, rng);
                }
                d
            }
            DestPattern::BitComplement => {
                let d = Coord::new(shape.w - 1 - src.x, shape.h - 1 - src.y);
                if d == src {
                    uniform_not_self(shape, src, rng)
                } else {
                    d
                }
            }
            DestPattern::Hotspot { hot, hot_frac } => {
                if hot != src && rng.chance(hot_frac) {
                    hot
                } else {
                    uniform_not_self(shape, src, rng)
                }
            }
            DestPattern::NearestNeighbour => Coord::new((src.x + 1) % shape.w, src.y),
        }
    }
}

fn uniform_not_self(shape: Shape, src: Coord, rng: &mut SplitMix64) -> Coord {
    let n = shape.num_nodes() as u64;
    debug_assert!(n >= 2);
    loop {
        let d = shape.coord(noc_types::NodeId(rng.below(n) as u16));
        if d != src {
            return d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_never_self_and_covers_all() {
        let shape = Shape::new(4, 4);
        let src = Coord::new(1, 2);
        let mut rng = SplitMix64::new(5);
        let mut hit = std::collections::HashSet::new();
        for _ in 0..2000 {
            let d = DestPattern::UniformRandom.dest(shape, src, &mut rng);
            assert_ne!(d, src);
            hit.insert(d);
        }
        assert_eq!(hit.len(), 15);
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let shape = Shape::new(6, 6);
        let mut rng = SplitMix64::new(1);
        assert_eq!(
            DestPattern::Transpose.dest(shape, Coord::new(1, 4), &mut rng),
            Coord::new(4, 1)
        );
        // Diagonal sources do not self-send.
        let d = DestPattern::Transpose.dest(shape, Coord::new(2, 2), &mut rng);
        assert_ne!(d, Coord::new(2, 2));
    }

    #[test]
    fn complement_mirrors() {
        let shape = Shape::new(6, 6);
        let mut rng = SplitMix64::new(1);
        assert_eq!(
            DestPattern::BitComplement.dest(shape, Coord::new(0, 0), &mut rng),
            Coord::new(5, 5)
        );
    }

    #[test]
    fn hotspot_concentrates() {
        let shape = Shape::new(4, 4);
        let hot = Coord::new(3, 3);
        let p = DestPattern::Hotspot { hot, hot_frac: 0.5 };
        let mut rng = SplitMix64::new(2);
        let hits = (0..4000)
            .filter(|_| p.dest(shape, Coord::new(0, 0), &mut rng) == hot)
            .count();
        let frac = hits as f64 / 4000.0;
        // 0.5 directed + uniform residue also occasionally hits it.
        assert!((0.45..0.62).contains(&frac), "hot frac {frac}");
    }

    #[test]
    fn nearest_neighbour_wraps() {
        let shape = Shape::new(4, 4);
        let mut rng = SplitMix64::new(3);
        assert_eq!(
            DestPattern::NearestNeighbour.dest(shape, Coord::new(3, 1), &mut rng),
            Coord::new(0, 1)
        );
    }
}
