//! Cost model of the five-phase control loop (paper §5.3, Tables 3
//! and 4).
//!
//! The ARM generates stimuli, loads them over the 32-bit memory
//! interface, starts a simulation period on the FPGA, retrieves the
//! results and analyses them. Processes communicate through cyclic
//! buffers and run concurrently ("The processes that only require the
//! FPGA or ARM run in parallel, which tremendously reduces the simulation
//! time"), so FPGA time is hidden behind ARM work — the paper's Table 4
//! attributes only 0–2 % to "Simulation (FPGA)".
//!
//! Model: per simulated system cycle, each phase costs ARM time
//! proportional to the traffic it moves; FPGA time runs concurrently
//! with the ARM-only phases (generate, analyse) and surfaces only when
//! it exceeds them. The per-item coefficients are calibrated against the
//! paper's Table 3/Table 4 and documented here:
//!
//! * `gen_cycles_per_stim` — ARM cycles to synthesise one stimulus flit
//!   entry (destination draw, packetisation, table write). 500 with the
//!   FPGA hardware RNG, 800 with the C `rand()` (§8's "extra 50%
//!   simulation speed" once generation dominates).
//! * `bus_cycles_per_word` — ARM cycles per 32-bit word over the
//!   asynchronous external memory interface (handshake included).
//! * `analyse_cycles_per_flit` — ARM cycles to timestamp-match and
//!   account one retrieved flit (100 for plain latency bookkeeping, 350
//!   for "complex simulations", §6).

use crate::timing::FpgaTimingModel;

/// Calibrated ARM-side cost coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseParams {
    /// ARM clock (paper: 86 MHz).
    pub f_arm_hz: f64,
    /// ARM cycles per stimulus entry, hardware-RNG path.
    pub gen_cycles_per_stim: f64,
    /// ARM cycles per stimulus entry, software `rand()` path.
    pub gen_cycles_per_stim_soft_rng: f64,
    /// ARM cycles per 32-bit word over the memory interface.
    pub bus_cycles_per_word: f64,
    /// Interface words per stimulus/result entry (64-bit entries).
    pub words_per_entry: f64,
    /// ARM cycles to analyse one retrieved flit (light analysis).
    pub analyse_cycles_per_flit_light: f64,
    /// ARM cycles to analyse one retrieved flit (complex analysis).
    pub analyse_cycles_per_flit_heavy: f64,
    /// Pointer/housekeeping interface words per node per period.
    pub ptr_words_per_node: f64,
}

impl Default for PhaseParams {
    fn default() -> Self {
        PhaseParams {
            f_arm_hz: 86e6,
            gen_cycles_per_stim: 500.0,
            gen_cycles_per_stim_soft_rng: 800.0,
            bus_cycles_per_word: 40.0,
            words_per_entry: 2.0,
            analyse_cycles_per_flit_light: 100.0,
            analyse_cycles_per_flit_heavy: 350.0,
            ptr_words_per_node: 12.0,
        }
    }
}

/// One evaluation scenario of the co-simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Routers in the network.
    pub nodes: usize,
    /// Offered traffic in flits per cycle per node (BE + GT share).
    pub flits_per_cycle_per_node: f64,
    /// Simulation period in system cycles (stimuli-buffer size, §5.3).
    pub period: u64,
    /// Mean delta cycles per system cycle (nodes × (1 + extra)).
    pub deltas_per_cycle: f64,
    /// Complex result analysis (§6: "For complex simulations we see a
    /// large contribution by the analysis of the results").
    pub heavy_analysis: bool,
    /// Generate stimuli with the C `rand()` instead of the FPGA RNG.
    pub soft_rng: bool,
}

impl Scenario {
    /// The paper's 6×6 evaluation network under a given offered load.
    pub fn grid6x6(load: f64, heavy_analysis: bool) -> Self {
        Scenario {
            nodes: 36,
            flits_per_cycle_per_node: load,
            period: 256,
            // §6: extra delta cycles are 1.5–2× the input load.
            deltas_per_cycle: 36.0 * (1.0 + 1.75 * load),
            heavy_analysis,
            soft_rng: false,
        }
    }
}

/// Modelled time per phase, per simulated system cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseBreakdown {
    /// Stimulus generation (ARM), seconds/cycle.
    pub generate: f64,
    /// Buffer load (ARM + interface), seconds/cycle.
    pub load: f64,
    /// FPGA simulation time *visible* to the loop (not hidden behind
    /// concurrent ARM work), seconds/cycle.
    pub simulate_visible: f64,
    /// Raw FPGA simulation time, seconds/cycle (before overlap).
    pub simulate_raw: f64,
    /// Result retrieval (ARM + interface), seconds/cycle.
    pub retrieve: f64,
    /// Result analysis (ARM), seconds/cycle.
    pub analyse: f64,
}

impl PhaseBreakdown {
    /// Wall-clock seconds per simulated system cycle.
    pub fn wall_per_cycle(&self) -> f64 {
        self.generate + self.load + self.simulate_visible + self.retrieve + self.analyse
    }

    /// Simulated clock cycles per second (the Table 3 metric).
    pub fn cps(&self) -> f64 {
        1.0 / self.wall_per_cycle()
    }

    /// Phase shares of the wall clock, in Table 4's row order
    /// (generate, load, simulate, retrieve, analyse).
    pub fn shares(&self) -> [f64; 5] {
        let w = self.wall_per_cycle();
        [
            self.generate / w,
            self.load / w,
            self.simulate_visible / w,
            self.retrieve / w,
            self.analyse / w,
        ]
    }
}

impl PhaseParams {
    /// Evaluate the model for one scenario.
    pub fn evaluate(&self, timing: &FpgaTimingModel, sc: &Scenario) -> PhaseBreakdown {
        let stim_per_cycle = sc.nodes as f64 * sc.flits_per_cycle_per_node;
        // In steady state, delivered ≈ offered.
        let delivered_per_cycle = stim_per_cycle;

        let gen_cost = if sc.soft_rng {
            self.gen_cycles_per_stim_soft_rng
        } else {
            self.gen_cycles_per_stim
        };
        let generate = stim_per_cycle * gen_cost / self.f_arm_hz;

        let ptr_words_per_cycle = sc.nodes as f64 * self.ptr_words_per_node / sc.period as f64;
        let load_words = stim_per_cycle * self.words_per_entry + ptr_words_per_cycle;
        let load = load_words * self.bus_cycles_per_word / self.f_arm_hz;

        let retrieve_words = delivered_per_cycle * self.words_per_entry + ptr_words_per_cycle;
        let retrieve = retrieve_words * self.bus_cycles_per_word / self.f_arm_hz;

        let an_cost = if sc.heavy_analysis {
            self.analyse_cycles_per_flit_heavy
        } else {
            self.analyse_cycles_per_flit_light
        };
        let analyse = delivered_per_cycle * an_cost / self.f_arm_hz;

        let simulate_raw = 1.0 / timing.max_sim_freq_hz(sc.deltas_per_cycle);
        // The FPGA runs concurrently with the ARM-only phases; only the
        // excess surfaces as wait time.
        let simulate_visible = (simulate_raw - (generate + analyse)).max(0.0);

        PhaseBreakdown {
            generate,
            load,
            simulate_visible,
            simulate_raw,
            retrieve,
            analyse,
        }
    }

    /// The paper's Table 3 "FPGA average" figure: the mean CPS over the
    /// experiment mix the paper actually ran — Fig 1-style sweeps with
    /// full latency analysis across the offered-load range.
    pub fn table3_fpga_average(&self, timing: &FpgaTimingModel) -> f64 {
        let scenarios = [
            Scenario::grid6x6(0.08, true),
            Scenario::grid6x6(0.10, true),
            Scenario::grid6x6(0.12, true),
            Scenario::grid6x6(0.14, true),
        ];
        let sum: f64 = scenarios
            .iter()
            .map(|s| self.evaluate(timing, s).cps())
            .sum();
        sum / scenarios.len() as f64
    }

    /// Table 3 "FPGA fastest": the lightest realistic scenario.
    pub fn table3_fpga_fastest(&self, timing: &FpgaTimingModel) -> f64 {
        self.evaluate(timing, &Scenario::grid6x6(0.05, false)).cps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PhaseParams, FpgaTimingModel) {
        (PhaseParams::default(), FpgaTimingModel::default())
    }

    #[test]
    fn table3_fpga_rows_land_in_paper_band() {
        let (p, t) = setup();
        let avg = p.table3_fpga_average(&t);
        let fastest = p.table3_fpga_fastest(&t);
        // Paper: average 22 kHz, fastest 61.6 kHz. Accept the right
        // order of magnitude and ordering.
        assert!((10_000.0..40_000.0).contains(&avg), "avg {avg}");
        assert!((45_000.0..92_000.0).contains(&fastest), "fastest {fastest}");
        assert!(fastest > 2.0 * avg);
    }

    #[test]
    fn table4_shares_land_in_paper_ranges() {
        let (p, t) = setup();
        // Ranges across scenarios (paper gives ranges "because it depends
        // on the type of simulations performed").
        let scenarios = [
            Scenario::grid6x6(0.05, false),
            Scenario::grid6x6(0.10, false),
            Scenario::grid6x6(0.10, true),
            Scenario::grid6x6(0.14, true),
        ];
        let mut lo = [f64::MAX; 5];
        let mut hi = [f64::MIN; 5];
        for s in &scenarios {
            let sh = p.evaluate(&t, s).shares();
            for i in 0..5 {
                lo[i] = lo[i].min(sh[i]);
                hi[i] = hi[i].max(sh[i]);
            }
        }
        // generate 45–65 %
        assert!(hi[0] > 0.45 && hi[0] < 0.75, "gen hi {}", hi[0]);
        assert!(lo[0] > 0.30, "gen lo {}", lo[0]);
        // load 10–20 %
        assert!(lo[1] > 0.02 && hi[1] < 0.30, "load {:?}", (lo[1], hi[1]));
        // simulate 0–2 %
        assert!(hi[2] < 0.05, "sim visible {}", hi[2]);
        // retrieve 5–15 %
        assert!(
            lo[3] > 0.02 && hi[3] < 0.25,
            "retrieve {:?}",
            (lo[3], hi[3])
        );
        // analyse 5–40 %
        assert!(lo[4] > 0.02 && hi[4] < 0.50, "analyse {:?}", (lo[4], hi[4]));
    }

    #[test]
    fn rng_offload_speedup_matches_section8() {
        let (p, t) = setup();
        let sc_hw = Scenario::grid6x6(0.10, false);
        let sc_sw = Scenario {
            soft_rng: true,
            ..sc_hw
        };
        let speedup = p.evaluate(&t, &sc_hw).cps() / p.evaluate(&t, &sc_sw).cps();
        // Paper §8: "offloading the random number generation to the FPGA
        // gave an extra 50% simulation speed".
        assert!((1.2..1.8).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn fpga_time_stays_hidden() {
        let (p, t) = setup();
        let b = p.evaluate(&t, &Scenario::grid6x6(0.10, false));
        assert!(b.simulate_raw > 0.0);
        assert_eq!(b.simulate_visible, 0.0, "FPGA must hide behind ARM work");
    }

    #[test]
    fn heavier_load_is_slower() {
        let (p, t) = setup();
        let light = p.evaluate(&t, &Scenario::grid6x6(0.05, false)).cps();
        let heavy = p.evaluate(&t, &Scenario::grid6x6(0.14, true)).cps();
        assert!(light > heavy);
    }
}
