//! # platform — the ARM9 + Virtex-II FPGA platform model
//!
//! The paper's evaluation numbers that depend on the physical platform
//! (Tables 2, 3 and 4, and the §6/§7 frequency arithmetic) are produced
//! by three models, all parameterised by the paper's published platform
//! constants (86 MHz ARM9, 32-bit memory interface, 6.6 MHz FPGA logic
//! clock, 2 FPGA cycles per delta cycle, Virtex-II 8000 capacity):
//!
//! * [`timing`] — delta-cycle rate and maximum simulation frequency
//!   (§6: "3.3 · 10⁶ / 36 = 91.6 kHz for a 6-by-6 network");
//! * [`phases`] — the five-phase control loop's cost model: stimulus
//!   generation, buffer load, FPGA simulation (overlapped), result
//!   retrieval and analysis — reproducing Table 4's profile and Table 3's
//!   FPGA rows, including the §8 RNG-offload ablation;
//! * [`resources`] — CLB and BlockRAM usage of the simulator design
//!   (Table 2) and of direct full-network instantiation (§4's "size
//!   limitation of approximately 24 routers").
//!
//! Everything that *can* be computed from the implemented design (state
//! bits, memory geometry) is; the logic-complexity coefficients are
//! calibrated against the paper's synthesis report and documented as
//! such.

//! ```
//! use platform::FpgaTimingModel;
//!
//! // §6: "3.3e6 / 36 = 91.6 kHz for a 6-by-6 network".
//! let t = FpgaTimingModel::default();
//! let f = t.max_sim_freq_hz(36.0);
//! assert!((f - 91_666.0).abs() < 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod energy;
pub mod phases;
pub mod resources;
pub mod timing;

pub use energy::{EnergyParams, EnergyReport};
pub use phases::{PhaseBreakdown, PhaseParams, Scenario};
pub use resources::{FpgaDevice, ResourceModel, ResourceRow};
pub use timing::FpgaTimingModel;
