//! Buffer/router energy model — the design-study motivation of paper §3:
//! "we found that buffers require a relatively large amount of area and
//! energy. So we would like to redo the simulation of Figure 1 with
//! different buffer sizes and investigate what the effect of buffer size
//! on performance and energy consumption is."
//!
//! A simple activity-based model in the style of Orion/Bono-era NoC
//! energy estimators, in 130 nm-class units (pJ): each flit event costs
//! a buffer write + a buffer read (scaling with queue depth — larger
//! RAM/FF arrays burn more per access), a crossbar traversal, an
//! arbitration decision and a link traversal; idle routers pay leakage
//! proportional to their register count. The absolute joules are
//! calibrated constants; the *relative* conclusions (buffers dominate,
//! energy grows with depth) are the reproducible content.

use vc_router::RegisterLayout;

/// Per-event energy coefficients (pJ, 130 nm-class defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Buffer write at queue depth 4 (scales with depth^0.5 — wordline/
    /// bitline growth).
    pub buf_write_pj: f64,
    /// Buffer read at queue depth 4.
    pub buf_read_pj: f64,
    /// One crossbar traversal.
    pub crossbar_pj: f64,
    /// One arbitration decision.
    pub arbiter_pj: f64,
    /// One inter-router link traversal.
    pub link_pj: f64,
    /// Leakage per register bit per cycle.
    pub leak_pj_per_bit_cycle: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            buf_write_pj: 1.1,
            buf_read_pj: 0.9,
            crossbar_pj: 0.6,
            arbiter_pj: 0.2,
            link_pj: 0.8,
            leak_pj_per_bit_cycle: 0.0002,
        }
    }
}

/// Energy estimate of a simulated interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Buffer (queue) energy, nJ.
    pub buffer_nj: f64,
    /// Crossbar + arbitration energy, nJ.
    pub switch_nj: f64,
    /// Link energy, nJ.
    pub link_nj: f64,
    /// Leakage, nJ.
    pub leakage_nj: f64,
}

impl EnergyReport {
    /// Total energy in nJ.
    pub fn total_nj(&self) -> f64 {
        self.buffer_nj + self.switch_nj + self.link_nj + self.leakage_nj
    }

    /// Energy per delivered flit in pJ.
    pub fn per_flit_pj(&self, delivered_flits: u64) -> f64 {
        if delivered_flits == 0 {
            0.0
        } else {
            self.total_nj() * 1e3 / delivered_flits as f64
        }
    }
}

impl EnergyParams {
    /// Depth scaling of a buffer access (relative to depth 4).
    fn depth_scale(depth: usize) -> f64 {
        (depth as f64 / 4.0).sqrt()
    }

    /// Estimate the network energy of an interval.
    ///
    /// * `nodes`, `queue_depth` — network parameters;
    /// * `cycles` — simulated cycles;
    /// * `flit_hops` — total flit-hop events (each is one buffer write +
    ///   read + crossbar + arbitration + link);
    /// * `delivered_flits`, `injected_flits` — endpoint events (local
    ///   port traversals, no inter-router link).
    pub fn estimate(
        &self,
        nodes: usize,
        queue_depth: usize,
        cycles: u64,
        flit_hops: u64,
        injected_flits: u64,
        delivered_flits: u64,
    ) -> EnergyReport {
        let ds = Self::depth_scale(queue_depth);
        let buf_event = (self.buf_write_pj + self.buf_read_pj) * ds;
        let endpoint_events = injected_flits + delivered_flits;
        let buffer_pj = buf_event * (flit_hops + endpoint_events) as f64;
        let switch_pj = (self.crossbar_pj + self.arbiter_pj) * (flit_hops + delivered_flits) as f64;
        let link_pj = self.link_pj * flit_hops as f64;
        let bits = RegisterLayout::new(queue_depth).total_bits() as f64;
        let leak_pj = self.leak_pj_per_bit_cycle * bits * nodes as f64 * cycles as f64;
        EnergyReport {
            buffer_nj: buffer_pj / 1e3,
            switch_nj: switch_pj / 1e3,
            link_nj: link_pj / 1e3,
            leakage_nj: leak_pj / 1e3,
        }
    }

    /// Convenience: estimate from a runner report, using the average hop
    /// count of the workload.
    pub fn estimate_run(
        &self,
        report: &noc_types_run::RunLike,
        queue_depth: usize,
        avg_hops: f64,
    ) -> EnergyReport {
        self.estimate(
            report.nodes,
            queue_depth,
            report.cycles,
            (report.delivered_flits as f64 * avg_hops) as u64,
            report.injected_flits,
            report.delivered_flits,
        )
    }
}

/// Minimal view of a run for energy estimation (decouples this crate
/// from the runner's report type).
pub mod noc_types_run {
    /// The counters energy estimation needs.
    #[derive(Debug, Clone, Copy)]
    pub struct RunLike {
        /// Network size.
        pub nodes: usize,
        /// Simulated cycles.
        pub cycles: u64,
        /// Flits injected at local ports.
        pub injected_flits: u64,
        /// Flits delivered at local ports.
        pub delivered_flits: u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(flits: u64) -> noc_types_run::RunLike {
        noc_types_run::RunLike {
            nodes: 36,
            cycles: 10_000,
            injected_flits: flits,
            delivered_flits: flits,
        }
    }

    #[test]
    fn buffers_dominate_dynamic_energy() {
        // The §3 observation that motivated the study.
        let p = EnergyParams::default();
        let e = p.estimate_run(&run(50_000), 4, 3.0);
        assert!(e.buffer_nj > e.switch_nj);
        assert!(e.buffer_nj > e.link_nj);
    }

    #[test]
    fn deeper_buffers_cost_more_energy() {
        let p = EnergyParams::default();
        let e2 = p.estimate_run(&run(50_000), 2, 3.0);
        let e8 = p.estimate_run(&run(50_000), 8, 3.0);
        assert!(e8.total_nj() > e2.total_nj());
        // Both dynamic (access scaling) and static (leakage over more
        // bits) grow.
        assert!(e8.buffer_nj > e2.buffer_nj);
        assert!(e8.leakage_nj > e2.leakage_nj);
    }

    #[test]
    fn energy_scales_with_traffic_and_idle_network_only_leaks() {
        let p = EnergyParams::default();
        let light = p.estimate_run(&run(5_000), 4, 3.0);
        let heavy = p.estimate_run(&run(50_000), 4, 3.0);
        assert!(heavy.total_nj() > light.total_nj());
        let idle = p.estimate_run(&run(0), 4, 3.0);
        assert_eq!(idle.buffer_nj, 0.0);
        assert!(idle.leakage_nj > 0.0);
        assert_eq!(idle.per_flit_pj(0), 0.0);
    }

    #[test]
    fn per_flit_energy_is_plausible() {
        // 130 nm NoC routers land in the tens of pJ per flit-hop.
        let p = EnergyParams::default();
        let e = p.estimate_run(&run(50_000), 4, 3.0);
        let per_flit = e.per_flit_pj(50_000);
        assert!(
            (5.0..100.0).contains(&per_flit),
            "unrealistic {per_flit} pJ/flit"
        );
    }
}
