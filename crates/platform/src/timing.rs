//! FPGA timing: from delta cycles to wall-clock simulation frequency.
//!
//! Paper §5.2: "In the current implementation reading the values from
//! memory takes 1 cycle. Evaluation of the combinatorial logic and
//! writing the result in memory takes another cycle. In total a delta
//! cycle equals 2 FPGA cycles." §6: "The router design is synthesized for
//! a frequency of 6.6 MHz, which gives a delta cycle frequency of
//! 3.3 MHz. This limits the maximum simulation frequency of the simulator
//! to 3.3 · 10⁶ / 36 = 91.6 kHz for a 6-by-6 network."

/// The FPGA-side timing constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaTimingModel {
    /// Synthesised logic clock in Hz (paper: 6.6 MHz).
    pub f_logic_hz: f64,
    /// FPGA clock cycles per delta cycle (paper: 2 — one memory read,
    /// one evaluate+write).
    pub cycles_per_delta: f64,
}

impl Default for FpgaTimingModel {
    fn default() -> Self {
        FpgaTimingModel {
            f_logic_hz: 6.6e6,
            cycles_per_delta: 2.0,
        }
    }
}

impl FpgaTimingModel {
    /// Delta cycles the FPGA executes per second (paper: 3.3 MHz).
    pub fn delta_rate_hz(&self) -> f64 {
        self.f_logic_hz / self.cycles_per_delta
    }

    /// Maximum simulation frequency given the average number of delta
    /// cycles per system cycle (= number of routers + re-evaluations).
    pub fn max_sim_freq_hz(&self, deltas_per_cycle: f64) -> f64 {
        assert!(deltas_per_cycle > 0.0);
        self.delta_rate_hz() / deltas_per_cycle
    }

    /// FPGA seconds needed to simulate `cycles` system cycles.
    pub fn sim_seconds(&self, cycles: u64, deltas_per_cycle: f64) -> f64 {
        cycles as f64 / self.max_sim_freq_hz(deltas_per_cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers() {
        let t = FpgaTimingModel::default();
        assert!((t.delta_rate_hz() - 3.3e6).abs() < 1.0);
        // §6: 91.6 kHz for 6x6 at the delta minimum.
        let f = t.max_sim_freq_hz(36.0);
        assert!((f - 91_666.0).abs() < 100.0, "got {f}");
    }

    #[test]
    fn reevaluations_slow_the_simulator_down() {
        let t = FpgaTimingModel::default();
        // 20% extra delta cycles (heavy load) cost ~17% frequency.
        let f0 = t.max_sim_freq_hz(36.0);
        let f1 = t.max_sim_freq_hz(36.0 * 1.2);
        assert!(f1 < f0);
        assert!((f0 / f1 - 1.2).abs() < 1e-9);
    }

    #[test]
    fn sim_seconds_scale_linearly() {
        let t = FpgaTimingModel::default();
        let s = t.sim_seconds(91_666, 36.0);
        assert!((s - 1.0).abs() < 0.01);
    }
}
