//! FPGA resource model — Table 2 ("FPGA resource usage, 256 routers"),
//! Table 1 (via [`vc_router::RegisterLayout`]) and §4's direct-
//! instantiation limit ("initial synthesis tests showed a size limitation
//! of approximately 24 routers in a Virtex-II 8000").
//!
//! BlockRAM counts are *computed* from the implemented memory geometry
//! (state memory, link memory, stimuli/result buffers). CLB counts use
//! logic-complexity estimates — LUT counts derived from mux/compare
//! widths with coefficients calibrated against the paper's synthesis
//! report — and are labelled as calibrated estimates in the experiment
//! write-up.

use noc_types::NUM_QUEUES;
use vc_router::RegisterLayout;

/// An FPGA device's capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpgaDevice {
    /// Device name.
    pub name: &'static str,
    /// CLB slices available.
    pub slices: usize,
    /// 18-kbit BlockRAMs available.
    pub brams: usize,
}

impl FpgaDevice {
    /// The paper's Xilinx Virtex-II 8000 (XC2V8000).
    pub const fn virtex2_8000() -> Self {
        FpgaDevice {
            name: "Virtex-II 8000",
            slices: 46_592,
            brams: 168,
        }
    }
}

/// One row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceRow {
    /// Design block name.
    pub block: &'static str,
    /// CLB slices used.
    pub clb: usize,
    /// 18-kbit BlockRAMs used.
    pub ram: usize,
}

/// Usable bits in an 18-kbit BlockRAM (parity bits excluded).
const BRAM_BITS: usize = 16 * 1024;

/// Resource model of the sequential simulator design.
#[derive(Debug, Clone)]
pub struct ResourceModel {
    /// Number of routers the build supports.
    pub nodes: usize,
    /// Register layout (Table 1) of one router.
    pub layout: RegisterLayout,
    /// Stimuli-buffer entries per VC ring in the FPGA build (the paper
    /// sizes these to the simulation period; the software harness uses
    /// larger rings for convenience).
    pub stim_entries: usize,
    /// Output-buffer entries per router in the FPGA build.
    pub out_entries: usize,
    /// Bits per buffer entry (timestamped flit record).
    pub entry_bits: usize,
}

impl ResourceModel {
    /// The paper's build: 256 routers, depth-4 queues.
    pub fn paper_build() -> Self {
        ResourceModel {
            nodes: 256,
            layout: RegisterLayout::new(4),
            stim_entries: 32,
            out_entries: 64,
            entry_bits: 40,
        }
    }

    /// BlockRAMs for the double-buffered state memory: `2 × nodes` words
    /// of `state_bits` each, banked into 18-kbit BlockRAMs.
    pub fn state_memory_brams(&self) -> usize {
        let bits = 2 * self.nodes * self.layout.state_bits();
        bits.div_ceil(BRAM_BITS)
    }

    /// BlockRAMs for the stimuli rings and injection-side bookkeeping.
    pub fn stimuli_brams(&self) -> usize {
        let bits = self.nodes * noc_types::NUM_VCS * self.stim_entries * self.entry_bits;
        bits.div_ceil(BRAM_BITS)
    }

    /// BlockRAMs for the link memory + HBR bits + output/access buffers
    /// (the "Network" block of Table 2).
    pub fn network_brams(&self) -> usize {
        let link_bits = self.nodes * (self.layout.link_bits() / 2 + 8); // out-half + HBR bits
        let out_bits = self.nodes * self.out_entries * self.entry_bits;
        (link_bits + out_bits / 4).div_ceil(BRAM_BITS)
    }

    /// CLB slices of the shared router logic (crossbar muxes, arbiters,
    /// queue management, route computation). Calibrated estimate.
    pub fn router_clb(&self) -> usize {
        // 5 output muxes, 21 bits wide, 20:1 -> ~2 LUT4 levels per bit.
        let crossbar = 5 * 21 * NUM_QUEUES / 4;
        // Arbiters: two-level round-robin over 20 requesters x 5 outputs.
        let arbiters = 5 * (NUM_QUEUES * 6);
        // Queue pointers/compare + enqueue steering + route units.
        let queues = NUM_QUEUES * 14;
        let route = 5 * 40;
        (crossbar + arbiters + queues + route) / 2 + 300 // LUT pairs -> slices + control FSM
    }

    /// CLB slices of the stimuli interface logic. Calibrated estimate.
    pub fn stimuli_clb(&self) -> usize {
        // Per-VC ring pointer arithmetic, timestamp compare, RR pick,
        // packing/unpacking of 64-bit entries.
        540
    }

    /// CLB slices of the network glue (link-memory addressing, HBR
    /// bookkeeping, topology mux). Scales with the topology mux width.
    pub fn network_clb(&self) -> usize {
        1600 + self.nodes * 2
    }

    /// CLB slices of the hardware RNG farm (paper: 2021, no BlockRAM —
    /// wide parallel LFSRs serving all stimuli channels).
    pub fn rng_clb(&self) -> usize {
        2021
    }

    /// CLB slices of the global control (scheduler, address generation,
    /// host interface decode).
    pub fn control_clb(&self) -> usize {
        500 + (self.nodes.ilog2() as usize) * 16
    }

    /// The rows of Table 2.
    pub fn table2(&self) -> Vec<ResourceRow> {
        vec![
            ResourceRow {
                block: "Router",
                clb: self.router_clb(),
                ram: self.state_memory_brams(),
            },
            ResourceRow {
                block: "Stimuli interface",
                clb: self.stimuli_clb(),
                ram: self.stimuli_brams(),
            },
            ResourceRow {
                block: "Network",
                clb: self.network_clb(),
                ram: self.network_brams(),
            },
            ResourceRow {
                block: "Random number generator",
                clb: self.rng_clb(),
                ram: 0,
            },
            ResourceRow {
                block: "Global control",
                clb: self.control_clb(),
                ram: 0,
            },
        ]
    }

    /// The paper's Table 2 for side-by-side reporting.
    pub fn paper_table2() -> Vec<ResourceRow> {
        vec![
            ResourceRow {
                block: "Router",
                clb: 1762,
                ram: 61,
            },
            ResourceRow {
                block: "Stimuli interface",
                clb: 540,
                ram: 62,
            },
            ResourceRow {
                block: "Network",
                clb: 2103,
                ram: 16,
            },
            ResourceRow {
                block: "Random number generator",
                clb: 2021,
                ram: 0,
            },
            ResourceRow {
                block: "Global control",
                clb: 627,
                ram: 0,
            },
        ]
    }

    /// Total (CLB, BlockRAM) of the simulator design.
    pub fn totals(&self) -> (usize, usize) {
        self.table2()
            .iter()
            .fold((0, 0), |(c, r), row| (c + row.clb, r + row.ram))
    }

    /// Slices of ONE directly instantiated router (logic + its own
    /// registers as flip-flops), at a given datapath width in bits.
    /// §4's feasibility test used a reduced 6-bit datapath.
    pub fn direct_router_slices(&self, payload_bits: usize) -> usize {
        // Logic scales roughly with datapath width; control does not.
        let scale = payload_bits as f64 / 16.0;
        let logic = (self.router_clb() as f64 * (0.4 + 0.6 * scale)) as usize;
        // Registers: 2 flip-flops per slice; queue bits scale with width.
        let queue_bits =
            (self.layout.queue_bits() as f64 * (payload_bits as f64 + 2.0) / 18.0) as usize;
        let ff = queue_bits + self.layout.control_bits();
        logic + ff / 2
    }

    /// Maximum routers that fit as a direct (non-time-multiplexed)
    /// instantiation on `dev`, at the given datapath width. §4: "a size
    /// limitation of approximately 24 routers in a Virtex-II 8000 [...]
    /// with a reduced data-path of 6-bit".
    pub fn max_direct_routers(&self, dev: &FpgaDevice, payload_bits: usize) -> usize {
        let per = self.direct_router_slices(payload_bits);
        // Interconnect/tri-state pressure: the paper names tri-state
        // buffers as the second bottleneck; derate usable slices.
        let usable = (dev.slices as f64 * 0.85) as usize;
        usable / per
    }

    /// Maximum routers the *sequential* simulator supports on `dev`
    /// (BlockRAM-limited, §6: "the limiting factor of the design is the
    /// number of RAM-blocks").
    pub fn max_sequential_routers(&self, dev: &FpgaDevice) -> usize {
        let mut n = self.nodes;
        loop {
            let m = ResourceModel {
                nodes: n,
                ..self.clone()
            };
            let (clb, ram) = m.totals();
            if clb <= dev.slices && ram <= dev.brams {
                return n;
            }
            if n <= 2 {
                return 0;
            }
            n -= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_magnitudes_match_paper() {
        let m = ResourceModel::paper_build();
        let dev = FpgaDevice::virtex2_8000();
        let (clb, ram) = m.totals();
        // Paper: 7053 CLB (15 %), 139 BRAM (82 %).
        assert!((5_000..10_000).contains(&clb), "clb {clb}");
        assert!((110..168).contains(&ram), "ram {ram}");
        let clb_frac = clb as f64 / dev.slices as f64;
        let ram_frac = ram as f64 / dev.brams as f64;
        assert!(clb_frac < 0.25, "clb frac {clb_frac}");
        assert!(ram_frac > 0.60, "ram frac {ram_frac}");
        // The paper's central observation: RAM, not logic, limits.
        assert!(ram_frac > 2.0 * clb_frac);
    }

    #[test]
    fn state_memory_dominates_router_ram() {
        let m = ResourceModel::paper_build();
        // Paper row "Router": 61 BlockRAMs — the double-buffered state
        // memory of 256 routers.
        let b = m.state_memory_brams();
        assert!((50..80).contains(&b), "state brams {b}");
    }

    #[test]
    fn direct_instantiation_caps_in_paper_range() {
        let m = ResourceModel::paper_build();
        let dev = FpgaDevice::virtex2_8000();
        // §4: ~24 routers at a 6-bit datapath.
        let max6 = m.max_direct_routers(&dev, 6);
        assert!((16..36).contains(&max6), "6-bit direct max {max6}");
        // Full 16-bit datapath fits even fewer.
        let max16 = m.max_direct_routers(&dev, 16);
        assert!(max16 < max6);
        // The sequential simulator fits an order of magnitude more.
        let seq = m.max_sequential_routers(&dev);
        assert!(seq >= 7 * max6, "sequential {seq} vs direct {max6}");
    }

    #[test]
    fn sequential_supports_256_routers() {
        let m = ResourceModel::paper_build();
        let dev = FpgaDevice::virtex2_8000();
        assert_eq!(m.max_sequential_routers(&dev), 256);
    }

    #[test]
    fn smaller_fpga_reduces_router_count() {
        // §6: "It would be possible to simulate the design in smaller
        // FPGAs, but it would reduce the maximum number of routers."
        let m = ResourceModel::paper_build();
        let small = FpgaDevice {
            name: "half",
            slices: 23_296,
            brams: 84,
        };
        let n = m.max_sequential_routers(&small);
        assert!((64..256).contains(&n), "half-size device supports {n}");
    }
}
