//! # rtl-kernel — an event-driven, signal-level simulation kernel
//!
//! The slowest, finest-grained baseline of the paper's Table 3 ("VHDL",
//! 10–17 simulated cycles per second). This crate rebuilds the VHDL
//! *simulation semantics*: signals carrying events, processes with
//! sensitivity lists, a delta-cycle cascade per time step and a timed
//! event calendar driving the clock.
//!
//! * [`kernel`] — the event kernel: signals, processes, sensitivity,
//!   scheduled transactions, delta cascades, the event calendar and the
//!   clock generator.
//! * [`netlist`] — the NoC described at netlist granularity: ~38
//!   processes and ~40 signals per router (one process per input queue,
//!   per-output arbiter and forward-mux processes, per-port room
//!   processes, a switch-control process and the stimuli interface),
//!   implementing the same bit-exact semantics as every other engine.
//!
//! The per-signal event traffic is what makes this style slow — each
//! moving flit touches a dozen signals, each waking several processes —
//! and that slowness is the paper's motivation for the FPGA simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
// Positional `for i in 0..n` loops indexing several parallel arrays are
// the natural shape for port/node-indexed hardware code; iterator zips
// would obscure which port is which.
#![allow(clippy::needless_range_loop)]

pub mod kernel;
pub mod lint;
pub mod netlist;

pub use kernel::{EventKernel, EventStats, ProcId, SigId};
pub use lint::kernel_graph;
pub use netlist::RtlNoc;
