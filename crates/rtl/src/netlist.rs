//! The NoC as a netlist-granularity model on the event kernel.
//!
//! Per router roughly 78 processes and ~170–280 signals (depth
//! dependent) — the register state itself lives in signals, VHDL style:
//!
//! * per input queue (×20): a clocked *register* process owning nothing —
//!   the FIFO slots and rd/wr/occupancy pointers are individual signals —
//!   plus a combinational *front* process deriving the queue-status word;
//! * per input port (×5): a combinational *room* process (occupancy
//!   compare per VC);
//! * per (output, VC) pair (×20): a combinational *candidate* process
//!   implementing the wormhole-owner check and the queue-level
//!   round-robin head scan;
//! * per output port (×5): a combinational *VC-selector* process (the
//!   VC-level round-robin) and a *forward-mux* process gating the grant
//!   with the downstream room wire;
//! * one clocked *switch-control* process (owner table and round-robin
//!   pointers, held in `ctrl` signals);
//! * a stimuli-interface pair (clocked register update + combinational
//!   offer), and a global clocked cycle-counter process.
//!
//! Each moving flit therefore touches a dozen signals whose events fan
//! out into dozens of process activations — the per-signal bookkeeping
//! that makes event-driven RTL simulation slow, and that the paper's
//! sequential FPGA method is built to escape. Semantically this is the
//! same router as every other engine, bit for bit; the differential tests
//! enforce it.

use crate::kernel::{EventKernel, EventStats, SigId};
use noc::engine::ring_pending;
use noc::{NocEngine, Wiring};
use noc_types::fault::{FaultPlan, NodeFaults};
use noc_types::flit::room_from_bits;
use noc_types::{
    Direction, Flit, LinkFwd, NetworkConfig, NodeId, Port, NUM_PORTS, NUM_QUEUES, NUM_VCS,
};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use vc_router::iface::{iface_clock, iface_pick};
use vc_router::routing::route;
use vc_router::{AccEntry, IfaceConfig, IfaceRegs, IfaceRings, OutEntry, RouterCtx, StimEntry};

/// Pack a queue-status word: front flit (18) | valid (1) | occupancy (4).
fn q_st_pack(front: Option<u64>, occ: u64) -> u64 {
    match front {
        Some(f) => f | (1 << 18) | (occ << 19),
        None => occ << 19,
    }
}

fn q_st_front(bits: u64) -> Option<Flit> {
    ((bits >> 18) & 1 == 1).then(|| Flit::from_bits(bits & 0x3FFFF))
}

/// Dedup a declared read/write list (boundary ports repeat the shared
/// constant-zero signal).
fn uniq(mut v: Vec<SigId>) -> Vec<SigId> {
    v.sort_unstable();
    v.dedup();
    v
}

/// ctrl word layout per output: 4 × (owner 6b | inner_rr 5b) | outer_rr 2b.
fn ctrl_owner(bits: u64, vc: usize) -> Option<u8> {
    vc_router::regs::owner_decode(((bits >> (vc * 11)) & 0x3F) as u8)
}

fn ctrl_inner(bits: u64, vc: usize) -> u8 {
    ((bits >> (vc * 11 + 6)) & 0x1F) as u8
}

fn ctrl_outer(bits: u64) -> u8 {
    ((bits >> 44) & 0b11) as u8
}

fn ctrl_pack(owner: [Option<u8>; NUM_VCS], inner: [u8; NUM_VCS], outer: u8) -> u64 {
    let mut w = 0u64;
    for v in 0..NUM_VCS {
        w |= (vc_router::regs::owner_encode(owner[v]) as u64) << (v * 11);
        w |= (inner[v] as u64) << (v * 11 + 6);
    }
    w | ((outer as u64) << 44)
}

/// cand word: valid (1) << 5 | queue (5).
fn cand_pack(q: Option<u8>) -> u64 {
    match q {
        Some(q) => 0x20 | q as u64,
        None => 0,
    }
}

fn cand_unpack(bits: u64) -> Option<u8> {
    (bits & 0x20 != 0).then_some((bits & 0x1F) as u8)
}

/// sel word: valid (1) << 7 | vc (2) << 5 | queue (5).
fn sel_pack(g: Option<(u8, u8)>) -> u64 {
    match g {
        Some((vc, q)) => 0x80 | ((vc as u64) << 5) | q as u64,
        None => 0,
    }
}

fn sel_unpack(bits: u64) -> Option<(u8, u8)> {
    (bits & 0x80 != 0).then_some((((bits >> 5) & 0b11) as u8, (bits & 0x1F) as u8))
}

/// Shared stimuli-interface state of one router (registers + BRAM rings).
struct IfaceState {
    regs: IfaceRegs,
    rings: IfaceRings,
}

/// The VHDL-like NoC engine.
pub struct RtlNoc {
    cfg: NetworkConfig,
    iface_cfg: IfaceConfig,
    kernel: EventKernel,
    iface: Vec<Rc<RefCell<IfaceState>>>,
    fwd_sigs: Vec<[SigId; 4]>,
    /// Pre-edge snapshot of the forward wires of the last completed
    /// cycle (probe support).
    probe_buf: Vec<[u64; 4]>,
    wr_sigs: Vec<[SigId; NUM_VCS]>,
    /// Queue-occupancy register signals (host "memory peek" support).
    occ_sigs: Vec<[SigId; NUM_QUEUES]>,
    stim_wr: Vec<[u16; NUM_VCS]>,
    out_rd: Vec<u16>,
    acc_rd: Vec<u16>,
    cycle: u64,
    faults: Option<Arc<FaultPlan>>,
    instr: Option<RtlInstr>,
}

/// Registry handles publishing the event kernel's activity counters as
/// `rtl.*` series (deltas added once per system cycle).
struct RtlInstr {
    events: simtrace::Counter,
    activations: simtrace::Counter,
    deltas: simtrace::Counter,
    last: EventStats,
}

/// Per-queue register signals.
#[derive(Clone, Copy)]
struct QueueSigs {
    slots: [SigId; vc_router::MAX_QUEUE_DEPTH],
    rd: SigId,
    wr: SigId,
    occ: SigId,
    st: SigId,
}

impl RtlNoc {
    /// Elaborate the netlist for a network configuration.
    pub fn new(cfg: NetworkConfig, iface_cfg: IfaceConfig) -> Self {
        Self::with_faults(cfg, iface_cfg, None)
    }

    /// Elaborate with a deterministic fault plan. Stall windows gate the
    /// room and forward-mux processes (wires forced low) and every
    /// clocked register process of the router; link faults rewrite the
    /// forward word at the consuming queue-register process — the same
    /// application points as the native reference.
    pub fn with_faults(
        cfg: NetworkConfig,
        iface_cfg: IfaceConfig,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        iface_cfg.validate();
        let n = cfg.num_nodes();
        let depth = cfg.router.queue_depth;
        let wiring = Wiring::new(&cfg);
        let mut k = EventKernel::new();
        let nfs: Vec<NodeFaults> = (0..n)
            .map(|r| {
                faults
                    .as_ref()
                    .map(|p| p.node_faults(r))
                    .unwrap_or_default()
            })
            .collect();

        let clk = k.signal(0);
        k.add_clock(clk, 5);
        let zero = k.signal(0);
        // Global cycle-counter register: pre-edge value = current cycle.
        let cnt = k.signal(0);
        k.process_rw("cycle-counter", &[clk], &[clk, cnt], &[cnt], move |ctx| {
            if ctx.read(clk) == 1 {
                let v = ctx.read(cnt) + 1;
                ctx.write(cnt, v);
            }
        });

        // Signals.
        let queues: Vec<[QueueSigs; NUM_QUEUES]> = (0..n)
            .map(|_| {
                core::array::from_fn(|_| QueueSigs {
                    // Slots past the configured depth alias the shared
                    // constant-zero signal instead of allocating dead
                    // signals the spec-graph lint would flag.
                    slots: core::array::from_fn(|i| if i < depth { k.signal(0) } else { zero }),
                    rd: k.signal(0),
                    wr: k.signal(0),
                    occ: k.signal(0),
                    st: k.signal(0),
                })
            })
            .collect();
        let ctrl: Vec<[SigId; NUM_PORTS]> = (0..n)
            .map(|_| core::array::from_fn(|_| k.signal(ctrl_pack([None; 4], [0; 4], 0))))
            .collect();
        let cand: Vec<[SigId; NUM_QUEUES]> = (0..n)
            .map(|_| core::array::from_fn(|_| k.signal(0)))
            .collect();
        let sel: Vec<[SigId; NUM_PORTS]> = (0..n)
            .map(|_| core::array::from_fn(|_| k.signal(0)))
            .collect();
        let fwd: Vec<[SigId; NUM_PORTS]> = (0..n)
            .map(|_| core::array::from_fn(|_| k.signal(0)))
            .collect();
        let room: Vec<[SigId; NUM_PORTS]> = (0..n)
            .map(|_| core::array::from_fn(|_| k.signal(0xF)))
            .collect();
        let offer: Vec<SigId> = (0..n).map(|_| k.signal(0)).collect();
        let iface_ver: Vec<SigId> = (0..n).map(|_| k.signal(0)).collect();
        let wr_sigs: Vec<[SigId; NUM_VCS]> = (0..n)
            .map(|_| core::array::from_fn(|_| k.signal(0)))
            .collect();

        let iface: Vec<Rc<RefCell<IfaceState>>> = (0..n)
            .map(|_| {
                Rc::new(RefCell::new(IfaceState {
                    regs: IfaceRegs::default(),
                    rings: IfaceRings::new(&iface_cfg),
                }))
            })
            .collect();

        // The room wire our output port `o` sees (usize::MAX = constant
        // all-room, the Local capture path).
        let room_in_sig = |r: usize, o: usize| -> SigId {
            if o == Port::Local.index() {
                return usize::MAX;
            }
            match wiring.neighbour(r, o) {
                Some(nb) => room[nb][Direction::from_index(o).opposite().index()],
                None => zero,
            }
        };

        for r in 0..n {
            let ctx_r = RouterCtx::new(&cfg, cfg.shape.coord(NodeId(r as u16)));
            let has_stall = nfs[r].has_stalls();
            let has_link = (0..4).any(|d| nfs[r].link_faulty(d));

            for q in 0..NUM_QUEUES {
                let port = q / NUM_VCS;
                let vc = q % NUM_VCS;
                let qs = queues[r][q];
                let my_sels = sel[r];
                let rooms: [SigId; NUM_PORTS] = core::array::from_fn(|o| room_in_sig(r, o));
                let enq_sig = if port == Port::Local.index() {
                    offer[r]
                } else {
                    match wiring.neighbour(r, port) {
                        Some(nb) => fwd[nb][Direction::from_index(port).opposite().index()],
                        None => zero,
                    }
                };

                // Queue register process (clocked): FIFO slots and
                // pointers are signals; every register is re-assigned
                // each cycle (VHDL synchronous-process style).
                let nf = nfs[r].clone();
                let reads = uniq(
                    [clk, cnt, qs.rd, qs.wr, qs.occ, enq_sig]
                        .into_iter()
                        .chain(my_sels)
                        .chain(rooms.into_iter().filter(|&s| s != usize::MAX))
                        .collect(),
                );
                let writes = uniq(
                    qs.slots[..depth]
                        .iter()
                        .copied()
                        .chain([qs.rd, qs.wr, qs.occ])
                        .collect(),
                );
                k.process_rw("queue-reg", &[clk], &reads, &writes, move |ctx| {
                    if ctx.read(clk) != 1 {
                        return;
                    }
                    let cycle = ctx.read(cnt);
                    if nf.stalled(cycle) {
                        return; // registers held
                    }
                    let mut rd = ctx.read(qs.rd);
                    let mut wr = ctx.read(qs.wr);
                    let mut occ = ctx.read(qs.occ);
                    // Dequeue when granted and the downstream has room.
                    for (o, s) in my_sels.iter().enumerate() {
                        if let Some((g_vc, g_q)) = sel_unpack(ctx.read(*s)) {
                            if g_q as usize == q {
                                let room_ok = if rooms[o] == usize::MAX {
                                    true
                                } else {
                                    room_from_bits(ctx.read(rooms[o]))[g_vc as usize]
                                };
                                if room_ok {
                                    debug_assert!(occ > 0, "grant to empty queue");
                                    rd = (rd + 1) % depth as u64;
                                    occ -= 1;
                                }
                            }
                        }
                    }
                    // Enqueue the incoming flit for this VC (rewritten by
                    // any fault on the link it arrives over).
                    let mut enq_word = ctx.read(enq_sig);
                    if port != Port::Local.index() && nf.link_faulty(port) {
                        enq_word = nf.apply_link(port, cycle, enq_word);
                    }
                    let w = LinkFwd::from_bits(enq_word);
                    if w.valid && w.vc as usize == vc && (occ as usize) < depth {
                        ctx.write(qs.slots[wr as usize], w.flit.to_bits());
                        wr = (wr + 1) % depth as u64;
                        occ += 1;
                    }
                    ctx.write(qs.rd, rd);
                    ctx.write(qs.wr, wr);
                    ctx.write(qs.occ, occ);
                });

                // Front/status process (comb): the head-of-queue mux.
                let mut sens: Vec<SigId> = qs.slots[..depth].to_vec();
                sens.push(qs.rd);
                sens.push(qs.occ);
                k.process_rw("queue-front", &sens, &sens, &[qs.st], move |ctx| {
                    let occ = ctx.read(qs.occ);
                    let front = (occ > 0).then(|| ctx.read(qs.slots[ctx.read(qs.rd) as usize]));
                    ctx.write(qs.st, q_st_pack(front, occ));
                });
            }

            // Room processes (comb): occupancy compare per VC. A stall
            // window forces the wire low; `cnt` joins the sensitivity
            // (only where a window exists) so the edges of the window
            // re-evaluate the wire even though no occupancy changed.
            for p in 0..NUM_PORTS {
                let occs: [SigId; NUM_VCS] =
                    core::array::from_fn(|v| queues[r][p * NUM_VCS + v].occ);
                let out = room[r][p];
                let nf = nfs[r].clone();
                let mut sens: Vec<SigId> = occs.to_vec();
                if has_stall {
                    sens.push(cnt);
                }
                let reads = uniq(occs.iter().copied().chain([cnt]).collect());
                k.process_rw("room", &sens, &reads, &[out], move |ctx| {
                    if nf.stalled(ctx.read(cnt)) {
                        ctx.write(out, 0);
                        return;
                    }
                    let mut bits = 0u64;
                    for (v, s) in occs.iter().enumerate() {
                        if (ctx.read(*s) as usize) < depth {
                            bits |= 1 << v;
                        }
                    }
                    ctx.write(out, bits);
                });
            }

            // Candidate processes (comb), one per (output, VC): the
            // wormhole-owner check and the queue-level round-robin scan.
            let sts: [SigId; NUM_QUEUES] = core::array::from_fn(|q| queues[r][q].st);
            for o in 0..NUM_PORTS {
                for vc in 0..NUM_VCS {
                    let my_ctrl = ctrl[r][o];
                    let all_ctrls = ctrl[r];
                    let out = cand[r][o * NUM_VCS + vc];
                    let mut sens: Vec<SigId> = sts.to_vec();
                    sens.push(my_ctrl);
                    if has_link {
                        // The owner-exclusion scan below reads every
                        // output's owner table, so the process must wake
                        // on all of them. Only reachable when a link
                        // fault can strand a worm mid-transfer, so the
                        // clean-run event counts stay untouched.
                        sens.extend(all_ctrls.iter().filter(|&&c| c != my_ctrl));
                    }
                    let reads = uniq(sts.iter().copied().chain(all_ctrls).collect());
                    k.process_rw("candidate", &sens, &reads, &[out], move |ctx| {
                        let c = ctx.read(my_ctrl);
                        let q = match ctrl_owner(c, vc) {
                            Some(owner_q) => (q_st_front(ctx.read(sts[owner_q as usize]))
                                .is_some())
                            .then_some(owner_q),
                            None => {
                                let start = ctrl_inner(c, vc) as usize;
                                (0..NUM_QUEUES)
                                    .map(|j| (start + j) % NUM_QUEUES)
                                    .find(|&q| {
                                        // A queue still owning an output
                                        // VC (its worm's tail was dropped
                                        // by a link fault) may not bid
                                        // its next head until released.
                                        let owns_elsewhere = all_ctrls.iter().any(|&cs| {
                                            let cw = ctx.read(cs);
                                            (0..NUM_VCS).any(|v| ctrl_owner(cw, v) == Some(q as u8))
                                        });
                                        if owns_elsewhere {
                                            return false;
                                        }
                                        match q_st_front(ctx.read(sts[q])) {
                                            Some(f) if f.kind.is_head() => {
                                                let in_vc = (q % NUM_VCS) as u8;
                                                let (p, ovc) = route(&ctx_r, f.dest(), in_vc);
                                                p.index() == o && ovc as usize == vc
                                            }
                                            _ => false,
                                        }
                                    })
                                    .map(|q| q as u8)
                            }
                        };
                        ctx.write(out, cand_pack(q));
                    });
                }
            }

            // VC-selector processes (comb): VC-level round-robin.
            for o in 0..NUM_PORTS {
                let cands: [SigId; NUM_VCS] = core::array::from_fn(|v| cand[r][o * NUM_VCS + v]);
                let my_ctrl = ctrl[r][o];
                let out = sel[r][o];
                let mut sens: Vec<SigId> = cands.to_vec();
                sens.push(my_ctrl);
                k.process_rw("vc-select", &sens, &sens, &[out], move |ctx| {
                    let outer = ctrl_outer(ctx.read(my_ctrl)) as usize;
                    let mut grant = None;
                    for kv in 0..NUM_VCS {
                        let vc = (outer + kv) % NUM_VCS;
                        if let Some(q) = cand_unpack(ctx.read(cands[vc])) {
                            grant = Some((vc as u8, q));
                            break;
                        }
                    }
                    ctx.write(out, sel_pack(grant));
                });
            }

            // Forward-mux processes (comb).
            for o in 0..NUM_PORTS {
                let my_sel = sel[r][o];
                let room_sig = room_in_sig(r, o);
                let out = fwd[r][o];
                let nf = nfs[r].clone();
                let mut sens: Vec<SigId> = sts.to_vec();
                sens.push(my_sel);
                if room_sig != usize::MAX {
                    sens.push(room_sig);
                }
                if has_stall {
                    sens.push(cnt);
                }
                let mut reads: Vec<SigId> = sts.to_vec();
                reads.extend([my_sel, cnt]);
                if room_sig != usize::MAX {
                    reads.push(room_sig);
                }
                let reads = uniq(reads);
                k.process_rw("fwd-mux", &sens, &reads, &[out], move |ctx| {
                    if nf.stalled(ctx.read(cnt)) {
                        ctx.write(out, 0);
                        return;
                    }
                    let word = match sel_unpack(ctx.read(my_sel)) {
                        Some((vc, q)) => {
                            let room_ok = if room_sig == usize::MAX {
                                true
                            } else {
                                room_from_bits(ctx.read(room_sig))[vc as usize]
                            };
                            match (room_ok, q_st_front(ctx.read(sts[q as usize]))) {
                                (true, Some(f)) => LinkFwd::flit(vc, f).to_bits(),
                                _ => 0,
                            }
                        }
                        None => 0,
                    };
                    ctx.write(out, word);
                });
            }

            // Switch-control process (clocked; registers in ctrl signals).
            {
                let sels = sel[r];
                let ctrls = ctrl[r];
                let rooms: [SigId; NUM_PORTS] = core::array::from_fn(|o| room_in_sig(r, o));
                let nf = nfs[r].clone();
                let reads = uniq(
                    [clk, cnt]
                        .into_iter()
                        .chain(ctrls)
                        .chain(sels)
                        .chain(sts)
                        .chain(rooms.into_iter().filter(|&s| s != usize::MAX))
                        .collect(),
                );
                k.process_rw("switch-ctrl", &[clk], &reads, &ctrls, move |ctx| {
                    if ctx.read(clk) != 1 {
                        return;
                    }
                    if nf.stalled(ctx.read(cnt)) {
                        return; // owner table and rr pointers held
                    }
                    for o in 0..NUM_PORTS {
                        let c = ctx.read(ctrls[o]);
                        let mut owner: [Option<u8>; NUM_VCS] =
                            core::array::from_fn(|v| ctrl_owner(c, v));
                        let mut inner: [u8; NUM_VCS] = core::array::from_fn(|v| ctrl_inner(c, v));
                        let mut outer = ctrl_outer(c);
                        if let Some((vc, q)) = sel_unpack(ctx.read(sels[o])) {
                            let room_ok = if rooms[o] == usize::MAX {
                                true
                            } else {
                                room_from_bits(ctx.read(rooms[o]))[vc as usize]
                            };
                            if room_ok {
                                let f =
                                    q_st_front(ctx.read(sts[q as usize])).unwrap_or_else(|| {
                                        unreachable!("arbiter granted empty queue {q}")
                                    });
                                if f.kind.is_head() {
                                    inner[vc as usize] = ((q as usize + 1) % NUM_QUEUES) as u8;
                                }
                                if f.kind.is_tail() {
                                    owner[vc as usize] = None;
                                } else if f.kind.is_head() {
                                    owner[vc as usize] = Some(q);
                                }
                            }
                            outer = ((vc as usize + 1) % NUM_VCS) as u8;
                        }
                        ctx.write(ctrls[o], ctrl_pack(owner, inner, outer));
                    }
                });
            }

            // Stimuli interface: offer (comb) + register update (clocked).
            {
                let st = iface[r].clone();
                let my_room = room[r][Port::Local.index()];
                let my_offer = offer[r];
                let ver = iface_ver[r];
                let icfg = iface_cfg;
                let sens = [ver, my_room, cnt];
                k.process_rw("iface-offer", &sens, &sens, &[my_offer], move |ctx| {
                    let st = st.borrow();
                    let room_local = room_from_bits(ctx.read(my_room));
                    let pick = iface_pick(&st.regs, &icfg, &st.rings, &room_local, ctx.read(cnt));
                    let word = match pick {
                        Some((vc, e)) => LinkFwd::flit(vc, e.flit).to_bits(),
                        None => 0,
                    };
                    ctx.write(my_offer, word);
                });
            }
            {
                let st = iface[r].clone();
                let my_room = room[r][Port::Local.index()];
                let local_fwd = fwd[r][Port::Local.index()];
                let wr = wr_sigs[r];
                let ver = iface_ver[r];
                let icfg = iface_cfg;
                let nf = nfs[r].clone();
                let reads = uniq(
                    [clk, cnt, my_room, local_fwd]
                        .into_iter()
                        .chain(wr)
                        .collect(),
                );
                k.process_rw("iface-clock", &[clk], &reads, &[ver], move |ctx| {
                    if ctx.read(clk) != 1 {
                        return;
                    }
                    let cycle = ctx.read(cnt);
                    if nf.stalled(cycle) {
                        return; // no stim consume, no delivery
                    }
                    let mut st = st.borrow_mut();
                    let room_local = room_from_bits(ctx.read(my_room));
                    let pick = iface_pick(&st.regs, &icfg, &st.rings, &room_local, cycle);
                    let delivered = LinkFwd::from_bits(ctx.read(local_fwd));
                    let wr_vals: [u16; NUM_VCS] = core::array::from_fn(|v| ctx.read(wr[v]) as u16);
                    let IfaceState { regs, rings } = &mut *st;
                    iface_clock(regs, &icfg, rings, pick, delivered, wr_vals, cycle);
                    ctx.write(ver, cycle.wrapping_add(1));
                });
            }
        }

        let fwd_sigs: Vec<[SigId; 4]> = (0..n)
            .map(|r| core::array::from_fn(|d| fwd[r][d]))
            .collect();
        let occ_sigs: Vec<[SigId; NUM_QUEUES]> = (0..n)
            .map(|r| core::array::from_fn(|q| queues[r][q].occ))
            .collect();
        RtlNoc {
            cfg,
            iface_cfg,
            kernel: k,
            iface,
            probe_buf: vec![[0; 4]; n],
            fwd_sigs,
            wr_sigs,
            occ_sigs,
            stim_wr: vec![[0; NUM_VCS]; n],
            out_rd: vec![0; n],
            acc_rd: vec![0; n],
            cycle: 0,
            faults,
            instr: None,
        }
    }

    /// Kernel activity counters.
    pub fn kernel_stats(&self) -> EventStats {
        self.kernel.stats()
    }

    /// The underlying event kernel (static introspection).
    pub fn kernel(&self) -> &EventKernel {
        &self.kernel
    }

    /// The host-poked signals (stimuli write pointers): external
    /// drivers for the spec-graph adapter.
    pub fn poked_signals(&self) -> Vec<SigId> {
        self.wr_sigs.iter().flatten().copied().collect()
    }
}

impl NocEngine for RtlNoc {
    fn name(&self) -> &'static str {
        "rtl"
    }

    fn config(&self) -> NetworkConfig {
        self.cfg
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn step(&mut self) {
        // Snapshot the settled wires this edge consumes (probe support).
        for (r, buf) in self.probe_buf.iter_mut().enumerate() {
            for d in 0..4 {
                buf[d] = self.kernel.peek(self.fwd_sigs[r][d]);
            }
        }
        self.kernel.advance_cycles(1);
        self.cycle += 1;
        if let Some(i) = self.instr.as_mut() {
            let s = self.kernel.stats();
            i.events.add(s.events - i.last.events);
            i.activations.add(s.activations - i.last.activations);
            i.deltas.add(s.deltas - i.last.deltas);
            i.last = s;
        }
    }

    fn attach_instrumentation(
        &mut self,
        registry: &simtrace::Registry,
        _tracer: &simtrace::Tracer,
    ) {
        let labels = [("engine", simtrace::lbl("rtl"))];
        self.instr = Some(RtlInstr {
            events: registry.counter("rtl.events", &labels),
            activations: registry.counter("rtl.activations", &labels),
            deltas: registry.counter("rtl.deltas", &labels),
            last: self.kernel.stats(),
        });
    }

    fn probe_link(&self, node: usize, dir: usize) -> Option<vc_router::OutEntry> {
        if self.cycle == 0 {
            return None;
        }
        let w = LinkFwd::from_bits(self.probe_buf[node][dir]);
        w.valid.then(|| vc_router::OutEntry {
            cycle: self.cycle - 1,
            vc: w.vc,
            flit: w.flit,
        })
    }

    fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    fn vc_occupancy(&self, node: usize) -> Option<[u32; NUM_VCS]> {
        let mut occ = [0u32; NUM_VCS];
        for q in 0..NUM_QUEUES {
            occ[q % NUM_VCS] += self.kernel.peek(self.occ_sigs[node][q]) as u32;
        }
        Some(occ)
    }

    fn stim_capacity(&self) -> usize {
        self.iface_cfg.stim_cap
    }

    fn stim_free(&self, node: usize, vc: usize) -> usize {
        let dev_rd = self.iface[node].borrow().regs.stim_rd[vc];
        let fill = self.stim_wr[node][vc].wrapping_sub(dev_rd);
        self.iface_cfg.stim_cap - fill as usize
    }

    fn push_stim(&mut self, node: usize, vc: usize, entry: StimEntry) -> bool {
        if self.stim_free(node, vc) == 0 {
            return false;
        }
        let wr = &mut self.stim_wr[node][vc];
        let slot = *wr as usize % self.iface_cfg.stim_cap;
        self.iface[node].borrow_mut().rings.stim[vc][slot] = entry.to_bits();
        *wr = wr.wrapping_add(1);
        self.kernel.poke(self.wr_sigs[node][vc], *wr as u64);
        true
    }

    fn drain_delivered(&mut self, node: usize) -> Vec<OutEntry> {
        let st = self.iface[node].borrow();
        let rd = &mut self.out_rd[node];
        let pending = ring_pending(*rd, st.regs.out_wr, self.iface_cfg.out_cap, "output");
        let mut out = Vec::with_capacity(pending);
        for _ in 0..pending {
            out.push(OutEntry::from_bits(
                st.rings.out[*rd as usize % self.iface_cfg.out_cap],
            ));
            *rd = rd.wrapping_add(1);
        }
        out
    }

    fn drain_access(&mut self, node: usize) -> Vec<AccEntry> {
        let st = self.iface[node].borrow();
        let rd = &mut self.acc_rd[node];
        let pending = ring_pending(*rd, st.regs.acc_wr, self.iface_cfg.acc_cap, "access-delay");
        let mut out = Vec::with_capacity(pending);
        for _ in 0..pending {
            out.push(AccEntry::from_bits(
                st.rings.acc[*rd as usize % self.iface_cfg.acc_cap],
            ));
            *rd = rd.wrapping_add(1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::{Coord, Topology};

    #[test]
    fn status_word_roundtrips() {
        assert_eq!(q_st_front(q_st_pack(None, 0)), None);
        let f = Flit::head(Coord::new(3, 4), 9);
        let bits = q_st_pack(Some(f.to_bits()), 2);
        assert_eq!(q_st_front(bits), Some(f));
        assert_eq!(bits >> 19, 2);
    }

    #[test]
    fn ctrl_word_roundtrips() {
        let owner = [Some(5), None, Some(19), None];
        let inner = [1u8, 7, 19, 0];
        let w = ctrl_pack(owner, inner, 3);
        for v in 0..4 {
            assert_eq!(ctrl_owner(w, v), owner[v]);
            assert_eq!(ctrl_inner(w, v), inner[v]);
        }
        assert_eq!(ctrl_outer(w), 3);
    }

    #[test]
    fn sel_and_cand_words_roundtrip() {
        assert_eq!(sel_unpack(sel_pack(None)), None);
        assert_eq!(sel_unpack(sel_pack(Some((3, 19)))), Some((3, 19)));
        assert_eq!(sel_unpack(sel_pack(Some((0, 0)))), Some((0, 0)));
        assert_eq!(cand_unpack(cand_pack(None)), None);
        assert_eq!(cand_unpack(cand_pack(Some(0))), Some(0));
        assert_eq!(cand_unpack(cand_pack(Some(19))), Some(19));
    }

    #[test]
    fn single_flit_packet_crosses_torus() {
        let cfg = NetworkConfig::new(3, 3, Topology::Torus, 4);
        let mut e = RtlNoc::new(cfg, IfaceConfig::default());
        let dest = Coord::new(2, 1);
        let entry = StimEntry {
            ts: 0,
            flit: Flit::head_tail(dest, 0),
        };
        assert!(e.push_stim(0, 0, entry));
        e.run(12);
        let got = e.drain_delivered(cfg.shape.node_id(dest).index());
        assert_eq!(got.len(), 1, "kernel stats: {:?}", e.kernel_stats());
        assert_eq!(got[0].flit, entry.flit);
    }

    #[test]
    fn event_counts_grow_with_traffic() {
        let cfg = NetworkConfig::new(3, 3, Topology::Torus, 4);
        let mut idle = RtlNoc::new(cfg, IfaceConfig::default());
        idle.run(30);
        let mut busy = RtlNoc::new(cfg, IfaceConfig::default());
        for i in 0..12u16 {
            busy.push_stim(
                (i % 9) as usize,
                (i % 2) as usize,
                StimEntry {
                    ts: i as u64,
                    flit: Flit::head_tail(Coord::new(2, (i % 3) as u8), (i % 9) as u8),
                },
            );
        }
        busy.run(30);
        assert!(busy.kernel_stats().events > idle.kernel_stats().events);
        assert!(busy.kernel_stats().activations > idle.kernel_stats().activations);
    }

    #[test]
    fn instrumentation_publishes_kernel_activity_counters() {
        let cfg = NetworkConfig::new(3, 3, Topology::Torus, 4);
        let mut e = RtlNoc::new(cfg, IfaceConfig::default());
        e.run(5);
        let before = e.kernel_stats();
        let registry = simtrace::Registry::new();
        e.attach_instrumentation(&registry, &simtrace::Tracer::disabled());
        e.push_stim(
            0,
            0,
            StimEntry {
                ts: 5,
                flit: Flit::head_tail(Coord::new(2, 1), 0),
            },
        );
        e.run(12);
        let labels = [("engine", simtrace::lbl("rtl"))];
        let events = registry.counter_value("rtl.events", &labels).unwrap();
        let deltas = registry.counter_value("rtl.deltas", &labels).unwrap();
        // Counters carry only the activity after attachment.
        assert_eq!(events, e.kernel_stats().events - before.events);
        assert_eq!(deltas, e.kernel_stats().deltas - before.deltas);
        assert!(registry
            .counter_value("rtl.activations", &labels)
            .is_some_and(|a| a > 0));
    }
}
