//! Spec-graph adapter: lint the event-driven netlist with `speccheck`.
//!
//! The analyzer's IR is front-end neutral — signals map to links,
//! processes to blocks. Classification follows VHDL idiom: a process
//! sensitive *only* to the clock is a register process (its outputs are
//! [`CombInputs::None`], final for the cycle once written at the edge);
//! every other process is combinational in all of its declared reads.
//! The derived hybrid schedule is meaningless for an event kernel (it
//! schedules by sensitivity, not by a block order) — what the analysis
//! buys here is the *lint* pass: multiple drivers, dead signals,
//! combinational loops through the netlist, and convergence bounds on
//! the delta cascade.

use crate::kernel::{EventKernel, SigId};
use crate::netlist::RtlNoc;
use seqsim::CombInputs;
use speccheck::{GraphBlock, GraphLink, LinkClass, SpecGraph};

/// Extract the block/link graph of a kernel's netlist.
///
/// `external` lists the host-poked signals (stimuli write pointers);
/// they and the clock are classified [`LinkClass::External`]. A signal
/// no process declares as written and that is not external is a
/// constant tie-off holding its elaboration value.
pub fn kernel_graph(k: &EventKernel, external: &[SigId]) -> SpecGraph {
    let clk = k.clock_signal();
    let mut links: Vec<GraphLink> = (0..k.signal_count())
        .map(|_| GraphLink {
            width: 64,
            class: LinkClass::Wire,
        })
        .collect();
    for &s in external.iter().chain(clk.as_ref()) {
        links[s].class = LinkClass::External;
    }
    let mut written = vec![false; links.len()];
    for p in 0..k.process_count() {
        for &w in k.proc_writes(p) {
            written[w] = true;
        }
    }
    for (s, l) in links.iter_mut().enumerate() {
        if !written[s] && matches!(l.class, LinkClass::Wire) {
            l.class = LinkClass::Const(k.peek(s));
        }
    }
    let blocks = (0..k.process_count())
        .map(|p| {
            let registered = matches!((clk, k.proc_sens(p)), (Some(c), [s]) if *s == c);
            let n_out = k.proc_writes(p).len();
            GraphBlock {
                name: k.proc_name(p).to_string(),
                inputs: k.proc_reads(p).iter().map(|&s| Some(s)).collect(),
                outputs: k.proc_writes(p).iter().map(|&s| Some(s)).collect(),
                comb: vec![
                    if registered {
                        CombInputs::None
                    } else {
                        CombInputs::All
                    };
                    n_out
                ],
                host_visible: false,
                // The event kernel carries no per-bit process model;
                // bitflow treats every netlist signal as opaque.
                bit_sem: vec![None; n_out],
                in_used: vec![None; k.proc_reads(p).len()],
            }
        })
        .collect();
    SpecGraph { blocks, links }
}

impl RtlNoc {
    /// The spec graph of this engine's elaborated netlist (feed it to
    /// [`speccheck::analyze_graph`]).
    pub fn spec_graph(&self) -> SpecGraph {
        kernel_graph(self.kernel(), &self.poked_signals())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::{NetworkConfig, Topology};
    use speccheck::{analyze_graph, AnalyzeOptions, Severity};
    use vc_router::IfaceConfig;

    #[test]
    fn torus_netlist_lints_clean() {
        let cfg = NetworkConfig::new(3, 3, Topology::Torus, 4);
        let e = RtlNoc::new(cfg, IfaceConfig::default());
        let g = e.spec_graph();
        let a = analyze_graph(&g, &AnalyzeOptions::default());
        assert!(!a.has_errors(), "errors: {:#?}", a.diagnostics);
        // Every torus wire has a consumer and nothing is unreachable;
        // at most Info-level findings (the shared constant-zero signal
        // is unused when every port has a neighbour).
        assert!(
            a.max_severity() <= Some(Severity::Info),
            "unexpected findings: {:#?}",
            a.diagnostics
        );
        // The netlist is combinational-cycle free: every SCC has a
        // static convergence bound within the watchdog budget.
        assert!(a.convergence_bound <= a.watchdog_budget);
        assert!(a.sccs.iter().all(|s| s.comb_depth.is_some()));
    }

    #[test]
    fn mesh_boundary_sinks_are_info_only() {
        let cfg = NetworkConfig::new(3, 3, Topology::Mesh, 4);
        let e = RtlNoc::new(cfg, IfaceConfig::default());
        let a = analyze_graph(&e.spec_graph(), &AnalyzeOptions::default());
        assert!(!a.has_errors(), "errors: {:#?}", a.diagnostics);
        // Mesh-edge forward/room wires dangle outward: explicit sinks.
        assert_eq!(a.max_severity(), Some(Severity::Info));
        assert!(a
            .diagnostics
            .iter()
            .all(|d| d.code == speccheck::codes::NEVER_READ));
    }

    #[test]
    fn registered_and_comb_processes_are_distinguished() {
        let cfg = NetworkConfig::new(3, 3, Topology::Torus, 4);
        let e = RtlNoc::new(cfg, IfaceConfig::default());
        let g = e.spec_graph();
        let reg = g
            .blocks
            .iter()
            .filter(|b| b.comb.iter().all(|c| c.is_registered()) && !b.comb.is_empty())
            .count();
        // Per router: 20 queue-reg + switch-ctrl + iface-clock, plus the
        // global cycle counter.
        assert_eq!(reg, 9 * 22 + 1);
        assert!(g.blocks.iter().any(|b| b.name == "fwd-mux"));
    }
}
