//! The event-driven kernel (VHDL simulation semantics).
//!
//! * A **signal** holds a value; a write is a *transaction* scheduled for
//!   the next delta cycle (or a future time). A transaction whose value
//!   differs from the current one becomes an **event**, waking every
//!   process sensitive to the signal.
//! * A **process** has a sensitivity list; when woken it runs to
//!   completion, reading settled signal values and scheduling new
//!   transactions.
//! * Time only advances when no delta work remains; the **event
//!   calendar** then delivers the next timed transactions (here: the
//!   free-running clock and any `schedule_after` writes).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Signal handle.
pub type SigId = usize;
/// Process handle.
pub type ProcId = usize;

/// Kernel activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventStats {
    /// Current simulation time (abstract units).
    pub time: u64,
    /// Signal events (value changes) delivered.
    pub events: u64,
    /// Process activations.
    pub activations: u64,
    /// Delta cycles executed.
    pub deltas: u64,
}

/// Context handed to a running process.
pub struct ProcCtx<'a> {
    values: &'a [u64],
    delta_writes: &'a mut Vec<(SigId, u64)>,
    timed: &'a mut BinaryHeap<Reverse<(u64, u64, SigId, u64)>>,
    time: u64,
    seq: &'a mut u64,
}

impl ProcCtx<'_> {
    /// Read the settled value of a signal.
    #[inline]
    pub fn read(&self, s: SigId) -> u64 {
        self.values[s]
    }

    /// Schedule a transaction for the next delta cycle (VHDL `<=`).
    #[inline]
    pub fn write(&mut self, s: SigId, v: u64) {
        self.delta_writes.push((s, v));
    }

    /// Schedule a transaction `delay` time units ahead (VHDL
    /// `<= ... after`).
    pub fn write_after(&mut self, s: SigId, v: u64, delay: u64) {
        *self.seq += 1;
        self.timed
            .push(Reverse((self.time + delay, *self.seq, s, v)));
    }

    /// Current simulation time.
    pub fn time(&self) -> u64 {
        self.time
    }
}

type ProcFn = Box<dyn FnMut(&mut ProcCtx)>;

/// Declared port map of one process (static introspection; the kernel
/// itself schedules purely by sensitivity, these are metadata for the
/// spec-graph adapter and diagnostics).
#[derive(Debug, Clone, Default)]
struct ProcPorts {
    name: String,
    sens: Vec<SigId>,
    reads: Vec<SigId>,
    writes: Vec<SigId>,
}

/// The event-driven simulation kernel.
pub struct EventKernel {
    values: Vec<u64>,
    sens: Vec<Vec<ProcId>>,
    procs: Vec<ProcFn>,
    ports: Vec<ProcPorts>,
    timed: BinaryHeap<Reverse<(u64, u64, SigId, u64)>>,
    seq: u64,
    /// Free-running clock: (signal, half period). Toggles are generated
    /// lazily instead of flooding the calendar.
    clock: Option<(SigId, u64, u64)>,
    stats: EventStats,
}

impl Default for EventKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl EventKernel {
    /// Empty kernel.
    pub fn new() -> Self {
        EventKernel {
            values: Vec::new(),
            sens: Vec::new(),
            procs: Vec::new(),
            ports: Vec::new(),
            timed: BinaryHeap::new(),
            seq: 0,
            clock: None,
            stats: EventStats::default(),
        }
    }

    /// Create a signal.
    pub fn signal(&mut self, init: u64) -> SigId {
        self.values.push(init);
        self.sens.push(Vec::new());
        self.values.len() - 1
    }

    /// Register a process with its sensitivity list. The declared read
    /// set defaults to the sensitivity list (a well-formed combinational
    /// process) and the write set to unknown; use [`process_rw`] to
    /// declare both for static analysis.
    ///
    /// [`process_rw`]: EventKernel::process_rw
    pub fn process(
        &mut self,
        sensitivity: &[SigId],
        f: impl FnMut(&mut ProcCtx) + 'static,
    ) -> ProcId {
        self.process_rw("proc", sensitivity, sensitivity, &[], f)
    }

    /// Register a process with a full declared port map: `name` for
    /// diagnostics, the sensitivity list, every signal the body may
    /// `read` (a clocked process reads data signals it is not sensitive
    /// to) and every signal it may `write`. The declarations do not
    /// affect scheduling; they feed the `speccheck` spec-graph adapter,
    /// which uses a clock-only sensitivity list to classify a process's
    /// outputs as registered.
    pub fn process_rw(
        &mut self,
        name: &str,
        sensitivity: &[SigId],
        reads: &[SigId],
        writes: &[SigId],
        f: impl FnMut(&mut ProcCtx) + 'static,
    ) -> ProcId {
        self.procs.push(Box::new(f));
        let mut reads = reads.to_vec();
        for &s in sensitivity {
            if !reads.contains(&s) {
                reads.push(s);
            }
        }
        self.ports.push(ProcPorts {
            name: name.to_string(),
            sens: sensitivity.to_vec(),
            reads,
            writes: writes.to_vec(),
        });
        let id = self.procs.len() - 1;
        for &s in sensitivity {
            self.sens[s].push(id);
        }
        id
    }

    /// Number of signals created so far.
    pub fn signal_count(&self) -> usize {
        self.values.len()
    }

    /// Number of registered processes.
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// The free-running clock signal, if installed.
    pub fn clock_signal(&self) -> Option<SigId> {
        self.clock.map(|(s, ..)| s)
    }

    /// Declared name of process `p`.
    pub fn proc_name(&self, p: ProcId) -> &str {
        &self.ports[p].name
    }

    /// Sensitivity list of process `p`.
    pub fn proc_sens(&self, p: ProcId) -> &[SigId] {
        &self.ports[p].sens
    }

    /// Declared read set of process `p` (always ⊇ the sensitivity list).
    pub fn proc_reads(&self, p: ProcId) -> &[SigId] {
        &self.ports[p].reads
    }

    /// Declared write set of process `p` (empty = undeclared).
    pub fn proc_writes(&self, p: ProcId) -> &[SigId] {
        &self.ports[p].writes
    }

    /// Install the free-running clock on `sig` with the given half
    /// period. The first rising edge happens at `half_period`.
    pub fn add_clock(&mut self, sig: SigId, half_period: u64) {
        assert!(self.clock.is_none(), "one clock supported");
        assert!(half_period > 0);
        self.clock = Some((sig, half_period, half_period));
    }

    /// Apply a set of transactions at the current time; run the resulting
    /// delta cascade to quiescence.
    fn deltas(&mut self, initial: Vec<(SigId, u64)>) {
        let mut writes = initial;
        while !writes.is_empty() {
            // Update phase: turn transactions into events.
            let mut woken: Vec<bool> = vec![false; self.procs.len()];
            let mut any = false;
            for (s, v) in writes.drain(..) {
                if self.values[s] != v {
                    self.values[s] = v;
                    self.stats.events += 1;
                    for &p in &self.sens[s] {
                        if !woken[p] {
                            woken[p] = true;
                            any = true;
                        }
                    }
                }
            }
            if !any {
                break;
            }
            // Evaluate phase.
            self.stats.deltas += 1;
            let mut next = Vec::new();
            for (p, w) in woken.iter().enumerate() {
                if *w {
                    self.stats.activations += 1;
                    let mut ctx = ProcCtx {
                        values: &self.values,
                        delta_writes: &mut next,
                        timed: &mut self.timed,
                        time: self.stats.time,
                        seq: &mut self.seq,
                    };
                    (self.procs[p])(&mut ctx);
                }
            }
            writes = next;
        }
    }

    /// Advance to the next point in time with activity and process it.
    /// Returns `false` when the calendar is empty (no clock, nothing
    /// scheduled).
    pub fn advance(&mut self) -> bool {
        // Earliest of: calendar head, next clock toggle.
        let cal = self.timed.peek().map(|Reverse((t, ..))| *t);
        let clk = self.clock.map(|(_, _, next)| next);
        let t = match (cal, clk) {
            (None, None) => return false,
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (Some(a), Some(b)) => a.min(b),
        };
        self.stats.time = t;
        let mut writes = Vec::new();
        while let Some(Reverse((wt, _, s, v))) = self.timed.peek().copied() {
            if wt > t {
                break;
            }
            self.timed.pop();
            writes.push((s, v));
        }
        if let Some((sig, half, next)) = self.clock {
            if next == t {
                let cur = self.values[sig];
                writes.push((sig, cur ^ 1));
                self.clock = Some((sig, half, next + half));
            }
        }
        self.deltas(writes);
        true
    }

    /// Advance through `n` full clock periods (2n toggles).
    pub fn advance_cycles(&mut self, n: u64) {
        assert!(self.clock.is_some(), "no clock installed");
        for _ in 0..2 * n {
            assert!(self.advance(), "calendar ran dry");
        }
    }

    /// Host write: immediate, no events (an ARM register write between
    /// simulation periods).
    pub fn poke(&mut self, s: SigId, v: u64) {
        self.values[s] = v;
    }

    /// Host read of a settled signal.
    pub fn peek(&self, s: SigId) -> u64 {
        self.values[s]
    }

    /// Activity counters.
    pub fn stats(&self) -> EventStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn clock_toggles_and_time_advances() {
        let mut k = EventKernel::new();
        let clk = k.signal(0);
        k.add_clock(clk, 5);
        let edges = Rc::new(RefCell::new(Vec::new()));
        let e = edges.clone();
        k.process(&[clk], move |ctx| {
            e.borrow_mut().push((ctx.time(), ctx.read(clk)));
        });
        k.advance_cycles(2);
        assert_eq!(*edges.borrow(), vec![(5, 1), (10, 0), (15, 1), (20, 0)]);
        assert_eq!(k.stats().time, 20);
    }

    #[test]
    fn delta_cascade_settles_combinational_chain() {
        let mut k = EventKernel::new();
        let clk = k.signal(0);
        let a = k.signal(0);
        let b = k.signal(100);
        let c = k.signal(100);
        k.add_clock(clk, 5);
        // Clocked: a := a + 1 on rising edge.
        k.process(&[clk], move |ctx| {
            if ctx.read(clk) == 1 {
                let v = ctx.read(a) + 1;
                ctx.write(a, v);
            }
        });
        // Comb chain: b := a * 2; c := b + 1.
        k.process(&[a], move |ctx| {
            let v = ctx.read(a) * 2;
            ctx.write(b, v);
        });
        k.process(&[b], move |ctx| {
            let v = ctx.read(b) + 1;
            ctx.write(c, v);
        });
        k.advance_cycles(3);
        assert_eq!(k.peek(a), 3);
        assert_eq!(k.peek(b), 6);
        assert_eq!(k.peek(c), 7);
        // Each cycle: clk event + a event + b event + c event (plus the
        // falling edge). Events were counted.
        assert!(k.stats().events >= 3 * 4);
    }

    #[test]
    fn equal_value_transaction_is_not_an_event() {
        let mut k = EventKernel::new();
        let clk = k.signal(0);
        let a = k.signal(7);
        k.add_clock(clk, 5);
        let wakes = Rc::new(RefCell::new(0));
        let w = wakes.clone();
        k.process(&[clk], move |ctx| {
            if ctx.read(clk) == 1 {
                ctx.write(a, 7); // unchanged value
            }
        });
        k.process(&[a], move |_ctx| {
            *w.borrow_mut() += 1;
        });
        k.advance_cycles(4);
        assert_eq!(*wakes.borrow(), 0);
    }

    #[test]
    fn write_after_arrives_on_time() {
        let mut k = EventKernel::new();
        let clk = k.signal(0);
        let pulse = k.signal(0);
        k.add_clock(clk, 5);
        let seen = Rc::new(RefCell::new(Vec::new()));
        let s = seen.clone();
        // At the first rising edge (t=5), schedule pulse := 1 after 7
        // (t=12, between edges).
        let mut armed = false;
        k.process(&[clk], move |ctx| {
            if ctx.read(clk) == 1 && !armed {
                armed = true;
                ctx.write_after(pulse, 1, 7);
            }
        });
        k.process(&[pulse], move |ctx| {
            s.borrow_mut().push(ctx.time());
        });
        k.advance_cycles(3);
        assert_eq!(*seen.borrow(), vec![12]);
    }
}
