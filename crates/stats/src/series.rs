//! Named (x, y…) series with CSV export — the data behind each figure
//! reproduction (Fig 1's four curves, the delta-overhead sweep, …).

/// A multi-column series: one x column and several named y columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    x_name: String,
    y_names: Vec<String>,
    rows: Vec<(f64, Vec<f64>)>,
}

impl Series {
    /// New series with an x-axis name and y-column names.
    pub fn new(x_name: &str, y_names: &[&str]) -> Self {
        Series {
            x_name: x_name.to_string(),
            y_names: y_names.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, ys: &[f64]) {
        assert_eq!(ys.len(), self.y_names.len(), "column count mismatch");
        self.rows.push((x, ys.to_vec()));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the series has no points.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows, in insertion order.
    pub fn rows(&self) -> &[(f64, Vec<f64>)] {
        &self.rows
    }

    /// One y column by name.
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.y_names.iter().position(|n| n == name)?;
        Some(self.rows.iter().map(|(_, ys)| ys[idx]).collect())
    }

    /// Render as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_name);
        for n in &self.y_names {
            out.push(',');
            out.push_str(n);
        }
        out.push('\n');
        for (x, ys) in &self.rows {
            out.push_str(&format!("{x}"));
            for y in ys {
                out.push_str(&format!(",{y}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_export() {
        let mut s = Series::new("load", &["gt_mean", "gt_max", "be_mean"]);
        s.push(0.02, &[250.0, 400.0, 30.0]);
        s.push(0.10, &[300.0, 500.0, 80.0]);
        assert_eq!(s.len(), 2);
        let csv = s.to_csv();
        assert!(csv.starts_with("load,gt_mean,gt_max,be_mean\n"));
        assert!(csv.contains("0.1,300,500,80"));
        assert_eq!(s.column("be_mean"), Some(vec![30.0, 80.0]));
        assert_eq!(s.column("nope"), None);
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn column_mismatch_rejected() {
        Series::new("x", &["a"]).push(0.0, &[1.0, 2.0]);
    }
}
