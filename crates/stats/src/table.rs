//! Plain-text table rendering — every example and bench prints its
//! paper-style table through this.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of string slices.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                line.push_str(cell);
                // Left-align: pad to width (skip trailing pad on last col).
                if i + 1 < cols {
                    for _ in cell.chars().count()..widths[i] {
                        line.push(' ');
                    }
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a float with `prec` decimals.
pub fn fmt_f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Format a ratio as a percentage with one decimal.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1} %", v * 100.0)
}

/// Format a frequency in adaptive units (Hz/kHz/MHz).
pub fn fmt_hz(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2} MHz", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1} kHz", v / 1e3)
    } else {
        format!("{v:.1} Hz")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["name", "bits"]);
        t.row_str(&["queues", "1440"]);
        t.row_str(&["a-very-long-name", "7"]);
        let s = t.render();
        assert!(s.starts_with("Demo\n"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // Columns align: "bits" and "1440" start at the same offset.
        let off = lines[1].find("bits").unwrap();
        assert_eq!(lines[3].find("1440").unwrap(), off);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_rejected() {
        Table::new("t", &["a", "b"]).row_str(&["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_pct(0.1234), "12.3 %");
        assert_eq!(fmt_hz(22_000.0), "22.0 kHz");
        assert_eq!(fmt_hz(3_300_000.0), "3.30 MHz");
        assert_eq!(fmt_hz(15.0), "15.0 Hz");
    }
}
