//! # stats — measurement and reporting for the NoC experiments
//!
//! The analysis half of the paper's §5.3 step 5 ("After the data is
//! retrieved from the FPGA it is analyzed and the desired statistics are
//! stored"):
//!
//! * [`histogram`] — fixed-bucket latency histograms with exact min/max
//!   and approximate percentiles;
//! * [`latency`] — per-class latency recorders (GT mean/max, BE mean —
//!   the Fig 1 series);
//! * [`throughput`] — flit/packet counters and offered-vs-accepted load;
//! * [`profile`] — wall-clock phase profiler for the five-phase loop
//!   (Table 4);
//! * [`table`] — plain-text table rendering used by every example and
//!   bench to print paper-style tables;
//! * [`series`] — (x, y…) series collection and CSV export for the
//!   figure-reproducing sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod histogram;
pub mod latency;
pub mod profile;
pub mod series;
pub mod table;
pub mod throughput;

pub use histogram::Histogram;
pub use latency::{LatencyStats, LatencySummary};
pub use profile::PhaseProfiler;
pub use series::Series;
pub use table::Table;
pub use throughput::ThroughputCounter;
