//! Per-class latency recording — the Fig 1 measurement ("the mean and the
//! maximal latency of packets").

use crate::histogram::Histogram;
use serde::{Deserialize, Serialize};

/// Accumulates packet latencies for one traffic class.
#[derive(Debug, Clone)]
pub struct LatencyStats {
    hist: Histogram,
}

impl Default for LatencyStats {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyStats {
    /// Recorder with 1-cycle resolution up to 16384 cycles (overflow
    /// beyond — latencies that large mean saturation anyway).
    pub fn new() -> Self {
        LatencyStats {
            hist: Histogram::new(1, 16384),
        }
    }

    /// Record one packet latency in cycles.
    pub fn record(&mut self, latency: u64) {
        self.hist.record(latency);
    }

    /// Number of packets recorded.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// Summary snapshot.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.hist.count(),
            mean: self.hist.mean(),
            min: self.hist.min().unwrap_or(0),
            max: self.hist.max().unwrap_or(0),
            p50: self.hist.quantile(0.5).unwrap_or(0),
            p99: self.hist.quantile(0.99).unwrap_or(0),
        }
    }

    /// The underlying histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Merge another recorder.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.hist.merge(&other.hist);
    }
}

/// Summary statistics of a latency population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Packets measured.
    pub count: u64,
    /// Mean latency in cycles.
    pub mean: f64,
    /// Minimum latency.
    pub min: u64,
    /// Maximum latency.
    pub max: u64,
    /// Median (approximate).
    pub p50: u64,
    /// 99th percentile (approximate).
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_population() {
        let mut l = LatencyStats::new();
        for v in [10u64, 20, 30, 40, 100] {
            l.record(v);
        }
        let s = l.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 100);
        assert!((s.mean - 40.0).abs() < 1e-9);
        assert_eq!(s.p50, 30);
    }

    #[test]
    fn empty_summary_is_zeroes() {
        let s = LatencyStats::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        a.record(1);
        b.record(99);
        a.merge(&b);
        let s = a.summary();
        assert_eq!((s.count, s.min, s.max), (2, 1, 99));
    }
}
