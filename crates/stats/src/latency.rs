//! Per-class latency recording — the Fig 1 measurement ("the mean and the
//! maximal latency of packets").

use crate::histogram::Histogram;

/// Accumulates packet latencies for one traffic class.
#[derive(Debug, Clone)]
pub struct LatencyStats {
    hist: Histogram,
}

impl Default for LatencyStats {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyStats {
    /// Recorder with 1-cycle resolution up to 16384 cycles (overflow
    /// beyond — latencies that large mean saturation anyway).
    pub fn new() -> Self {
        LatencyStats {
            hist: Histogram::new(1, 16384),
        }
    }

    /// Record one packet latency in cycles.
    pub fn record(&mut self, latency: u64) {
        self.hist.record(latency);
    }

    /// Number of packets recorded.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// Summary snapshot. Percentiles are bucket-interpolated
    /// ([`Histogram::percentile`]) and reported in whole cycles.
    pub fn summary(&self) -> LatencySummary {
        let pct = |p: f64| self.hist.percentile(p).unwrap_or(0.0) as u64;
        LatencySummary {
            count: self.hist.count(),
            mean: self.hist.mean(),
            min: self.hist.min().unwrap_or(0),
            max: self.hist.max().unwrap_or(0),
            p50: pct(50.0),
            p90: pct(90.0),
            p99: pct(99.0),
        }
    }

    /// The underlying histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Merge another recorder.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.hist.merge(&other.hist);
    }

    /// The recorder as a self-describing word vector (see
    /// [`Histogram::to_words`]) for checkpointing.
    pub fn to_words(&self) -> Vec<u64> {
        self.hist.to_words()
    }

    /// Rebuild a recorder from [`to_words`](Self::to_words) output.
    /// `None` when the word vector is malformed.
    pub fn from_words(words: &[u64]) -> Option<Self> {
        Histogram::from_words(words).map(|hist| LatencyStats { hist })
    }
}

/// Summary statistics of a latency population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Packets measured.
    pub count: u64,
    /// Mean latency in cycles.
    pub mean: f64,
    /// Minimum latency.
    pub min: u64,
    /// Maximum latency.
    pub max: u64,
    /// Median (bucket-interpolated).
    pub p50: u64,
    /// 90th percentile (bucket-interpolated).
    pub p90: u64,
    /// 99th percentile (bucket-interpolated).
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_population() {
        let mut l = LatencyStats::new();
        for v in [10u64, 20, 30, 40, 100] {
            l.record(v);
        }
        let s = l.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 100);
        assert!((s.mean - 40.0).abs() < 1e-9);
        assert_eq!(s.p50, 30);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn percentiles_of_uniform_population() {
        let mut l = LatencyStats::new();
        for v in 1..=100u64 {
            l.record(v);
        }
        let s = l.summary();
        // 1-cycle buckets: rank p lands at the upper edge of the bucket
        // holding value p.
        assert_eq!(s.p50, 51);
        assert_eq!(s.p90, 91);
        assert_eq!(s.p99, 100);
    }

    #[test]
    fn empty_summary_is_zeroes() {
        let s = LatencyStats::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        a.record(1);
        b.record(99);
        a.merge(&b);
        let s = a.summary();
        assert_eq!((s.count, s.min, s.max), (2, 1, 99));
    }
}
