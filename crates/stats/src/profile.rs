//! Wall-clock phase profiling — the measurement behind the paper's
//! Table 4 ("Profile information": percentage of time per simulation
//! step).

use std::time::{Duration, Instant};

/// Accumulates wall-clock time per named phase.
#[derive(Debug, Clone, Default)]
pub struct PhaseProfiler {
    phases: Vec<(&'static str, Duration)>,
}

impl PhaseProfiler {
    /// Empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time a closure under `phase`.
    pub fn time<T>(&mut self, phase: &'static str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(phase, start.elapsed());
        out
    }

    /// Add a measured duration to `phase`.
    pub fn add(&mut self, phase: &'static str, d: Duration) {
        if let Some(p) = self.phases.iter_mut().find(|p| p.0 == phase) {
            p.1 += d;
        } else {
            self.phases.push((phase, d));
        }
    }

    /// Total time across phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|p| p.1).sum()
    }

    /// `(phase, duration, share)` rows in first-seen order.
    pub fn rows(&self) -> Vec<(&'static str, Duration, f64)> {
        let total = self.total().as_secs_f64().max(1e-12);
        self.phases
            .iter()
            .map(|&(n, d)| (n, d, d.as_secs_f64() / total))
            .collect()
    }

    /// Share (0..=1) of one phase.
    pub fn share(&self, phase: &str) -> f64 {
        let total = self.total().as_secs_f64().max(1e-12);
        self.phases
            .iter()
            .find(|p| p.0 == phase)
            .map(|p| p.1.as_secs_f64() / total)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_shares() {
        let mut p = PhaseProfiler::new();
        p.add("generate", Duration::from_millis(60));
        p.add("simulate", Duration::from_millis(30));
        p.add("generate", Duration::from_millis(30));
        p.add("analyse", Duration::from_millis(10));
        assert_eq!(p.total(), Duration::from_millis(130));
        assert!((p.share("generate") - 90.0 / 130.0).abs() < 1e-9);
        assert_eq!(p.rows().len(), 3);
        assert_eq!(p.rows()[0].0, "generate");
        assert_eq!(p.share("missing"), 0.0);
    }

    #[test]
    fn time_measures_something() {
        let mut p = PhaseProfiler::new();
        let v = p.time("work", || {
            let mut x = 0u64;
            for i in 0..100_000 {
                x = x.wrapping_add(i);
            }
            x
        });
        assert!(v > 0);
        assert!(p.total() > Duration::ZERO);
    }
}
