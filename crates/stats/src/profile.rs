//! Wall-clock phase profiling — the measurement behind the paper's
//! Table 4 ("Profile information": percentage of time per simulation
//! step) — plus per-phase *work rates* (units of work per second, e.g.
//! simulated cycles/s, evaluations/s), so the throughput harness and the
//! experiments share one measurement path.

use std::time::{Duration, Instant};

/// Accumulates wall-clock time, and optionally work units, per named phase.
#[derive(Debug, Clone, Default)]
pub struct PhaseProfiler {
    phases: Vec<(&'static str, Duration, u64)>,
}

impl PhaseProfiler {
    /// Empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time a closure under `phase`.
    pub fn time<T>(&mut self, phase: &'static str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(phase, start.elapsed());
        out
    }

    /// Time a closure under `phase` and credit it with `work` units
    /// (simulated cycles, block evaluations, delta cycles, …); the units
    /// feed [`rate`](Self::rate).
    pub fn time_work<T>(&mut self, phase: &'static str, work: u64, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add_work(phase, start.elapsed(), work);
        out
    }

    /// Add a measured duration to `phase`.
    pub fn add(&mut self, phase: &'static str, d: Duration) {
        self.add_work(phase, d, 0);
    }

    /// Add a measured duration and `work` units to `phase`.
    pub fn add_work(&mut self, phase: &'static str, d: Duration, work: u64) {
        if let Some(p) = self.phases.iter_mut().find(|p| p.0 == phase) {
            p.1 += d;
            p.2 += work;
        } else {
            self.phases.push((phase, d, work));
        }
    }

    /// Total time across phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|p| p.1).sum()
    }

    /// `(phase, duration, share)` rows in first-seen order.
    pub fn rows(&self) -> Vec<(&'static str, Duration, f64)> {
        let total = self.total().as_secs_f64().max(1e-12);
        self.phases
            .iter()
            .map(|&(n, d, _)| (n, d, d.as_secs_f64() / total))
            .collect()
    }

    /// Share (0..=1) of one phase.
    pub fn share(&self, phase: &str) -> f64 {
        let total = self.total().as_secs_f64().max(1e-12);
        self.phases
            .iter()
            .find(|p| p.0 == phase)
            .map(|p| p.1.as_secs_f64() / total)
            .unwrap_or(0.0)
    }

    /// Accumulated work units of one phase.
    pub fn work(&self, phase: &str) -> u64 {
        self.phases
            .iter()
            .find(|p| p.0 == phase)
            .map(|p| p.2)
            .unwrap_or(0)
    }

    /// Work units per second of one phase (its own wall-clock time, not
    /// the total), or `None` when the phase recorded no work.
    pub fn rate(&self, phase: &str) -> Option<f64> {
        self.phases
            .iter()
            .find(|p| p.0 == phase)
            .filter(|p| p.2 > 0)
            .map(|p| p.2 as f64 / p.1.as_secs_f64().max(1e-12))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_shares() {
        let mut p = PhaseProfiler::new();
        p.add("generate", Duration::from_millis(60));
        p.add("simulate", Duration::from_millis(30));
        p.add("generate", Duration::from_millis(30));
        p.add("analyse", Duration::from_millis(10));
        assert_eq!(p.total(), Duration::from_millis(130));
        assert!((p.share("generate") - 90.0 / 130.0).abs() < 1e-9);
        assert_eq!(p.rows().len(), 3);
        assert_eq!(p.rows()[0].0, "generate");
        assert_eq!(p.share("missing"), 0.0);
    }

    #[test]
    fn work_rates() {
        let mut p = PhaseProfiler::new();
        p.add_work("simulate", Duration::from_millis(500), 1_000);
        p.add_work("simulate", Duration::from_millis(500), 1_000);
        assert_eq!(p.work("simulate"), 2_000);
        let r = p.rate("simulate").unwrap();
        assert!((r - 2_000.0).abs() < 1.0, "rate {r}");
        // Phases without work report no rate rather than a bogus zero.
        p.add("load", Duration::from_millis(10));
        assert_eq!(p.rate("load"), None);
        assert_eq!(p.rate("missing"), None);
    }

    #[test]
    fn time_measures_something() {
        let mut p = PhaseProfiler::new();
        let v = p.time("work", || {
            let mut x = 0u64;
            for i in 0..100_000 {
                x = x.wrapping_add(i);
            }
            x
        });
        assert!(v > 0);
        assert!(p.total() > Duration::ZERO);
    }
}
