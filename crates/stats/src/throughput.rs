//! Flit/packet throughput accounting (offered vs accepted vs delivered
//! load).

/// Counts traffic volumes over a measured interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThroughputCounter {
    /// Flits offered by the generators (with timestamps in the interval).
    pub offered_flits: u64,
    /// Flits that actually entered the network.
    pub injected_flits: u64,
    /// Flits delivered at local output ports.
    pub delivered_flits: u64,
    /// Packets delivered completely.
    pub delivered_packets: u64,
    /// Cycles in the measured interval.
    pub cycles: u64,
    /// Cycles of the whole traffic-generation span (injection happens
    /// throughout it, not only the measured interval).
    pub gen_cycles: u64,
    /// Number of network nodes.
    pub nodes: u64,
}

impl ThroughputCounter {
    /// Offered load per node in flits/cycle.
    pub fn offered_load(&self) -> f64 {
        self.per_node_rate(self.offered_flits)
    }

    /// Accepted (injected) load per node in flits/cycle, over the
    /// generation span.
    pub fn accepted_load(&self) -> f64 {
        let span = if self.gen_cycles > 0 {
            self.gen_cycles
        } else {
            self.cycles
        };
        if span == 0 || self.nodes == 0 {
            0.0
        } else {
            self.injected_flits as f64 / (span as f64 * self.nodes as f64)
        }
    }

    /// Delivered load per node in flits/cycle.
    pub fn delivered_load(&self) -> f64 {
        self.per_node_rate(self.delivered_flits)
    }

    fn per_node_rate(&self, flits: u64) -> f64 {
        if self.cycles == 0 || self.nodes == 0 {
            0.0
        } else {
            flits as f64 / (self.cycles as f64 * self.nodes as f64)
        }
    }

    /// True when the network accepted essentially everything offered
    /// (within `tol` relative).
    pub fn is_stable(&self, tol: f64) -> bool {
        if self.offered_flits == 0 {
            return true;
        }
        self.injected_flits as f64 >= self.offered_flits as f64 * (1.0 - tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads() {
        let t = ThroughputCounter {
            offered_flits: 720,
            injected_flits: 700,
            delivered_flits: 690,
            delivered_packets: 138,
            cycles: 1000,
            gen_cycles: 1000,
            nodes: 36,
        };
        assert!((t.offered_load() - 0.02).abs() < 1e-9);
        assert!(t.accepted_load() < t.offered_load());
        assert!(t.is_stable(0.05));
        assert!(!t.is_stable(0.01));
    }

    #[test]
    fn empty_is_stable_zero() {
        let t = ThroughputCounter::default();
        assert_eq!(t.offered_load(), 0.0);
        assert!(t.is_stable(0.0));
    }
}
