//! Fixed-bucket histograms for latency distributions.

/// A histogram over `u64` samples with uniform buckets plus an overflow
/// bucket, keeping exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Histogram with `buckets` buckets of `bucket_width` each; samples at
    /// or beyond `buckets * bucket_width` land in the overflow bucket.
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0 && buckets > 0);
        Histogram {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let idx = (v / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact minimum (None when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum (None when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate `q`-quantile (0..=1): upper edge of the bucket holding
    /// the quantile sample; exact `max` for q = 1.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                // Bucket upper edge, clamped so a quantile never exceeds
                // the exact maximum (matters for sparse populations).
                return Some((((i + 1) as u64) * self.bucket_width - 1).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Interpolated percentile `p` (0..=100): the bucket holding rank
    /// `p/100 * count` is located exactly from the bucket counts, then
    /// the value is linearly interpolated within that bucket's range by
    /// the rank's position among the bucket's samples. `p = 0` is the
    /// exact minimum; a rank falling in the overflow bucket reports the
    /// exact maximum. `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        if p == 0.0 {
            return Some(self.min as f64);
        }
        let rank = p / 100.0 * self.count as f64;
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            let prev = cum;
            cum += b;
            if cum as f64 >= rank {
                let lo = (i as u64 * self.bucket_width) as f64;
                let v = lo + self.bucket_width as f64 * (rank - prev as f64) / b as f64;
                return Some(v.clamp(self.min as f64, self.max as f64));
            }
        }
        Some(self.max as f64)
    }

    /// Interpolated median.
    pub fn p50(&self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Interpolated 90th percentile.
    pub fn p90(&self) -> Option<f64> {
        self.percentile(90.0)
    }

    /// Interpolated 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.percentile(99.0)
    }

    /// Samples that exceeded the bucketed range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Merge another histogram with identical geometry.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bucket_width, other.bucket_width);
        assert_eq!(self.buckets.len(), other.buckets.len());
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The full histogram as a self-describing `u64` word vector
    /// (`[bucket_width, n_buckets, buckets.., overflow, count, sum, min,
    /// max]`) — the serialization surface for checkpointing without a
    /// wire-format dependency in this crate.
    pub fn to_words(&self) -> Vec<u64> {
        let mut w = Vec::with_capacity(self.buckets.len() + 7);
        w.push(self.bucket_width);
        w.push(self.buckets.len() as u64);
        w.extend_from_slice(&self.buckets);
        w.extend_from_slice(&[self.overflow, self.count, self.sum, self.min, self.max]);
        w
    }

    /// Rebuild a histogram from [`to_words`](Self::to_words) output.
    /// `None` when the word vector is malformed (wrong length, zero
    /// geometry).
    pub fn from_words(words: &[u64]) -> Option<Self> {
        let (&bucket_width, rest) = words.split_first()?;
        let (&n, rest) = rest.split_first()?;
        let n = usize::try_from(n).ok()?;
        if bucket_width == 0 || n == 0 || rest.len() != n + 5 {
            return None;
        }
        let (buckets, tail) = rest.split_at(n);
        Some(Histogram {
            bucket_width,
            buckets: buckets.to_vec(),
            overflow: tail[0],
            count: tail[1],
            sum: tail[2],
            min: tail[3],
            max: tail[4],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let mut h = Histogram::new(10, 10);
        for v in [5u64, 15, 15, 95, 250] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.max(), Some(250));
        assert_eq!(h.overflow(), 1);
        assert!((h.mean() - 76.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new(1, 1000);
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), Some(49));
        assert_eq!(h.quantile(1.0), Some(99));
        assert_eq!(h.quantile(0.01), Some(0));
        assert_eq!(Histogram::new(1, 10).quantile(0.5), None);
    }

    #[test]
    fn percentiles_interpolate_within_buckets() {
        // 100 uniform samples 0..100 in width-10 buckets: every rank
        // boundary lands exactly where the uniform distribution puts it.
        let mut h = Histogram::new(10, 10);
        for v in 0..100u64 {
            h.record(v);
        }
        assert!((h.p50().unwrap() - 50.0).abs() < 1e-9);
        assert!((h.p90().unwrap() - 90.0).abs() < 1e-9);
        assert!((h.p99().unwrap() - 99.0).abs() < 1e-9);
        assert!((h.percentile(25.0).unwrap() - 25.0).abs() < 1e-9);
        // Half-way through a single bucket's samples: half-way through
        // the bucket's range.
        assert!((h.percentile(45.0).unwrap() - 45.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_edges() {
        let mut h = Histogram::new(10, 10);
        for v in [5u64, 15, 15, 95, 250] {
            h.record(v);
        }
        // p = 0 is the exact minimum; 100 the exact maximum.
        assert_eq!(h.percentile(0.0), Some(5.0));
        assert_eq!(h.percentile(100.0), Some(250.0));
        // Rank in the overflow bucket clamps to the exact maximum.
        assert_eq!(h.percentile(99.0), Some(250.0));
        // Interpolation never leaves [min, max].
        let p10 = h.percentile(10.0).unwrap();
        assert!((5.0..=250.0).contains(&p10));
        // Empty histogram has no percentiles.
        assert_eq!(Histogram::new(1, 4).percentile(50.0), None);
    }

    #[test]
    fn skewed_population_percentiles() {
        // 99 fast samples in one bucket + 1 slow outlier: the p99 rank
        // (99 of 100) still falls in the fast bucket, p50 interpolates
        // half-way through it.
        let mut h = Histogram::new(10, 100);
        for _ in 0..99 {
            h.record(4);
        }
        h.record(900);
        assert!((h.p50().unwrap() - 10.0 * 50.0 / 99.0).abs() < 1e-9);
        assert!(h.p99().unwrap() <= 10.0);
        assert_eq!(h.percentile(100.0), Some(900.0));
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new(10, 10);
        let mut b = Histogram::new(10, 10);
        a.record(5);
        b.record(95);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(1000));
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    #[should_panic]
    fn merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new(10, 10);
        let b = Histogram::new(5, 10);
        a.merge(&b);
    }

    #[test]
    fn words_round_trip() {
        let mut h = Histogram::new(10, 10);
        for v in [5u64, 15, 15, 95, 250] {
            h.record(v);
        }
        let w = h.to_words();
        assert_eq!(Histogram::from_words(&w), Some(h.clone()));
        // Empty histograms round-trip too (min is the u64::MAX sentinel).
        let e = Histogram::new(1, 4);
        assert_eq!(Histogram::from_words(&e.to_words()), Some(e));
        // Malformed vectors are rejected, not mis-parsed.
        assert_eq!(Histogram::from_words(&w[..w.len() - 1]), None);
        assert_eq!(Histogram::from_words(&[]), None);
        assert_eq!(Histogram::from_words(&[0, 1, 0, 0, 0, 0, 0, 0]), None);
    }
}
