//! Fixed-bucket histograms for latency distributions.

use serde::{Deserialize, Serialize};

/// A histogram over `u64` samples with uniform buckets plus an overflow
/// bucket, keeping exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Histogram with `buckets` buckets of `bucket_width` each; samples at
    /// or beyond `buckets * bucket_width` land in the overflow bucket.
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0 && buckets > 0);
        Histogram {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let idx = (v / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact minimum (None when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum (None when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate `q`-quantile (0..=1): upper edge of the bucket holding
    /// the quantile sample; exact `max` for q = 1.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                // Bucket upper edge, clamped so a quantile never exceeds
                // the exact maximum (matters for sparse populations).
                return Some((((i + 1) as u64) * self.bucket_width - 1).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Samples that exceeded the bucketed range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Merge another histogram with identical geometry.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bucket_width, other.bucket_width);
        assert_eq!(self.buckets.len(), other.buckets.len());
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let mut h = Histogram::new(10, 10);
        for v in [5u64, 15, 15, 95, 250] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.max(), Some(250));
        assert_eq!(h.overflow(), 1);
        assert!((h.mean() - 76.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new(1, 1000);
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), Some(49));
        assert_eq!(h.quantile(1.0), Some(99));
        assert_eq!(h.quantile(0.01), Some(0));
        assert_eq!(Histogram::new(1, 10).quantile(0.5), None);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new(10, 10);
        let mut b = Histogram::new(10, 10);
        a.record(5);
        b.record(95);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(1000));
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    #[should_panic]
    fn merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new(10, 10);
        let b = Histogram::new(5, 10);
        a.merge(&b);
    }
}
