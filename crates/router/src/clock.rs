//! The router's register-update function — the clock-edge half of the
//! paper's `F(x)`.
//!
//! Given the settled combinational values (selection, transfers and the
//! incoming wires), advance the register file by one system cycle:
//! dequeue transferred flits, update the wormhole owner table and both
//! round-robin arbiters, and enqueue arriving flits.

use crate::comb::{comb_select, transfers, RouterInputs, Selection};
use crate::regs::{owner_encode, RouterRegs};
use crate::routing::RouterCtx;
use noc_types::{NUM_PORTS, NUM_QUEUES, NUM_VCS};

/// Advance `regs` by one system cycle given the settled `inputs`.
///
/// `sel` must be the arbitration computed by
/// [`comb_select`](crate::comb::comb_select) on the *same* register state
/// (engines that already computed it pass it in to avoid recomputation;
/// pass `None` to recompute here).
pub fn clock(
    regs: &mut RouterRegs,
    ctx: &RouterCtx,
    inputs: &RouterInputs,
    sel: Option<&Selection>,
) {
    let owned_sel;
    let sel = match sel {
        Some(s) => s,
        None => {
            owned_sel = comb_select(regs, ctx);
            &owned_sel
        }
    };
    let trans = transfers(sel, &inputs.room_in);

    // 1. Dequeue winners, maintain worm ownership and arbiter pointers.
    for out in 0..NUM_PORTS {
        if let Some((vc, q)) = trans[out] {
            let flit = regs.queues[q as usize].pop(ctx.depth);
            let idx = out * NUM_VCS + vc as usize;
            if flit.kind.is_head() {
                // Queue-level round-robin advances past the granted head.
                regs.inner_rr[idx] = ((q as usize + 1) % NUM_QUEUES) as u8;
            }
            if flit.kind.is_tail() {
                regs.owner[idx] = owner_encode(None);
            } else if flit.kind.is_head() {
                regs.owner[idx] = owner_encode(Some(q));
            }
        }
        // VC-level round-robin advances past the *selected* VC whether or
        // not the transfer succeeded, so a blocked VC cannot starve the
        // others — the property behind the GT service-interval bound.
        if let Some((vc, _)) = sel.per_out[out] {
            regs.outer_rr[out] = ((vc as usize + 1) % NUM_VCS) as u8;
        }
    }

    // 2. Enqueue arrivals. A write to a full FIFO is ignored, as in
    // hardware. With settled inputs this never happens (room is granted
    // only when occupancy < depth), but the dynamic scheduler (§4.2) may
    // evaluate a router against *stale* neighbour wires mid-cycle; such a
    // transient next-state is fully overwritten by the re-evaluation the
    // HBR mechanism guarantees, so the drop is unobservable. Genuine flit
    // loss would be caught by the harness's conservation checks and the
    // cross-engine differential tests.
    for p in 0..NUM_PORTS {
        let w = inputs.fwd_in[p];
        if w.valid {
            let q = p * NUM_VCS + w.vc as usize;
            if regs.queues[q].occupancy() < ctx.depth {
                regs.queues[q].push(ctx.depth, w.flit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comb::comb_fwd;
    use noc_types::{Coord, Flit, FlitKind, LinkFwd, NetworkConfig, Port, Topology};

    fn ctx6() -> RouterCtx {
        RouterCtx::new(
            &NetworkConfig::new(6, 6, Topology::Torus, 4),
            Coord::new(1, 1),
        )
    }

    /// Step one isolated router: returns the forward outputs it produced.
    fn step(regs: &mut RouterRegs, ctx: &RouterCtx, inputs: &RouterInputs) -> [LinkFwd; NUM_PORTS] {
        let sel = comb_select(regs, ctx);
        let trans = transfers(&sel, &inputs.room_in);
        let fwd = comb_fwd(regs, &trans);
        clock(regs, ctx, inputs, Some(&sel));
        fwd
    }

    #[test]
    fn packet_traverses_router() {
        let ctx = ctx6();
        let mut regs = RouterRegs::new();
        // 3-flit GT packet arrives on West vc2, destined (3,1) -> East.
        let flits = [
            Flit::head(Coord::new(3, 1), 7),
            Flit {
                kind: FlitKind::Body,
                payload: 0xAB,
            },
            Flit {
                kind: FlitKind::Tail,
                payload: 0xCD,
            },
        ];
        let mut outputs = Vec::new();
        for i in 0..6 {
            let mut inputs = RouterInputs::idle();
            if i < 3 {
                inputs.fwd_in[Port::West.index()] = LinkFwd::flit(2, flits[i]);
            }
            let fwd = step(&mut regs, &ctx, &inputs);
            if fwd[Port::East.index()].valid {
                outputs.push(fwd[Port::East.index()]);
            }
        }
        assert_eq!(outputs.len(), 3);
        assert_eq!(outputs[0].flit, flits[0]);
        assert_eq!(outputs[1].flit, flits[1]);
        assert_eq!(outputs[2].flit, flits[2]);
        assert!(outputs.iter().all(|w| w.vc == 2));
        // Worm fully released.
        assert_eq!(regs.owner_of(Port::East.index(), 2), None);
        assert!(regs.queues.iter().all(|q| q.is_empty()));
    }

    #[test]
    fn min_per_hop_latency_is_one_cycle() {
        let ctx = ctx6();
        let mut regs = RouterRegs::new();
        let mut inputs = RouterInputs::idle();
        inputs.fwd_in[Port::West.index()] = LinkFwd::flit(2, Flit::head_tail(Coord::new(3, 1), 7));
        // Cycle 0: flit arrives, nothing forwarded yet (it is registered
        // into the queue at the edge).
        let fwd = step(&mut regs, &ctx, &inputs);
        assert!(fwd.iter().all(|w| !w.valid));
        // Cycle 1: forwarded.
        let fwd = step(&mut regs, &ctx, &RouterInputs::idle());
        assert!(fwd[Port::East.index()].valid);
    }

    #[test]
    fn headtail_never_holds_ownership() {
        let ctx = ctx6();
        let mut regs = RouterRegs::new();
        let mut inputs = RouterInputs::idle();
        inputs.fwd_in[Port::West.index()] = LinkFwd::flit(1, Flit::head_tail(Coord::new(3, 1), 7));
        step(&mut regs, &ctx, &inputs);
        step(&mut regs, &ctx, &RouterInputs::idle());
        for out in 0..NUM_PORTS {
            for vc in 0..NUM_VCS {
                assert_eq!(regs.owner_of(out, vc), None);
            }
        }
    }

    #[test]
    fn blocked_vc_does_not_starve_others() {
        let ctx = ctx6();
        let mut regs = RouterRegs::new();
        // vc2 stream blocked downstream; vc3 stream free. Both to East.
        let mut inputs = RouterInputs::idle();
        inputs.room_in[Port::East.index()][2] = false;
        // Seed both queues with 2-flit packets.
        for (vc, tag) in [(2u8, 1u8), (3, 2)] {
            let q = Port::West.index() * NUM_VCS + vc as usize;
            regs.queues[q].push(ctx.depth, Flit::head(Coord::new(3, 1), tag));
            regs.queues[q].push(
                ctx.depth,
                Flit {
                    kind: FlitKind::Tail,
                    payload: 0,
                },
            );
        }
        // Within a few cycles vc3's packet must fully pass despite vc2
        // being permanently blocked.
        let mut vc3_flits = 0;
        for _ in 0..8 {
            let fwd = step(&mut regs, &ctx, &inputs);
            let e = fwd[Port::East.index()];
            if e.valid {
                assert_eq!(e.vc, 3, "blocked vc2 must not transfer");
                vc3_flits += 1;
            }
        }
        assert_eq!(vc3_flits, 2);
        // vc2's packet is still waiting at the head.
        let q2 = Port::West.index() * NUM_VCS + 2;
        assert_eq!(regs.queues[q2].occupancy(), 2);
    }

    #[test]
    fn write_to_full_queue_is_ignored() {
        // Hardware semantics: a flit forced into a full FIFO is dropped.
        // (With settled inputs this cannot happen — room is only granted
        // below capacity; the dynamic scheduler relies on the drop being
        // harmless during transient evaluations.)
        let ctx = ctx6();
        let mut regs = RouterRegs::new();
        let mut inputs = RouterInputs::idle();
        // Block the East output so nothing drains, then force 5 flits in.
        inputs.room_in[Port::East.index()] = [false; NUM_VCS];
        for i in 0..5 {
            inputs.fwd_in[Port::West.index()] = LinkFwd::flit(
                2,
                if i == 0 {
                    Flit::head(Coord::new(3, 1), 1)
                } else {
                    Flit {
                        kind: FlitKind::Body,
                        payload: i as u16,
                    }
                },
            );
            step(&mut regs, &ctx, &inputs);
        }
        let q = Port::West.index() * NUM_VCS + 2;
        assert_eq!(regs.queues[q].occupancy(), 4, "depth-4 queue stays full");
    }
}
