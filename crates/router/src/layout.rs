//! The register layout of one router block — the generator behind the
//! paper's **Table 1** ("Required registers per router": input queues
//! 1440, router control and arbitration 292, links 200, stimuli interfaces
//! 180, total 2112 bits).
//!
//! Our layout is computed from the implemented register file rather than
//! copied from the paper, so the groups track every configuration knob
//! (queue depth, etc.). The field order must match
//! [`RouterRegs::pack`](crate::regs::RouterRegs::pack).

use noc_types::bits::ceil_log2;
use noc_types::flit::{LINK_FWD_BITS, LINK_ROOM_BITS};
use noc_types::{NUM_PORTS, NUM_QUEUES, NUM_VCS};

/// One named group of registers (a row of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterGroup {
    /// Group name.
    pub name: &'static str,
    /// Bits in the group.
    pub bits: usize,
}

/// The register layout of a router block for a given queue depth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterLayout {
    depth: usize,
}

impl RegisterLayout {
    /// Layout for `depth`-flit queues.
    pub fn new(depth: usize) -> Self {
        assert!(
            (1..=crate::queue::MAX_QUEUE_DEPTH).contains(&depth),
            "queue depth {depth} out of range"
        );
        RegisterLayout { depth }
    }

    /// Bits of the flit-slot storage of all input queues (Table 1 row
    /// "Input queues"; paper: 1440 for depth 4).
    pub fn queue_bits(&self) -> usize {
        NUM_QUEUES * self.depth * 18
    }

    /// Bits of control and arbitration state: FIFO pointers/occupancy,
    /// wormhole owner table, queue-level and VC-level round-robin pointers
    /// (Table 1 row "Router control and arbitration"; paper: 292).
    pub fn control_bits(&self) -> usize {
        let fifo_ptrs = NUM_QUEUES * (2 * ceil_log2(self.depth) + ceil_log2(self.depth + 1));
        let owner = NUM_QUEUES * 6;
        let inner_rr = NUM_QUEUES * 5;
        let outer_rr = NUM_PORTS * 2;
        fifo_ptrs + owner + inner_rr + outer_rr
    }

    /// Bits of the link memory attributable to one router: its 4 incoming
    /// and 4 outgoing neighbour forward links plus the matching room wires
    /// (Table 1 row "Links"; paper: 200).
    pub fn link_bits(&self) -> usize {
        2 * 4 * (LINK_FWD_BITS + LINK_ROOM_BITS)
    }

    /// Bits of the stimuli interface registers: per-VC ring read pointers,
    /// host write-pointer shadows, output/access-log write pointers and
    /// the injection round-robin (Table 1 row "Stimuli interfaces";
    /// paper: 180).
    pub fn stimuli_bits(&self) -> usize {
        NUM_VCS * 16 + NUM_VCS * 16 + 16 + 16 + 2
    }

    /// Bits held in the sequential simulator's *state memory* per router
    /// (queues + control + stimuli; links live in the link memory).
    pub fn state_bits(&self) -> usize {
        self.queue_bits() + self.control_bits() + self.stimuli_bits()
    }

    /// Total register bits per router, Table 1's bottom row.
    pub fn total_bits(&self) -> usize {
        self.state_bits() + self.link_bits()
    }

    /// The rows of Table 1.
    pub fn groups(&self) -> Vec<RegisterGroup> {
        vec![
            RegisterGroup {
                name: "Input queues",
                bits: self.queue_bits(),
            },
            RegisterGroup {
                name: "Router control and arbitration",
                bits: self.control_bits(),
            },
            RegisterGroup {
                name: "Links",
                bits: self.link_bits(),
            },
            RegisterGroup {
                name: "Stimuli interfaces",
                bits: self.stimuli_bits(),
            },
        ]
    }

    /// The paper's Table 1 values, for side-by-side reporting.
    pub fn paper_groups() -> Vec<RegisterGroup> {
        vec![
            RegisterGroup {
                name: "Input queues",
                bits: 1440,
            },
            RegisterGroup {
                name: "Router control and arbitration",
                bits: 292,
            },
            RegisterGroup {
                name: "Links",
                bits: 200,
            },
            RegisterGroup {
                name: "Stimuli interfaces",
                bits: 180,
            },
        ]
    }

    /// Queue depth this layout was built for.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_bits_match_paper_at_depth_4() {
        // 20 queues x 4 flits x 18 bits = the paper's 1440.
        assert_eq!(RegisterLayout::new(4).queue_bits(), 1440);
    }

    #[test]
    fn groups_sum_to_total() {
        for depth in [2, 4, 8] {
            let l = RegisterLayout::new(depth);
            let sum: usize = l.groups().iter().map(|g| g.bits).sum();
            assert_eq!(sum, l.total_bits());
        }
    }

    #[test]
    fn totals_near_paper_at_depth_4() {
        let l = RegisterLayout::new(4);
        let total = l.total_bits();
        // Paper: 2112. Our accounting differs in the micro-details of the
        // arbitration state; it must land in the same ballpark.
        assert!(
            (1900..2400).contains(&total),
            "total {total} too far from paper's 2112"
        );
    }

    #[test]
    fn depth_2_shrinks_queues_only_modestly() {
        let l2 = RegisterLayout::new(2);
        let l4 = RegisterLayout::new(4);
        assert_eq!(l2.queue_bits(), 720);
        assert!(l2.total_bits() < l4.total_bits());
        assert_eq!(l2.link_bits(), l4.link_bits());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_depth_rejected() {
        let _ = RegisterLayout::new(9);
    }
}
