//! The circuit-switched router — the paper's second network (§2: "we
//! have defined two networks (packet-switched and circuit-switched) [...]
//! the approach can also be used for the circuit-switched network", after
//! Wolkotte et al., "An energy-efficient reconfigurable circuit-switched
//! Network-on-Chip", RAW 2005).
//!
//! A circuit-switched router holds a *connection table*: each output port
//! is statically connected to at most one input port. Once circuits are
//! configured (by the host, modelling the configuration network), data
//! words stream through without buffering, arbitration or flow control —
//! one registered hop per router, guaranteed full link bandwidth.
//!
//! Because every output is a *register* (`out_reg[o]`, loaded from the
//! connected input each cycle), the circuit-switched router has
//! **registered boundaries**: its outputs are functions of state alone,
//! so the sequential simulator can run it with the cheap *static*
//! schedule of paper §4.1 — no HBR bits, no re-evaluations — in contrast
//! to the packet-switched router, which needs §4.2's dynamic schedule.
//! The two case studies together exercise both halves of the method.

use crate::iface::{IfaceConfig, IfaceStore, OutEntry, StimEntry};
use noc_types::bits::{BitReader, BitWriter};
use noc_types::{Coord, Flit, FlitKind, NetworkConfig, Port, NUM_PORTS};
use seqsim::{BlockKind, SideView};

/// Bits of a circuit-switched link word: valid (1) + data (16).
pub const CS_LINK_BITS: usize = 17;

/// Bits of the connection-table configuration word: 5 outputs × (valid
/// (1) + input port (3)).
pub const CS_CFG_BITS: usize = NUM_PORTS * 4;

/// Encode a link word.
#[inline]
pub fn cs_word(valid: bool, data: u16) -> u64 {
    ((valid as u64) << 16) | data as u64
}

/// Decode a link word into `(valid, data)`.
#[inline]
pub fn cs_word_decode(bits: u64) -> (bool, u16) {
    ((bits >> 16) & 1 != 0, (bits & 0xFFFF) as u16)
}

/// Encode a connection table (per output: the connected input port).
pub fn cs_cfg_encode(conn: &[Option<Port>; NUM_PORTS]) -> u64 {
    conn.iter().enumerate().fold(0u64, |acc, (o, c)| {
        let nibble = match c {
            Some(p) => 0x8 | p.index() as u64,
            None => 0,
        };
        acc | (nibble << (o * 4))
    })
}

/// Decode a connection table. The 3-bit port field has three undefined
/// encodings (5–7); they decode to "unconnected", as hardware treating
/// them as a disabled entry would.
pub fn cs_cfg_decode(bits: u64) -> [Option<Port>; NUM_PORTS] {
    core::array::from_fn(|o| {
        let nibble = (bits >> (o * 4)) & 0xF;
        let port = (nibble & 0x7) as usize;
        (nibble & 0x8 != 0 && port < NUM_PORTS).then(|| Port::from_index(port))
    })
}

/// The circuit-switched router's register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsRouterRegs {
    /// Connection table: `conn[out]` = connected input port.
    pub conn: [Option<Port>; NUM_PORTS],
    /// Output pipeline registers (one registered hop per router),
    /// encoded link words.
    pub out_reg: [u64; NUM_PORTS],
    /// Stream-source ring read pointer.
    pub stim_rd: u16,
    /// Host write-pointer shadow.
    pub stim_wr_shadow: u16,
    /// Capture-ring write pointer.
    pub out_wr: u16,
}

impl Default for CsRouterRegs {
    fn default() -> Self {
        Self::new()
    }
}

impl CsRouterRegs {
    /// Reset state: no connections, idle outputs.
    pub const fn new() -> Self {
        CsRouterRegs {
            conn: [None; NUM_PORTS],
            out_reg: [0; NUM_PORTS],
            stim_rd: 0,
            stim_wr_shadow: 0,
            out_wr: 0,
        }
    }

    /// State bits of one router (Table 1 analogue for the CS network).
    pub const fn state_bits() -> usize {
        NUM_PORTS * 4 + NUM_PORTS * CS_LINK_BITS + 16 + 16 + 16
    }

    /// Pack into state-memory words (field order: conn, out_reg,
    /// stim_rd, stim_wr_shadow, out_wr).
    pub fn pack(&self, words: &mut [u64]) {
        let mut w = BitWriter::new(words);
        w.put(CS_CFG_BITS, cs_cfg_encode(&self.conn));
        for &r in &self.out_reg {
            w.put(CS_LINK_BITS, r);
        }
        w.put(16, self.stim_rd as u64);
        w.put(16, self.stim_wr_shadow as u64);
        w.put(16, self.out_wr as u64);
    }

    /// Unpack from state-memory words.
    pub fn unpack(words: &[u64]) -> Self {
        let mut r = BitReader::new(words);
        let conn = cs_cfg_decode(r.take(CS_CFG_BITS));
        let out_reg = core::array::from_fn(|_| r.take(CS_LINK_BITS));
        CsRouterRegs {
            conn,
            out_reg,
            stim_rd: r.take(16) as u16,
            stim_wr_shadow: r.take(16) as u16,
            out_wr: r.take(16) as u16,
        }
    }
}

/// The combinational+clock semantics shared by every engine simulating
/// the CS router. `inputs[p]` are the incoming link words (index 4 =
/// the local source offer). Returns the next register file; `capture` is
/// called for a word delivered at the local output this cycle.
pub fn cs_clock(
    regs: &CsRouterRegs,
    inputs: &[u64; NUM_PORTS],
    local_consumed: bool,
    mut capture: impl FnMut(u64),
) -> CsRouterRegs {
    let mut next = *regs;
    // Deliver the local output register (capture side).
    let local = regs.out_reg[Port::Local.index()];
    if cs_word_decode(local).0 {
        capture(local);
    }
    // Pipeline: every output register loads from its connected input.
    for o in 0..NUM_PORTS {
        next.out_reg[o] = match regs.conn[o] {
            Some(p) => inputs[p.index()],
            None => 0,
        };
    }
    if local_consumed {
        next.stim_rd = next.stim_rd.wrapping_add(1);
    }
    next
}

/// The local source offer: the head of the stream ring if due. Returns
/// `(link word, consumed)`.
pub fn cs_offer(
    regs: &CsRouterRegs,
    cfg: &IfaceConfig,
    store: &dyn IfaceStore,
    cycle: u64,
) -> (u64, bool) {
    let pending = regs.stim_wr_shadow.wrapping_sub(regs.stim_rd);
    if pending == 0 {
        return (0, false);
    }
    let entry = StimEntry::from_bits(store.stim_read(0, regs.stim_rd as usize % cfg.stim_cap));
    if entry.ts <= cycle {
        (cs_word(true, entry.flit.payload), true)
    } else {
        (0, false)
    }
}

/// The circuit-switched router as a sequential-simulator block.
///
/// Ports: inputs 0..4 = neighbour links (17 b), input 4 = configuration
/// word (20 b, host-written), input 5 = stimuli write pointer (16 b,
/// host-written); outputs 0..4 = neighbour links.
///
/// All outputs are registered, so a network of these blocks is a
/// registered-boundary system in the sense of paper §4.1 and can run on
/// [`seqsim::StaticEngine`].
#[derive(Debug, Clone)]
pub struct CsRouterBlock {
    iface_cfg: IfaceConfig,
}

/// Side-memory ring index of the stream-source ring.
pub const CS_RING_STIM: usize = 0;
/// Side-memory ring index of the capture ring.
pub const CS_RING_OUT: usize = 1;
/// Input-port index of the configuration word.
pub const CS_IN_CFG: usize = 4;
/// Input-port index of the stimuli write pointer.
pub const CS_IN_WRPTR: usize = 5;

struct CsStore<'a, 'b> {
    view: &'a mut SideView<'b>,
}

impl IfaceStore for CsStore<'_, '_> {
    fn stim_read(&self, _vc: usize, slot: usize) -> u64 {
        self.view.read(CS_RING_STIM, slot)
    }
    fn out_write(&mut self, slot: usize, value: u64) {
        self.view.write(CS_RING_OUT, slot, value);
    }
    fn acc_write(&mut self, _slot: usize, _value: u64) {
        unreachable!("CS interface has no access-delay ring");
    }
}

impl CsRouterBlock {
    /// Build the shared kind.
    pub fn new(iface_cfg: IfaceConfig) -> Self {
        iface_cfg.validate();
        CsRouterBlock { iface_cfg }
    }
}

impl BlockKind for CsRouterBlock {
    fn name(&self) -> &str {
        "cs-router"
    }

    fn state_bits(&self) -> usize {
        CsRouterRegs::state_bits()
    }

    fn input_widths(&self) -> Vec<usize> {
        vec![
            CS_LINK_BITS,
            CS_LINK_BITS,
            CS_LINK_BITS,
            CS_LINK_BITS,
            CS_CFG_BITS,
            16,
        ]
    }

    fn output_widths(&self) -> Vec<usize> {
        vec![CS_LINK_BITS; 4]
    }

    fn side_rings(&self) -> Vec<usize> {
        vec![self.iface_cfg.stim_cap, self.iface_cfg.out_cap]
    }

    fn reset(&self, state: &mut [u64]) {
        CsRouterRegs::new().pack(state);
    }

    fn eval(
        &self,
        _instance: usize,
        cur: &[u64],
        inputs: &[u64],
        cycle: u64,
        next: &mut [u64],
        outputs: &mut [u64],
        side: &mut SideView<'_>,
    ) {
        let regs = CsRouterRegs::unpack(cur);
        let mut store = CsStore { view: side };
        let (offer, consumed) = cs_offer(&regs, &self.iface_cfg, &store, cycle);
        let mut link_in = [0u64; NUM_PORTS];
        link_in[..4].copy_from_slice(&inputs[..4]);
        link_in[Port::Local.index()] = offer;

        let out_cap = self.iface_cfg.out_cap;
        let mut captured: Option<u64> = None;
        let mut next_regs = cs_clock(&regs, &link_in, consumed, |w| captured = Some(w));

        // Expose the *combinational* values (`Fi(x)` of paper Fig 2); the
        // static engine's double-banked link memory is the boundary
        // register, giving one registered hop per router exactly like the
        // native model's `out_reg`.
        outputs[..4].copy_from_slice(&next_regs.out_reg[..4]);
        if let Some(w) = captured {
            let (_, data) = cs_word_decode(w);
            store.out_write(
                regs.out_wr as usize % out_cap,
                OutEntry {
                    cycle,
                    vc: 0,
                    flit: Flit {
                        kind: FlitKind::Body,
                        payload: data,
                    },
                }
                .to_bits(),
            );
            next_regs.out_wr = regs.out_wr.wrapping_add(1);
        }
        // Configuration and pointer registers load from the host links.
        next_regs.conn = cs_cfg_decode(inputs[CS_IN_CFG]);
        next_regs.stim_wr_shadow = inputs[CS_IN_WRPTR] as u16;
        next_regs.pack(next);
    }
}

/// Compute the dimension-ordered path of a circuit from `src` to `dest`:
/// the (node, output port) links it claims, ending with the Local
/// delivery port.
pub fn cs_path(cfg: &NetworkConfig, src: Coord, dest: Coord) -> Vec<(Coord, Port)> {
    let mut path = Vec::new();
    let mut cur = src;
    for _ in 0..=cfg.shape.num_nodes() {
        let ctx = crate::routing::RouterCtx::new(cfg, cur);
        let (port, _) = crate::routing::route(&ctx, dest, 0);
        path.push((cur, port));
        if port == Port::Local {
            return path;
        }
        let dir = port
            .direction()
            .unwrap_or_else(|| unreachable!("non-Local route hop has a direction"));
        cur = cfg
            .topology
            .neighbour(cfg.shape, cur, dir)
            .unwrap_or_else(|| unreachable!("route stepped onto a missing link at {cur:?}"));
    }
    unreachable!("routing did not terminate");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_and_cfg_roundtrip() {
        for data in [0u16, 1, 0xFFFF, 0xA5A5] {
            for valid in [false, true] {
                assert_eq!(cs_word_decode(cs_word(valid, data)), (valid, data));
            }
        }
        let conn = [
            Some(Port::Local),
            None,
            Some(Port::North),
            Some(Port::West),
            Some(Port::East),
        ];
        assert_eq!(cs_cfg_decode(cs_cfg_encode(&conn)), conn);
    }

    #[test]
    fn regs_pack_roundtrip() {
        let mut r = CsRouterRegs::new();
        r.conn[1] = Some(Port::South);
        r.conn[4] = Some(Port::East);
        r.out_reg[2] = cs_word(true, 0xBEEF);
        r.stim_rd = 7;
        r.stim_wr_shadow = 9;
        r.out_wr = 1000;
        let mut words = vec![0u64; noc_types::bits::words_for_bits(CsRouterRegs::state_bits())];
        r.pack(&mut words);
        assert_eq!(CsRouterRegs::unpack(&words), r);
    }

    #[test]
    fn pipeline_forwards_one_hop_per_cycle() {
        let mut regs = CsRouterRegs::new();
        regs.conn[Port::East.index()] = Some(Port::West);
        let mut inputs = [0u64; NUM_PORTS];
        inputs[Port::West.index()] = cs_word(true, 42);
        let next = cs_clock(&regs, &inputs, false, |_| panic!("no local delivery"));
        assert_eq!(next.out_reg[Port::East.index()], cs_word(true, 42));
        // Unconnected outputs stay idle.
        assert_eq!(next.out_reg[Port::North.index()], 0);
    }

    #[test]
    fn local_delivery_captures() {
        let mut regs = CsRouterRegs::new();
        regs.conn[Port::Local.index()] = Some(Port::North);
        regs.out_reg[Port::Local.index()] = cs_word(true, 7);
        let mut got = Vec::new();
        let _ = cs_clock(&regs, &[0; NUM_PORTS], false, |w| got.push(w));
        assert_eq!(got, vec![cs_word(true, 7)]);
    }

    #[test]
    fn cs_state_is_small() {
        // §7.1: "systolic algorithms with many equal parts with a small
        // state space" — the CS router's state is ~20x smaller than the
        // packet-switched router's.
        let ps = crate::layout::RegisterLayout::new(4).state_bits();
        assert!(CsRouterRegs::state_bits() * 10 < ps);
    }

    #[test]
    fn path_follows_dimension_order() {
        let cfg = NetworkConfig::new(4, 4, noc_types::Topology::Mesh, 4);
        let p = cs_path(&cfg, Coord::new(0, 0), Coord::new(2, 1));
        let ports: Vec<Port> = p.iter().map(|e| e.1).collect();
        assert_eq!(
            ports,
            vec![Port::East, Port::East, Port::North, Port::Local]
        );
    }
}
