//! The router's register file, as a plain struct (used directly by the
//! native engine) plus bit-exact packing into state-memory words (used by
//! the sequential simulator — the paper's "extraction of all registers in
//! the design and their mapping on a memory position").

use crate::queue::{FlitQueue, MAX_QUEUE_DEPTH};
use noc_types::bits::{ceil_log2, BitReader, BitWriter};
use noc_types::{NUM_PORTS, NUM_QUEUES, NUM_VCS};

/// Registers of the stimuli interface attached to a router's Local port
/// (paper §5.2, Table 1 "Stimuli interfaces").
///
/// All ring pointers are free-running 16-bit counters; the slot index is
/// `ptr % capacity` and the fill level `wr.wrapping_sub(rd)` — the
/// standard hardware idiom that distinguishes full from empty without an
/// extra flag (capacities are < 2^15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IfaceRegs {
    /// Read pointer into the per-VC stimuli ring.
    pub stim_rd: [u16; NUM_VCS],
    /// Registered shadow of the host-written stimuli write pointers (a
    /// synchroniser stage: host writes become visible one cycle later).
    pub stim_wr_shadow: [u16; NUM_VCS],
    /// Write pointer into the delivered-output ring.
    pub out_wr: u16,
    /// Write pointer into the access-delay log ring.
    pub acc_wr: u16,
    /// Round-robin pointer over VCs for injection.
    pub vc_rr: u8,
}

/// The complete register file of one router + stimuli interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterRegs {
    /// Input queues, indexed `port * NUM_VCS + vc`.
    pub queues: [FlitQueue; NUM_QUEUES],
    /// Wormhole owner per (output port, VC), indexed `out * NUM_VCS + vc`:
    /// bit 5 = valid, bits 4..0 = owning queue index.
    pub owner: [u8; NUM_QUEUES],
    /// Queue-level round-robin pointer per (output port, VC) for head
    /// arbitration, indexed `out * NUM_VCS + vc`, values `0..NUM_QUEUES`.
    pub inner_rr: [u8; NUM_QUEUES],
    /// VC-level round-robin pointer per output port, values `0..NUM_VCS`.
    pub outer_rr: [u8; NUM_PORTS],
    /// Stimuli interface registers.
    pub iface: IfaceRegs,
}

/// Encoding of an owner entry: `None` or a queue index.
#[inline]
pub fn owner_encode(o: Option<u8>) -> u8 {
    match o {
        Some(q) => 0x20 | q,
        None => 0,
    }
}

/// Decode an owner entry.
#[inline]
pub fn owner_decode(bits: u8) -> Option<u8> {
    if bits & 0x20 != 0 {
        Some(bits & 0x1F)
    } else {
        None
    }
}

impl Default for RouterRegs {
    fn default() -> Self {
        Self::new()
    }
}

impl RouterRegs {
    /// Reset-state register file (all queues empty, all arbiters at 0,
    /// no owners).
    pub const fn new() -> Self {
        RouterRegs {
            queues: [FlitQueue::new(); NUM_QUEUES],
            owner: [0; NUM_QUEUES],
            inner_rr: [0; NUM_QUEUES],
            outer_rr: [0; NUM_PORTS],
            iface: IfaceRegs {
                stim_rd: [0; NUM_VCS],
                stim_wr_shadow: [0; NUM_VCS],
                out_wr: 0,
                acc_wr: 0,
                vc_rr: 0,
            },
        }
    }

    /// Wormhole owner of `(out, vc)`.
    #[inline]
    pub fn owner_of(&self, out: usize, vc: usize) -> Option<u8> {
        owner_decode(self.owner[out * NUM_VCS + vc])
    }

    /// The (output, VC) currently owned by queue `q`, if any. At most one
    /// pair can be owned by a queue (a queue's packets are sequential).
    pub fn owned_by(&self, q: u8) -> Option<(usize, usize)> {
        for out in 0..NUM_PORTS {
            for vc in 0..NUM_VCS {
                if self.owner_of(out, vc) == Some(q) {
                    return Some((out, vc));
                }
            }
        }
        None
    }

    /// Pack the register file into state-memory words. `words` must hold
    /// at least [`state_bits`](crate::layout::RegisterLayout::state_bits)
    /// bits; the field order is fixed and documented in
    /// [`layout`](crate::layout).
    pub fn pack(&self, depth: usize, words: &mut [u64]) {
        let mut w = BitWriter::new(words);
        let pw = ceil_log2(depth);
        let ow = ceil_log2(depth + 1);
        for q in &self.queues {
            let (slots, rd, wr, occ) = q.raw();
            for &s in slots.iter().take(depth) {
                w.put(18, s as u64);
            }
            w.put(pw, rd as u64);
            w.put(pw, wr as u64);
            w.put(ow, occ as u64);
        }
        for &o in &self.owner {
            w.put(6, o as u64);
        }
        for &r in &self.inner_rr {
            w.put(5, r as u64);
        }
        for &r in &self.outer_rr {
            w.put(2, r as u64);
        }
        for &p in &self.iface.stim_rd {
            w.put(16, p as u64);
        }
        for &p in &self.iface.stim_wr_shadow {
            w.put(16, p as u64);
        }
        w.put(16, self.iface.out_wr as u64);
        w.put(16, self.iface.acc_wr as u64);
        w.put(2, self.iface.vc_rr as u64);
    }

    /// Unpack a register file from state-memory words.
    pub fn unpack(depth: usize, words: &[u64]) -> Self {
        let mut r = BitReader::new(words);
        let pw = ceil_log2(depth);
        let ow = ceil_log2(depth + 1);
        let mut regs = RouterRegs::new();
        for q in regs.queues.iter_mut() {
            let mut slots = [0u32; MAX_QUEUE_DEPTH];
            for s in slots.iter_mut().take(depth) {
                *s = r.take(18) as u32;
            }
            let rd = r.take(pw) as u8;
            let wr = r.take(pw) as u8;
            let occ = r.take(ow) as u8;
            *q = FlitQueue::from_raw(slots, rd, wr, occ);
        }
        for o in regs.owner.iter_mut() {
            *o = r.take(6) as u8;
        }
        for rr in regs.inner_rr.iter_mut() {
            *rr = r.take(5) as u8;
        }
        for rr in regs.outer_rr.iter_mut() {
            *rr = r.take(2) as u8;
        }
        for p in regs.iface.stim_rd.iter_mut() {
            *p = r.take(16) as u16;
        }
        for p in regs.iface.stim_wr_shadow.iter_mut() {
            *p = r.take(16) as u16;
        }
        regs.iface.out_wr = r.take(16) as u16;
        regs.iface.acc_wr = r.take(16) as u16;
        regs.iface.vc_rr = r.take(2) as u8;
        regs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::RegisterLayout;
    use noc_types::bits::words_for_bits;
    use noc_types::{Flit, FlitKind};

    fn scrambled(depth: usize) -> RouterRegs {
        let mut r = RouterRegs::new();
        for (i, q) in r.queues.iter_mut().enumerate() {
            for j in 0..(i % (depth + 1)) {
                q.push(
                    depth,
                    Flit {
                        kind: FlitKind::Body,
                        payload: (i * 31 + j) as u16,
                    },
                );
            }
        }
        for (i, o) in r.owner.iter_mut().enumerate() {
            *o = owner_encode(if i % 3 == 0 {
                Some((i % 20) as u8)
            } else {
                None
            });
        }
        for (i, rr) in r.inner_rr.iter_mut().enumerate() {
            *rr = (i % 20) as u8;
        }
        for (i, rr) in r.outer_rr.iter_mut().enumerate() {
            *rr = (i % 4) as u8;
        }
        r.iface.stim_rd = [1, 2000, 65535, 4];
        r.iface.stim_wr_shadow = [5, 6, 7, 40000];
        r.iface.out_wr = 777;
        r.iface.acc_wr = 888;
        r.iface.vc_rr = 3;
        r
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for depth in [2usize, 4, 8] {
            let layout = RegisterLayout::new(depth);
            let regs = scrambled(depth);
            let mut words = vec![0u64; words_for_bits(layout.state_bits())];
            regs.pack(depth, &mut words);
            let back = RouterRegs::unpack(depth, &words);
            // Compare via repack: slots beyond `depth` are don't-care.
            let mut words2 = vec![0u64; words.len()];
            back.pack(depth, &mut words2);
            assert_eq!(words, words2, "depth {depth}");
            assert_eq!(back.owner, regs.owner);
            assert_eq!(back.iface, regs.iface);
            for (a, b) in back.queues.iter().zip(regs.queues.iter()) {
                assert_eq!(a.occupancy(), b.occupancy());
                assert_eq!(a.front(), b.front());
            }
        }
    }

    #[test]
    fn owner_encoding() {
        assert_eq!(owner_decode(owner_encode(None)), None);
        for q in 0..20u8 {
            assert_eq!(owner_decode(owner_encode(Some(q))), Some(q));
        }
    }

    #[test]
    fn owned_by_reverse_lookup() {
        let mut r = RouterRegs::new();
        r.owner[2 * NUM_VCS + 3] = owner_encode(Some(7));
        assert_eq!(r.owned_by(7), Some((2, 3)));
        assert_eq!(r.owned_by(8), None);
    }
}
