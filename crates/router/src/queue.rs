//! The per-(port, VC) input flit queue.
//!
//! Paper §2.1: "they are buffered in four flit deep queues at the input
//! ports. Per port, four queues are available - one queue per VC."
//!
//! The queue is a circular buffer with explicit read/write pointers and an
//! occupancy counter — the exact register set a hardware FIFO has, so the
//! bit-packed state of the sequential simulator matches the synthesised
//! design register for register.

use noc_types::Flit;

/// Upper bound on the configurable queue depth (the register layout uses
/// fixed-width arrays; the effective depth comes from `RouterConfig`).
pub const MAX_QUEUE_DEPTH: usize = 8;

/// A hardware-faithful flit FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlitQueue {
    /// Flit slots, encoded as 18-bit words (see [`noc_types::flit`]).
    slots: [u32; MAX_QUEUE_DEPTH],
    rd: u8,
    wr: u8,
    occ: u8,
}

impl Default for FlitQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl FlitQueue {
    /// An empty queue.
    pub const fn new() -> Self {
        FlitQueue {
            slots: [0; MAX_QUEUE_DEPTH],
            rd: 0,
            wr: 0,
            occ: 0,
        }
    }

    /// Number of flits currently buffered.
    #[inline]
    pub fn occupancy(&self) -> usize {
        self.occ as usize
    }

    /// True when no flit is buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.occ == 0
    }

    /// The flit at the head of the queue, if any.
    #[inline]
    pub fn front(&self) -> Option<Flit> {
        if self.occ == 0 {
            None
        } else {
            Some(Flit::from_bits(self.slots[self.rd as usize] as u64))
        }
    }

    /// Enqueue a flit.
    ///
    /// # Panics
    /// Panics if the queue is full for the given `depth` — an upstream
    /// router violated flow control, which is a simulator bug.
    #[inline]
    pub fn push(&mut self, depth: usize, flit: Flit) {
        assert!(
            (self.occ as usize) < depth,
            "flow-control violation: push into full queue (depth {depth})"
        );
        self.slots[self.wr as usize] = flit.to_bits() as u32;
        self.wr = ((self.wr as usize + 1) % depth) as u8;
        self.occ += 1;
    }

    /// Dequeue the head flit.
    ///
    /// # Panics
    /// Panics if the queue is empty — arbitration granted a queue without
    /// a flit, which is a simulator bug.
    #[inline]
    pub fn pop(&mut self, depth: usize) -> Flit {
        assert!(self.occ > 0, "pop from empty queue");
        let f = Flit::from_bits(self.slots[self.rd as usize] as u64);
        self.rd = ((self.rd as usize + 1) % depth) as u8;
        self.occ -= 1;
        f
    }

    /// Raw access for bit-packing: `(slots, rd, wr, occ)`.
    #[inline]
    pub fn raw(&self) -> (&[u32; MAX_QUEUE_DEPTH], u8, u8, u8) {
        (&self.slots, self.rd, self.wr, self.occ)
    }

    /// Rebuild from raw register values (bit-unpacking).
    #[inline]
    pub fn from_raw(slots: [u32; MAX_QUEUE_DEPTH], rd: u8, wr: u8, occ: u8) -> Self {
        FlitQueue { slots, rd, wr, occ }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::{Flit, FlitKind};

    fn f(p: u16) -> Flit {
        Flit {
            kind: FlitKind::Body,
            payload: p,
        }
    }

    #[test]
    fn fifo_order() {
        let mut q = FlitQueue::new();
        let depth = 4;
        for i in 0..4 {
            q.push(depth, f(i));
        }
        assert_eq!(q.occupancy(), 4);
        for i in 0..4 {
            assert_eq!(q.front(), Some(f(i)));
            assert_eq!(q.pop(depth), f(i));
        }
        assert!(q.is_empty());
        assert_eq!(q.front(), None);
    }

    #[test]
    fn wraparound() {
        let mut q = FlitQueue::new();
        let depth = 2;
        for round in 0..7u16 {
            q.push(depth, f(round));
            assert_eq!(q.pop(depth), f(round));
        }
        q.push(depth, f(100));
        q.push(depth, f(101));
        assert_eq!(q.occupancy(), 2);
        assert_eq!(q.pop(depth), f(100));
        q.push(depth, f(102));
        assert_eq!(q.pop(depth), f(101));
        assert_eq!(q.pop(depth), f(102));
    }

    #[test]
    #[should_panic(expected = "flow-control violation")]
    fn overflow_panics() {
        let mut q = FlitQueue::new();
        q.push(2, f(0));
        q.push(2, f(1));
        q.push(2, f(2));
    }

    #[test]
    #[should_panic(expected = "pop from empty")]
    fn underflow_panics() {
        let mut q = FlitQueue::new();
        q.pop(2);
    }

    #[test]
    fn simultaneous_push_pop_at_capacity() {
        // The cycle-level semantics pop winners before pushing arrivals, so
        // a full queue that dequeues can accept one flit the same cycle.
        let mut q = FlitQueue::new();
        let depth = 2;
        q.push(depth, f(1));
        q.push(depth, f(2));
        let out = q.pop(depth);
        q.push(depth, f(3));
        assert_eq!(out, f(1));
        assert_eq!(q.occupancy(), 2);
    }
}
