//! The stimuli interface (paper §5.2).
//!
//! "The stimuli are buffered per virtual channel (VC) in cyclic buffers in
//! the FPGA. The output values of the network are stored per router, and
//! not per VC, in a cyclic buffer. The data in the buffers has a timestamp
//! [...] Two extra cyclic buffers make it possible to log [...] the access
//! delay a flit notices before it enters the network."
//!
//! Each router's Local port is driven by one stimuli interface:
//!
//! * four *stimuli rings* (one per VC) hold timestamped flits written by
//!   the host; the interface injects the head-of-ring flit once its
//!   timestamp has been reached and the router's local input queue for
//!   that VC has room, arbitrating across VCs round-robin (one flit per
//!   cycle fits on the local link);
//! * one *output ring* captures every flit delivered at the local output
//!   port, timestamped;
//! * one *access-delay ring* logs, for every injected head flit, how long
//!   it waited between its generation timestamp and actual injection.
//!
//! The logic is written over the [`IfaceStore`] trait so the native engine
//! (plain `Vec` rings) and the sequential simulator (BRAM-like side
//! memory) share it verbatim.

use crate::regs::IfaceRegs;
use noc_types::{Flit, LinkFwd, NUM_VCS};

/// Ring capacities of a stimuli interface, in entries. All must be powers
/// of two below 2^15 so the free-running 16-bit pointers disambiguate
/// full/empty by subtraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IfaceConfig {
    /// Entries per VC stimuli ring. The paper fixes the simulation period
    /// to this size to prevent buffer underrun (§5.3, step 3).
    pub stim_cap: usize,
    /// Entries in the delivered-output ring.
    pub out_cap: usize,
    /// Entries in the access-delay log ring.
    pub acc_cap: usize,
}

impl Default for IfaceConfig {
    fn default() -> Self {
        IfaceConfig {
            stim_cap: 256,
            out_cap: 8192,
            acc_cap: 4096,
        }
    }
}

impl IfaceConfig {
    /// Validate capacity constraints.
    pub fn validate(&self) {
        for (name, c) in [
            ("stim_cap", self.stim_cap),
            ("out_cap", self.out_cap),
            ("acc_cap", self.acc_cap),
        ] {
            assert!(c.is_power_of_two(), "{name} must be a power of two");
            assert!(c < 1 << 15, "{name} must stay below 2^15");
        }
    }
}

/// A timestamped stimulus: a flit that may enter the network at or after
/// `ts`. Encoded as `flit[17:0] | ts << 18` (46-bit timestamp).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StimEntry {
    /// Earliest injection cycle (the generation timestamp).
    pub ts: u64,
    /// The flit.
    pub flit: Flit,
}

impl StimEntry {
    /// Encode to a ring word.
    pub fn to_bits(self) -> u64 {
        debug_assert!(self.ts < 1 << 46);
        self.flit.to_bits() | (self.ts << 18)
    }

    /// Decode from a ring word.
    pub fn from_bits(b: u64) -> Self {
        StimEntry {
            ts: b >> 18,
            flit: Flit::from_bits(b & 0x3FFFF),
        }
    }
}

/// A delivered-output record: `flit | vc << 18 | cycle << 20`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutEntry {
    /// Delivery cycle.
    pub cycle: u64,
    /// VC the flit arrived on.
    pub vc: u8,
    /// The delivered flit.
    pub flit: Flit,
}

impl OutEntry {
    /// Encode to a ring word.
    pub fn to_bits(self) -> u64 {
        debug_assert!(self.cycle < 1 << 44);
        self.flit.to_bits() | ((self.vc as u64) << 18) | (self.cycle << 20)
    }

    /// Decode from a ring word.
    pub fn from_bits(b: u64) -> Self {
        OutEntry {
            cycle: b >> 20,
            vc: ((b >> 18) & 0b11) as u8,
            flit: Flit::from_bits(b & 0x3FFFF),
        }
    }
}

/// An access-delay record: `vc | delay << 2 | ts << 22` (delay saturates
/// at 2^20 - 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccEntry {
    /// Generation timestamp of the head flit.
    pub ts: u64,
    /// Injection VC.
    pub vc: u8,
    /// Cycles the head flit waited before entering the network.
    pub delay: u64,
}

impl AccEntry {
    /// Encode to a ring word.
    pub fn to_bits(self) -> u64 {
        debug_assert!(self.ts < 1 << 42);
        let delay = self.delay.min((1 << 20) - 1);
        self.vc as u64 | (delay << 2) | (self.ts << 22)
    }

    /// Decode from a ring word.
    pub fn from_bits(b: u64) -> Self {
        AccEntry {
            ts: b >> 22,
            vc: (b & 0b11) as u8,
            delay: (b >> 2) & 0xFFFFF,
        }
    }
}

/// Storage backend of one stimuli interface (BRAM in the FPGA).
pub trait IfaceStore {
    /// Read stimuli ring `vc` at `slot` (already reduced modulo capacity
    /// by the caller).
    fn stim_read(&self, vc: usize, slot: usize) -> u64;
    /// Write the output ring at `slot`.
    fn out_write(&mut self, slot: usize, value: u64);
    /// Write the access-delay ring at `slot`.
    fn acc_write(&mut self, slot: usize, value: u64);
}

/// Plain in-memory rings (native engine and host side).
#[derive(Debug, Clone)]
pub struct IfaceRings {
    /// Per-VC stimuli rings.
    pub stim: [Vec<u64>; NUM_VCS],
    /// Delivered-output ring.
    pub out: Vec<u64>,
    /// Access-delay ring.
    pub acc: Vec<u64>,
}

impl IfaceRings {
    /// Allocate zeroed rings.
    pub fn new(cfg: &IfaceConfig) -> Self {
        cfg.validate();
        IfaceRings {
            stim: core::array::from_fn(|_| vec![0; cfg.stim_cap]),
            out: vec![0; cfg.out_cap],
            acc: vec![0; cfg.acc_cap],
        }
    }
}

impl IfaceStore for IfaceRings {
    fn stim_read(&self, vc: usize, slot: usize) -> u64 {
        self.stim[vc][slot]
    }
    fn out_write(&mut self, slot: usize, value: u64) {
        self.out[slot] = value;
    }
    fn acc_write(&mut self, slot: usize, value: u64) {
        self.acc[slot] = value;
    }
}

/// Combinational injection pick: the flit (if any) the interface drives
/// onto the router's local input link this cycle.
///
/// Scans VCs round-robin from `regs.vc_rr`; a VC is eligible when its ring
/// is non-empty (against the *registered* write-pointer shadow), the head
/// entry's timestamp has been reached, and the router's local input queue
/// for that VC has room.
pub fn iface_pick(
    regs: &IfaceRegs,
    cfg: &IfaceConfig,
    store: &dyn IfaceStore,
    room_local: &[bool; NUM_VCS],
    cycle: u64,
) -> Option<(u8, StimEntry)> {
    for k in 0..NUM_VCS {
        let v = (regs.vc_rr as usize + k) % NUM_VCS;
        let pending = regs.stim_wr_shadow[v].wrapping_sub(regs.stim_rd[v]);
        if pending == 0 || !room_local[v] {
            continue;
        }
        let entry =
            StimEntry::from_bits(store.stim_read(v, regs.stim_rd[v] as usize % cfg.stim_cap));
        if entry.ts <= cycle {
            return Some((v as u8, entry));
        }
    }
    None
}

/// Register-update half of the interface: consume the picked stimulus,
/// capture the local output flit, log access delay, refresh the
/// write-pointer shadows. `regs` is the *next*-state register file (starts
/// as a copy of the current state).
pub fn iface_clock(
    regs: &mut IfaceRegs,
    cfg: &IfaceConfig,
    store: &mut dyn IfaceStore,
    pick: Option<(u8, StimEntry)>,
    local_out: LinkFwd,
    stim_wr_inputs: [u16; NUM_VCS],
    cycle: u64,
) {
    if let Some((v, entry)) = pick {
        let vi = v as usize;
        if entry.flit.kind.is_head() {
            store.acc_write(
                regs.acc_wr as usize % cfg.acc_cap,
                AccEntry {
                    ts: entry.ts,
                    vc: v,
                    delay: cycle - entry.ts,
                }
                .to_bits(),
            );
            regs.acc_wr = regs.acc_wr.wrapping_add(1);
        }
        regs.stim_rd[vi] = regs.stim_rd[vi].wrapping_add(1);
        regs.vc_rr = ((vi + 1) % NUM_VCS) as u8;
    }
    if local_out.valid {
        store.out_write(
            regs.out_wr as usize % cfg.out_cap,
            OutEntry {
                cycle,
                vc: local_out.vc,
                flit: local_out.flit,
            }
            .to_bits(),
        );
        regs.out_wr = regs.out_wr.wrapping_add(1);
    }
    regs.stim_wr_shadow = stim_wr_inputs;
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::{Coord, FlitKind};

    #[test]
    fn entry_encodings_roundtrip() {
        let s = StimEntry {
            ts: 123_456_789,
            flit: Flit::head(Coord::new(3, 9), 0x5A),
        };
        assert_eq!(StimEntry::from_bits(s.to_bits()), s);
        let o = OutEntry {
            cycle: 1 << 40,
            vc: 3,
            flit: Flit {
                kind: FlitKind::Tail,
                payload: 0xFFFF,
            },
        };
        assert_eq!(OutEntry::from_bits(o.to_bits()), o);
        let a = AccEntry {
            ts: 999,
            vc: 2,
            delay: 77,
        };
        assert_eq!(AccEntry::from_bits(a.to_bits()), a);
    }

    #[test]
    fn acc_delay_saturates() {
        let a = AccEntry {
            ts: 0,
            vc: 0,
            delay: 1 << 30,
        };
        assert_eq!(AccEntry::from_bits(a.to_bits()).delay, (1 << 20) - 1);
    }

    fn setup() -> (IfaceRegs, IfaceConfig, IfaceRings) {
        let cfg = IfaceConfig::default();
        (IfaceRegs::default(), cfg, IfaceRings::new(&cfg))
    }

    fn put_stim(rings: &mut IfaceRings, cfg: &IfaceConfig, vc: usize, wr: &mut u16, e: StimEntry) {
        rings.stim[vc][*wr as usize % cfg.stim_cap] = e.to_bits();
        *wr = wr.wrapping_add(1);
    }

    #[test]
    fn pick_respects_timestamp_room_and_rr() {
        let (mut regs, cfg, mut rings) = setup();
        let mut wr0 = 0u16;
        let mut wr2 = 0u16;
        let f = Flit::head_tail(Coord::new(1, 1), 0);
        put_stim(&mut rings, &cfg, 0, &mut wr0, StimEntry { ts: 10, flit: f });
        put_stim(&mut rings, &cfg, 2, &mut wr2, StimEntry { ts: 0, flit: f });
        regs.stim_wr_shadow = [wr0, 0, wr2, 0];
        let all_room = [true; NUM_VCS];
        // Cycle 0: vc0's entry not yet due; vc2 wins.
        let p = iface_pick(&regs, &cfg, &rings, &all_room, 0);
        assert_eq!(p.map(|(v, _)| v), Some(2));
        // Cycle 10: both due; rr at 0 -> vc0 wins.
        let p = iface_pick(&regs, &cfg, &rings, &all_room, 10);
        assert_eq!(p.map(|(v, _)| v), Some(0));
        // No room on vc0 -> vc2 wins.
        let mut no0 = all_room;
        no0[0] = false;
        let p = iface_pick(&regs, &cfg, &rings, &no0, 10);
        assert_eq!(p.map(|(v, _)| v), Some(2));
        // rr pointer past 0 -> vc2 wins even with room.
        regs.vc_rr = 1;
        let p = iface_pick(&regs, &cfg, &rings, &all_room, 10);
        assert_eq!(p.map(|(v, _)| v), Some(2));
    }

    #[test]
    fn clock_advances_pointers_and_logs() {
        let (mut regs, cfg, mut rings) = setup();
        let f = Flit::head(Coord::new(2, 2), 9);
        let pick = Some((1u8, StimEntry { ts: 5, flit: f }));
        let delivered = LinkFwd::flit(
            3,
            Flit {
                kind: FlitKind::Tail,
                payload: 7,
            },
        );
        iface_clock(
            &mut regs,
            &cfg,
            &mut rings,
            pick,
            delivered,
            [4, 5, 6, 7],
            12,
        );
        assert_eq!(regs.stim_rd[1], 1);
        assert_eq!(regs.vc_rr, 2);
        assert_eq!(regs.acc_wr, 1);
        assert_eq!(regs.out_wr, 1);
        assert_eq!(regs.stim_wr_shadow, [4, 5, 6, 7]);
        let acc = AccEntry::from_bits(rings.acc[0]);
        assert_eq!((acc.vc, acc.delay, acc.ts), (1, 7, 5));
        let out = OutEntry::from_bits(rings.out[0]);
        assert_eq!((out.cycle, out.vc), (12, 3));
        assert_eq!(out.flit.payload, 7);
    }

    #[test]
    fn body_flit_injection_does_not_log_access_delay() {
        let (mut regs, cfg, mut rings) = setup();
        let pick = Some((
            0u8,
            StimEntry {
                ts: 0,
                flit: Flit {
                    kind: FlitKind::Body,
                    payload: 1,
                },
            },
        ));
        iface_clock(&mut regs, &cfg, &mut rings, pick, LinkFwd::IDLE, [0; 4], 3);
        assert_eq!(regs.acc_wr, 0);
        assert_eq!(regs.stim_rd[0], 1);
    }
}
