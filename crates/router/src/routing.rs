//! Route computation: dimension-ordered (X then Y) routing on torus or
//! mesh, with the output-VC choice that keeps wormhole switching
//! deadlock-free.
//!
//! * GT packets (VCs 2/3) keep their VC end-to-end; the GT stream
//!   allocator guarantees at most one stream per (link, VC), so GT worms
//!   never block each other and cannot deadlock.
//! * BE packets on a torus use the classic *dateline* discipline on the
//!   BE VC pair {0,1}: a packet travels on VC 0 while its remaining path
//!   in the current dimension still has to cross the wrap-around edge and
//!   on VC 1 from the wrapping hop onwards. Within each unidirectional
//!   ring this orders the channel dependencies acyclically; together with
//!   dimension-ordered routing the full channel dependency graph is a DAG.
//! * BE packets on a mesh keep their injected VC (dimension-ordered
//!   routing is already acyclic without wrap links).

use noc_types::{Coord, NetworkConfig, Port, Shape, Topology, GT_VCS, NUM_VCS};

/// Per-router constants: position and network parameters. In the FPGA
/// these are the router's address and the software-selected topology
/// (paper §7.1), not registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterCtx {
    /// This router's coordinate.
    pub coord: Coord,
    /// Network shape.
    pub shape: Shape,
    /// Torus or mesh.
    pub topology: Topology,
    /// Input queue depth in flits.
    pub depth: usize,
}

impl RouterCtx {
    /// Build the context for the router at `coord` in `cfg`'s network.
    pub fn new(cfg: &NetworkConfig, coord: Coord) -> Self {
        RouterCtx {
            coord,
            shape: cfg.shape,
            topology: cfg.topology,
            depth: cfg.router.queue_depth,
        }
    }
}

/// Direction and wrap decision within one dimension: returns
/// `(positive?, crosses_wrap_edge_on_path, this_hop_wraps)`.
fn dim_step(cur: u8, dest: u8, n: u8, torus: bool) -> (bool, bool, bool) {
    debug_assert_ne!(cur, dest);
    let fwd = (dest as i32 - cur as i32).rem_euclid(n as i32) as u8; // hops going +
    let bwd = n - fwd; // hops going -
    let positive = if !torus {
        dest > cur
    } else if fwd != bwd {
        fwd < bwd
    } else {
        // Tie on an even ring: deterministic tie-break towards +.
        true
    };
    if !torus {
        return (positive, false, false);
    }
    let (crosses, hop_wraps) = if positive {
        (dest < cur, cur == n - 1)
    } else {
        (dest > cur, cur == 0)
    };
    (positive, crosses, hop_wraps)
}

/// Compute the output port and output VC for a head flit currently at
/// `ctx.coord`, destined for `dest`, travelling on input VC `in_vc`.
///
/// Returns `(Port::Local, in_vc)` when the flit has arrived.
pub fn route(ctx: &RouterCtx, dest: Coord, in_vc: u8) -> (Port, u8) {
    debug_assert!((in_vc as usize) < NUM_VCS);
    let torus = ctx.topology == Topology::Torus;
    let c = ctx.coord;
    if c == dest {
        return (Port::Local, in_vc);
    }
    let (port, crosses, hop_wraps) = if c.x != dest.x {
        let (pos, crosses, hop_wraps) = dim_step(c.x, dest.x, ctx.shape.w, torus);
        (
            if pos { Port::East } else { Port::West },
            crosses,
            hop_wraps,
        )
    } else {
        let (pos, crosses, hop_wraps) = dim_step(c.y, dest.y, ctx.shape.h, torus);
        (
            if pos { Port::North } else { Port::South },
            crosses,
            hop_wraps,
        )
    };
    let out_vc = if GT_VCS.contains(&in_vc) {
        // GT streams keep their reserved VC end-to-end.
        in_vc
    } else if torus {
        // Dateline: VC 0 strictly before the wrap edge, VC 1 from the
        // wrapping hop onwards (and for paths that never wrap).
        if crosses && !hop_wraps {
            0
        } else {
            1
        }
    } else {
        // Mesh: keep the injected BE VC.
        in_vc
    };
    (port, out_vc)
}

/// Analytic latency guarantee for a GT packet (paper Fig 1's "Guarantee"
/// line), in cycles.
///
/// Rationale: the VC-level round-robin at each output port serves an
/// active VC at least once every [`NUM_VCS`] cycles, so once the worm is
/// established each additional flit arrives within `NUM_VCS` cycles; the
/// head pays at most `NUM_VCS + 2` per hop (arbitration round + crossbar
/// traversal + downstream enqueue). One `NUM_VCS + 2` term covers
/// injection at the source's local port.
pub fn gt_guarantee(hops: usize, flits: usize) -> u64 {
    ((hops + 1) * (NUM_VCS + 2) + (flits - 1) * NUM_VCS) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::{NetworkConfig, BE_VCS};

    fn ctx(cfg: &NetworkConfig, x: u8, y: u8) -> RouterCtx {
        RouterCtx::new(cfg, Coord::new(x, y))
    }

    /// Walk a packet from `src` to `dest` using `route` at every hop;
    /// returns (hops, the (coord, port, vc) trail).
    fn walk(cfg: &NetworkConfig, src: Coord, dest: Coord, inj_vc: u8) -> Vec<(Coord, Port, u8)> {
        let mut trail = Vec::new();
        let mut cur = src;
        let mut vc = inj_vc;
        for _ in 0..64 {
            let (port, out_vc) = route(&ctx(cfg, cur.x, cur.y), dest, vc);
            trail.push((cur, port, out_vc));
            if port == Port::Local {
                return trail;
            }
            cur = cfg
                .topology
                .neighbour(cfg.shape, cur, port.direction().unwrap())
                .expect("route chose a non-existent link");
            vc = out_vc;
        }
        panic!("routing did not terminate: {src} -> {dest}");
    }

    #[test]
    fn routes_terminate_and_are_minimal_torus() {
        let cfg = NetworkConfig::new(6, 6, Topology::Torus, 4);
        for s in cfg.shape.coords() {
            for d in cfg.shape.coords() {
                let trail = walk(&cfg, s, d, 0);
                let hops = trail.len() - 1;
                assert_eq!(
                    hops,
                    cfg.topology.distance(cfg.shape, s, d),
                    "{s}->{d} not minimal"
                );
            }
        }
    }

    #[test]
    fn routes_terminate_and_are_minimal_mesh() {
        let cfg = NetworkConfig::new(5, 3, Topology::Mesh, 4);
        for s in cfg.shape.coords() {
            for d in cfg.shape.coords() {
                let trail = walk(&cfg, s, d, 1);
                assert_eq!(trail.len() - 1, cfg.topology.distance(cfg.shape, s, d));
            }
        }
    }

    #[test]
    fn dimension_order_x_before_y() {
        let cfg = NetworkConfig::new(6, 6, Topology::Torus, 4);
        let trail = walk(&cfg, Coord::new(0, 0), Coord::new(2, 2), 0);
        let ports: Vec<Port> = trail.iter().map(|t| t.1).collect();
        assert_eq!(
            ports,
            vec![
                Port::East,
                Port::East,
                Port::North,
                Port::North,
                Port::Local
            ]
        );
    }

    #[test]
    fn gt_keeps_vc() {
        let cfg = NetworkConfig::new(6, 6, Topology::Torus, 4);
        for gt_vc in GT_VCS {
            let trail = walk(&cfg, Coord::new(5, 5), Coord::new(1, 0), gt_vc);
            assert!(trail.iter().all(|t| t.2 == gt_vc));
        }
    }

    #[test]
    fn be_dateline_on_wrapping_path() {
        let cfg = NetworkConfig::new(6, 6, Topology::Torus, 4);
        // 5 -> 1 going east wraps at the 5->0 edge.
        let trail = walk(&cfg, Coord::new(5, 0), Coord::new(1, 0), 0);
        let vcs: Vec<u8> = trail.iter().map(|t| t.2).collect();
        // Hop 5->0 wraps: vc1 from the wrapping hop onwards.
        assert_eq!(vcs[0], 1, "wrapping hop uses vc1");
        assert!(vcs.iter().all(|&v| BE_VCS.contains(&v)));
        // 2 -> 0 going west from x=2 never wraps: all vc1.
        let trail = walk(&cfg, Coord::new(2, 0), Coord::new(0, 0), 0);
        assert!(trail.iter().all(|t| t.2 == 1));
        // 4 -> 1 going east: 4,5 wrap at 5; hop at 4 is pre-edge -> vc0,
        // hop at 5 wraps -> vc1, hop at 0 -> vc1.
        let trail = walk(&cfg, Coord::new(4, 0), Coord::new(1, 0), 0);
        let vcs: Vec<u8> = trail.iter().map(|t| t.2).collect();
        assert_eq!(&vcs[..3], &[0, 1, 1]);
    }

    #[test]
    fn be_dateline_channel_dependencies_acyclic() {
        // Enumerate every (directed link, vc) -> (next link, vc) dependency
        // generated by all BE routes and verify the graph is a DAG.
        let cfg = NetworkConfig::new(4, 4, Topology::Torus, 4);
        use std::collections::{HashMap, HashSet};
        type Chan = (Coord, Port, u8);
        let mut edges: HashSet<(Chan, Chan)> = HashSet::new();
        for s in cfg.shape.coords() {
            for d in cfg.shape.coords() {
                if s == d {
                    continue;
                }
                let trail = walk(&cfg, s, d, 0);
                for w in trail.windows(2) {
                    if w[1].1 == Port::Local {
                        continue;
                    }
                    let a = (w[0].0, w[0].1, w[0].2);
                    let b = (w[1].0, w[1].1, w[1].2);
                    edges.insert((a, b));
                }
            }
        }
        // Kahn's algorithm.
        let mut indeg: HashMap<Chan, usize> = HashMap::new();
        let mut adj: HashMap<Chan, Vec<Chan>> = HashMap::new();
        for &(a, b) in &edges {
            indeg.entry(a).or_insert(0);
            *indeg.entry(b).or_insert(0) += 1;
            adj.entry(a).or_default().push(b);
        }
        let mut queue: Vec<_> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&k, _)| k)
            .collect();
        let mut seen = 0;
        while let Some(n) = queue.pop() {
            seen += 1;
            for m in adj.get(&n).cloned().unwrap_or_default() {
                let d = indeg.get_mut(&m).unwrap();
                *d -= 1;
                if *d == 0 {
                    queue.push(m);
                }
            }
        }
        assert_eq!(seen, indeg.len(), "BE channel dependency graph has a cycle");
    }

    #[test]
    fn guarantee_magnitude_matches_fig1() {
        // 6x6 torus, max 6 hops, 128-flit GT packet: the paper's guarantee
        // line sits around 500-600 cycles.
        let g = gt_guarantee(6, 128);
        assert!((450..650).contains(&g), "guarantee {g} out of Fig 1 range");
    }

    #[test]
    fn arrived_packet_goes_local() {
        let cfg = NetworkConfig::new(6, 6, Topology::Torus, 4);
        let (p, v) = route(&ctx(&cfg, 2, 3), Coord::new(2, 3), 2);
        assert_eq!(p, Port::Local);
        assert_eq!(v, 2);
    }
}
