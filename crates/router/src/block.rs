//! The router as a sequential-simulator block.
//!
//! One [`RouterBlock`] kind serves every router instance (the paper's
//! shared-implementation principle); the per-instance coordinate comes
//! from the evaluation's instance index, just as the FPGA's scheduler-
//! generated memory address selects which router's registers are loaded.
//!
//! Block ports (all four-neighbour; the Local port and its stimuli
//! interface are internal to the block, matching Table 1 which accounts
//! stimuli-interface registers to the router):
//!
//! | dir             | inputs                  | outputs              |
//! |-----------------|-------------------------|----------------------|
//! | 0..4 (N,E,S,W)  | forward link in (21 b)  | forward link out     |
//! | 4..8 (N,E,S,W)  | room in (4 b)           | room out             |
//! | 8..12           | stimuli wr-ptrs (16 b, host-written) | —       |
//!
//! Side-memory rings: 0..4 = per-VC stimuli rings, 4 = delivered-output
//! ring, 5 = access-delay ring.

use crate::clock::clock;
use crate::comb::{comb_fwd, comb_room, comb_select, transfers, RouterInputs, Selection};
use crate::iface::{iface_clock, iface_pick, IfaceConfig, IfaceStore};
use crate::layout::RegisterLayout;
use crate::regs::RouterRegs;
use crate::routing::RouterCtx;
use noc_types::fault::{FaultPlan, NodeFaults};
use noc_types::flit::{room_from_bits, room_to_bits, LINK_FWD_BITS, LINK_ROOM_BITS};
use noc_types::{Coord, LinkFwd, NetworkConfig, Port, NUM_PORTS, NUM_VCS};
use seqsim::compile::CompiledExec;
use seqsim::{BitExpr, BitSemantics, BlockKind, CombInputs, SideView};
use std::sync::Arc;

/// Index of the per-VC stimuli rings in the block's side memory.
pub const RING_STIM0: usize = 0;
/// Index of the delivered-output ring.
pub const RING_OUT: usize = 4;
/// Index of the access-delay ring.
pub const RING_ACC: usize = 5;

/// Input-port index of the first forward link (then N,E,S,W).
pub const IN_FWD0: usize = 0;
/// Input-port index of the first room link.
pub const IN_ROOM0: usize = 4;
/// Input-port index of the first stimuli write-pointer register.
pub const IN_WRPTR0: usize = 8;
/// Output-port index of the first forward link.
pub const OUT_FWD0: usize = 0;
/// Output-port index of the first room link.
pub const OUT_ROOM0: usize = 4;

/// Per-instance decode cache: the last packed words this kind produced for
/// the instance, and the register file they decode to. Validated by a
/// straight `memcmp` against the incoming `cur` words on every eval, so it
/// can never go stale — a snapshot restore or host poke simply misses.
///
/// Because every block is evaluated every system cycle and the state banks
/// swap, the words packed into `next` in cycle *c* are exactly the `cur`
/// words of cycle *c+1*: in steady state the cache hits and the eval skips
/// the bit-level [`RouterRegs::unpack`] entirely.
#[derive(Debug, Clone)]
struct DecodeCache {
    words: Vec<u64>,
    regs: RouterRegs,
}

/// The shared router implementation for the sequential simulator.
#[derive(Debug, Clone)]
pub struct RouterBlock {
    cfg: NetworkConfig,
    iface_cfg: IfaceConfig,
    coords: Vec<Coord>,
    layout: RegisterLayout,
    /// Per-instance fault view (all-empty without a plan).
    nf: Vec<NodeFaults>,
    /// Decode cache per instance (interior-mutable: `eval` takes `&self`).
    cache: std::cell::RefCell<Vec<Option<DecodeCache>>>,
}

impl RouterBlock {
    /// Build the shared kind for `cfg`'s network. `coords[i]` is the
    /// coordinate of instance `i`; instances must be added to the system
    /// in the same order.
    pub fn new(cfg: NetworkConfig, iface_cfg: IfaceConfig, coords: Vec<Coord>) -> Self {
        Self::with_faults(cfg, iface_cfg, coords, None)
    }

    /// [`new`](Self::new) plus an optional deterministic fault plan (see
    /// [`noc_types::fault`]): stall windows freeze an instance's
    /// registers while it drives idle/no-room outputs, link faults apply
    /// to the forward-link inputs it consumes.
    pub fn with_faults(
        cfg: NetworkConfig,
        iface_cfg: IfaceConfig,
        coords: Vec<Coord>,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        iface_cfg.validate();
        let layout = RegisterLayout::new(cfg.router.queue_depth);
        let nf = coords
            .iter()
            .map(|&c| {
                faults.as_ref().map_or_else(NodeFaults::default, |p| {
                    p.node_faults(cfg.shape.node_id(c).index())
                })
            })
            .collect();
        RouterBlock {
            cfg,
            iface_cfg,
            coords,
            layout,
            nf,
            cache: std::cell::RefCell::new(Vec::new()),
        }
    }

    /// The register layout of one instance.
    pub fn layout(&self) -> &RegisterLayout {
        &self.layout
    }

    /// The interface ring configuration.
    pub fn iface_cfg(&self) -> &IfaceConfig {
        &self.iface_cfg
    }

    /// Decode the register file from a state peek (host-side).
    pub fn peek_regs(&self, state: &[u64]) -> RouterRegs {
        RouterRegs::unpack(self.cfg.router.queue_depth, state)
    }
}

/// [`IfaceStore`] adapter over the block's side-memory view.
struct SideStore<'a, 'b> {
    view: &'a mut SideView<'b>,
}

impl IfaceStore for SideStore<'_, '_> {
    fn stim_read(&self, vc: usize, slot: usize) -> u64 {
        self.view.read(RING_STIM0 + vc, slot)
    }
    fn out_write(&mut self, slot: usize, value: u64) {
        self.view.write(RING_OUT, slot, value);
    }
    fn acc_write(&mut self, slot: usize, value: u64) {
        self.view.write(RING_ACC, slot, value);
    }
}

impl BlockKind for RouterBlock {
    fn name(&self) -> &str {
        "vc-router"
    }

    fn state_bits(&self) -> usize {
        self.layout.state_bits()
    }

    fn input_widths(&self) -> Vec<usize> {
        let mut w = vec![LINK_FWD_BITS; 4];
        w.extend([LINK_ROOM_BITS; 4]);
        w.extend([16usize; 4]);
        w
    }

    fn output_widths(&self) -> Vec<usize> {
        let mut w = vec![LINK_FWD_BITS; 4];
        w.extend([LINK_ROOM_BITS; 4]);
        w
    }

    fn side_rings(&self) -> Vec<usize> {
        let mut rings = vec![self.iface_cfg.stim_cap; NUM_VCS];
        rings.push(self.iface_cfg.out_cap);
        rings.push(self.iface_cfg.acc_cap);
        rings
    }

    fn reset(&self, state: &mut [u64]) {
        RouterRegs::new().pack(self.cfg.router.queue_depth, state);
    }

    fn comb_inputs(&self, port: usize) -> CombInputs {
        if (OUT_FWD0..OUT_FWD0 + 4).contains(&port) {
            // A forward word carries flits only into neighbour *room*:
            // `transfers(sel, room_in)` gates the queue heads, so the
            // four room inputs feed through combinationally. The
            // forward inputs and write pointers reach only `clock`/
            // `iface_clock` — next-state, never outputs.
            CombInputs::Some((IN_ROOM0..IN_ROOM0 + 4).collect())
        } else {
            // Room words are `comb_room(&regs)` — functions of
            // registered state only (the paper's structural reason the
            // router network is signal-acyclic).
            CombInputs::None
        }
    }

    fn bit_semantics(&self, port: usize) -> Option<BitSemantics> {
        // The bit-level restatement of `comb_inputs`: room output bits
        // are functions of registered state only (opaque value, no
        // combinational input deps), forward output bits may feed
        // through any bit of the four room inputs. Bitflow uses the
        // dependency lists for bit-independence proofs; the values stay
        // Unknown.
        let deps: Vec<(usize, usize)> = if (OUT_FWD0..OUT_FWD0 + 4).contains(&port) {
            (IN_ROOM0..IN_ROOM0 + 4)
                .flat_map(|p| (0..LINK_ROOM_BITS).map(move |b| (p, b)))
                .collect()
        } else {
            Vec::new()
        };
        let width = self.output_widths()[port];
        Some(BitSemantics {
            bits: (0..width)
                .map(|_| BitExpr::Opaque { deps: deps.clone() })
                .collect(),
        })
    }

    fn eval(
        &self,
        instance: usize,
        cur: &[u64],
        inputs: &[u64],
        cycle: u64,
        next: &mut [u64],
        outputs: &mut [u64],
        side: &mut SideView<'_>,
    ) {
        let depth = self.cfg.router.queue_depth;
        if self.nf[instance].stalled(cycle) {
            // Stalled: idle forward links, zero room, registers held.
            // The decode cache is left alone — it is memcmp-validated
            // against `cur`, so a stale entry simply misses later.
            outputs.iter_mut().for_each(|w| *w = 0);
            next.copy_from_slice(cur);
            return;
        }
        let mut cache = self.cache.borrow_mut();
        if cache.len() <= instance {
            cache.resize(instance + 1, None);
        }
        let regs = match &cache[instance] {
            Some(c) if c.words[..] == *cur => c.regs,
            _ => RouterRegs::unpack(depth, cur),
        };
        let ctx = RouterCtx {
            coord: self.coords[instance],
            shape: self.cfg.shape,
            topology: self.cfg.topology,
            depth,
        };

        // Assemble the wires.
        let mut rin = RouterInputs::idle();
        for d in 0..4 {
            let mut fwd_word = inputs[IN_FWD0 + d];
            if self.nf[instance].link_faulty(d) {
                // Link faults apply at the receiving input.
                fwd_word = self.nf[instance].apply_link(d, cycle, fwd_word);
            }
            rin.fwd_in[d] = LinkFwd::from_bits(fwd_word);
            rin.room_in[d] = room_from_bits(inputs[IN_ROOM0 + d]);
        }
        // room_in[Local] stays all-true: the capture ring always accepts.

        // G(x): room outputs, f(registered state).
        let room_out = comb_room(&regs, depth);

        // Stimuli interface offers at most one flit onto the local link.
        let mut store = SideStore { view: side };
        let pick = iface_pick(
            &regs.iface,
            &self.iface_cfg,
            &store,
            &room_out[Port::Local.index()],
            cycle,
        );
        if let Some((vc, entry)) = pick {
            rin.fwd_in[Port::Local.index()] = LinkFwd::flit(vc, entry.flit);
        }

        // F(x) output half: arbitration and forward links.
        let sel = comb_select(&regs, &ctx);
        let trans = transfers(&sel, &rin.room_in);
        let fwd = comb_fwd(&regs, &trans);

        for d in 0..4 {
            outputs[OUT_FWD0 + d] = fwd[d].to_bits();
            outputs[OUT_ROOM0 + d] = room_to_bits(room_out[d]);
        }

        // F(x) register-update half.
        let mut next_regs = regs;
        clock(&mut next_regs, &ctx, &rin, Some(&sel));
        let wr_inputs: [u16; NUM_VCS] = core::array::from_fn(|v| inputs[IN_WRPTR0 + v] as u16);
        iface_clock(
            &mut next_regs.iface,
            &self.iface_cfg,
            &mut store,
            pick,
            fwd[Port::Local.index()],
            wr_inputs,
            cycle,
        );
        if next_regs == regs {
            // Unchanged registers pack to exactly the `cur` words
            // (pack ∘ unpack is the identity on packed words), so the
            // bit-level pack can be skipped for a word copy.
            next.copy_from_slice(cur);
        } else {
            next_regs.pack(depth, next);
        }
        match &mut cache[instance] {
            Some(c) => {
                c.words.copy_from_slice(next);
                c.regs = next_regs;
            }
            slot => {
                *slot = Some(DecodeCache {
                    words: next.to_vec(),
                    regs: next_regs,
                });
            }
        }
    }

    fn compile(&self) -> Option<Box<dyn CompiledExec>> {
        Some(Box::new(CompiledRouter {
            cfg: self.cfg,
            iface_cfg: self.iface_cfg,
            coords: self.coords.clone(),
            nf: self.nf.clone(),
            regs: Vec::new(),
            room: Vec::new(),
            sel: Vec::new(),
            fwd: Vec::new(),
        }))
    }
}

/// A transparent credit-pipeline stage: one [`LINK_ROOM_BITS`]-wide
/// combinational buffer, `out = in`.
///
/// Structurally a wire — splicing one into a room link changes nothing
/// about the NoC's behavior (room words are functions of registered
/// state, so no combinational cycle forms and no clock of latency is
/// added). Its value is its *declared bit semantics*: each output bit
/// is a pure [`BitExpr::In`] copy of the matching input bit, which
/// bitflow uses to prove the credit control plane bit-independent and
/// the batched engine uses to evaluate the sliced credit links as
/// packed expressions, 64 lanes per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct CreditStage;

impl BlockKind for CreditStage {
    fn name(&self) -> &str {
        "credit-stage"
    }

    fn state_bits(&self) -> usize {
        0
    }

    fn input_widths(&self) -> Vec<usize> {
        vec![LINK_ROOM_BITS]
    }

    fn output_widths(&self) -> Vec<usize> {
        vec![LINK_ROOM_BITS]
    }

    fn reset(&self, _state: &mut [u64]) {}

    fn bit_semantics(&self, port: usize) -> Option<BitSemantics> {
        (port == 0).then(|| BitSemantics {
            bits: (0..LINK_ROOM_BITS)
                .map(|bit| BitExpr::In { port: 0, bit })
                .collect(),
        })
    }

    fn eval(
        &self,
        _instance: usize,
        _cur: &[u64],
        inputs: &[u64],
        _cycle: u64,
        _next: &mut [u64],
        outputs: &mut [u64],
        _side: &mut SideView<'_>,
    ) {
        outputs[0] = inputs[0] & ((1u64 << LINK_ROOM_BITS) - 1);
    }
}

/// The router's specialized execution unit for the compiled engine
/// ([`seqsim::compile::CompiledEngine`]).
///
/// Register files stay *decoded* between cycles, so the steady-state
/// path never touches [`RouterRegs::pack`]/[`RouterRegs::unpack`] — the
/// cost the generic [`BlockKind::eval`] path pays (or memcmp-guards)
/// every delta. The three passes mirror `eval`'s internal phases
/// exactly, so the compiled engine is bit-identical by construction:
///
/// * comb pass 0 — room outputs, `f(registered state)` only;
/// * comb pass 1 — arbitration + forward outputs, `f(state, room in)`
///   (the only combinational feed-through the kind declares);
/// * update — stimuli pick, `clock`, `iface_clock`, registers advanced
///   in place.
#[derive(Debug, Clone)]
struct CompiledRouter {
    cfg: NetworkConfig,
    iface_cfg: IfaceConfig,
    coords: Vec<Coord>,
    nf: Vec<NodeFaults>,
    /// Per-instance decoded register file.
    regs: Vec<RouterRegs>,
    /// Per-instance room outputs cached from comb pass 0 (consumed by
    /// the update pass's stimuli pick).
    room: Vec<[[bool; NUM_VCS]; NUM_PORTS]>,
    /// Per-instance arbitration cached from comb pass 1.
    sel: Vec<Selection>,
    /// Per-instance forward words cached from comb pass 1 (the Local
    /// word feeds `iface_clock`).
    fwd: Vec<[LinkFwd; NUM_PORTS]>,
}

impl CompiledRouter {
    fn ctx(&self, instance: usize) -> RouterCtx {
        RouterCtx {
            coord: self.coords[instance],
            shape: self.cfg.shape,
            topology: self.cfg.topology,
            depth: self.cfg.router.queue_depth,
        }
    }
}

impl CompiledExec for CompiledRouter {
    fn load(&mut self, instance: usize, packed: &[u64]) {
        if self.regs.len() <= instance {
            let n = instance + 1;
            self.regs.resize(n, RouterRegs::new());
            self.room.resize(n, [[true; NUM_VCS]; NUM_PORTS]);
            self.sel.resize(
                n,
                Selection {
                    per_out: [None; NUM_PORTS],
                },
            );
            self.fwd.resize(n, [LinkFwd::IDLE; NUM_PORTS]);
        }
        self.regs[instance] = RouterRegs::unpack(self.cfg.router.queue_depth, packed);
    }

    fn store(&self, instance: usize, packed: &mut [u64]) {
        self.regs[instance].pack(self.cfg.router.queue_depth, packed);
    }

    fn comb(
        &mut self,
        instance: usize,
        pass: usize,
        inputs: &[u64],
        cycle: u64,
        outputs: &mut [u64],
        _side: &mut SideView<'_>,
    ) {
        let stalled = self.nf[instance].stalled(cycle);
        if pass == 0 {
            // Room outputs: f(registered state) only.
            if stalled {
                for d in 0..4 {
                    outputs[OUT_ROOM0 + d] = 0;
                }
                return;
            }
            let room = comb_room(&self.regs[instance], self.cfg.router.queue_depth);
            for d in 0..4 {
                outputs[OUT_ROOM0 + d] = room_to_bits(room[d]);
            }
            self.room[instance] = room;
        } else {
            // Forward outputs: arbitration gated by neighbour room.
            if stalled {
                for d in 0..4 {
                    outputs[OUT_FWD0 + d] = 0;
                }
                return;
            }
            let mut room_in = [[true; NUM_VCS]; NUM_PORTS];
            for d in 0..4 {
                room_in[d] = room_from_bits(inputs[IN_ROOM0 + d]);
            }
            let ctx = self.ctx(instance);
            let regs = &self.regs[instance];
            let sel = comb_select(regs, &ctx);
            let trans = transfers(&sel, &room_in);
            let fwd = comb_fwd(regs, &trans);
            for d in 0..4 {
                outputs[OUT_FWD0 + d] = fwd[d].to_bits();
            }
            self.sel[instance] = sel;
            self.fwd[instance] = fwd;
        }
    }

    fn update(&mut self, instance: usize, inputs: &[u64], cycle: u64, side: &mut SideView<'_>) {
        if self.nf[instance].stalled(cycle) {
            // Registers held, no side effects — `eval`'s early return.
            return;
        }
        let ctx = self.ctx(instance);
        let iface_cfg = self.iface_cfg;
        let mut rin = RouterInputs::idle();
        for d in 0..4 {
            let mut fwd_word = inputs[IN_FWD0 + d];
            if self.nf[instance].link_faulty(d) {
                fwd_word = self.nf[instance].apply_link(d, cycle, fwd_word);
            }
            rin.fwd_in[d] = LinkFwd::from_bits(fwd_word);
            rin.room_in[d] = room_from_bits(inputs[IN_ROOM0 + d]);
        }
        let mut store = SideStore { view: side };
        let pick = iface_pick(
            &self.regs[instance].iface,
            &iface_cfg,
            &store,
            &self.room[instance][Port::Local.index()],
            cycle,
        );
        if let Some((vc, entry)) = pick {
            rin.fwd_in[Port::Local.index()] = LinkFwd::flit(vc, entry.flit);
        }
        let sel = self.sel[instance];
        let fwd_local = self.fwd[instance][Port::Local.index()];
        let regs = &mut self.regs[instance];
        clock(regs, &ctx, &rin, Some(&sel));
        let wr_inputs: [u16; NUM_VCS] = core::array::from_fn(|v| inputs[IN_WRPTR0 + v] as u16);
        iface_clock(
            &mut regs.iface,
            &iface_cfg,
            &mut store,
            pick,
            fwd_local,
            wr_inputs,
            cycle,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::bits::words_for_bits;
    use noc_types::{Flit, Topology};
    use seqsim::SideMem;

    /// A single router block evaluated standalone: inject a HeadTail via
    /// the stimuli ring addressed to this router itself; it must come back
    /// out of the output ring two hops of latency later.
    #[test]
    fn standalone_block_loops_local_packet() {
        let cfg = NetworkConfig::new(2, 2, Topology::Torus, 4);
        let iface_cfg = IfaceConfig::default();
        let coords: Vec<Coord> = cfg.shape.coords().collect();
        let block = RouterBlock::new(cfg, iface_cfg, coords);
        let words = words_for_bits(block.state_bits());
        let mut cur = vec![0u64; words];
        let mut next = vec![0u64; words];
        block.reset(&mut cur);
        let mut side = SideMem::new(&[block.side_rings()]);
        // Host: write one stimulus into vc 2's ring for router 0 = (0,0),
        // destined to itself.
        let entry = crate::iface::StimEntry {
            ts: 0,
            flit: Flit::head_tail(Coord::new(0, 0), 0),
        };
        side.write(0, RING_STIM0 + 2, 0, entry.to_bits());
        let mut inputs = vec![0u64; 12];
        inputs[IN_WRPTR0 + 2] = 1; // host wr pointer = 1
        let mut outputs = vec![0u64; 8];
        let mut delivered = None;
        for cycle in 0..6u64 {
            block.eval(
                0,
                &cur,
                &inputs,
                cycle,
                &mut next,
                &mut outputs,
                &mut side.view(0),
            );
            core::mem::swap(&mut cur, &mut next);
            let regs = block.peek_regs(&cur);
            if regs.iface.out_wr > 0 && delivered.is_none() {
                delivered = Some(cycle);
            }
        }
        // Cycle 0: wr shadow latches. Cycle 1: pick -> local queue.
        // Cycle 2: local queue -> local output, captured.
        let regs = block.peek_regs(&cur);
        assert_eq!(regs.iface.out_wr, 1, "exactly one flit must be captured");
        assert_eq!(delivered, Some(2));
        let out = crate::iface::OutEntry::from_bits(side.read(0, RING_OUT, 0));
        assert_eq!(out.vc, 2);
        assert_eq!(out.flit, entry.flit);
        assert_eq!(out.cycle, 2);
        // Access delay was logged: injected at cycle 1, ts 0 -> delay 1.
        assert_eq!(regs.iface.acc_wr, 1);
        let acc = crate::iface::AccEntry::from_bits(side.read(0, RING_ACC, 0));
        assert_eq!(acc.delay, 1);
        // No neighbour traffic was produced.
        assert!(outputs[OUT_FWD0..OUT_FWD0 + 4].iter().all(|&w| w == 0));
    }

    #[test]
    fn eval_is_idempotent_under_reevaluation() {
        // Re-running eval with identical inputs must produce identical
        // next-state, outputs and side-memory effects (the §4.2 contract).
        let cfg = NetworkConfig::new(2, 2, Topology::Torus, 4);
        let block = RouterBlock::new(cfg, IfaceConfig::default(), cfg.shape.coords().collect());
        let words = words_for_bits(block.state_bits());
        let mut cur = vec![0u64; words];
        block.reset(&mut cur);
        let mut side = SideMem::new(&[block.side_rings()]);
        let entry = crate::iface::StimEntry {
            ts: 0,
            flit: Flit::head_tail(Coord::new(1, 0), 0),
        };
        side.write(0, RING_STIM0, 0, entry.to_bits());
        let mut inputs = vec![0u64; 12];
        inputs[IN_WRPTR0] = 1;
        let mut next_a = vec![0u64; words];
        let mut next_b = vec![0u64; words];
        let mut out_a = vec![0u64; 8];
        let mut out_b = vec![0u64; 8];
        block.eval(
            0,
            &cur,
            &inputs,
            0,
            &mut next_a,
            &mut out_a,
            &mut side.view(0),
        );
        block.eval(
            0,
            &cur,
            &inputs,
            0,
            &mut next_b,
            &mut out_b,
            &mut side.view(0),
        );
        assert_eq!(next_a, next_b);
        assert_eq!(out_a, out_b);
    }
}
