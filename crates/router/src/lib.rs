//! # vc-router — the bit-accurate Kavaldjiev virtual-channel router
//!
//! Implements the packet-switched router of the paper's case study (§2.1,
//! after Kavaldjiev et al., "A virtual channel router for on-chip
//! networks", IEEE SOCC 2004):
//!
//! * 5 input and 5 output ports (North, East, South, West, Local);
//! * 4 virtual channels per port, one flit queue per (port, VC) — 20
//!   queues of configurable depth (paper default 4 flits, Fig 1 uses 2);
//! * queues connect *directly* to an asymmetric 20×5 crossbar (no
//!   per-port multiplexing of queues);
//! * access to each crossbar output is granted by a round-robin arbiter —
//!   implemented hierarchically: a VC-level round-robin that makes the
//!   per-hop service interval of an active VC at most `NUM_VCS` cycles
//!   (the basis of the GT latency guarantee), and a queue-level round-robin
//!   among head flits competing for a free (output, VC) pair;
//! * wormhole switching: an (output, VC) pair is owned by one packet from
//!   head to tail; flits of different packets never interleave within a VC;
//! * credit-style flow control: a router tells its upstream neighbours,
//!   per (port, VC), whether the input queue can accept a flit. These
//!   *room* wires are functions of registered state, while the *data*
//!   wires are functions of registered state **and** the incoming room
//!   wires — the combinational boundary that forces the dynamic
//!   (re-evaluating) schedule of the paper's §4.2.
//!
//! The router logic is written once, as pure functions over a plain
//! register file ([`regs::RouterRegs`]):
//! [`comb::comb_room`] (the `G(x)` of paper Fig 4),
//! [`comb::comb_select`]/[`comb::comb_fwd`] (the output half of `F(x)`)
//! and [`clock::clock`] (the register-update half). The native engine uses
//! them directly; the sequential-simulator block ([`block::RouterBlock`])
//! wraps them with bit-exact state (un)packing, mirroring the paper's
//! "extraction of all registers in the design and their mapping on a
//! memory position".

//! ```
//! use noc_types::{Coord, NetworkConfig, Port, Topology};
//! use vc_router::{route, RouterCtx};
//!
//! // Dimension-ordered routing on the paper's 6x6 torus: x first.
//! let cfg = NetworkConfig::new(6, 6, Topology::Torus, 4);
//! let ctx = RouterCtx::new(&cfg, Coord::new(1, 1));
//! let (port, vc) = route(&ctx, Coord::new(3, 4), 2);
//! assert_eq!(port, Port::East);
//! assert_eq!(vc, 2); // GT streams keep their reserved VC
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
// Positional `for i in 0..n` loops indexing several parallel arrays are
// the natural shape for port/node-indexed hardware code; iterator zips
// would obscure which port is which.
#![allow(clippy::needless_range_loop)]

pub mod block;
pub mod circuit;
pub mod clock;
pub mod comb;
pub mod iface;
pub mod layout;
pub mod queue;
pub mod regs;
pub mod routing;

pub use block::{CreditStage, RouterBlock};
pub use comb::{comb_fwd, comb_room, comb_select, transfers, RouterInputs, Selection};
pub use iface::{AccEntry, IfaceConfig, IfaceRings, IfaceStore, OutEntry, StimEntry};
pub use layout::RegisterLayout;
pub use queue::{FlitQueue, MAX_QUEUE_DEPTH};
pub use regs::{IfaceRegs, RouterRegs};
pub use routing::{gt_guarantee, route, RouterCtx};
