//! The router's combinational circuitry.
//!
//! Split exactly as the paper's Fig 4 splits a router into `G(x)` and
//! `F(x)`:
//!
//! * [`comb_room`] — the `G(x)` half: the flow-control (room) outputs,
//!   a function of *registered state only* (queue occupancies);
//! * [`comb_select`] + [`transfers`] + [`comb_fwd`] — the output half of
//!   `F(x)`: crossbar arbitration and the forward-link outputs, functions
//!   of registered state *and* the incoming room wires — the combinational
//!   path across the router boundary that §4.2's dynamic schedule exists
//!   to handle.
//!
//! All functions are pure; every engine calls the same code.

use crate::regs::RouterRegs;
use crate::routing::{route, RouterCtx};
use noc_types::{LinkFwd, Port, NUM_PORTS, NUM_QUEUES, NUM_VCS};

/// The wires entering a router in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterInputs {
    /// Forward link per input port (index 4 = Local, driven by the
    /// stimuli interface).
    pub fwd_in: [LinkFwd; NUM_PORTS],
    /// Room per *output* port and VC, from the downstream neighbour
    /// (index 4 = Local; the stimuli interface always has room).
    pub room_in: [[bool; NUM_VCS]; NUM_PORTS],
}

impl RouterInputs {
    /// Quiescent inputs: no flits, full room everywhere.
    pub fn idle() -> Self {
        RouterInputs {
            fwd_in: [LinkFwd::IDLE; NUM_PORTS],
            room_in: [[true; NUM_VCS]; NUM_PORTS],
        }
    }
}

/// Crossbar arbitration result: per output port, the granted `(vc, queue)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    /// Grant per output port (None = no candidate).
    pub per_out: [Option<(u8, u8)>; NUM_PORTS],
}

/// Room outputs, per *input* port and VC: can the queue accept a flit?
///
/// Purely registered (occupancy < depth): a full queue signals no room
/// even if it dequeues this cycle, which keeps the signal graph acyclic —
/// the property §4.2's convergence relies on.
#[inline]
pub fn comb_room(regs: &RouterRegs, depth: usize) -> [[bool; NUM_VCS]; NUM_PORTS] {
    core::array::from_fn(|p| {
        core::array::from_fn(|v| regs.queues[p * NUM_VCS + v].occupancy() < depth)
    })
}

/// Crossbar arbitration (a function of registered state only).
///
/// Per output port: a VC-level round-robin scans the four VCs starting at
/// `outer_rr[out]`; the first VC with a candidate wins the port this
/// cycle. A VC's candidate is the owning queue of `(out, vc)` if the worm
/// is established, otherwise the first head-flit queue requesting
/// `(out, vc)` in queue-level round-robin order from `inner_rr[out][vc]`.
///
/// The head requests are gathered into one bitmask per `(out, vc)`, so the
/// queue-level round-robin is a rotate + `trailing_zeros` instead of a
/// 20-step modular scan — same grant in every case, and near-free when the
/// router is quiescent (this function runs once per delta cycle in the
/// sequential engines, so its constant factor dominates their throughput).
pub fn comb_select(regs: &RouterRegs, ctx: &RouterCtx) -> Selection {
    // Reverse owner map, built in one pass: queue -> its owned (out, vc).
    // (A queue owns at most one output VC — its packets are sequential.)
    let mut owned_of: [Option<(usize, usize)>; NUM_QUEUES] = [None; NUM_QUEUES];
    for out in 0..NUM_PORTS {
        for vc in 0..NUM_VCS {
            if let Some(q) = regs.owner_of(out, vc) {
                owned_of[q as usize] = Some((out, vc));
            }
        }
    }
    // req_mask[out * NUM_VCS + vc]: bit q ⇔ queue q's front is a head flit
    // routed to (out, vc). Body/tail fronts follow their worm instead.
    let mut req_mask = [0u32; NUM_QUEUES];
    for q in 0..NUM_QUEUES {
        let Some(front) = regs.queues[q].front() else {
            continue;
        };
        if front.kind.is_head() {
            // A queue still owning an output VC (possible only when a
            // link fault swallowed its worm's tail) may not bid its next
            // head until the worm releases; without faults ownership
            // always ends before the next head reaches the front.
            if owned_of[q].is_some() {
                continue;
            }
            let in_vc = (q % NUM_VCS) as u8;
            let (port, out_vc) = route(ctx, front.dest(), in_vc);
            req_mask[port.index() * NUM_VCS + out_vc as usize] |= 1 << q;
        }
        // A body/tail front without an owned output VC is an orphan (its
        // head was dropped by a link fault): it contributes no request
        // and blocks its queue — identical in every engine.
    }
    let mut per_out = [None; NUM_PORTS];
    for (out, slot) in per_out.iter_mut().enumerate() {
        for k in 0..NUM_VCS {
            let vc = (regs.outer_rr[out] as usize + k) % NUM_VCS;
            let candidate: Option<u8> = match regs.owner_of(out, vc) {
                Some(owner_q) => {
                    // The worm is established: only the owner may send.
                    if regs.queues[owner_q as usize].is_empty() {
                        None
                    } else {
                        debug_assert_eq!(
                            owned_of[owner_q as usize],
                            Some((out, vc)),
                            "owner queue's front flit must follow its worm"
                        );
                        Some(owner_q)
                    }
                }
                None => {
                    // Free VC: heads compete, queue-level round-robin. The
                    // doubled mask makes the circular scan from `start` a
                    // single trailing_zeros.
                    let m = req_mask[out * NUM_VCS + vc] as u64;
                    if m == 0 {
                        None
                    } else {
                        let start = regs.inner_rr[out * NUM_VCS + vc] as usize;
                        let rot = (m | (m << NUM_QUEUES)) >> start;
                        Some(((start + rot.trailing_zeros() as usize) % NUM_QUEUES) as u8)
                    }
                }
            };
            if let Some(q) = candidate {
                *slot = Some((vc as u8, q));
                break;
            }
        }
    }
    Selection { per_out }
}

/// Which grants actually transfer a flit this cycle: a grant proceeds only
/// when the downstream room wire for its (output, VC) is high. This is
/// where the incoming room wires enter the data path.
#[inline]
pub fn transfers(
    sel: &Selection,
    room_in: &[[bool; NUM_VCS]; NUM_PORTS],
) -> [Option<(u8, u8)>; NUM_PORTS] {
    core::array::from_fn(|out| sel.per_out[out].filter(|&(vc, _)| room_in[out][vc as usize]))
}

/// Forward-link outputs: the head-of-queue flit of each transferring
/// grant, labelled with its output VC.
#[inline]
pub fn comb_fwd(regs: &RouterRegs, trans: &[Option<(u8, u8)>; NUM_PORTS]) -> [LinkFwd; NUM_PORTS] {
    core::array::from_fn(|out| match trans[out] {
        Some((vc, q)) => LinkFwd::flit(
            vc,
            regs.queues[q as usize]
                .front()
                .unwrap_or_else(|| unreachable!("arbiter granted empty queue {q}")),
        ),
        None => LinkFwd::IDLE,
    })
}

/// Convenience: is the local output port (towards the stimuli interface)
/// delivering a flit given these transfers?
#[inline]
pub fn local_delivery(regs: &RouterRegs, trans: &[Option<(u8, u8)>; NUM_PORTS]) -> LinkFwd {
    comb_fwd(regs, trans)[Port::Local.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::{Coord, Flit, NetworkConfig, Topology};

    fn ctx6() -> RouterCtx {
        RouterCtx::new(
            &NetworkConfig::new(6, 6, Topology::Torus, 4),
            Coord::new(1, 1),
        )
    }

    fn push(regs: &mut RouterRegs, ctx: &RouterCtx, port: usize, vc: usize, f: Flit) {
        regs.queues[port * NUM_VCS + vc].push(ctx.depth, f);
    }

    #[test]
    fn room_tracks_occupancy() {
        let ctx = ctx6();
        let mut regs = RouterRegs::new();
        let room = comb_room(&regs, ctx.depth);
        assert!(room.iter().flatten().all(|&r| r));
        for _ in 0..4 {
            push(&mut regs, &ctx, 2, 3, Flit::head(Coord::new(0, 0), 0));
        }
        let room = comb_room(&regs, ctx.depth);
        assert!(!room[2][3]);
        assert!(room[2][2]);
    }

    #[test]
    fn head_routes_and_wins_free_vc() {
        let ctx = ctx6();
        let mut regs = RouterRegs::new();
        // Head at West input, vc 2 (GT), destined (3,1): goes East on vc 2.
        push(
            &mut regs,
            &ctx,
            Port::West.index(),
            2,
            Flit::head(Coord::new(3, 1), 7),
        );
        let sel = comb_select(&regs, &ctx);
        assert_eq!(
            sel.per_out[Port::East.index()],
            Some((2, (Port::West.index() * NUM_VCS + 2) as u8))
        );
        // Everything else idle.
        for out in [Port::North, Port::South, Port::West, Port::Local] {
            assert_eq!(sel.per_out[out.index()], None);
        }
    }

    #[test]
    fn transfer_blocked_without_room() {
        let ctx = ctx6();
        let mut regs = RouterRegs::new();
        push(&mut regs, &ctx, 0, 2, Flit::head(Coord::new(3, 1), 7));
        let sel = comb_select(&regs, &ctx);
        let mut room = [[true; NUM_VCS]; NUM_PORTS];
        room[Port::East.index()][2] = false;
        let t = transfers(&sel, &room);
        assert_eq!(t[Port::East.index()], None);
        let fwd = comb_fwd(&regs, &t);
        assert_eq!(fwd[Port::East.index()], LinkFwd::IDLE);
        // With room, the flit goes out.
        let t = transfers(&sel, &[[true; NUM_VCS]; NUM_PORTS]);
        let fwd = comb_fwd(&regs, &t);
        assert!(fwd[Port::East.index()].valid);
        assert_eq!(fwd[Port::East.index()].vc, 2);
    }

    #[test]
    fn vc_round_robin_rotates_across_competing_vcs() {
        let ctx = ctx6();
        let mut regs = RouterRegs::new();
        // Two GT heads from different inputs, both to (3,1) but on vc 2 and 3.
        push(
            &mut regs,
            &ctx,
            Port::West.index(),
            2,
            Flit::head(Coord::new(3, 1), 1),
        );
        push(
            &mut regs,
            &ctx,
            Port::North.index(),
            3,
            Flit::head(Coord::new(3, 1), 2),
        );
        // outer_rr at 0 scans 0,1,2,3 -> vc2 first.
        let sel = comb_select(&regs, &ctx);
        assert_eq!(sel.per_out[Port::East.index()].unwrap().0, 2);
        // outer_rr at 3 -> vc3 first.
        regs.outer_rr[Port::East.index()] = 3;
        let sel = comb_select(&regs, &ctx);
        assert_eq!(sel.per_out[Port::East.index()].unwrap().0, 3);
    }

    #[test]
    fn queue_round_robin_breaks_head_ties() {
        let ctx = ctx6();
        let mut regs = RouterRegs::new();
        // Two BE heads, same vc 1, both to (3,1) (no wrap going east: vc1).
        push(
            &mut regs,
            &ctx,
            Port::West.index(),
            1,
            Flit::head(Coord::new(3, 1), 1),
        );
        push(
            &mut regs,
            &ctx,
            Port::South.index(),
            1,
            Flit::head(Coord::new(3, 1), 2),
        );
        let q_west = (Port::West.index() * NUM_VCS + 1) as u8;
        let q_south = (Port::South.index() * NUM_VCS + 1) as u8;
        let e = Port::East.index();
        let sel = comb_select(&regs, &ctx);
        assert_eq!(sel.per_out[e], Some((1, q_south))); // queue 9 < 13, rr at 0
        regs.inner_rr[e * NUM_VCS + 1] = q_south + 1;
        let sel = comb_select(&regs, &ctx);
        assert_eq!(sel.per_out[e], Some((1, q_west)));
    }

    #[test]
    fn owner_locks_out_new_heads_on_same_vc() {
        let ctx = ctx6();
        let mut regs = RouterRegs::new();
        let q_owner = (Port::North.index() * NUM_VCS + 1) as u8;
        regs.owner[Port::East.index() * NUM_VCS + 1] = crate::regs::owner_encode(Some(q_owner));
        // Competing head on the owned (East, vc1).
        push(
            &mut regs,
            &ctx,
            Port::West.index(),
            1,
            Flit::head(Coord::new(3, 1), 1),
        );
        // Owner's queue holds a body flit.
        push(
            &mut regs,
            &ctx,
            Port::North.index(),
            1,
            Flit {
                kind: noc_types::FlitKind::Body,
                payload: 9,
            },
        );
        let sel = comb_select(&regs, &ctx);
        assert_eq!(sel.per_out[Port::East.index()], Some((1, q_owner)));
        // Owner empty: the VC yields nothing (head may not steal the worm).
        let mut regs2 = RouterRegs::new();
        regs2.owner[Port::East.index() * NUM_VCS + 1] = crate::regs::owner_encode(Some(q_owner));
        push(
            &mut regs2,
            &ctx,
            Port::West.index(),
            1,
            Flit::head(Coord::new(3, 1), 1),
        );
        let sel = comb_select(&regs2, &ctx);
        assert_eq!(sel.per_out[Port::East.index()], None);
    }
}
