//! Property tests on the router's building blocks: FIFO model
//! equivalence, register-file pack/unpack, routing termination and
//! minimality, and arbitration fairness windows.

use noc_types::bits::words_for_bits;
use noc_types::{Coord, Flit, FlitKind, NetworkConfig, Port, Shape, Topology, NUM_QUEUES, NUM_VCS};
use proptest::prelude::*;
use std::collections::VecDeque;
use vc_router::{
    comb_select, route, FlitQueue, RegisterLayout, RouterCtx, RouterRegs,
};

proptest! {
    /// The hardware FIFO behaves exactly like a VecDeque under any
    /// push/pop sequence that respects capacity.
    #[test]
    fn fifo_matches_model(
        depth in 1usize..=8,
        ops in proptest::collection::vec(any::<(bool, u16)>(), 0..200),
    ) {
        let mut q = FlitQueue::new();
        let mut model: VecDeque<u16> = VecDeque::new();
        for (push, payload) in ops {
            if push {
                if model.len() < depth {
                    q.push(depth, Flit { kind: FlitKind::Body, payload });
                    model.push_back(payload);
                }
            } else if let Some(want) = model.pop_front() {
                let got = q.pop(depth);
                prop_assert_eq!(got.payload, want);
            }
            prop_assert_eq!(q.occupancy(), model.len());
            prop_assert_eq!(q.front().map(|f| f.payload), model.front().copied());
        }
    }

    /// Pack/unpack round-trips arbitrary *reachable* register files
    /// (queues filled through the FIFO API, arbitrary arbiter state).
    #[test]
    fn regs_pack_unpack_roundtrip(
        depth in 1usize..=8,
        fills in proptest::collection::vec(0usize..=8, NUM_QUEUES),
        owners in proptest::collection::vec(proptest::option::of(0u8..20), NUM_QUEUES),
        inners in proptest::collection::vec(0u8..20, NUM_QUEUES),
        outers in proptest::collection::vec(0u8..4, 5),
        payload_seed: u16,
    ) {
        let mut regs = RouterRegs::new();
        for (qi, &fill) in fills.iter().enumerate() {
            for j in 0..fill.min(depth) {
                regs.queues[qi].push(
                    depth,
                    Flit {
                        kind: FlitKind::Body,
                        payload: payload_seed.wrapping_add((qi * 13 + j) as u16),
                    },
                );
            }
        }
        for (i, o) in owners.iter().enumerate() {
            regs.owner[i] = vc_router::regs::owner_encode(*o);
        }
        regs.inner_rr.copy_from_slice(&inners);
        regs.outer_rr.copy_from_slice(&outers);
        let layout = RegisterLayout::new(depth);
        let mut words = vec![0u64; words_for_bits(layout.state_bits())];
        regs.pack(depth, &mut words);
        let back = RouterRegs::unpack(depth, &words);
        let mut words2 = vec![0u64; words.len()];
        back.pack(depth, &mut words2);
        prop_assert_eq!(words, words2);
        prop_assert_eq!(back.owner, regs.owner);
        for (a, b) in back.queues.iter().zip(regs.queues.iter()) {
            prop_assert_eq!(a.occupancy(), b.occupancy());
            prop_assert_eq!(a.front(), b.front());
        }
    }

    /// Routing reaches any destination in exactly the minimal hop count
    /// on arbitrary shapes and topologies, for every VC class.
    #[test]
    fn routing_is_minimal(
        w in 1u8..=16,
        h in 1u8..=16,
        torus: bool,
        sx in 0u8..16,
        sy in 0u8..16,
        dx in 0u8..16,
        dy in 0u8..16,
        vc in 0u8..4,
    ) {
        prop_assume!((w as usize) * (h as usize) >= 2 && (w as usize) * (h as usize) <= 256);
        let shape = Shape::new(w, h);
        let topo = if torus { Topology::Torus } else { Topology::Mesh };
        let cfg = NetworkConfig::new(w, h, topo, 4);
        let src = Coord::new(sx % w, sy % h);
        let dest = Coord::new(dx % w, dy % h);
        let mut cur = src;
        let mut cur_vc = vc;
        let mut hops = 0usize;
        while cur != dest {
            let ctx = RouterCtx::new(&cfg, cur);
            let (port, ovc) = route(&ctx, dest, cur_vc);
            prop_assert_ne!(port, Port::Local);
            let d = port.direction().unwrap();
            cur = topo.neighbour(shape, cur, d).expect("missing link");
            cur_vc = ovc;
            hops += 1;
            prop_assert!(hops <= 64, "routing loop");
        }
        prop_assert_eq!(hops, topo.distance(shape, src, dest));
        // GT VCs never change.
        if vc >= 2 {
            prop_assert_eq!(cur_vc, vc);
        }
    }

    /// Fairness: with any set of persistently backlogged single-flit
    /// senders competing for one output port, each sender transfers at
    /// least once within NUM_QUEUES consecutive grants.
    #[test]
    fn arbitration_has_bounded_service_interval(
        senders in proptest::collection::btree_set(0usize..16, 2..8),
        start_outer in 0u8..4,
    ) {
        // Senders are (port, vc) pairs on non-local input ports, all
        // targeting the East output of router (1,1) towards (3,1) (GT
        // keeps its VC, so use GT vcs to pin the output VC).
        let cfg = NetworkConfig::new(6, 6, Topology::Torus, 4);
        let ctx = RouterCtx::new(&cfg, Coord::new(1, 1));
        let mut regs = RouterRegs::new();
        regs.outer_rr[Port::East.index()] = start_outer;
        let queues: Vec<usize> = senders
            .iter()
            .map(|&s| {
                let port = s / 4; // 0..4 (non-local)
                let vc = 2 + (s % 2); // GT vcs 2/3
                port * NUM_VCS + vc
            })
            .collect();
        let mut grants = std::collections::HashMap::new();
        let inputs = vc_router::RouterInputs::idle();
        for _ in 0..(4 * NUM_QUEUES) {
            // Keep every sender's queue topped up with HeadTail flits.
            for &q in &queues {
                while regs.queues[q].occupancy() < 2 {
                    regs.queues[q].push(4, Flit::head_tail(Coord::new(3, 1), 7));
                }
            }
            let sel = comb_select(&regs, &ctx);
            if let Some((_, q)) = sel.per_out[Port::East.index()] {
                *grants.entry(q as usize).or_insert(0usize) += 1;
            }
            vc_router::clock::clock(&mut regs, &ctx, &inputs, Some(&sel));
        }
        // Every competing queue was served at least twice over 4 full
        // round-robin windows. (Senders sharing a VC halve each other's
        // rate but stay bounded.)
        for &q in &queues {
            let got = grants.get(&q).copied().unwrap_or(0);
            prop_assert!(
                got >= 2,
                "queue {q} starved: {got} grants over {} cycles (grants: {grants:?})",
                4 * NUM_QUEUES
            );
        }
    }
}
