//! Property-style tests on the router's building blocks: FIFO model
//! equivalence, register-file pack/unpack, routing termination and
//! minimality, and arbitration fairness windows. Cases are generated
//! from a deterministic splitmix64 stream so the suite needs no external
//! dependencies and every failure reproduces exactly.

#![allow(clippy::unwrap_used, clippy::expect_used)]
use noc_types::bits::words_for_bits;
use noc_types::{Coord, Flit, FlitKind, NetworkConfig, Port, Shape, Topology, NUM_QUEUES, NUM_VCS};
use std::collections::VecDeque;
use vc_router::{comb_select, route, FlitQueue, RegisterLayout, RouterCtx, RouterRegs};

/// Deterministic PRNG (splitmix64) for generated test cases.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    fn chance(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// The hardware FIFO behaves exactly like a VecDeque under any push/pop
/// sequence that respects capacity.
#[test]
fn fifo_matches_model() {
    let mut rng = Rng(11);
    for case in 0..100 {
        let depth = rng.range(1, 9) as usize;
        let mut q = FlitQueue::new();
        let mut model: VecDeque<u16> = VecDeque::new();
        let ops = rng.range(0, 200);
        for _ in 0..ops {
            let push = rng.chance();
            let payload = rng.next() as u16;
            if push {
                if model.len() < depth {
                    q.push(
                        depth,
                        Flit {
                            kind: FlitKind::Body,
                            payload,
                        },
                    );
                    model.push_back(payload);
                }
            } else if let Some(want) = model.pop_front() {
                let got = q.pop(depth);
                assert_eq!(got.payload, want, "case {case}");
            }
            assert_eq!(q.occupancy(), model.len(), "case {case}");
            assert_eq!(
                q.front().map(|f| f.payload),
                model.front().copied(),
                "case {case}"
            );
        }
    }
}

/// Pack/unpack round-trips arbitrary *reachable* register files (queues
/// filled through the FIFO API, arbitrary arbiter state).
#[test]
fn regs_pack_unpack_roundtrip() {
    let mut rng = Rng(12);
    for case in 0..100 {
        let depth = rng.range(1, 9) as usize;
        let payload_seed = rng.next() as u16;
        let mut regs = RouterRegs::new();
        for qi in 0..NUM_QUEUES {
            let fill = rng.range(0, 9) as usize;
            for j in 0..fill.min(depth) {
                regs.queues[qi].push(
                    depth,
                    Flit {
                        kind: FlitKind::Body,
                        payload: payload_seed.wrapping_add((qi * 13 + j) as u16),
                    },
                );
            }
        }
        for i in 0..NUM_QUEUES {
            let owner = rng.chance().then(|| rng.range(0, 20) as u8);
            regs.owner[i] = vc_router::regs::owner_encode(owner);
        }
        for i in 0..NUM_QUEUES {
            regs.inner_rr[i] = rng.range(0, 20) as u8;
        }
        for i in 0..5 {
            regs.outer_rr[i] = rng.range(0, 4) as u8;
        }
        let layout = RegisterLayout::new(depth);
        let mut words = vec![0u64; words_for_bits(layout.state_bits())];
        regs.pack(depth, &mut words);
        let back = RouterRegs::unpack(depth, &words);
        let mut words2 = vec![0u64; words.len()];
        back.pack(depth, &mut words2);
        assert_eq!(words, words2, "case {case}");
        assert_eq!(back.owner, regs.owner, "case {case}");
        for (a, b) in back.queues.iter().zip(regs.queues.iter()) {
            assert_eq!(a.occupancy(), b.occupancy(), "case {case}");
            assert_eq!(a.front(), b.front(), "case {case}");
        }
    }
}

/// Routing reaches any destination in exactly the minimal hop count on
/// arbitrary shapes and topologies, for every VC class.
#[test]
fn routing_is_minimal() {
    let mut rng = Rng(13);
    let mut cases = 0;
    while cases < 300 {
        let w = rng.range(1, 17) as u8;
        let h = rng.range(1, 17) as u8;
        if (w as usize) * (h as usize) < 2 || (w as usize) * (h as usize) > 256 {
            continue;
        }
        cases += 1;
        let torus = rng.chance();
        let sx = rng.range(0, 16) as u8;
        let sy = rng.range(0, 16) as u8;
        let dx = rng.range(0, 16) as u8;
        let dy = rng.range(0, 16) as u8;
        let vc = rng.range(0, 4) as u8;
        let shape = Shape::new(w, h);
        let topo = if torus {
            Topology::Torus
        } else {
            Topology::Mesh
        };
        let cfg = NetworkConfig::new(w, h, topo, 4);
        let src = Coord::new(sx % w, sy % h);
        let dest = Coord::new(dx % w, dy % h);
        let mut cur = src;
        let mut cur_vc = vc;
        let mut hops = 0usize;
        while cur != dest {
            let ctx = RouterCtx::new(&cfg, cur);
            let (port, ovc) = route(&ctx, dest, cur_vc);
            assert_ne!(port, Port::Local);
            let d = port.direction().unwrap();
            cur = topo.neighbour(shape, cur, d).expect("missing link");
            cur_vc = ovc;
            hops += 1;
            assert!(hops <= 64, "routing loop");
        }
        assert_eq!(hops, topo.distance(shape, src, dest));
        // GT VCs never change.
        if vc >= 2 {
            assert_eq!(cur_vc, vc);
        }
    }
}

/// Fairness: with any set of persistently backlogged single-flit senders
/// competing for one output port, each sender transfers at least once
/// within NUM_QUEUES consecutive grants.
#[test]
fn arbitration_has_bounded_service_interval() {
    let mut rng = Rng(14);
    for case in 0..50 {
        // Senders are (port, vc) pairs on non-local input ports, all
        // targeting the East output of router (1,1) towards (3,1) (GT
        // keeps its VC, so use GT vcs to pin the output VC).
        let mut senders = std::collections::BTreeSet::new();
        let count = rng.range(2, 8);
        while (senders.len() as u64) < count {
            senders.insert(rng.range(0, 16) as usize);
        }
        let start_outer = rng.range(0, 4) as u8;
        let cfg = NetworkConfig::new(6, 6, Topology::Torus, 4);
        let ctx = RouterCtx::new(&cfg, Coord::new(1, 1));
        let mut regs = RouterRegs::new();
        regs.outer_rr[Port::East.index()] = start_outer;
        let queues: Vec<usize> = senders
            .iter()
            .map(|&s| {
                let port = s / 4; // 0..4 (non-local)
                let vc = 2 + (s % 2); // GT vcs 2/3
                port * NUM_VCS + vc
            })
            .collect();
        let mut grants = std::collections::HashMap::new();
        let inputs = vc_router::RouterInputs::idle();
        for _ in 0..(4 * NUM_QUEUES) {
            // Keep every sender's queue topped up with HeadTail flits.
            for &q in &queues {
                while regs.queues[q].occupancy() < 2 {
                    regs.queues[q].push(4, Flit::head_tail(Coord::new(3, 1), 7));
                }
            }
            let sel = comb_select(&regs, &ctx);
            if let Some((_, q)) = sel.per_out[Port::East.index()] {
                *grants.entry(q as usize).or_insert(0usize) += 1;
            }
            vc_router::clock::clock(&mut regs, &ctx, &inputs, Some(&sel));
        }
        // Every competing queue was served at least twice over 4 full
        // round-robin windows. (Senders sharing a VC halve each other's
        // rate but stay bounded.)
        for &q in &queues {
            let got = grants.get(&q).copied().unwrap_or(0);
            assert!(
                got >= 2,
                "case {case}: queue {q} starved: {got} grants over {} cycles (grants: {grants:?})",
                4 * NUM_QUEUES
            );
        }
    }
}
