//! The NoC modelled SystemC-style.
//!
//! One module per router, holding its register file and stimuli rings in
//! module state (`Rc<RefCell<_>>`, the Rust stand-in for C++ member
//! variables):
//!
//! * a **clocked process** — reads the pre-edge input wires, arbitrates,
//!   updates the register file and the stimuli interface, and bumps the
//!   module's `ver` signal;
//! * a **room process** (comb, sensitive to `ver`) — exports the per-VC
//!   room wires to the upstream neighbours;
//! * a **forward process** (comb, sensitive to `ver` and the incoming
//!   room wires) — arbitrates and exports the forward-link wires.
//!
//! The router logic is the same bit-exact code as every other engine; the
//! kernel machinery (sensitivity, two-phase signals, delta settling) is
//! what differs — and what costs the SystemC-style overhead the paper's
//! Table 3 measures.

use crate::kernel::{Kernel, KernelStats, SigId};
use noc_types::fault::FaultPlan;
use noc_types::flit::{room_from_bits, room_to_bits};
use noc_types::{Direction, LinkFwd, NetworkConfig, Port, NUM_PORTS, NUM_VCS};
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;
use vc_router::iface::{iface_clock, iface_pick};
use vc_router::{
    comb_fwd, comb_room, comb_select, transfers, AccEntry, IfaceConfig, IfaceRings, OutEntry,
    RouterCtx, RouterInputs, RouterRegs, StimEntry,
};

/// The SystemC-like NoC engine.
pub struct CycleNoc {
    cfg: NetworkConfig,
    iface_cfg: IfaceConfig,
    kernel: Kernel,
    regs: Vec<Rc<RefCell<RouterRegs>>>,
    rings: Vec<Rc<RefCell<IfaceRings>>>,
    fwd_sigs: Vec<[SigId; 4]>,
    /// Pre-edge snapshot of the forward wires of the last completed
    /// cycle (probe support).
    probe_buf: Vec<[u64; 4]>,
    wr_sigs: Vec<[SigId; NUM_VCS]>,
    stim_wr: Vec<[u16; NUM_VCS]>,
    out_rd: Vec<u16>,
    acc_rd: Vec<u16>,
    cycle_cell: Rc<Cell<u64>>,
    cycle: u64,
    faults: Option<Arc<FaultPlan>>,
}

impl CycleNoc {
    /// Build and elaborate the model.
    pub fn new(cfg: NetworkConfig, iface_cfg: IfaceConfig) -> Self {
        Self::with_faults(cfg, iface_cfg, None)
    }

    /// Build with a deterministic fault plan. Stall windows gate the
    /// room/forward comb processes and the clocked register update; link
    /// faults rewrite the forward wires the clocked process consumes —
    /// the same application points as the native reference.
    pub fn with_faults(
        cfg: NetworkConfig,
        iface_cfg: IfaceConfig,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        iface_cfg.validate();
        let n = cfg.num_nodes();
        let wiring = noc::Wiring::new(&cfg);
        let mut k = Kernel::new();
        // The comb processes label their outputs "wires for cycle
        // `cyc + 1`" (they settle *after* edge `cyc`). The elaboration
        // settle precedes edge 0, so start the cell at MAX and wrap.
        let cycle_cell = Rc::new(Cell::new(u64::MAX));
        let nfs: Vec<noc_types::fault::NodeFaults> = (0..n)
            .map(|r| {
                faults
                    .as_ref()
                    .map(|p| p.node_faults(r))
                    .unwrap_or_default()
            })
            .collect();

        // Signals.
        let zero = k.signal(0); // tie-off for mesh edges (no flit, no room)
        let vers: Vec<SigId> = (0..n).map(|_| k.signal(0)).collect();
        let fwd_sigs: Vec<[SigId; 4]> = (0..n)
            .map(|_| core::array::from_fn(|_| k.signal(0)))
            .collect();
        let room_sigs: Vec<[SigId; 4]> = (0..n)
            .map(|_| core::array::from_fn(|_| k.signal(0xF)))
            .collect();
        let wr_sigs: Vec<[SigId; NUM_VCS]> = (0..n)
            .map(|_| core::array::from_fn(|_| k.signal(0)))
            .collect();

        // Module state.
        let regs: Vec<Rc<RefCell<RouterRegs>>> = (0..n)
            .map(|_| Rc::new(RefCell::new(RouterRegs::new())))
            .collect();
        let rings: Vec<Rc<RefCell<IfaceRings>>> = (0..n)
            .map(|_| Rc::new(RefCell::new(IfaceRings::new(&iface_cfg))))
            .collect();

        // Wire maps: the signal this router sees on its input side.
        let fwd_in_of = |r: usize, d: usize| -> SigId {
            match wiring.neighbour(r, d) {
                Some(nb) => fwd_sigs[nb][Direction::from_index(d).opposite().index()],
                None => zero,
            }
        };
        let room_in_of = |r: usize, d: usize| -> SigId {
            match wiring.neighbour(r, d) {
                Some(nb) => room_sigs[nb][Direction::from_index(d).opposite().index()],
                None => zero,
            }
        };

        for r in 0..n {
            let ctx = RouterCtx::new(&cfg, cfg.shape.coord(noc_types::NodeId(r as u16)));
            let depth = cfg.router.queue_depth;

            // Room process: G(x), function of registered state.
            {
                let regs = regs[r].clone();
                let out: [SigId; 4] = room_sigs[r];
                let nf = nfs[r].clone();
                let cyc = cycle_cell.clone();
                k.comb(&[vers[r]], move |bus| {
                    // A stalled router advertises no room (wires belong
                    // to the cycle after the edge we just settled from).
                    if nf.stalled(cyc.get().wrapping_add(1)) {
                        for d in 0..4 {
                            bus.write(out[d], 0);
                        }
                        return;
                    }
                    let room = comb_room(&regs.borrow(), depth);
                    for d in 0..4 {
                        bus.write(out[d], room_to_bits(room[d]));
                    }
                });
            }

            // Forward process: arbitration + transfer gating.
            {
                let regs = regs[r].clone();
                let room_in: [SigId; 4] = core::array::from_fn(|d| room_in_of(r, d));
                let out: [SigId; 4] = fwd_sigs[r];
                let nf = nfs[r].clone();
                let cyc = cycle_cell.clone();
                let mut sens = vec![vers[r]];
                sens.extend_from_slice(&room_in);
                k.comb(&sens, move |bus| {
                    if nf.stalled(cyc.get().wrapping_add(1)) {
                        for d in 0..4 {
                            bus.write(out[d], 0);
                        }
                        return;
                    }
                    let regs = regs.borrow();
                    let mut rin = [[true; NUM_VCS]; NUM_PORTS];
                    for d in 0..4 {
                        rin[d] = room_from_bits(bus.read(room_in[d]));
                    }
                    let sel = comb_select(&regs, &ctx);
                    let trans = transfers(&sel, &rin);
                    let fwd = comb_fwd(&regs, &trans);
                    for d in 0..4 {
                        bus.write(out[d], fwd[d].to_bits());
                    }
                });
            }

            // Clocked process: the register-update half plus the stimuli
            // interface.
            {
                let regs = regs[r].clone();
                let rings = rings[r].clone();
                let cyc = cycle_cell.clone();
                let icfg = iface_cfg;
                let fwd_in: [SigId; 4] = core::array::from_fn(|d| fwd_in_of(r, d));
                let room_in: [SigId; 4] = core::array::from_fn(|d| room_in_of(r, d));
                let wr: [SigId; NUM_VCS] = wr_sigs[r];
                let ver = vers[r];
                let nf = nfs[r].clone();
                k.clocked(move |bus| {
                    let cycle = cyc.get();
                    if nf.stalled(cycle) {
                        // Registers and rings held; the ver bump still
                        // happens so the comb processes re-settle (their
                        // outputs stay forced while the window lasts).
                        bus.write(ver, cycle.wrapping_add(1));
                        return;
                    }
                    let mut rin = RouterInputs::idle();
                    for d in 0..4 {
                        let mut w = bus.read(fwd_in[d]);
                        if nf.link_faulty(d) {
                            w = nf.apply_link(d, cycle, w);
                        }
                        rin.fwd_in[d] = LinkFwd::from_bits(w);
                        rin.room_in[d] = room_from_bits(bus.read(room_in[d]));
                    }
                    let (pick, sel, fwd_local) = {
                        let regs = regs.borrow();
                        let room_local = comb_room(&regs, depth)[Port::Local.index()];
                        let pick =
                            iface_pick(&regs.iface, &icfg, &*rings.borrow(), &room_local, cycle);
                        let sel = comb_select(&regs, &ctx);
                        let trans = transfers(&sel, &rin.room_in);
                        (pick, sel, comb_fwd(&regs, &trans)[Port::Local.index()])
                    };
                    if let Some((vc, entry)) = pick {
                        rin.fwd_in[Port::Local.index()] = LinkFwd::flit(vc, entry.flit);
                    }
                    let mut regs = regs.borrow_mut();
                    vc_router::clock::clock(&mut regs, &ctx, &rin, Some(&sel));
                    let wr_vals: [u16; NUM_VCS] = core::array::from_fn(|v| bus.read(wr[v]) as u16);
                    iface_clock(
                        &mut regs.iface,
                        &icfg,
                        &mut *rings.borrow_mut(),
                        pick,
                        fwd_local,
                        wr_vals,
                        cycle,
                    );
                    bus.write(ver, cycle.wrapping_add(1));
                });
            }
        }

        let mut k = k;
        k.initialize();
        CycleNoc {
            cfg,
            iface_cfg,
            kernel: k,
            regs,
            rings,
            probe_buf: vec![[0; 4]; n],
            fwd_sigs,
            wr_sigs,
            stim_wr: vec![[0; NUM_VCS]; n],
            out_rd: vec![0; n],
            acc_rd: vec![0; n],
            cycle_cell,
            cycle: 0,
            faults,
        }
    }

    /// Kernel activity counters.
    pub fn kernel_stats(&self) -> KernelStats {
        self.kernel.stats()
    }
}

impl noc::NocEngine for CycleNoc {
    fn name(&self) -> &'static str {
        "systemc"
    }

    fn config(&self) -> NetworkConfig {
        self.cfg
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn step(&mut self) {
        // Snapshot the settled wires this edge consumes (probe support).
        for (r, buf) in self.probe_buf.iter_mut().enumerate() {
            for d in 0..4 {
                buf[d] = self.kernel.peek(self.fwd_sigs[r][d]);
            }
        }
        self.cycle_cell.set(self.cycle);
        self.kernel.clock_cycle();
        self.cycle += 1;
    }

    fn probe_link(&self, node: usize, dir: usize) -> Option<vc_router::OutEntry> {
        if self.cycle == 0 {
            return None;
        }
        let w = LinkFwd::from_bits(self.probe_buf[node][dir]);
        w.valid.then(|| vc_router::OutEntry {
            cycle: self.cycle - 1,
            vc: w.vc,
            flit: w.flit,
        })
    }

    fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    fn vc_occupancy(&self, node: usize) -> Option<[u32; NUM_VCS]> {
        let regs = self.regs[node].borrow();
        let mut occ = [0u32; NUM_VCS];
        for p in 0..NUM_PORTS {
            for (vc, o) in occ.iter_mut().enumerate() {
                *o += regs.queues[p * NUM_VCS + vc].occupancy() as u32;
            }
        }
        Some(occ)
    }

    fn stim_capacity(&self) -> usize {
        self.iface_cfg.stim_cap
    }

    fn stim_free(&self, node: usize, vc: usize) -> usize {
        let dev_rd = self.regs[node].borrow().iface.stim_rd[vc];
        let fill = self.stim_wr[node][vc].wrapping_sub(dev_rd);
        self.iface_cfg.stim_cap - fill as usize
    }

    fn push_stim(&mut self, node: usize, vc: usize, entry: StimEntry) -> bool {
        if self.stim_free(node, vc) == 0 {
            return false;
        }
        let wr = &mut self.stim_wr[node][vc];
        let slot = *wr as usize % self.iface_cfg.stim_cap;
        self.rings[node].borrow_mut().stim[vc][slot] = entry.to_bits();
        *wr = wr.wrapping_add(1);
        self.kernel.poke(self.wr_sigs[node][vc], *wr as u64);
        true
    }

    fn drain_delivered(&mut self, node: usize) -> Vec<OutEntry> {
        let dev = self.regs[node].borrow().iface.out_wr;
        let rd = &mut self.out_rd[node];
        let pending = noc::engine::ring_pending(*rd, dev, self.iface_cfg.out_cap, "output");
        let rings = self.rings[node].borrow();
        let mut out = Vec::with_capacity(pending);
        for _ in 0..pending {
            out.push(OutEntry::from_bits(
                rings.out[*rd as usize % self.iface_cfg.out_cap],
            ));
            *rd = rd.wrapping_add(1);
        }
        out
    }

    fn drain_access(&mut self, node: usize) -> Vec<AccEntry> {
        let dev = self.regs[node].borrow().iface.acc_wr;
        let rd = &mut self.acc_rd[node];
        let pending = noc::engine::ring_pending(*rd, dev, self.iface_cfg.acc_cap, "access-delay");
        let rings = self.rings[node].borrow();
        let mut out = Vec::with_capacity(pending);
        for _ in 0..pending {
            out.push(AccEntry::from_bits(
                rings.acc[*rd as usize % self.iface_cfg.acc_cap],
            ));
            *rd = rd.wrapping_add(1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc::NocEngine;
    use noc_types::{Coord, Flit, Topology};

    #[test]
    fn single_flit_packet_crosses_torus() {
        let cfg = NetworkConfig::new(3, 3, Topology::Torus, 4);
        let mut e = CycleNoc::new(cfg, IfaceConfig::default());
        let dest = Coord::new(2, 1);
        let entry = StimEntry {
            ts: 0,
            flit: Flit::head_tail(dest, 0),
        };
        assert!(e.push_stim(0, 0, entry));
        e.run(12);
        let got = e.drain_delivered(cfg.shape.node_id(dest).index());
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].flit, entry.flit);
    }

    #[test]
    fn kernel_activity_reflects_traffic() {
        let cfg = NetworkConfig::new(3, 3, Topology::Torus, 4);
        let mut idle = CycleNoc::new(cfg, IfaceConfig::default());
        idle.run(50);
        let idle_stats = idle.kernel_stats();
        let mut busy = CycleNoc::new(cfg, IfaceConfig::default());
        for i in 0..20u16 {
            busy.push_stim(
                (i % 9) as usize,
                (i % 2) as usize,
                StimEntry {
                    ts: i as u64,
                    flit: Flit::head_tail(Coord::new((i % 3) as u8, 2), (i % 9) as u8),
                },
            );
        }
        busy.run(50);
        let busy_stats = busy.kernel_stats();
        // Moving flits change forward-link signals -> more update events.
        // (Activations only grow when room bits toggle, i.e. queues fill.)
        assert!(busy_stats.updates > idle_stats.updates);
        assert!(busy_stats.activations >= idle_stats.activations);
    }
}
