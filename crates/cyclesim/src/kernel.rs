//! The cycle-based kernel: two-phase signals, clocked and combinational
//! processes, delta cycles.
//!
//! Semantics (mirroring SystemC's `sc_signal` + `SC_METHOD`):
//!
//! * A **signal** holds a current value; writes go to a pending buffer
//!   (`request_update`) and become visible only after the running delta's
//!   evaluate phase finishes.
//! * A **clocked process** runs once per clock cycle, at the edge, and
//!   observes the settled pre-edge signal values.
//! * A **combinational process** declares a sensitivity list and is
//!   re-evaluated in the next delta whenever any of those signals changed
//!   value.
//! * One clock cycle = the clocked evaluate phase, an update phase, then
//!   delta cycles (evaluate woken comb processes → update) until no
//!   signal changes.

/// Signal handle.
pub type SigId = usize;
/// Process handle.
pub type ProcId = usize;

/// The signal table handed to processes: current values are readable,
/// writes are buffered until the update phase.
#[derive(Debug, Default)]
pub struct SignalBus {
    values: Vec<u64>,
    pending: Vec<(SigId, u64)>,
}

impl SignalBus {
    /// Read the settled value of a signal.
    #[inline]
    pub fn read(&self, s: SigId) -> u64 {
        self.values[s]
    }

    /// Request an update (visible after this delta's update phase).
    #[inline]
    pub fn write(&mut self, s: SigId, v: u64) {
        self.pending.push((s, v));
    }
}

type ProcFn = Box<dyn FnMut(&mut SignalBus)>;

/// Kernel activity counters (the *why* of Table 3's ordering).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Clock cycles simulated.
    pub cycles: u64,
    /// Delta cycles executed (including the clocked phase).
    pub deltas: u64,
    /// Process activations.
    pub activations: u64,
    /// Signal update events (value actually changed).
    pub updates: u64,
}

/// The cycle-based simulation kernel.
pub struct Kernel {
    bus: SignalBus,
    clocked: Vec<ProcFn>,
    comb: Vec<ProcFn>,
    /// Sensitivity: signal -> combinational processes to wake.
    sens: Vec<Vec<ProcId>>,
    stats: KernelStats,
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel {
    /// Empty kernel.
    pub fn new() -> Self {
        Kernel {
            bus: SignalBus::default(),
            clocked: Vec::new(),
            comb: Vec::new(),
            sens: Vec::new(),
            stats: KernelStats::default(),
        }
    }

    /// Create a signal with an initial value.
    pub fn signal(&mut self, init: u64) -> SigId {
        self.bus.values.push(init);
        self.sens.push(Vec::new());
        self.bus.values.len() - 1
    }

    /// Register a clocked process (runs every cycle at the edge).
    pub fn clocked(&mut self, f: impl FnMut(&mut SignalBus) + 'static) -> ProcId {
        self.clocked.push(Box::new(f));
        self.clocked.len() - 1
    }

    /// Register a combinational process with its sensitivity list.
    pub fn comb(
        &mut self,
        sensitivity: &[SigId],
        f: impl FnMut(&mut SignalBus) + 'static,
    ) -> ProcId {
        self.comb.push(Box::new(f));
        let id = self.comb.len() - 1;
        for &s in sensitivity {
            self.sens[s].push(id);
        }
        id
    }

    /// Apply pending writes; returns the comb processes woken by actual
    /// value changes.
    fn update_phase(&mut self, woken: &mut [bool]) -> bool {
        let mut any = false;
        for (s, v) in core::mem::take(&mut self.bus.pending) {
            if self.bus.values[s] != v {
                self.bus.values[s] = v;
                self.stats.updates += 1;
                for &p in &self.sens[s] {
                    if !woken[p] {
                        woken[p] = true;
                        any = true;
                    }
                }
            }
        }
        any
    }

    /// Run delta cycles until no signal changes.
    fn settle_from(&mut self, mut woken: Vec<bool>) {
        loop {
            let run_list: Vec<ProcId> = woken
                .iter()
                .enumerate()
                .filter_map(|(i, &w)| w.then_some(i))
                .collect();
            if run_list.is_empty() {
                break;
            }
            woken.iter_mut().for_each(|w| *w = false);
            self.stats.deltas += 1;
            for p in run_list {
                self.stats.activations += 1;
                (self.comb[p])(&mut self.bus);
            }
            let mut next = vec![false; self.comb.len()];
            self.update_phase(&mut next);
            woken = next;
        }
    }

    /// Initialisation: evaluate every combinational process once and
    /// settle (SystemC's elaboration + initial delta).
    pub fn initialize(&mut self) {
        let all = vec![true; self.comb.len()];
        self.settle_from(all);
    }

    /// Simulate one clock cycle.
    pub fn clock_cycle(&mut self) {
        self.stats.cycles += 1;
        self.stats.deltas += 1;
        // Evaluate phase: all clocked processes observe pre-edge values.
        for p in self.clocked.iter_mut() {
            self.stats.activations += 1;
            (p)(&mut self.bus);
        }
        // Update phase + comb settling.
        let mut woken = vec![false; self.comb.len()];
        self.update_phase(&mut woken);
        self.settle_from(woken);
    }

    /// Host write outside simulation (applied immediately; wakes nobody —
    /// clocked processes see it at the next edge, like an ARM register
    /// write between simulation periods).
    pub fn poke(&mut self, s: SigId, v: u64) {
        self.bus.values[s] = v;
    }

    /// Host read of a settled signal.
    pub fn peek(&self, s: SigId) -> u64 {
        self.bus.values[s]
    }

    /// Activity counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn two_phase_signals_hide_writes_within_a_delta() {
        let mut k = Kernel::new();
        let a = k.signal(1);
        let b = k.signal(0);
        // comb: b := a + 10.
        k.comb(&[a], move |bus| {
            let v = bus.read(a) + 10;
            bus.write(b, v);
        });
        k.initialize();
        assert_eq!(k.peek(b), 11);
        // clocked: a := a + 1 each cycle.
        k.clocked(move |bus| {
            let v = bus.read(a) + 1;
            bus.write(a, v);
        });
        k.clock_cycle();
        assert_eq!(k.peek(a), 2);
        assert_eq!(k.peek(b), 12);
    }

    #[test]
    fn comb_chain_settles_through_deltas() {
        let mut k = Kernel::new();
        let s: Vec<SigId> = (0..4)
            .map(|i| k.signal(if i == 0 { 5 } else { 0 }))
            .collect();
        for i in 0..3 {
            let (from, to) = (s[i], s[i + 1]);
            k.comb(&[from], move |bus| {
                let v = bus.read(from) * 2;
                bus.write(to, v);
            });
        }
        k.initialize();
        assert_eq!(k.peek(s[3]), 40);
        k.poke(s[0], 1);
        // Poke wakes nobody; a clocked writer is needed to propagate.
        let (s0, s1) = (s[0], s[1]);
        k.clocked(move |bus| {
            let v = bus.read(s0);
            bus.write(s1, v * 2);
        });
        k.clock_cycle();
        assert_eq!(k.peek(s[3]), 8);
    }

    #[test]
    fn clocked_processes_see_pre_edge_values() {
        // Swap registers through signals: a classic two-phase test — both
        // processes must read the old value of the other.
        let mut k = Kernel::new();
        let a = k.signal(1);
        let b = k.signal(2);
        k.clocked(move |bus| {
            let v = bus.read(b);
            bus.write(a, v);
        });
        k.clocked(move |bus| {
            let v = bus.read(a);
            bus.write(b, v);
        });
        k.clock_cycle();
        assert_eq!((k.peek(a), k.peek(b)), (2, 1));
        k.clock_cycle();
        assert_eq!((k.peek(a), k.peek(b)), (1, 2));
    }

    #[test]
    fn stable_writes_wake_nothing() {
        let mut k = Kernel::new();
        let a = k.signal(7);
        let hits = Rc::new(RefCell::new(0));
        let h = hits.clone();
        k.comb(&[a], move |bus| {
            *h.borrow_mut() += 1;
            let _ = bus.read(a);
        });
        k.clocked(move |bus| {
            bus.write(a, 7); // same value every cycle
        });
        k.initialize();
        assert_eq!(*hits.borrow(), 1);
        for _ in 0..5 {
            k.clock_cycle();
        }
        // Never woken again: the value never changed.
        assert_eq!(*hits.borrow(), 1);
        assert_eq!(k.stats().cycles, 5);
    }
}
