//! # cyclesim — a SystemC-like cycle-based simulation kernel
//!
//! The software baseline the paper measured at 215 simulated cycles per
//! second (Table 3, "SystemC"). This crate rebuilds that *modelling
//! style*: modules with clocked processes (`SC_METHOD` sensitive to the
//! clock edge) and combinational processes (sensitive to their input
//! signals), communicating through two-phase signals — every write is
//! buffered and applied at the end of a delta cycle, exactly like
//! `sc_signal`'s request/update mechanism.
//!
//! * [`kernel`] — signals, processes, sensitivity lists, the
//!   evaluate/update delta loop and the clock driver.
//! * [`model`] — the NoC modelled SystemC-style: one module per router
//!   (one clocked process, two combinational processes exporting the
//!   room and forward wires), implementing the same bit-exact router
//!   semantics as every other engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
// Positional `for i in 0..n` loops indexing several parallel arrays are
// the natural shape for port/node-indexed hardware code; iterator zips
// would obscure which port is which.
#![allow(clippy::needless_range_loop)]

pub mod kernel;
pub mod model;

pub use kernel::{Kernel, KernelStats, ProcId, SigId, SignalBus};
pub use model::CycleNoc;
