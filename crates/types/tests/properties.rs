//! Property-style tests for the bit-exact primitives everything else
//! builds on: arbitrary-width bit fields, flit/link encodings,
//! packetisation. Cases are generated from a deterministic splitmix64
//! stream so the suite needs no external dependencies and every failure
//! reproduces exactly.

#![allow(clippy::unwrap_used, clippy::expect_used)]
use noc_types::bits::{get_bits, set_bits, words_for_bits};
use noc_types::{Coord, Flit, FlitKind, LinkFwd, NodeId, PacketSpec, Reassembler, TrafficClass};

/// Deterministic PRNG (splitmix64) for generated test cases.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

#[test]
fn bit_field_roundtrip_and_isolation() {
    let mut rng = Rng(1);
    for case in 0..500 {
        let offset = rng.range(0, 200) as usize;
        let width = rng.range(1, 65) as usize;
        let value = rng.next();
        let background = rng.next();
        let words = words_for_bits(offset + width).max(4);
        let mut buf = vec![background; words];
        let snapshot = buf.clone();
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        set_bits(&mut buf, offset, width, value & mask);
        // The field reads back.
        assert_eq!(get_bits(&buf, offset, width), value & mask, "case {case}");
        // Bits before and after are untouched.
        if offset > 0 {
            assert_eq!(
                get_bits(&buf, 0, offset.min(64)),
                get_bits(&snapshot, 0, offset.min(64)),
                "case {case}: bits before the field changed"
            );
        }
        let after = offset + width;
        if after + 8 <= words * 64 {
            assert_eq!(
                get_bits(&buf, after, 8),
                get_bits(&snapshot, after, 8),
                "case {case}: bits after the field changed"
            );
        }
    }
}

#[test]
fn adjacent_fields_do_not_interfere() {
    let mut rng = Rng(2);
    for case in 0..500 {
        let w1 = rng.range(1, 22) as usize;
        let w2 = rng.range(1, 22) as usize;
        let v1 = rng.next();
        let v2 = rng.next();
        let mut buf = vec![0u64; 2];
        let m1 = (1u64 << w1) - 1;
        let m2 = (1u64 << w2) - 1;
        set_bits(&mut buf, 0, w1, v1 & m1);
        set_bits(&mut buf, w1, w2, v2 & m2);
        assert_eq!(get_bits(&buf, 0, w1), v1 & m1, "case {case}");
        assert_eq!(get_bits(&buf, w1, w2), v2 & m2, "case {case}");
    }
}

#[test]
fn flit_and_link_word_roundtrip() {
    let mut rng = Rng(3);
    for _ in 0..200 {
        let kind = rng.range(0, 4);
        let payload = rng.next() as u16;
        let vc = rng.range(0, 4) as u8;
        let f = Flit {
            kind: FlitKind::from_bits(kind),
            payload,
        };
        assert_eq!(Flit::from_bits(f.to_bits()), f);
        let w = LinkFwd::flit(vc, f);
        assert_eq!(LinkFwd::from_bits(w.to_bits()), w);
    }
}

#[test]
fn packets_survive_flitise_reassemble() {
    let mut rng = Rng(4);
    for case in 0..200 {
        let src = rng.range(0, 256) as u16;
        let dx = rng.range(0, 16) as u8;
        let dy = rng.range(0, 16) as u8;
        let flits = rng.range(1, 200) as usize;
        let vc = rng.range(0, 4) as u8;
        let seed = rng.next() as u16;
        let spec = PacketSpec {
            src: NodeId(src),
            dest: Coord::new(dx, dy),
            class: TrafficClass::BestEffort,
            flits,
        };
        let stream = spec.flitise(|i| seed.wrapping_add(i as u16));
        assert_eq!(stream.len(), flits, "case {case}");
        let mut r = Reassembler::new();
        for (i, f) in stream.iter().enumerate() {
            r.push(i as u64, vc, *f);
        }
        assert_eq!(r.completed.len(), 1, "case {case}");
        let p = &r.completed[0];
        assert_eq!(p.src_tag, src as u8);
        assert_eq!(p.flits, flits);
        assert_eq!(p.vc, vc);
        if flits > 1 {
            assert_eq!(p.first_body, Some(seed));
        }
    }
}

#[test]
fn head_flit_addressing_roundtrips() {
    let mut rng = Rng(5);
    for _ in 0..200 {
        let x = rng.range(0, 16) as u8;
        let y = rng.range(0, 16) as u8;
        let tag = rng.next() as u8;
        let h = Flit::head(Coord::new(x, y), tag);
        assert_eq!(h.dest(), Coord::new(x, y));
        assert_eq!(h.src_tag(), tag);
    }
}
