//! Property tests for the bit-exact primitives everything else builds
//! on: arbitrary-width bit fields, flit/link encodings, packetisation.

use noc_types::bits::{get_bits, set_bits, words_for_bits};
use noc_types::{Coord, Flit, FlitKind, LinkFwd, NodeId, PacketSpec, Reassembler, TrafficClass};
use proptest::prelude::*;

proptest! {
    #[test]
    fn bit_field_roundtrip_and_isolation(
        offset in 0usize..200,
        width in 1usize..=64,
        value: u64,
        background: u64,
    ) {
        let words = words_for_bits(offset + width).max(4);
        let mut buf = vec![background; words];
        let snapshot = buf.clone();
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        set_bits(&mut buf, offset, width, value & mask);
        // The field reads back.
        prop_assert_eq!(get_bits(&buf, offset, width), value & mask);
        // Bits before and after are untouched.
        if offset > 0 {
            prop_assert_eq!(
                get_bits(&buf, 0, offset.min(64)),
                get_bits(&snapshot, 0, offset.min(64))
            );
        }
        let after = offset + width;
        if after + 8 <= words * 64 {
            prop_assert_eq!(get_bits(&buf, after, 8), get_bits(&snapshot, after, 8));
        }
    }

    #[test]
    fn adjacent_fields_do_not_interfere(
        w1 in 1usize..=21,
        w2 in 1usize..=21,
        v1: u64,
        v2: u64,
    ) {
        let mut buf = vec![0u64; 2];
        let m1 = (1u64 << w1) - 1;
        let m2 = (1u64 << w2) - 1;
        set_bits(&mut buf, 0, w1, v1 & m1);
        set_bits(&mut buf, w1, w2, v2 & m2);
        prop_assert_eq!(get_bits(&buf, 0, w1), v1 & m1);
        prop_assert_eq!(get_bits(&buf, w1, w2), v2 & m2);
    }

    #[test]
    fn flit_and_link_word_roundtrip(kind in 0u8..4, payload: u16, vc in 0u8..4) {
        let f = Flit {
            kind: FlitKind::from_bits(kind as u64),
            payload,
        };
        prop_assert_eq!(Flit::from_bits(f.to_bits()), f);
        let w = LinkFwd::flit(vc, f);
        prop_assert_eq!(LinkFwd::from_bits(w.to_bits()), w);
    }

    #[test]
    fn packets_survive_flitise_reassemble(
        src in 0u16..256,
        dx in 0u8..16,
        dy in 0u8..16,
        flits in 1usize..200,
        vc in 0u8..4,
        seed: u16,
    ) {
        let spec = PacketSpec {
            src: NodeId(src),
            dest: Coord::new(dx, dy),
            class: TrafficClass::BestEffort,
            flits,
        };
        let stream = spec.flitise(|i| seed.wrapping_add(i as u16));
        prop_assert_eq!(stream.len(), flits);
        let mut r = Reassembler::new();
        for (i, f) in stream.iter().enumerate() {
            r.push(i as u64, vc, *f);
        }
        prop_assert_eq!(r.completed.len(), 1);
        let p = &r.completed[0];
        prop_assert_eq!(p.src_tag, src as u8);
        prop_assert_eq!(p.flits, flits);
        prop_assert_eq!(p.vc, vc);
        if flits > 1 {
            prop_assert_eq!(p.first_body, Some(seed));
        }
    }

    #[test]
    fn head_flit_addressing_roundtrips(x in 0u8..16, y in 0u8..16, tag: u8) {
        let h = Flit::head(Coord::new(x, y), tag);
        prop_assert_eq!(h.dest(), Coord::new(x, y));
        prop_assert_eq!(h.src_tag(), tag);
    }
}
