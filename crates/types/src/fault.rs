//! Deterministic fault descriptions shared bit-for-bit by every engine.
//!
//! A [`FaultPlan`] is a *pure description*: which router is stalled in
//! which cycle window, which input link is stuck idle or flips payload
//! bits, and what fraction of offered packets is dropped or corrupted at
//! injection. Every engine (native, sequential, sharded, SystemC-like,
//! VHDL-like) consumes the same plan through the same pure queries, so a
//! faulty run is exactly as bit- and cycle-reproducible as a clean one —
//! the differential suites extend to faulty runs unchanged.
//!
//! Fault semantics (identical in all engines):
//!
//! * **Router stall** — for every cycle in the window the router drives
//!   idle forward links and all-zero room words, holds all its registers
//!   across the clock edge, and neither consumes stimuli nor delivers
//!   flits. Conservation-neutral: neighbours see backpressure, nothing
//!   is lost.
//! * **Link stuck-idle** — the receiver's forward-link *input* word is
//!   forced to the idle encoding for every cycle in the window. The
//!   driver still observes room and dequeues normally, so a flit in
//!   flight on the link during the window is *dropped* (the fault model's
//!   only lossy site inside the network).
//! * **Link bit-flip** — the receiver's input word, when it carries a
//!   valid body or tail flit, has `mask` XOR-ed into its 16-bit payload.
//!   Head flits are never flipped (their payload is the route header;
//!   corrupting it would change *where* bits flow rather than *which*
//!   bits flow). Conservation-neutral.
//! * **Injection drop / corrupt** — decided per *packet* at its head
//!   flit by a pure hash of `(seed, node, vc, ts)`; a dropped packet is
//!   never offered to the engine, a corrupted one has its body/tail
//!   payloads XOR-ed with the plan's mask before it is offered. Applied
//!   host-side, upstream of every engine.
//!
//! Determinism contract: all windows start at cycle ≥ 1 (constructors
//! clamp) so that the cycle-0 settle of the event-driven kernels, which
//! precedes their first clock edge, can never observe a fault edge.

use crate::flit::{FlitKind, FLIT_BITS, PAYLOAD_BITS};

/// A half-open cycle window `[start, end)` in which a fault is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First active cycle (clamped to ≥ 1 by [`Window::new`]).
    pub start: u64,
    /// First cycle after the fault clears.
    pub end: u64,
}

impl Window {
    /// A window active for cycles `start..end`. `start` is clamped to 1:
    /// cycle 0 faults are forbidden by the determinism contract (see the
    /// module docs).
    pub fn new(start: u64, end: u64) -> Window {
        Window {
            start: start.max(1),
            end,
        }
    }

    /// Is the fault active in `cycle`?
    #[inline]
    pub fn active(&self, cycle: u64) -> bool {
        self.start <= cycle && cycle < self.end
    }
}

/// What a faulty link does to the words it delivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFaultKind {
    /// The receiver reads the idle word; flits in flight are dropped.
    StuckIdle,
    /// Valid body/tail flits have `mask` XOR-ed into their payload.
    BitFlip {
        /// XOR mask applied to the 16-bit flit payload.
        mask: u16,
    },
}

/// One fault on one forward link, described at the *receiving* side:
/// the link entering input port `dir` of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFault {
    /// Cycles in which the fault is active.
    pub window: Window,
    /// What the fault does.
    pub kind: LinkFaultKind,
}

/// Packet-level faults applied at the stimuli interface, host-side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectFaults {
    /// Per-mille of offered packets silently dropped before injection.
    pub drop_per_mille: u16,
    /// Per-mille of offered packets whose body/tail payloads are XOR-ed
    /// with [`mask`](Self::mask).
    pub corrupt_per_mille: u16,
    /// Payload XOR mask for corrupted packets.
    pub mask: u16,
}

/// A deterministic, seed-derived fault scenario for one network.
///
/// The plan is immutable once built; every query is a pure function of
/// `(plan, cycle, site)`, which is what lets five different simulation
/// engines replay the identical faulty execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed the plan was derived from (also salts injection decisions).
    pub seed: u64,
    num_nodes: usize,
    stalls: Vec<Vec<Window>>,
    links: Vec<[Vec<LinkFault>; 4]>,
    /// Packet-level injection faults, if any.
    pub inject: Option<InjectFaults>,
}

impl FaultPlan {
    /// An empty plan for a network of `num_nodes` routers.
    pub fn new(num_nodes: usize, seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            num_nodes,
            stalls: vec![Vec::new(); num_nodes],
            links: vec![[Vec::new(), Vec::new(), Vec::new(), Vec::new()]; num_nodes],
            inject: None,
        }
    }

    /// Number of routers the plan covers.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Add a stall window to router `node`.
    pub fn add_stall(&mut self, node: usize, window: Window) {
        self.stalls[node].push(window);
    }

    /// Add a fault to the link entering input port `dir` (0..4 =
    /// N, E, S, W) of router `node`.
    pub fn add_link_fault(&mut self, node: usize, dir: usize, fault: LinkFault) {
        self.links[node][dir].push(fault);
    }

    /// Set the packet-level injection faults.
    pub fn set_inject(&mut self, inject: InjectFaults) {
        self.inject = Some(inject);
    }

    /// True when the plan describes no fault at all.
    pub fn is_empty(&self) -> bool {
        self.inject.is_none()
            && self.stalls.iter().all(|s| s.is_empty())
            && self.links.iter().flatten().all(|l| l.is_empty())
    }

    /// True when any link fault is `StuckIdle` — the only fault kind that
    /// can drop flits *inside* the network, which relaxes the flit
    /// conservation invariant from equality to a non-negative residual.
    pub fn has_stuck_idle(&self) -> bool {
        self.links
            .iter()
            .flatten()
            .flatten()
            .any(|f| matches!(f.kind, LinkFaultKind::StuckIdle))
    }

    /// Is router `node` stalled in `cycle`?
    #[inline]
    pub fn stalled(&self, node: usize, cycle: u64) -> bool {
        self.stalls[node].iter().any(|w| w.active(cycle))
    }

    /// Apply the link faults of `(node, dir)` to the forward-link word
    /// consumed at the clock edge ending `cycle`.
    #[inline]
    pub fn apply_link(&self, node: usize, dir: usize, cycle: u64, word: u64) -> u64 {
        apply_faults(&self.links[node][dir], cycle, word)
    }

    /// The faults touching one router, precomputed for an engine's
    /// per-node hot path.
    pub fn node_faults(&self, node: usize) -> NodeFaults {
        NodeFaults {
            stalls: self.stalls[node].clone(),
            links: self.links[node].clone(),
        }
    }

    /// Stall windows of every node, for reporting.
    pub fn stall_sites(&self) -> impl Iterator<Item = (usize, Window)> + '_ {
        self.stalls
            .iter()
            .enumerate()
            .flat_map(|(n, ws)| ws.iter().map(move |&w| (n, w)))
    }

    /// Link-fault sites `(node, dir, fault)`, for reporting.
    pub fn link_sites(&self) -> impl Iterator<Item = (usize, usize, LinkFault)> + '_ {
        self.links.iter().enumerate().flat_map(|(n, dirs)| {
            dirs.iter()
                .enumerate()
                .flat_map(move |(d, fs)| fs.iter().map(move |&f| (n, d, f)))
        })
    }

    /// One-line-per-fault human summary of the plan.
    pub fn describe(&self) -> String {
        use core::fmt::Write;
        let mut out = String::new();
        for (n, w) in self.stall_sites() {
            let _ = writeln!(out, "stall node {n} cycles {}..{}", w.start, w.end);
        }
        for (n, d, f) in self.link_sites() {
            let _ = writeln!(
                out,
                "link into node {n} port {d}: {:?} cycles {}..{}",
                f.kind, f.window.start, f.window.end
            );
        }
        if let Some(i) = &self.inject {
            let _ = writeln!(
                out,
                "inject: drop {}‰, corrupt {}‰ mask {:#06x}",
                i.drop_per_mille, i.corrupt_per_mille, i.mask
            );
        }
        out
    }
}

/// The faults touching one router, cloned out of a [`FaultPlan`] so the
/// per-delta hot path of an engine touches only node-local data.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeFaults {
    stalls: Vec<Window>,
    links: [Vec<LinkFault>; 4],
}

impl NodeFaults {
    /// True when this node has no fault; engines skip all checks then.
    pub fn is_empty(&self) -> bool {
        self.stalls.is_empty() && self.links.iter().all(|l| l.is_empty())
    }

    /// Is the node stalled in `cycle`?
    #[inline]
    pub fn stalled(&self, cycle: u64) -> bool {
        self.stalls.iter().any(|w| w.active(cycle))
    }

    /// True when the node has any stall window (in any cycle) — lets
    /// event-driven engines add clock sensitivity only where needed.
    pub fn has_stalls(&self) -> bool {
        !self.stalls.is_empty()
    }

    /// True when the input link from `dir` carries any fault (in any
    /// cycle) — lets engines skip per-cycle checks on clean links.
    pub fn link_faulty(&self, dir: usize) -> bool {
        !self.links[dir].is_empty()
    }

    /// Apply this node's input-link faults for `dir` to the word consumed
    /// at the clock edge ending `cycle`.
    #[inline]
    pub fn apply_link(&self, dir: usize, cycle: u64, word: u64) -> u64 {
        apply_faults(&self.links[dir], cycle, word)
    }
}

/// Apply a fault list to one forward-link word.
fn apply_faults(faults: &[LinkFault], cycle: u64, word: u64) -> u64 {
    let mut w = word;
    for f in faults {
        if !f.window.active(cycle) {
            continue;
        }
        match f.kind {
            LinkFaultKind::StuckIdle => w = 0,
            LinkFaultKind::BitFlip { mask } => w = flip_payload(w, mask),
        }
    }
    w
}

/// XOR `mask` into the payload of a forward-link word carrying a valid
/// body or tail flit; head flits and idle words pass through unchanged.
#[inline]
pub fn flip_payload(word: u64, mask: u16) -> u64 {
    let valid = (word >> (FLIT_BITS + 2)) & 1 != 0;
    if !valid {
        return word;
    }
    let kind = FlitKind::from_bits(word >> PAYLOAD_BITS);
    if kind.is_head() {
        return word;
    }
    word ^ mask as u64
}

/// The pure mixing hash all fault decisions derive from: a splitmix64
/// finaliser over the running combination of `(seed, a, b, c)`. Stable
/// across platforms; the same `(seed, site, cycle)` always maps to the
/// same decision, in every engine and on every run.
#[inline]
pub fn mix(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(a)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(b)
        .wrapping_mul(0x94D0_49BB_1331_11EB)
        .wrapping_add(c);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{Flit, LinkFwd};
    use crate::geom::Coord;

    #[test]
    fn window_clamps_cycle_zero() {
        let w = Window::new(0, 5);
        assert!(!w.active(0));
        assert!(w.active(1) && w.active(4) && !w.active(5));
    }

    #[test]
    fn stuck_idle_forces_zero() {
        let mut p = FaultPlan::new(4, 1);
        p.add_link_fault(
            2,
            1,
            LinkFault {
                window: Window::new(10, 20),
                kind: LinkFaultKind::StuckIdle,
            },
        );
        let w = LinkFwd::flit(1, Flit::head(Coord::new(1, 1), 3)).to_bits();
        assert_eq!(p.apply_link(2, 1, 15, w), 0);
        assert_eq!(p.apply_link(2, 1, 9, w), w, "outside window");
        assert_eq!(p.apply_link(2, 0, 15, w), w, "other port");
        assert_eq!(p.apply_link(1, 1, 15, w), w, "other node");
        assert!(p.has_stuck_idle());
        assert!(!p.is_empty());
    }

    #[test]
    fn bitflip_spares_heads_and_idle() {
        let mask = 0xA5A5u16;
        let body = LinkFwd::flit(
            2,
            Flit {
                kind: FlitKind::Body,
                payload: 0x1234,
            },
        )
        .to_bits();
        let flipped = flip_payload(body, mask);
        let f = LinkFwd::from_bits(flipped);
        assert_eq!(f.flit.payload, 0x1234 ^ mask);
        assert_eq!(f.flit.kind, FlitKind::Body);
        assert_eq!(f.vc, 2);
        assert!(f.valid);
        let head = LinkFwd::flit(1, Flit::head(Coord::new(2, 2), 9)).to_bits();
        assert_eq!(flip_payload(head, mask), head);
        assert_eq!(flip_payload(0, mask), 0);
    }

    #[test]
    fn node_faults_mirror_plan() {
        let mut p = FaultPlan::new(4, 7);
        p.add_stall(1, Window::new(5, 8));
        p.add_link_fault(
            1,
            3,
            LinkFault {
                window: Window::new(2, 4),
                kind: LinkFaultKind::BitFlip { mask: 1 },
            },
        );
        let nf = p.node_faults(1);
        assert!(!nf.is_empty());
        assert!(nf.stalled(5) && nf.stalled(7) && !nf.stalled(8));
        assert!(nf.link_faulty(3) && !nf.link_faulty(0));
        for cycle in 0..10 {
            for dir in 0..4 {
                let w = LinkFwd::flit(
                    0,
                    Flit {
                        kind: FlitKind::Tail,
                        payload: 0xFFFF,
                    },
                )
                .to_bits();
                assert_eq!(nf.apply_link(dir, cycle, w), p.apply_link(1, dir, cycle, w));
            }
        }
        assert!(p.node_faults(0).is_empty());
    }

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix(1, 2, 3, 4), mix(1, 2, 3, 4));
        assert_ne!(mix(1, 2, 3, 4), mix(1, 2, 3, 5));
        assert_ne!(mix(1, 2, 3, 4), mix(2, 2, 3, 4));
        // Per-mille decisions stay roughly calibrated.
        let hits = (0..10_000)
            .filter(|&i| mix(42, i, 0, 0) % 1000 < 100)
            .count();
        assert!((800..1200).contains(&hits), "hits {hits}");
    }

    #[test]
    fn describe_lists_every_site() {
        let mut p = FaultPlan::new(2, 3);
        p.add_stall(0, Window::new(1, 2));
        p.add_link_fault(
            1,
            2,
            LinkFault {
                window: Window::new(3, 4),
                kind: LinkFaultKind::StuckIdle,
            },
        );
        p.set_inject(InjectFaults {
            drop_per_mille: 10,
            corrupt_per_mille: 20,
            mask: 0xFF,
        });
        let d = p.describe();
        assert!(d.contains("stall node 0"));
        assert!(d.contains("link into node 1 port 2"));
        assert!(d.contains("inject"));
    }
}
