//! Network shapes and topologies (torus and mesh).
//!
//! Paper §7.1: "The topology of a network can either be a torus or a mesh,
//! which is determined by software. [...] The software on the ARM can change
//! the network size from 1-by-2 to any 2 dimensional size with a maximum
//! number of 256 routers."

use crate::geom::{Coord, Direction, NodeId};

/// Rectangular network shape `w × h`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Number of columns (routers along `x`).
    pub w: u8,
    /// Number of rows (routers along `y`).
    pub h: u8,
}

impl Shape {
    /// Construct a shape. The paper's simulator supports 2..=256 routers.
    ///
    /// # Panics
    /// Panics if either dimension is zero or the router count exceeds 256.
    pub fn new(w: u8, h: u8) -> Self {
        assert!(w >= 1 && h >= 1, "degenerate shape {w}x{h}");
        assert!(
            (w as usize) * (h as usize) >= 2,
            "network needs at least 2 routers (paper supports 1-by-2 up)"
        );
        assert!(
            (w as usize) * (h as usize) <= 256,
            "paper's simulator supports at most 256 routers"
        );
        Self { w, h }
    }

    /// Total number of routers.
    #[inline]
    pub const fn num_nodes(&self) -> usize {
        self.w as usize * self.h as usize
    }

    /// Linear node id of a coordinate (row-major).
    #[inline]
    pub const fn node_id(&self, c: Coord) -> NodeId {
        NodeId(c.y as u16 * self.w as u16 + c.x as u16)
    }

    /// Coordinate of a linear node id.
    #[inline]
    pub const fn coord(&self, n: NodeId) -> Coord {
        Coord {
            x: (n.0 % self.w as u16) as u8,
            y: (n.0 / self.w as u16) as u8,
        }
    }

    /// Iterate over all coordinates in node-id order.
    pub fn coords(&self) -> impl Iterator<Item = Coord> + '_ {
        let shape = *self;
        (0..shape.num_nodes()).map(move |i| shape.coord(NodeId(i as u16)))
    }
}

impl core::fmt::Display for Shape {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}x{}", self.w, self.h)
    }
}

/// Interconnect topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// 2-D torus: all neighbour links exist, edges wrap around.
    Torus,
    /// 2-D mesh: no wrap-around links; edge ports are tied off.
    Mesh,
}

impl Topology {
    /// The neighbour of `c` in direction `d`, or `None` when the link does
    /// not exist (mesh edge).
    pub fn neighbour(self, shape: Shape, c: Coord, d: Direction) -> Option<Coord> {
        let (w, h) = (shape.w, shape.h);
        match self {
            Topology::Torus => Some(match d {
                Direction::North => Coord::new(c.x, (c.y + 1) % h),
                Direction::South => Coord::new(c.x, (c.y + h - 1) % h),
                Direction::East => Coord::new((c.x + 1) % w, c.y),
                Direction::West => Coord::new((c.x + w - 1) % w, c.y),
            }),
            Topology::Mesh => match d {
                Direction::North if c.y + 1 < h => Some(Coord::new(c.x, c.y + 1)),
                Direction::South if c.y > 0 => Some(Coord::new(c.x, c.y - 1)),
                Direction::East if c.x + 1 < w => Some(Coord::new(c.x + 1, c.y)),
                Direction::West if c.x > 0 => Some(Coord::new(c.x - 1, c.y)),
                _ => None,
            },
        }
    }

    /// Hop distance between two coordinates under dimension-ordered routing.
    pub fn distance(self, shape: Shape, a: Coord, b: Coord) -> usize {
        let dim = |p: u8, q: u8, n: u8| -> usize {
            let d = (p as i32 - q as i32).unsigned_abs() as usize;
            match self {
                Topology::Mesh => d,
                Topology::Torus => d.min(n as usize - d),
            }
        };
        dim(a.x, b.x, shape.w) + dim(a.y, b.y, shape.h)
    }

    /// Maximum hop distance between any pair (network diameter).
    pub fn diameter(self, shape: Shape) -> usize {
        let dim = |n: u8| -> usize {
            match self {
                Topology::Mesh => n as usize - 1,
                Topology::Torus => n as usize / 2,
            }
        };
        dim(shape.w) + dim(shape.h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_coord_roundtrip() {
        let s = Shape::new(6, 6);
        for c in s.coords() {
            assert_eq!(s.coord(s.node_id(c)), c);
        }
        assert_eq!(s.num_nodes(), 36);
    }

    #[test]
    fn torus_wraps() {
        let s = Shape::new(4, 3);
        let t = Topology::Torus;
        assert_eq!(
            t.neighbour(s, Coord::new(3, 0), Direction::East),
            Some(Coord::new(0, 0))
        );
        assert_eq!(
            t.neighbour(s, Coord::new(0, 0), Direction::South),
            Some(Coord::new(0, 2))
        );
    }

    #[test]
    fn mesh_edges_are_unconnected() {
        let s = Shape::new(4, 3);
        let m = Topology::Mesh;
        assert_eq!(m.neighbour(s, Coord::new(3, 0), Direction::East), None);
        assert_eq!(m.neighbour(s, Coord::new(0, 0), Direction::South), None);
        assert_eq!(
            m.neighbour(s, Coord::new(0, 0), Direction::North),
            Some(Coord::new(0, 1))
        );
    }

    #[test]
    fn torus_neighbour_is_symmetric() {
        let s = Shape::new(5, 4);
        let t = Topology::Torus;
        for c in s.coords() {
            for d in Direction::ALL {
                let n = t.neighbour(s, c, d).unwrap();
                assert_eq!(t.neighbour(s, n, d.opposite()), Some(c));
            }
        }
    }

    #[test]
    fn distances() {
        let s = Shape::new(6, 6);
        assert_eq!(
            Topology::Torus.distance(s, Coord::new(0, 0), Coord::new(5, 5)),
            2
        );
        assert_eq!(
            Topology::Mesh.distance(s, Coord::new(0, 0), Coord::new(5, 5)),
            10
        );
        assert_eq!(Topology::Torus.diameter(s), 6);
        assert_eq!(Topology::Mesh.diameter(s), 10);
    }

    #[test]
    #[should_panic]
    fn oversize_network_rejected() {
        let _ = Shape::new(17, 16);
    }

    #[test]
    fn paper_min_size_accepted() {
        let s = Shape::new(2, 1); // "1-by-2"
        assert_eq!(s.num_nodes(), 2);
    }
}
