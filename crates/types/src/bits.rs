//! Bit-field packing into `u64` word arrays.
//!
//! The sequential simulator (paper §4, Fig 2b) concatenates *all* registers
//! of a block into one wide memory word ("the inputs and output signals of
//! all registers are concatenated into two memory words: old and new").
//! This module provides the primitives to read and write arbitrary-width
//! fields (1..=64 bits) at arbitrary bit offsets in a `[u64]` backing store,
//! plus cursor types for sequential, layout-driven access.

/// Read `width` bits starting at absolute bit `offset` from `words`.
///
/// `width` must be in `1..=64`. Fields may straddle a word boundary.
///
/// # Panics
/// Panics if `width` is 0 or greater than 64, or if the field extends past
/// the end of `words`.
#[inline]
pub fn get_bits(words: &[u64], offset: usize, width: usize) -> u64 {
    assert!(
        (1..=64).contains(&width),
        "field width {width} out of range"
    );
    let word = offset / 64;
    let bit = offset % 64;
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    if bit + width <= 64 {
        (words[word] >> bit) & mask
    } else {
        let lo_bits = 64 - bit;
        let lo = words[word] >> bit;
        let hi = words[word + 1] << lo_bits;
        (lo | hi) & mask
    }
}

/// Write the low `width` bits of `value` at absolute bit `offset` in `words`.
///
/// Bits of `value` above `width` must be zero (checked with a debug
/// assertion, masked in release builds).
///
/// # Panics
/// Panics if `width` is 0 or greater than 64, or if the field extends past
/// the end of `words`.
#[inline]
pub fn set_bits(words: &mut [u64], offset: usize, width: usize, value: u64) {
    assert!(
        (1..=64).contains(&width),
        "field width {width} out of range"
    );
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    debug_assert_eq!(value & !mask, 0, "value wider than declared field");
    let value = value & mask;
    let word = offset / 64;
    let bit = offset % 64;
    if bit + width <= 64 {
        words[word] = (words[word] & !(mask << bit)) | (value << bit);
    } else {
        let lo_bits = 64 - bit;
        words[word] = (words[word] & !(mask << bit)) | (value << bit);
        let hi_mask = mask >> lo_bits;
        words[word + 1] = (words[word + 1] & !hi_mask) | (value >> lo_bits);
    }
}

/// Number of `u64` words needed to hold `bits` bits.
#[inline]
pub const fn words_for_bits(bits: usize) -> usize {
    bits.div_ceil(64)
}

/// Sequential bit reader over a word slice.
///
/// Used by block implementations to unpack their register state in layout
/// order. Each `take` advances the cursor by the field width.
#[derive(Debug)]
pub struct BitReader<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Create a reader positioned at bit 0.
    #[inline]
    pub fn new(words: &'a [u64]) -> Self {
        Self { words, pos: 0 }
    }

    /// Create a reader positioned at `offset` bits.
    #[inline]
    pub fn at(words: &'a [u64], offset: usize) -> Self {
        Self { words, pos: offset }
    }

    /// Current bit position.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Read the next `width` bits and advance.
    #[inline]
    pub fn take(&mut self, width: usize) -> u64 {
        let v = get_bits(self.words, self.pos, width);
        self.pos += width;
        v
    }

    /// Read the next bit as a `bool` and advance.
    #[inline]
    pub fn take_bool(&mut self) -> bool {
        self.take(1) != 0
    }
}

/// Sequential bit writer over a mutable word slice.
#[derive(Debug)]
pub struct BitWriter<'a> {
    words: &'a mut [u64],
    pos: usize,
}

impl<'a> BitWriter<'a> {
    /// Create a writer positioned at bit 0.
    #[inline]
    pub fn new(words: &'a mut [u64]) -> Self {
        Self { words, pos: 0 }
    }

    /// Create a writer positioned at `offset` bits.
    #[inline]
    pub fn at(words: &'a mut [u64], offset: usize) -> Self {
        Self { words, pos: offset }
    }

    /// Current bit position.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Write the low `width` bits of `value` and advance.
    #[inline]
    pub fn put(&mut self, width: usize, value: u64) {
        set_bits(self.words, self.pos, width, value);
        self.pos += width;
    }

    /// Write a single bit and advance.
    #[inline]
    pub fn put_bool(&mut self, value: bool) {
        self.put(1, value as u64);
    }
}

/// Width in bits of the minimal unsigned field that can hold `n` distinct
/// values (`0..n`). `ceil_log2(1) == 1` so that even a constant field
/// occupies a register bit, matching hardware practice.
#[inline]
pub const fn ceil_log2(n: usize) -> usize {
    if n <= 2 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_word_roundtrip() {
        let mut w = [0u64; 2];
        set_bits(&mut w, 3, 7, 0b101_1010);
        assert_eq!(get_bits(&w, 3, 7), 0b101_1010);
        // Neighbouring bits untouched.
        assert_eq!(get_bits(&w, 0, 3), 0);
        assert_eq!(get_bits(&w, 10, 10), 0);
    }

    #[test]
    fn straddling_roundtrip() {
        let mut w = [0u64; 3];
        set_bits(&mut w, 60, 21, 0x1F_FFFF);
        assert_eq!(get_bits(&w, 60, 21), 0x1F_FFFF);
        set_bits(&mut w, 60, 21, 0x0A_BCDE);
        assert_eq!(get_bits(&w, 60, 21), 0x0A_BCDE);
        assert_eq!(get_bits(&w, 0, 60), 0);
    }

    #[test]
    fn full_word_field() {
        let mut w = [0u64; 2];
        set_bits(&mut w, 32, 64, u64::MAX);
        assert_eq!(get_bits(&w, 32, 64), u64::MAX);
        assert_eq!(get_bits(&w, 0, 32), 0);
        assert_eq!(get_bits(&w, 96, 32), 0);
    }

    #[test]
    fn writer_reader_cursor_agree() {
        let mut w = [0u64; 4];
        {
            let mut wr = BitWriter::new(&mut w);
            wr.put(5, 17);
            wr.put_bool(true);
            wr.put(64, 0xDEAD_BEEF_CAFE_F00D);
            wr.put(18, 0x2_FFFF);
            assert_eq!(wr.position(), 5 + 1 + 64 + 18);
        }
        let mut rd = BitReader::new(&w);
        assert_eq!(rd.take(5), 17);
        assert!(rd.take_bool());
        assert_eq!(rd.take(64), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(rd.take(18), 0x2_FFFF);
    }

    #[test]
    fn overwrite_clears_old_value() {
        let mut w = [u64::MAX; 2];
        set_bits(&mut w, 10, 12, 0);
        assert_eq!(get_bits(&w, 10, 12), 0);
        assert_eq!(get_bits(&w, 0, 10), 0x3FF);
        assert_eq!(get_bits(&w, 22, 12), 0xFFF);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 1);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(16), 4);
        assert_eq!(ceil_log2(17), 5);
        assert_eq!(ceil_log2(20), 5);
        assert_eq!(ceil_log2(256), 8);
    }

    #[test]
    fn words_for_bits_values() {
        assert_eq!(words_for_bits(0), 0);
        assert_eq!(words_for_bits(1), 1);
        assert_eq!(words_for_bits(64), 1);
        assert_eq!(words_for_bits(65), 2);
        assert_eq!(words_for_bits(2112), 33);
    }

    #[test]
    #[should_panic]
    fn zero_width_rejected() {
        let w = [0u64; 1];
        let _ = get_bits(&w, 0, 0);
    }
}
