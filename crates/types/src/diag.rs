//! Typed, machine-readable diagnostics for static spec analysis.
//!
//! The `speccheck` analyzer (and [`SystemSpec::check`] in the `seqsim`
//! crate) reports wiring and schedulability findings as [`Diagnostic`]
//! values instead of panicking: every finding carries a stable
//! [`code`](Diagnostic::code), a [`Severity`] and a [`Site`] locating it
//! in the block/link graph, and renders to a JSON object for tooling
//! (`speclint --format json`, CI gates).
//!
//! [`SystemSpec::check`]: https://docs.rs/seqsim

use std::fmt;

/// How serious a diagnostic is.
///
/// `Error` findings make a spec unbuildable (`SimError::Config`);
/// `Warning`s flag likely mistakes or performance hazards; `Info`s
/// describe deliberate-looking oddities (e.g. an explicit sink link).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Deliberate-looking but worth surfacing.
    Info,
    /// Suspicious wiring or a performance hazard.
    Warning,
    /// The spec is malformed; engines must refuse it.
    Error,
}

impl Severity {
    /// Stable lower-case name (`"error"`, `"warning"`, `"info"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where in the block/link graph a diagnostic points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// A block instance.
    Block(usize),
    /// A link (wire bundle / signal).
    Link(usize),
    /// An input port of a block.
    InputPort {
        /// Block instance.
        block: usize,
        /// Input port index.
        port: usize,
    },
    /// An output port of a block.
    OutputPort {
        /// Block instance.
        block: usize,
        /// Output port index.
        port: usize,
    },
    /// The system as a whole (cross-cutting findings).
    System,
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Site::Block(b) => write!(f, "block {b}"),
            Site::Link(l) => write!(f, "link {l}"),
            Site::InputPort { block, port } => write!(f, "block {block} input {port}"),
            Site::OutputPort { block, port } => write!(f, "block {block} output {port}"),
            Site::System => f.write_str("system"),
        }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How serious the finding is.
    pub severity: Severity,
    /// Stable machine-readable code (kebab-case, e.g.
    /// `"multiple-writer"`); see [`codes`].
    pub code: &'static str,
    /// Where the finding points.
    pub site: Site,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic.
    pub fn new(severity: Severity, code: &'static str, site: Site, message: String) -> Self {
        Diagnostic {
            severity,
            code,
            site,
            message,
        }
    }

    /// Render as a JSON object
    /// (`{"severity":"error","code":"...","site":"...","message":"..."}`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"severity\":\"{}\",\"code\":\"{}\",\"site\":\"{}\",\"message\":\"{}\"}}",
            self.severity,
            self.code,
            json_escape(&self.site.to_string()),
            json_escape(&self.message)
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at {}: {}",
            self.severity, self.code, self.site, self.message
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The stable diagnostic codes the workspace's analyzers emit.
pub mod codes {
    /// A link is driven by more than one writer (output port, constant
    /// or external register).
    pub const MULTIPLE_WRITER: &str = "multiple-writer";
    /// A link no block ever consumes (an explicit sink is `Info`).
    pub const NEVER_READ: &str = "never-read";
    /// A block-driven link whose driving output port does not exist /
    /// is not connected to it.
    pub const NEVER_WRITTEN: &str = "never-written";
    /// A link or port wider than the 64-bit link-memory word (or zero
    /// bits wide).
    pub const WIDTH_OVERFLOW: &str = "width-overflow";
    /// A block's output feeds back combinationally into its own inputs:
    /// the HBR fixed point is not structurally guaranteed to exist.
    pub const COMB_SELF_LOOP: &str = "comb-self-loop";
    /// An input port with no link attached.
    pub const UNCONNECTED_INPUT: &str = "unconnected-input";
    /// An output port with no link attached.
    pub const UNCONNECTED_OUTPUT: &str = "unconnected-output";
    /// A block no external/host input can reach.
    pub const UNREACHABLE_BLOCK: &str = "unreachable-block";
    /// A sharded-engine boundary cut crosses a combinational edge
    /// (extra BSP exchange rounds per system cycle).
    pub const SHARD_CUT_COMB: &str = "shard-cut-comb";
    /// The worst-case convergence bound of a combinational SCC exceeds
    /// the divergence watchdog budget.
    pub const CONVERGENCE_BUDGET: &str = "convergence-budget";
    /// The port-level combinational graph is cyclic, so the compiled
    /// engine cannot lower the spec to straight-line code and falls
    /// back to bounded fixed-point passes.
    pub const COMPILE_FALLBACK: &str = "compile-fallback";
    /// The lanes of a batched run do not share one `SystemSpec`
    /// structure (block/link shapes, widths, state or ring geometry
    /// differ between lanes). The batched engine executes a single
    /// compiled program over all lanes, so every lane must describe the
    /// same topology; only per-lane *contents* (fault plans, seeds,
    /// reset values, traffic) may differ.
    pub const BATCH_DIVERGENT_TOPOLOGY: &str = "batch-divergent-topology";
    /// A wire link bit is provably constant in every cycle (bitflow
    /// proved it `Const0`/`Const1` from the drivers' bit semantics).
    pub const CONST_BIT: &str = "const-bit";
    /// A link bit no consumer ever reads (the consuming port's
    /// `input_bits_used` mask excludes it).
    pub const DEAD_BIT: &str = "dead-bit";
    /// A multi-bit link whose live (non-constant, non-dead) bits fit a
    /// narrower word than declared; the message carries the inferred
    /// live width.
    pub const NARROWABLE_LINK: &str = "narrowable-link";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_renders() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!(Severity::Error.as_str(), "error");
    }

    #[test]
    fn json_rendering_escapes() {
        let d = Diagnostic::new(
            Severity::Error,
            codes::MULTIPLE_WRITER,
            Site::Link(3),
            "two \"writers\"".to_string(),
        );
        assert_eq!(
            d.to_json(),
            "{\"severity\":\"error\",\"code\":\"multiple-writer\",\
             \"site\":\"link 3\",\"message\":\"two \\\"writers\\\"\"}"
        );
    }

    #[test]
    fn display_is_greppable() {
        let d = Diagnostic::new(
            Severity::Warning,
            codes::NEVER_READ,
            Site::OutputPort { block: 1, port: 2 },
            "dangles".to_string(),
        );
        assert_eq!(
            d.to_string(),
            "warning[never-read] at block 1 output 2: dangles"
        );
    }
}
